/// Fig. 11 (= appendix Fig. 12) — benchmarking + application-specific PISA
/// for the blast workflow at CCR in {0.2, 0.5, 1, 2, 5}.
///
/// Expected shape (paper): in contrast to srasearch, CPoP performs
/// *poorly* on blast — PISA finds instances where CPoP loses to every other
/// scheduler (>5x against most, >1000x against WBA at CCR 0.2) — the
/// paper's argument that no single scheduler covers all workflows.

#include "app_specific_common.hpp"

int main() {
  using namespace saga;
  bench::banner("bench_fig11_blast", "Fig. 11 (blast, 5 CCRs)");
  bench::ScopedTimer timer("fig11 total");
  bench::run_app_specific_workflow("blast", env_seed());
  return 0;
}
