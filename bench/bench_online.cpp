/// Online scheduling study (paper future work: "online scheduling (e.g.,
/// scheduling tasks as they arrive)").
///
/// Tasks are revealed to a policy only when they become ready; the policy
/// must place each immediately and irrevocably. For each dataset we report
/// every online policy's makespan ratio against offline HEFT on the same
/// instance — the "price of online-ness" — plus an adversarial twist: PISA
/// hunting instances where online EFT maximally underperforms offline
/// HEFT.
///
/// Expected shape: online-EFT pays a modest premium over offline HEFT on
/// benchmarking datasets (it lacks rank lookahead), online-RR/Random pay a
/// large one, and PISA widens the online-EFT gap well past its
/// benchmarking value — the paper's core message holds for the online
/// setting too.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "core/annealer.hpp"
#include "datasets/registry.hpp"
#include "online/online.hpp"
#include "sched/registry.hpp"

int main() {
  using namespace saga;
  bench::banner("bench_online", "online scheduling (future work)");
  bench::ScopedTimer timer("online total");

  const auto heft = make_scheduler("HEFT");
  for (const char* dataset : {"chains", "blast", "montage", "etl"}) {
    const std::size_t count = scaled_count(100, 10);
    std::printf("\n=== %s (%zu instances; ratio vs offline HEFT) ===\n", dataset, count);
    for (const auto& policy_name : online::online_policy_names()) {
      const auto policy = online::make_online_policy(policy_name, env_seed());
      std::vector<double> ratios;
      for (std::size_t i = 0; i < count; ++i) {
        const auto inst = datasets::generate_instance(dataset, env_seed(), i);
        const double online_ms = online::simulate_online(inst, *policy).makespan();
        const double offline_ms = heft->schedule(inst).makespan();
        ratios.push_back(offline_ms > 0.0 ? online_ms / offline_ms : 1.0);
      }
      std::printf("  %-16s %s\n", policy_name.c_str(), to_string(summarize(ratios)).c_str());
    }
  }

  // Adversarial online analysis: PISA against the online-EFT policy.
  std::printf("\n=== PISA: online-EFT vs offline HEFT (adversarial) ===\n");
  const auto objective = [&](const ProblemInstance& inst) {
    const auto policy = online::make_online_eft();
    const double online_ms = online::simulate_online(inst, *policy).makespan();
    const double offline_ms = heft->schedule(inst).makespan();
    if (offline_ms == 0.0) return online_ms == 0.0 ? 1.0 : 1e9;
    return online_ms / offline_ms;
  };
  double best = 0.0;
  const std::size_t restarts = scaled_count(5, 5);
  for (std::size_t run = 0; run < restarts; ++run) {
    const auto initial = pisa::random_chain_instance(derive_seed(env_seed(), {0x0, run}));
    const auto result =
        pisa::anneal_objective(objective, initial, pisa::PerturbationConfig::generic(),
                               pisa::AnnealingParams{}, derive_seed(env_seed(), {0x1, run}));
    best = std::max(best, result.best_ratio);
  }
  std::printf("worst instance found: online-EFT is %.3fx worse than offline HEFT\n", best);
  return 0;
}
