/// Dataset census — structural characterisation of the 16 datasets
/// (context for Fig. 2: the structural knobs that explain per-dataset
/// scheduler behaviour; Section IV-B describes the generators, this bench
/// verifies their realised shapes).
///
/// For each dataset, prints the mean of each structural statistic across
/// instances (tasks, depth, width, available parallelism, fan-in, CCR) and
/// the network profile (nodes, speed heterogeneity).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "datasets/registry.hpp"
#include "graph/graph_stats.hpp"

int main() {
  using namespace saga;
  bench::banner("bench_dataset_census", "Table II / Section IV-B dataset shapes");
  bench::ScopedTimer timer("census total");

  std::printf("\n%-12s %7s %7s %7s %7s %9s %7s %7s %9s %9s\n", "dataset", "tasks", "deps",
              "depth", "width", "parallel", "fan_in", "nodes", "speed_cv", "ccr");
  for (const auto& spec : datasets::all_dataset_specs()) {
    const std::size_t count = scaled_count(std::min<std::size_t>(spec.paper_instance_count, 100), 8);
    std::vector<double> tasks, deps, depth, width, parallelism, fan_in, nodes, speed_cv, ccr;
    for (std::size_t i = 0; i < count; ++i) {
      const auto inst = datasets::generate_instance(spec.name, env_seed(), i);
      const auto gs = compute_graph_stats(inst.graph);
      tasks.push_back(static_cast<double>(gs.tasks));
      deps.push_back(static_cast<double>(gs.dependencies));
      depth.push_back(static_cast<double>(gs.depth));
      width.push_back(static_cast<double>(gs.level_width));
      parallelism.push_back(gs.parallelism);
      fan_in.push_back(gs.mean_fan_in);
      nodes.push_back(static_cast<double>(inst.network.node_count()));
      std::vector<double> speeds;
      for (NodeId v = 0; v < inst.network.node_count(); ++v) {
        speeds.push_back(inst.network.speed(v));
      }
      const double m = mean(speeds);
      speed_cv.push_back(m > 0.0 ? stddev(speeds) / m : 0.0);
      ccr.push_back(inst.ccr());
    }
    std::printf("%-12s %7.1f %7.1f %7.1f %7.1f %9.2f %7.2f %7.1f %9.2f %9.2f\n",
                spec.name.c_str(), mean(tasks), mean(deps), mean(depth), mean(width),
                mean(parallelism), mean(fan_in), mean(nodes), mean(speed_cv), mean(ccr));
  }
  std::printf("\n(parallel = total work / longest cost chain; speed_cv = stddev/mean of node "
              "speeds; ccr = 0 where links are infinite)\n");
  return 0;
}
