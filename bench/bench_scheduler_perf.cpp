/// Table I (runtime column) — scheduling-time microbenchmarks.
///
/// The paper's Table I quotes asymptotic scheduling complexities
/// (e.g. HEFT/CPoP O(|T|^2 |V|), GDL O(|T| |V|^3), OLB O(|T|)). This
/// google-benchmark binary measures wall-clock scheduling time on random
/// layered DAGs at growing |T| (with |V| = 8), so the growth curves can be
/// compared against those bounds. BruteForce/SMT are exponential and are
/// measured only at |T| = 6.
///
/// Every polynomial scheduler is registered twice: the plain entry runs the
/// legacy one-shot path (`schedule(inst)`: a private InstanceView and
/// scratch per call), the "/arena" entry runs the shared evaluation kernel
/// (`schedule(inst, &arena)`: cached view + recycled scratch). Comparing
/// the two curves shows the kernel's before/after per-call win.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "graph/problem_instance.hpp"
#include "sched/arena.hpp"
#include "sched/registry.hpp"

namespace {

using namespace saga;

/// Random layered DAG: `tasks` tasks in layers of ~4, each task drawing
/// 1-3 predecessors from the previous layer.
ProblemInstance layered_instance(std::size_t tasks, std::size_t nodes, std::uint64_t seed) {
  Rng rng(seed);
  ProblemInstance inst;
  std::vector<TaskId> previous_layer;
  std::vector<TaskId> current_layer;
  for (std::size_t i = 0; i < tasks; ++i) {
    const TaskId t = inst.graph.add_task(rng.uniform(0.5, 2.0));
    if (!previous_layer.empty()) {
      const auto preds = std::min<std::size_t>(previous_layer.size(),
                                               1 + rng.index(3));
      for (std::size_t p = 0; p < preds; ++p) {
        inst.graph.add_dependency(previous_layer[rng.index(previous_layer.size())], t,
                                  rng.uniform(0.1, 1.0));
      }
    }
    current_layer.push_back(t);
    if (current_layer.size() == 4) {
      previous_layer = std::move(current_layer);
      current_layer.clear();
    }
  }
  inst.network = Network(nodes);
  for (NodeId v = 0; v < nodes; ++v) inst.network.set_speed(v, rng.uniform(0.5, 2.0));
  for (NodeId a = 0; a < nodes; ++a) {
    for (NodeId b = a + 1; b < nodes; ++b) {
      inst.network.set_strength(a, b, rng.uniform(0.5, 2.0));
    }
  }
  return inst;
}

void schedule_benchmark(benchmark::State& state, const std::string& scheduler_name,
                        bool use_arena) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const auto inst = layered_instance(tasks, 8, 42);
  const auto scheduler = make_scheduler(scheduler_name, 1);
  TimelineArena arena;
  TimelineArena* arena_ptr = use_arena ? &arena : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler->schedule(inst, arena_ptr));
  }
  state.SetComplexityN(state.range(0));
}

void register_polynomial(const char* name) {
  benchmark::RegisterBenchmark(name, [name = std::string(name)](benchmark::State& state) {
    schedule_benchmark(state, name, /*use_arena=*/false);
  })
      ->RangeMultiplier(2)
      ->Range(16, 256)
      ->Complexity();
  benchmark::RegisterBenchmark((std::string(name) + "/arena").c_str(),
                               [name = std::string(name)](benchmark::State& state) {
                                 schedule_benchmark(state, name, /*use_arena=*/true);
                               })
      ->RangeMultiplier(2)
      ->Range(16, 256)
      ->Complexity();
}

void register_exponential(const char* name) {
  benchmark::RegisterBenchmark((std::string(name) + "/tiny").c_str(),
                               [name = std::string(name)](benchmark::State& state) {
                                 const auto inst = layered_instance(6, 3, 7);
                                 const auto scheduler = make_scheduler(name, 1);
                                 for (auto _ : state) {
                                   benchmark::DoNotOptimize(scheduler->schedule(inst));
                                 }
                               });
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& name : benchmark_scheduler_names()) register_polynomial(name.c_str());
  register_exponential("BruteForce");
  register_exponential("SMT");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
