/// Generalised-objective PISA (paper future work: "other performance
/// metrics (e.g., throughput, energy consumption, cost, etc.)").
///
/// Runs the Section VI adversarial search with the objective switched from
/// makespan ratio to energy, inverse-throughput, and rental-cost ratios
/// (metrics/metrics.hpp), for three scheduler pairs. Each cell reports the
/// worst ratio found; the makespan column reproduces the paper's objective
/// as a reference point.
///
/// Expected shape: adversarial gaps exist under every metric, and the
/// worst-case *energy* ratio of parallelising schedulers against
/// FastestNode exceeds their makespan ratio floor (parallel schedules pay
/// idle power and transfer energy on top of any makespan loss).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/annealer.hpp"
#include "core/constraints.hpp"
#include "metrics/metrics.hpp"
#include "sched/registry.hpp"

namespace {

using namespace saga;

double metric_pisa(const std::string& target_name, const std::string& baseline_name,
                   metrics::Metric metric, std::size_t restarts, std::uint64_t seed) {
  const auto target = make_scheduler(target_name, derive_seed(seed, {1}));
  const auto baseline = make_scheduler(baseline_name, derive_seed(seed, {2}));
  const auto reqs = pisa::combine(target->requirements(), baseline->requirements());
  pisa::PerturbationConfig config;
  pisa::apply_requirements(config, reqs);
  const auto objective = [&](const ProblemInstance& inst) {
    return metrics::metric_ratio(metric, *target, *baseline, inst);
  };

  double best = 0.0;
  for (std::size_t run = 0; run < restarts; ++run) {
    auto initial = pisa::random_chain_instance(derive_seed(seed, {3, run}));
    pisa::normalize_instance(initial, reqs);
    const auto result = pisa::anneal_objective(objective, initial, config,
                                               pisa::AnnealingParams{},
                                               derive_seed(seed, {4, run}));
    best = std::max(best, result.best_ratio);
  }
  return best;
}

}  // namespace

int main() {
  bench::banner("bench_metric_pisa", "PISA with energy/throughput/cost objectives (future work)");
  bench::ScopedTimer timer("metric pisa total");
  const std::size_t restarts = saga::scaled_count(5, 5);

  const std::vector<std::pair<const char*, const char*>> pairs = {
      {"HEFT", "FastestNode"}, {"HEFT", "CPoP"}, {"MinMin", "MaxMin"}};
  const std::vector<metrics::Metric> metric_list = {
      metrics::Metric::kMakespan, metrics::Metric::kEnergy,
      metrics::Metric::kInverseThroughput, metrics::Metric::kCost};

  std::printf("\nworst-case ratio found per (pair, objective):\n");
  std::printf("%-22s", "target vs baseline");
  for (const auto metric : metric_list) {
    std::printf(" %14s", metrics::to_string(metric).c_str());
  }
  std::printf("\n");
  for (const auto& [target, baseline] : pairs) {
    std::printf("%-22s", (std::string(target) + " vs " + baseline).c_str());
    for (const auto metric : metric_list) {
      const double ratio =
          metric_pisa(target, baseline, metric, restarts, saga::env_seed());
      std::printf(" %14.3f", ratio);
    }
    std::printf("\n");
  }
  return 0;
}
