/// Appendix Figs. 14-19 — benchmarking + application-specific PISA for the
/// remaining six scientific workflows (bwa, epigenomics, 1000genome,
/// montage, seismology, soykb) at CCR in {0.2, 0.5, 1, 2, 5}.
///
/// To keep the default run short, the appendix binary evaluates the paper's
/// CCR sweep at reduced restarts (SAGA_SCALE scales it back up). Expected
/// shapes per workflow (paper appendix): bwa/epigenomics mostly mild ratios
/// with isolated >5 blowups; genome shows frequent >5 columns against
/// FastestNode; montage benchmarking already separates CPoP (~1.5) from the
/// rest; seismology/soykb resemble genome with occasional >1000 cells.

#include "app_specific_common.hpp"

int main() {
  using namespace saga;
  bench::banner("bench_appendix_workflows",
                "Appendix Figs. 14-19 (six workflows, 5 CCRs each)");
  bench::ScopedTimer timer("appendix total");
  const char* workflows[] = {"bwa", "epigenomics", "genome", "montage", "seismology", "soykb"};
  std::uint64_t salt = 0;
  for (const char* workflow : workflows) {
    bench::run_app_specific_workflow(workflow, derive_seed(env_seed(), {0xa99e4d1ULL, salt++}));
  }
  return 0;
}
