/// Hybrid-scheduler construction via PISA (paper Section VII/VIII: "a WFMS
/// designer might run PISA and choose the three algorithms with the
/// combined minimum maximum makespan ratio. Exploring different methods for
/// constructing and comparing such hybrid algorithms is an interesting
/// topic for future work.").
///
/// Protocol: run the pairwise PISA grid over the six Section VII
/// schedulers and *keep every witness instance* — the hardest instances
/// known for this roster. Then, for portfolio sizes k = 1..3, exhaustively
/// pick the scheduler subset minimising the worst makespan ratio across
/// all witnesses (the portfolio runs all members and keeps the best
/// schedule). Contrast with wfms_advisor, which selects on benchmarking
/// instances: adversarially-selected portfolios hedge differently.
///
/// Expected shape: k=1 is bad (every single scheduler has adversarial
/// witnesses against it); k=2 already removes most of the tail; k=3
/// approaches ratio 1 on this witness set.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/annealer.hpp"
#include "sched/registry.hpp"

int main() {
  using namespace saga;
  bench::banner("bench_hybrid_portfolio", "Section VII/VIII hybrid-scheduler construction");
  bench::ScopedTimer timer("hybrid total");

  const auto& roster = app_specific_scheduler_names();
  const std::size_t n = roster.size();
  const std::size_t restarts = scaled_count(5, 5);

  // Collect witness instances from every ordered pair.
  std::vector<ProblemInstance> witnesses;
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t b = 0; b < n; ++b) {
      if (t == b) continue;
      const std::uint64_t pair_seed = derive_seed(env_seed(), {t, b});
      const auto target = make_scheduler(roster[t], pair_seed);
      const auto baseline = make_scheduler(roster[b], pair_seed);
      pisa::PisaOptions options;
      options.restarts = restarts;
      witnesses.push_back(
          pisa::run_pisa(*target, *baseline, options, pair_seed).best_instance);
    }
  }
  std::printf("collected %zu adversarial witness instances\n", witnesses.size());

  // makespans[w][s].
  std::vector<std::vector<double>> makespans(witnesses.size(), std::vector<double>(n, 0.0));
  for (std::size_t w = 0; w < witnesses.size(); ++w) {
    for (std::size_t s = 0; s < n; ++s) {
      const auto scheduler = make_scheduler(roster[s], derive_seed(env_seed(), {9, s}));
      makespans[w][s] = scheduler->schedule(witnesses[w]).makespan();
    }
  }

  const auto portfolio_score = [&](const std::vector<std::size_t>& members) {
    double worst = 1.0;
    for (const auto& row : makespans) {
      const double best_all = *std::min_element(row.begin(), row.end());
      double best_members = std::numeric_limits<double>::infinity();
      for (std::size_t s : members) best_members = std::min(best_members, row[s]);
      if (best_all > 0.0) worst = std::max(worst, best_members / best_all);
    }
    return worst;
  };

  for (std::size_t k = 1; k <= 3; ++k) {
    std::vector<bool> mask(n, false);
    std::fill(mask.end() - static_cast<std::ptrdiff_t>(k), mask.end(), true);
    double best_score = std::numeric_limits<double>::infinity();
    std::vector<std::size_t> best_members;
    do {
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask[i]) members.push_back(i);
      }
      const double score = portfolio_score(members);
      if (score < best_score) {
        best_score = score;
        best_members = members;
      }
    } while (std::next_permutation(mask.begin(), mask.end()));

    std::printf("best portfolio of %zu:", k);
    for (std::size_t s : best_members) std::printf(" %s", roster[s].c_str());
    std::printf("  (worst ratio on the witness set: %.3f)\n", best_score);
  }

  std::printf("\nper-scheduler worst ratio on the witness set:\n");
  for (std::size_t s = 0; s < n; ++s) {
    std::printf("  %-12s %s\n", roster[s].c_str(),
                format_ratio_cell(portfolio_score({s})).c_str());
  }
  return 0;
}
