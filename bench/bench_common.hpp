#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "common/env.hpp"

/// \file bench_common.hpp
/// Shared scaffolding for the experiment binaries: a banner echoing the
/// reproducibility knobs and a scoped wall-clock timer.

namespace saga::bench {

/// Prints the experiment banner with the environment configuration.
inline void banner(const std::string& experiment, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("SAGA_SCALE=%.3g (1.0 = paper fidelity)  SAGA_SEED=%llu\n", env_scale(),
              static_cast<unsigned long long>(env_seed()));
  std::printf("================================================================\n");
}

/// RAII wall-clock timer; reports on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string label)
      : label_(std::move(label)), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
    std::printf("[%s: %.2fs]\n", label_.c_str(), static_cast<double>(elapsed) / 1000.0);
  }

 private:
  std::string label_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace saga::bench
