/// Shared-evaluation-kernel microbenchmark (plain chrono, no Google
/// Benchmark, so it always builds). Reports
///   1. per-scheduler ns/schedule on a 64-task layered DAG, one-shot
///      (`schedule(inst)`: private view + scratch per call, the shape of
///      the pre-kernel implementation) vs warm-arena
///      (`schedule(inst, &arena)`: cached InstanceView + recycled
///      TimelineScratch, the PISA hot path), and
///   2. per-step PISA throughput on the Fig. 4 configuration (paper
///      annealing defaults, 5 restarts) for a sample of scheduler pairs.
///
/// Results are written to BENCH_kernel.json (or argv[1]) so future PRs can
/// track the perf trajectory. The committed copy at the repo root also
/// records the pre-kernel (PR 1 seed) aggregate measured on the same
/// machine, giving the kernel's end-to-end speedup.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/annealer.hpp"
#include "graph/problem_instance.hpp"
#include "sched/arena.hpp"
#include "sched/registry.hpp"
#include "sched/timeline.hpp"

namespace {

using namespace saga;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Random layered DAG (same construction as bench_scheduler_perf).
ProblemInstance layered_instance(std::size_t tasks, std::size_t nodes, std::uint64_t seed) {
  Rng rng(seed);
  ProblemInstance inst;
  std::vector<TaskId> previous_layer;
  std::vector<TaskId> current_layer;
  for (std::size_t i = 0; i < tasks; ++i) {
    const TaskId t = inst.graph.add_task(rng.uniform(0.5, 2.0));
    if (!previous_layer.empty()) {
      const auto preds = std::min<std::size_t>(previous_layer.size(), 1 + rng.index(3));
      for (std::size_t p = 0; p < preds; ++p) {
        inst.graph.add_dependency(previous_layer[rng.index(previous_layer.size())], t,
                                  rng.uniform(0.1, 1.0));
      }
    }
    current_layer.push_back(t);
    if (current_layer.size() == 4) {
      previous_layer = std::move(current_layer);
      current_layer.clear();
    }
  }
  inst.network = Network(nodes);
  for (NodeId v = 0; v < nodes; ++v) inst.network.set_speed(v, rng.uniform(0.5, 2.0));
  for (NodeId a = 0; a < nodes; ++a) {
    for (NodeId b = a + 1; b < nodes; ++b) {
      inst.network.set_strength(a, b, rng.uniform(0.5, 2.0));
    }
  }
  return inst;
}

struct SchedulerTiming {
  std::string name;
  double ns_one_shot = 0.0;
  double ns_arena = 0.0;
};

SchedulerTiming time_scheduler(const std::string& name, const ProblemInstance& inst) {
  const auto scheduler = make_scheduler(name, 1);
  SchedulerTiming timing;
  timing.name = name;

  // Calibrate a repeat count for ~50 ms per mode, then measure.
  const auto measure = [&](TimelineArena* arena) {
    auto t0 = Clock::now();
    std::size_t reps = 1;
    double total = 0.0;
    for (;;) {
      for (std::size_t i = 0; i < reps; ++i) {
        volatile double sink = scheduler->schedule(inst, arena).makespan();
        (void)sink;
      }
      total = seconds_since(t0);
      if (total > 0.05) break;
      reps *= 4;
      t0 = Clock::now();
    }
    return total / static_cast<double>(reps) * 1e9;
  };

  TimelineArena arena;
  timing.ns_arena = measure(&arena);
  timing.ns_one_shot = measure(nullptr);
  return timing;
}

struct PisaTiming {
  std::string target;
  std::string baseline;
  double steps_per_sec = 0.0;
};

PisaTiming time_pisa_pair(const std::string& target_name, const std::string& baseline_name) {
  const auto target = make_scheduler(target_name, 1);
  const auto baseline = make_scheduler(baseline_name, 2);
  pisa::PisaOptions options;  // paper defaults: Tmax 10, Tmin 0.1, alpha 0.99, 5 restarts
  TimelineArena arena;

  std::size_t steps = 0;
  const auto t0 = Clock::now();
  for (int rep = 0; rep < 3; ++rep) {
    const auto result =
        pisa::run_pisa(*target, *baseline, options, 42 + static_cast<std::uint64_t>(rep), &arena);
    // run_pisa reports the best restart; every restart runs the same
    // temperature ladder, so total steps = restarts * iterations.
    steps += options.restarts * result.iterations;
  }
  PisaTiming timing;
  timing.target = target_name;
  timing.baseline = baseline_name;
  timing.steps_per_sec = static_cast<double>(steps) / seconds_since(t0);
  return timing;
}

/// Per-component kernel costs, so regressions are attributable without
/// re-profiling: the raw eft_row sweep, annealing-step cost split by
/// perturbation class (weight-only vs structural), and the batched
/// annealer at K = 1/4/8.
struct ComponentTimings {
  double eft_row_ns = 0.0;
  double weight_only_step_ns = 0.0;
  double structural_step_ns = 0.0;
  std::vector<std::pair<std::size_t, double>> batch_steps_per_sec;
};

/// ns per eft_row sweep (append mode, all nodes) on the 64-task instance,
/// measured on a warm arena against a source task so the row cost is pure
/// sweep, not gap-scan.
double time_eft_row(const ProblemInstance& inst) {
  TimelineArena arena;
  TimelineBuilder builder(inst, &arena);
  const TaskId source = builder.ready_tasks().front();
  volatile double sink = 0.0;
  auto t0 = Clock::now();
  std::size_t reps = 1024;
  double total = 0.0;
  for (;;) {
    for (std::size_t i = 0; i < reps; ++i) {
      sink = builder.eft_row(source, /*insertion=*/false).finish[0];
    }
    total = seconds_since(t0);
    if (total > 0.05) break;
    reps *= 4;
    t0 = Clock::now();
  }
  (void)sink;
  return total / static_cast<double>(reps) * 1e9;
}

/// ns per annealing step (HEFT vs CPoP on the paper's chain initial
/// instance) with only the given perturbation ops enabled.
double time_anneal_class(const std::vector<pisa::PerturbationOp>& ops) {
  const auto target = make_scheduler("HEFT", 1);
  const auto baseline = make_scheduler("CPoP", 2);
  auto config = pisa::PerturbationConfig::generic();
  for (std::size_t i = 0; i < pisa::kPerturbationOpCount; ++i) config.enabled[i] = false;
  for (const auto op : ops) config.set_enabled(op, true);
  const pisa::AnnealingParams params;  // paper schedule
  const auto initial = pisa::random_chain_instance(7);
  TimelineArena arena;

  std::size_t steps = 0;
  const auto t0 = Clock::now();
  for (int rep = 0; rep < 6; ++rep) {
    const auto result = pisa::anneal(*target, *baseline, initial, config, params,
                                     42 + static_cast<std::uint64_t>(rep), &arena);
    steps += result.iterations;
  }
  return seconds_since(t0) / static_cast<double>(steps) * 1e9;
}

/// Annealing-step throughput of the batched annealer at the given K on the
/// HEFT/CPoP pair (serial slot evaluation — the deterministic reference).
double time_batch(std::size_t k) {
  const auto target = make_scheduler("HEFT", 1);
  const auto baseline = make_scheduler("CPoP", 2);
  pisa::PisaOptions options;
  options.params.batch = k;
  TimelineArena arena;

  std::size_t steps = 0;
  const auto t0 = Clock::now();
  for (int rep = 0; rep < 2; ++rep) {
    const auto result =
        pisa::run_pisa(*target, *baseline, options, 42 + static_cast<std::uint64_t>(rep), &arena);
    steps += options.restarts * result.iterations;
  }
  return static_cast<double>(steps) / seconds_since(t0);
}

ComponentTimings time_components(const ProblemInstance& inst) {
  ComponentTimings c;
  c.eft_row_ns = time_eft_row(inst);
  c.weight_only_step_ns = time_anneal_class(
      {pisa::PerturbationOp::kChangeNetworkNodeWeight, pisa::PerturbationOp::kChangeNetworkEdgeWeight,
       pisa::PerturbationOp::kChangeTaskWeight, pisa::PerturbationOp::kChangeDependencyWeight});
  c.structural_step_ns = time_anneal_class(
      {pisa::PerturbationOp::kAddDependency, pisa::PerturbationOp::kRemoveDependency});
  for (const std::size_t k : {1, 4, 8}) {
    c.batch_steps_per_sec.emplace_back(k, time_batch(k));
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  // bench_kernel [out.json] [--baseline <seed steps/sec>] [--smoke]
  // --baseline records a pre-kernel reference measured on the same machine
  // (e.g. the PR 1 seed build) so the JSON carries the end-to-end speedup.
  // --smoke runs only the PISA pairs (the numbers CI's advisory perf gate
  // compares against the committed JSON) and skips the per-scheduler and
  // per-component calibration loops.
  std::string out_path = "BENCH_kernel.json";
  double baseline_steps_per_sec = 0.0;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_steps_per_sec = std::atof(argv[++i]);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      out_path = arg;
    }
  }
  const auto inst = layered_instance(64, 8, 42);

  std::vector<SchedulerTiming> timings;
  if (!smoke) {
    for (const auto& name : benchmark_scheduler_names()) {
      timings.push_back(time_scheduler(name, inst));
      std::fprintf(stderr, "%-12s one-shot %9.0f ns  arena %9.0f ns  (%.2fx)\n",
                   timings.back().name.c_str(), timings.back().ns_one_shot,
                   timings.back().ns_arena, timings.back().ns_one_shot / timings.back().ns_arena);
    }
  }

  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"HEFT", "CPoP"}, {"MinMin", "MaxMin"}, {"ETF", "OLB"}, {"BIL", "GDL"}, {"WBA", "MCT"}};
  std::vector<PisaTiming> pisa_timings;
  double pisa_total_steps_per_sec = 0.0;
  for (const auto& [t, b] : pairs) {
    pisa_timings.push_back(time_pisa_pair(t, b));
    pisa_total_steps_per_sec += pisa_timings.back().steps_per_sec;
    std::fprintf(stderr, "PISA %s/%s: %.0f steps/sec\n", t.c_str(), b.c_str(),
                 pisa_timings.back().steps_per_sec);
  }
  const double pisa_mean = pisa_total_steps_per_sec / static_cast<double>(pairs.size());
  std::fprintf(stderr, "PISA mean: %.0f steps/sec\n", pisa_mean);

  ComponentTimings components;
  if (!smoke) {
    components = time_components(inst);
    std::fprintf(stderr, "eft_row sweep: %.1f ns\n", components.eft_row_ns);
    std::fprintf(stderr, "weight-only step: %.0f ns  structural step: %.0f ns\n",
                 components.weight_only_step_ns, components.structural_step_ns);
    for (const auto& [k, sps] : components.batch_steps_per_sec) {
      std::fprintf(stderr, "batch=%zu: %.0f steps/sec\n", k, sps);
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"kernel\",\n");
  std::fprintf(out, "  \"instance\": {\"tasks\": 64, \"nodes\": 8, \"kind\": \"layered\"},\n");
  std::fprintf(out, "  \"schedulers\": [\n");
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const auto& t = timings[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"ns_per_schedule_one_shot\": %.0f, "
                 "\"ns_per_schedule_arena\": %.0f, \"arena_speedup\": %.3f}%s\n",
                 t.name.c_str(), t.ns_one_shot, t.ns_arena, t.ns_one_shot / t.ns_arena,
                 i + 1 < timings.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"pisa\": {\n");
  std::fprintf(out, "    \"config\": \"fig4 defaults: Tmax 10, Tmin 0.1, alpha 0.99, "
                    "5 restarts, chain initial instances\",\n");
  std::fprintf(out, "    \"pairs\": [\n");
  for (std::size_t i = 0; i < pisa_timings.size(); ++i) {
    const auto& p = pisa_timings[i];
    std::fprintf(out,
                 "      {\"target\": \"%s\", \"baseline\": \"%s\", \"steps_per_sec\": %.0f}%s\n",
                 p.target.c_str(), p.baseline.c_str(), p.steps_per_sec,
                 i + 1 < pisa_timings.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  if (!smoke) {
    std::fprintf(out, "    \"components\": {\n");
    std::fprintf(out, "      \"eft_row_sweep_ns\": %.1f,\n", components.eft_row_ns);
    std::fprintf(out, "      \"weight_only_step_ns\": %.0f,\n", components.weight_only_step_ns);
    std::fprintf(out, "      \"structural_step_ns\": %.0f,\n", components.structural_step_ns);
    std::fprintf(out, "      \"batch_steps_per_sec\": {");
    for (std::size_t i = 0; i < components.batch_steps_per_sec.size(); ++i) {
      const auto& [k, sps] = components.batch_steps_per_sec[i];
      std::fprintf(out, "%s\"%zu\": %.0f", i == 0 ? "" : ", ", k, sps);
    }
    std::fprintf(out, "}\n");
    std::fprintf(out, "    },\n");
  }
  std::fprintf(out, "    \"mean_steps_per_sec\": %.0f", pisa_mean);
  if (baseline_steps_per_sec > 0.0) {
    std::fprintf(out, ",\n    \"seed_baseline_steps_per_sec\": %.0f", baseline_steps_per_sec);
    std::fprintf(out, ",\n    \"speedup_vs_seed\": %.3f", pisa_mean / baseline_steps_per_sec);
  }
  std::fprintf(out, "\n  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
