/// Stochastic-instance robustness study (paper future work: "we plan to
/// add support for stochastic problem instances (with stochastic task
/// costs, data sizes, computation speeds, and communication costs)").
///
/// For two scientific workflows (blast, montage at CCR 1) and increasing
/// uncertainty (coefficient of variation 0.1 / 0.3 / 0.5 on every weight),
/// each scheduler plans on the mean instance; its plan is then re-executed
/// under Monte-Carlo realisations. Reported per scheduler:
///   - the planned (deterministic) makespan,
///   - the realised makespan distribution, and
///   - regret = realised / clairvoyant-replanned (1.0 = the static plan is
///     as good as re-planning with perfect information).
///
/// Expected shape: regret grows with the coefficient of variation;
/// schedulers that over-fit to exact weights (HEFT's greedy EFT choices)
/// degrade faster than coarse ones (FastestNode has regret ~1 by
/// construction — serialising is insensitive to weight noise).

#include <cstdio>

#include "bench_common.hpp"
#include "datasets/registry.hpp"
#include "datasets/workflows/workflow.hpp"
#include "sched/registry.hpp"
#include "stochastic/robustness.hpp"

int main() {
  using namespace saga;
  bench::banner("bench_stochastic_robustness",
                "stochastic instances (future work, cf. Canon et al. robustness study)");
  bench::ScopedTimer timer("robustness total");

  const std::size_t samples = scaled_count(200, 30);
  for (const char* workflow : {"blast", "montage"}) {
    auto base = datasets::generate_instance(workflow, env_seed(), 0);
    workflows::set_homogeneous_ccr(base, 1.0);
    for (double cv : {0.1, 0.3, 0.5}) {
      stochastic::StochasticInstance stoch(base);
      stoch.apply_relative_noise(cv);
      std::printf("\n=== %s, CCR 1.0, weight noise cv=%.1f (%zu samples) ===\n", workflow,
                  cv, samples);
      std::printf("%-12s %10s  %-52s %s\n", "scheduler", "planned", "realized makespan",
                  "regret (realized/replanned)");
      for (const auto& name : app_specific_scheduler_names()) {
        const auto scheduler = make_scheduler(name, env_seed());
        const auto report =
            stochastic::evaluate_robustness(*scheduler, stoch, samples, env_seed());
        std::printf("%-12s %10.2f  %-52s mean=%.3f max=%.3f\n", name.c_str(),
                    report.planned_makespan, to_string(report.realized).c_str(),
                    report.regret.mean, report.regret.max);
      }
    }
  }
  return 0;
}
