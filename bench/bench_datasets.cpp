/// Dataset-generation microbenchmark (plain chrono, no Google Benchmark, so
/// it always builds). Reports, for every registry dataset (Table II plus
/// the extension families):
///   1. streaming instance-generation throughput (instances/sec through
///      InstanceSource::generate), and
///   2. an eager-vs-streaming peak-RSS note: materializing a large dataset
///      the pre-registry way (generate_dataset into a std::vector) versus
///      streaming the same instances one at a time.
///
/// Results are written to BENCH_datasets.json (or argv[1]) so future PRs
/// can track the dataset-pipeline trajectory.

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "datasets/registry.hpp"

namespace {

using namespace saga;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Resident-set high-water mark in MiB (ru_maxrss is KiB on Linux).
double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct FamilyTiming {
  std::string name;
  double instances_per_sec = 0.0;
  double mean_tasks = 0.0;
};

FamilyTiming time_family(const std::string& spec) {
  const auto source = datasets::DatasetRegistry::instance().make(spec, env_seed());
  FamilyTiming timing;
  timing.name = spec;

  // Calibrate a repeat count for ~100 ms, then measure.
  auto t0 = Clock::now();
  std::size_t reps = 4;
  double total = 0.0;
  std::size_t tasks = 0;
  std::size_t generated = 0;
  for (;;) {
    for (std::size_t i = 0; i < reps; ++i) {
      const auto inst = source->generate(i);
      tasks += inst.graph.task_count();
      ++generated;
    }
    total = seconds_since(t0);
    if (total > 0.1) break;
    reps *= 4;
    tasks = 0;
    generated = 0;
    t0 = Clock::now();
  }
  timing.instances_per_sec = static_cast<double>(generated) / total;
  timing.mean_tasks = static_cast<double>(tasks) / static_cast<double>(generated);
  return timing;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_datasets.json";

  std::vector<FamilyTiming> timings;
  std::vector<std::string> roster;
  for (const auto& desc : datasets::DatasetRegistry::instance().descriptors()) {
    if (desc.has_tag("wrapper")) continue;  // wrappers are timed separately below
    roster.push_back(desc.name);
  }
  roster.emplace_back("perturbed?base=montage&level=0.3");
  roster.emplace_back("noisy?base=blast&cv=0.2");
  for (const auto& name : roster) {
    timings.push_back(time_family(name));
    std::fprintf(stderr, "%-32s %10.0f instances/sec  (mean %.0f tasks)\n",
                 timings.back().name.c_str(), timings.back().instances_per_sec,
                 timings.back().mean_tasks);
  }

  // Peak-RSS comparison: stream N chains instances (discarding each) vs
  // materializing the same N into a vector. Streaming first, so the eager
  // path owns any high-water-mark growth.
  const std::size_t rss_count = scaled_count(20000, 2000);
  const double rss_before = peak_rss_mib();
  {
    const auto source = datasets::DatasetRegistry::instance().make("chains", env_seed());
    double checksum = 0.0;
    for (std::size_t i = 0; i < rss_count; ++i) {
      checksum += static_cast<double>(source->generate(i).graph.task_count());
    }
    std::fprintf(stderr, "streamed %zu chains instances (checksum %.0f)\n", rss_count,
                 checksum);
  }
  const double rss_streaming = peak_rss_mib();
  const auto eager = datasets::generate_dataset("chains", env_seed(), rss_count);
  const double rss_eager = peak_rss_mib();
  std::fprintf(stderr,
               "peak RSS: %.1f MiB before, %.1f MiB after streaming %zu instances, "
               "%.1f MiB after materializing them (%zu held)\n",
               rss_before, rss_streaming, rss_count, rss_eager, eager.instances.size());

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"datasets\",\n");
  std::fprintf(out, "  \"families\": [\n");
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const auto& t = timings[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"instances_per_sec\": %.0f, \"mean_tasks\": %.1f}%s\n",
                 t.name.c_str(), t.instances_per_sec, t.mean_tasks,
                 i + 1 < timings.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"peak_rss\": {\n");
  std::fprintf(out, "    \"note\": \"high-water mark after streaming vs eagerly "
                    "materializing the same chains instances\",\n");
  std::fprintf(out, "    \"instances\": %zu,\n", rss_count);
  std::fprintf(out, "    \"before_mib\": %.1f,\n", rss_before);
  std::fprintf(out, "    \"after_streaming_mib\": %.1f,\n", rss_streaming);
  std::fprintf(out, "    \"after_eager_mib\": %.1f\n", rss_eager);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
