/// Extension-scheduler study (paper future work: "we plan to extend SAGA
/// to include more algorithms").
///
/// Evaluates the seven extension schedulers — ERT, MH, LMT, LC (cluster
/// scheduling), GA and SimAnneal (meta-heuristics), and Ensemble — against
/// the Table I roster in two ways:
///   1. a Fig. 2-style benchmarking grid on four structurally distinct
///      datasets (ratios are against the best of the *combined* roster);
///   2. a PISA mini-grid of each extension against HEFT, CPoP, and
///      FastestNode (both directions), showing the adversarial story also
///      extends to the new algorithms.
///
/// Expected shape: Ensemble dominates its members by construction (ratio
/// 1.00 columns in benchmarking); GA/SimAnneal sit at or below HEFT; the
/// cheap heuristics (ERT/MH/LMT/LC) show the same both-directions
/// vulnerability as the paper's roster.

#include <cstdio>
#include <vector>

#include "analysis/benchmarking.hpp"
#include "analysis/ratio_matrix.hpp"
#include "bench_common.hpp"
#include "core/pairwise.hpp"
#include "datasets/registry.hpp"
#include "sched/registry.hpp"

int main() {
  using namespace saga;
  bench::banner("bench_ext_schedulers", "extension schedulers (future-work Table I additions)");
  bench::ScopedTimer timer("ext total");

  // Combined roster: the 15 benchmark schedulers plus all extensions.
  std::vector<std::string> roster = benchmark_scheduler_names();
  roster.insert(roster.end(), extension_scheduler_names().begin(),
                extension_scheduler_names().end());

  std::vector<analysis::DatasetBenchmark> benchmarks;
  for (const char* ds : {"chains", "blast", "montage", "epigenomics"}) {
    const std::size_t count = scaled_count(100, 8);
    bench::ScopedTimer dataset_timer{std::string(ds)};
    benchmarks.push_back(analysis::benchmark_dataset(
        datasets::generate_dataset(ds, env_seed(), count), roster, env_seed()));
  }
  const auto table = analysis::benchmarking_table(
      benchmarks, roster, "benchmarking: max makespan ratio (combined roster baseline)");
  std::printf("\n%s\n", table.render().c_str());

  // PISA mini-grid: extensions (minus the slow meta-heuristics) against
  // three reference schedulers.
  std::vector<std::string> grid_roster = {"HEFT", "CPoP", "FastestNode", "PEFT",
                                          "ERT",  "MH",   "LMT", "LC", "Ensemble"};
  pisa::PairwiseOptions options;
  options.pisa.restarts = scaled_count(5, 5);
  const auto grid = pisa::pairwise_compare(grid_roster, options, env_seed());
  std::printf("\n%s\n",
              analysis::pairwise_table(grid, "PISA grid including extensions").render().c_str());
  return 0;
}
