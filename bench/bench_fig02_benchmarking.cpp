/// Fig. 2 — Makespan ratios of 15 algorithms evaluated on 16 datasets.
///
/// For every dataset, every scheduler runs on every instance; the reported
/// cell is the scheduler's *maximum* makespan ratio over the dataset
/// (ratio baseline: the best of the 15 schedulers on that instance). The
/// paper draws this as a heatmap with per-instance gradients; we print the
/// max-ratio matrix plus per-scheduler five-number summaries, and write
/// fig02.csv when SAGA_CSV_DIR is set.
///
/// Paper sizes: 1000 instances for random/IoT datasets, 100 for the
/// scientific workflows — scaled by SAGA_SCALE (default 0.25).
///
/// Declaratively driven: the whole scenario is an ExperimentSpec (the same
/// driver behind `saga run`; examples/specs/fig02_tiny.json is the
/// file-based equivalent).

#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/csv.hpp"
#include "bench_common.hpp"
#include "datasets/registry.hpp"
#include "exp/experiment.hpp"

int main() {
  using namespace saga;
  bench::banner("bench_fig02_benchmarking", "Fig. 2 (benchmarking grid, 15 x 16)");
  bench::ScopedTimer timer("fig02 total");

  exp::ExperimentSpec spec;
  spec.name = "Fig. 2: max makespan ratio per dataset";
  spec.mode = exp::Mode::kBenchmark;
  spec.schedulers = {"@benchmark"};
  for (const auto& ds : datasets::all_dataset_specs()) spec.datasets.push_back({ds.name, 0});
  spec.seed = env_seed();

  const auto result = exp::run_experiment(spec, std::cout);

  std::printf("Per-scheduler ratio distributions (all datasets pooled):\n");
  for (const auto& name : spec.resolved_schedulers()) {
    std::vector<double> pooled;
    for (const auto& b : result.benchmarks) {
      const auto& rs = b.for_scheduler(name).ratios;
      pooled.insert(pooled.end(), rs.begin(), rs.end());
    }
    std::printf("  %-12s %s\n", name.c_str(), to_string(summarize(pooled)).c_str());
  }

  const auto csv = analysis::maybe_write_csv(
      "fig02", [&](std::ostream& out) { analysis::write_benchmark_csv(out, result.benchmarks); });
  if (!csv.empty()) std::printf("wrote %s\n", csv.c_str());
  return 0;
}
