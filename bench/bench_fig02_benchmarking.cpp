/// Fig. 2 — Makespan ratios of 15 algorithms evaluated on 16 datasets.
///
/// For every dataset, every scheduler runs on every instance; the reported
/// cell is the scheduler's *maximum* makespan ratio over the dataset
/// (ratio baseline: the best of the 15 schedulers on that instance). The
/// paper draws this as a heatmap with per-instance gradients; we print the
/// max-ratio matrix plus per-scheduler five-number summaries, and write
/// fig02.csv when SAGA_CSV_DIR is set.
///
/// Paper sizes: 1000 instances for random/IoT datasets, 100 for the
/// scientific workflows — scaled by SAGA_SCALE (default 0.25).

#include <cstdio>
#include <vector>

#include "analysis/benchmarking.hpp"
#include "analysis/csv.hpp"
#include "analysis/ratio_matrix.hpp"
#include "bench_common.hpp"
#include "datasets/registry.hpp"
#include "sched/registry.hpp"

int main() {
  using namespace saga;
  bench::banner("bench_fig02_benchmarking", "Fig. 2 (benchmarking grid, 15 x 16)");
  bench::ScopedTimer timer("fig02 total");

  const auto& roster = benchmark_scheduler_names();
  std::vector<analysis::DatasetBenchmark> benchmarks;
  for (const auto& spec : datasets::all_dataset_specs()) {
    const std::size_t count = scaled_count(spec.paper_instance_count, 8);
    bench::ScopedTimer dataset_timer(spec.name + " (" + std::to_string(count) + " instances)");
    const auto dataset = datasets::generate_dataset(spec.name, env_seed(), count);
    benchmarks.push_back(analysis::benchmark_dataset(dataset, roster, env_seed()));
  }

  const auto table =
      analysis::benchmarking_table(benchmarks, roster, "Fig. 2: max makespan ratio per dataset");
  std::printf("\n%s\n", table.render().c_str());

  std::printf("Per-scheduler ratio distributions (all datasets pooled):\n");
  for (const auto& name : roster) {
    std::vector<double> pooled;
    for (const auto& b : benchmarks) {
      const auto& rs = b.for_scheduler(name).ratios;
      pooled.insert(pooled.end(), rs.begin(), rs.end());
    }
    std::printf("  %-12s %s\n", name.c_str(), to_string(summarize(pooled)).c_str());
  }

  const auto csv = analysis::maybe_write_csv(
      "fig02", [&](std::ostream& out) { analysis::write_benchmark_csv(out, benchmarks); });
  if (!csv.empty()) std::printf("wrote %s\n", csv.c_str());
  return 0;
}
