#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/benchmarking.hpp"
#include "analysis/csv.hpp"
#include "analysis/ratio_matrix.hpp"
#include "bench_common.hpp"
#include "core/app_specific.hpp"
#include "core/pairwise.hpp"
#include "datasets/registry.hpp"
#include "datasets/workflows/workflow.hpp"
#include "sched/registry.hpp"

/// \file app_specific_common.hpp
/// Shared driver for the application-specific experiments (paper Section
/// VII, Figs. 10-19): for one scientific workflow and one CCR, produce the
/// combined table whose top row is traditional benchmarking (max makespan
/// ratio over an in-family dataset) and whose remaining rows are the PISA
/// grid over the six schedulers, with structure-preserving perturbations.

namespace saga::bench {

/// Runs one (workflow, CCR) cell and prints its table. Returns the grid
/// for callers that aggregate.
inline pisa::PairwiseResult run_app_specific_cell(const std::string& workflow, double ccr,
                                                  std::uint64_t seed) {
  const auto& roster = app_specific_scheduler_names();

  // Benchmarking row: an in-family dataset re-pinned to the CCR.
  const std::size_t count = scaled_count(100, 8);
  auto dataset = datasets::generate_dataset(workflow, seed, count);
  for (auto& inst : dataset.instances) workflows::set_homogeneous_ccr(inst, ccr);
  const auto benchmark = analysis::benchmark_dataset(dataset, roster, seed);

  // PISA grid with the workflow's restricted PERTURB implementation.
  pisa::PairwiseOptions options;
  options.pisa = pisa::app_specific_options(workflow, ccr, seed);
  options.pisa.restarts = scaled_count(5, 5);
  const auto grid = pisa::pairwise_compare(roster, options, seed);

  char title[128];
  std::snprintf(title, sizeof(title), "%s (CCR = %.1f)", workflow.c_str(), ccr);
  const auto table = analysis::app_specific_table(benchmark, grid, title);
  std::printf("\n%s\n", table.render().c_str());

  const auto csv = analysis::maybe_write_csv(
      workflow + "_ccr" + std::to_string(ccr),
      [&](std::ostream& out) { analysis::write_pairwise_csv(out, grid); });
  if (!csv.empty()) std::printf("wrote %s\n", csv.c_str());
  return grid;
}

/// The paper's five CCRs.
inline const std::vector<double>& paper_ccrs() {
  static const std::vector<double> ccrs = {0.2, 0.5, 1.0, 2.0, 5.0};
  return ccrs;
}

/// Full per-workflow experiment: all five CCRs.
inline void run_app_specific_workflow(const std::string& workflow, std::uint64_t seed) {
  for (double ccr : paper_ccrs()) {
    ScopedTimer timer(workflow + " ccr=" + std::to_string(ccr));
    (void)run_app_specific_cell(workflow, ccr, derive_seed(seed, {static_cast<std::uint64_t>(ccr * 10)}));
  }
}

}  // namespace saga::bench
