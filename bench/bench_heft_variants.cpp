/// HEFT variant ablation — how much do HEFT's two internal knobs matter?
///
/// Zhao & Sakellariou (2003) showed the rank statistic feeding HEFT's
/// priority list can swing makespans substantially; the insertion policy
/// is the other quietly load-bearing choice. We compare:
///   - rank statistic: mean (published) vs best-node vs worst-node
///     execution time;
///   - placement: insertion (published) vs append-only (= MH with a
///     different priority).
/// Two lenses, matching the paper's overall thesis:
///   1. benchmarking: mean/max makespan ratios across three datasets
///      (variants are nearly indistinguishable on average);
///   2. adversarial: PISA between variant pairs (instances exist where
///      each variant beats the other well beyond the benchmarking gap).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/annealer.hpp"
#include "datasets/registry.hpp"
#include "schedulers/heft.hpp"

namespace {

using namespace saga;

struct NamedVariant {
  const char* label;
  HeftScheduler::Variant variant;
};

const NamedVariant kVariants[] = {
    {"mean+insertion (paper)", {HeftScheduler::RankStatistic::kMean, true}},
    {"best+insertion", {HeftScheduler::RankStatistic::kBest, true}},
    {"worst+insertion", {HeftScheduler::RankStatistic::kWorst, true}},
    {"mean+append", {HeftScheduler::RankStatistic::kMean, false}},
};

}  // namespace

int main() {
  bench::banner("bench_heft_variants", "HEFT rank/insertion ablation (cf. Zhao & Sakellariou)");
  bench::ScopedTimer timer("heft variants total");

  // Lens 1: benchmarking across datasets; ratio baseline = best variant
  // per instance.
  for (const char* dataset : {"chains", "montage", "genome"}) {
    const std::size_t count = scaled_count(100, 20);
    std::vector<std::vector<double>> makespans(std::size(kVariants));
    for (std::size_t i = 0; i < count; ++i) {
      const auto inst = datasets::generate_instance(dataset, env_seed(), i);
      std::vector<double> row;
      for (const auto& nv : kVariants) {
        row.push_back(HeftScheduler(nv.variant).schedule(inst).makespan());
      }
      const double best = *std::min_element(row.begin(), row.end());
      for (std::size_t v = 0; v < row.size(); ++v) {
        makespans[v].push_back(best > 0.0 ? row[v] / best : 1.0);
      }
    }
    std::printf("\n=== %s (%zu instances; ratio vs best variant) ===\n", dataset, count);
    for (std::size_t v = 0; v < std::size(kVariants); ++v) {
      std::printf("  %-24s %s\n", kVariants[v].label, to_string(summarize(makespans[v])).c_str());
    }
  }

  // Lens 2: adversarial — PISA between the paper variant and each other.
  std::printf("\n=== PISA between variants (worst ratio found, both directions) ===\n");
  const std::size_t restarts = scaled_count(5, 5);
  const HeftScheduler paper(kVariants[0].variant);
  for (std::size_t v = 1; v < std::size(kVariants); ++v) {
    const HeftScheduler other(kVariants[v].variant);
    pisa::PisaOptions options;
    options.restarts = restarts;
    const double paper_loses =
        pisa::run_pisa(paper, other, options, derive_seed(env_seed(), {v, 0})).best_ratio;
    const double other_loses =
        pisa::run_pisa(other, paper, options, derive_seed(env_seed(), {v, 1})).best_ratio;
    std::printf("  paper vs %-24s paper worse: %6.3f   %s worse: %6.3f\n", kVariants[v].label,
                paper_loses, kVariants[v].label, other_loses);
  }
  return 0;
}
