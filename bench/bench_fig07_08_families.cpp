/// Figs. 7 and 8 — generalising the case study into instance families.
///
/// Fig. 7: fork-join graphs with one expensive initial communication edge,
/// on a homogeneous network — HEFT's makespan distribution sits far above
/// CPoP's. Fig. 8: 9-wide fork-joins with expensive join edges on a network
/// whose fastest node has a weak link to the second-fastest — CPoP's
/// distribution sits far above HEFT's. The paper draws 1000-sample box
/// plots; we print five-number summaries of the same distributions (scaled
/// by SAGA_SCALE) plus the win rate.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "datasets/families.hpp"
#include "sched/registry.hpp"

namespace {

void run_family(const char* title, const char* expectation,
                saga::ProblemInstance (*make)(std::uint64_t), std::size_t samples,
                std::uint64_t seed) {
  using namespace saga;
  const auto heft = make_scheduler("HEFT");
  const auto cpop = make_scheduler("CPoP");
  std::vector<double> heft_ms, cpop_ms;
  std::size_t heft_wins = 0, cpop_wins = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto inst = make(derive_seed(seed, {i}));
    const double h = heft->schedule(inst).makespan();
    const double c = cpop->schedule(inst).makespan();
    heft_ms.push_back(h);
    cpop_ms.push_back(c);
    if (h < c) ++heft_wins;
    if (c < h) ++cpop_wins;
  }
  std::printf("\n=== %s (%zu samples) ===\n", title, samples);
  std::printf("expected shape: %s\n", expectation);
  std::printf("  HEFT makespans: %s\n", to_string(summarize(heft_ms)).c_str());
  std::printf("  CPoP makespans: %s\n", to_string(summarize(cpop_ms)).c_str());
  std::printf("  wins: HEFT %zu, CPoP %zu, ties %zu\n", heft_wins, cpop_wins,
              samples - heft_wins - cpop_wins);
  std::printf("  mean(HEFT)/mean(CPoP) = %.3f\n", mean(heft_ms) / mean(cpop_ms));
}

}  // namespace

int main() {
  using namespace saga;
  bench::banner("bench_fig07_08_families", "Figs. 7-8 (adversarial instance families)");
  bench::ScopedTimer timer("fig07_08 total");
  const std::size_t samples = scaled_count(1000, 100);
  run_family("Fig. 7 family: fork-join, expensive initial edge (homogeneous network)",
             "HEFT markedly worse than CPoP (paper: HEFT's box sits ~2-4x higher)",
             families::heft_adversarial_instance, samples, env_seed());
  run_family("Fig. 8 family: 9-wide fork-join, expensive join edges, weak fast-node link",
             "CPoP markedly worse than HEFT (paper: CPoP's box sits ~2-4x higher)",
             families::cpop_adversarial_instance, samples, env_seed() + 1);
  return 0;
}
