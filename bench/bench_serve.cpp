/// Daemon throughput microbenchmark (plain chrono, no Google Benchmark, so
/// it always builds). Drives the scheduler-as-a-service request path on the
/// tiny Fig. 1 instance two ways:
///   1. in-process: ScheduleService::handle called directly (no sockets),
///      single-threaded and with 4 concurrent callers — the ceiling of the
///      dispatch + codec + warm-arena pipeline, and
///   2. HTTP loopback: a real HttpServer on 127.0.0.1 with 4 workers,
///      4 keep-alive HttpClients hammering POST /v1/schedule — the number a
///      deployment actually sees,
///   3. batching pair: one 60-task dataset request driven unbatched and
///      through the cross-request gatherer on an otherwise identical
///      loopback setup, isolating what coalescing identical requests onto
///      one warm pass buys, and
///   4. overload: an always-shedding AdmissionController, measuring the
///      429 fast path an overloaded daemon serves instead of scheduling.
///
/// Latencies are stamped into the same FixedHistogram ladder the daemon's
/// /metrics endpoint uses, so the p50/p90/p99 here and the telemetry
/// percentiles are directly comparable. Results are written to
/// BENCH_serve.json (or argv[1]); the committed copy at the repo root tracks
/// the req/sec trajectory across PRs. --smoke cuts the request counts for
/// CI-sized runs.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "exp/json.hpp"
#include "graph/problem_instance.hpp"
#include "serve/admission.hpp"
#include "serve/codec.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"

namespace {

using namespace saga;
using exp::Json;
using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

struct PhaseResult {
  std::string name;
  std::size_t threads = 0;
  std::uint64_t requests = 0;
  double req_per_sec = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
};

/// Runs `per_thread` requests on each of `threads` callers, stamping
/// per-request latency; `issue` must be safe to call concurrently.
template <typename Issue>
PhaseResult run_phase(const std::string& name, std::size_t threads, std::uint64_t per_thread,
                      const Issue& issue) {
  FixedHistogram latency = FixedHistogram::latency_us();
  const auto start = Clock::now();
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        const auto begin = Clock::now();
        issue();
        latency.record(micros_since(begin));
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed_sec = micros_since(start) / 1e6;

  PhaseResult r;
  r.name = name;
  r.threads = threads;
  r.requests = latency.count();
  r.req_per_sec = static_cast<double>(r.requests) / elapsed_sec;
  r.p50_us = latency.percentile(0.50);
  r.p90_us = latency.percentile(0.90);
  r.p99_us = latency.percentile(0.99);
  std::fprintf(stderr, "%-22s %zu thread(s)  %8.0f req/sec  p50 %5.0f us  p90 %5.0f us  p99 %5.0f us\n",
               r.name.c_str(), r.threads, r.req_per_sec, r.p50_us, r.p90_us, r.p99_us);
  return r;
}

void emit_phase(std::FILE* out, const PhaseResult& r, bool last) {
  std::fprintf(out,
               "    {\"name\": \"%s\", \"threads\": %zu, \"requests\": %llu, "
               "\"req_per_sec\": %.0f, \"p50_us\": %.0f, \"p90_us\": %.0f, \"p99_us\": %.0f}%s\n",
               r.name.c_str(), r.threads, static_cast<unsigned long long>(r.requests),
               r.req_per_sec, r.p50_us, r.p90_us, r.p99_us, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  // bench_serve [out.json] [--smoke]
  std::string out_path = "BENCH_serve.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      out_path = arg;
    }
  }

  bench::banner("bench_serve", "saga serve request path (dispatch + codec + warm arena)");
  bench::ScopedTimer timer("bench_serve total");

  const ProblemInstance inst = fig1_instance();
  const std::string body = Json::object({{"scheduler", Json::string("HEFT")},
                                         {"instance", serve::instance_to_json(inst)}})
                               .dump();
  const std::uint64_t per_thread = smoke ? 200 : 5000;

  std::vector<PhaseResult> phases;

  {
    serve::ScheduleService service;
    serve::HttpRequest req;
    req.method = "POST";
    req.target = "/v1/schedule";
    req.body = body;
    const auto issue = [&] { (void)service.handle(req); };
    // Warm the per-thread arenas out of the measurement window.
    issue();
    phases.push_back(run_phase("in_process", 1, per_thread, issue));
    phases.push_back(run_phase("in_process", 4, per_thread, issue));
  }

  {
    serve::ScheduleService service;
    serve::HttpServer::Options options;
    options.port = 0;
    options.threads = 4;
    serve::HttpServer server(
        options, [&service](const serve::HttpRequest& req) { return service.handle(req); });
    const std::uint16_t port = server.port();
    // One keep-alive connection per benchmark thread.
    const auto issue = [&] {
      thread_local serve::HttpClient conn(port);
      const serve::HttpResponse resp = conn.request("POST", "/v1/schedule", body);
      if (resp.status != 200) {
        std::fprintf(stderr, "unexpected status %d: %s\n", resp.status, resp.body.c_str());
        std::exit(1);
      }
    };
    phases.push_back(run_phase("http_loopback", 4, per_thread, issue));
  }

  // The batching pair: the same 60-task dataset request (still under the
  // gatherer's max_tasks threshold) driven unbatched and batched, so the
  // two phases differ only in whether identical concurrent requests share
  // one warm scheduling pass. Eight closed-loop clients against max_batch 4
  // keep every gather window full, so passes close on the member cap
  // instead of sleeping out the window.
  const std::string dataset_body = Json::object({{"scheduler", Json::string("HEFT")},
                                                 {"dataset", Json::string("chains?chains=6&length=10")},
                                                 {"seed", Json::number(1)}})
                                       .dump();
  const std::uint64_t per_thread_batch = smoke ? 100 : 2000;

  const auto loopback_phase = [&](const std::string& name,
                                  const serve::ScheduleService::Options& service_options) {
    serve::ScheduleService service(service_options);
    serve::HttpServer::Options options;
    options.port = 0;
    options.threads = 8;
    serve::HttpServer server(
        options, [&service](const serve::HttpRequest& req) { return service.handle(req); });
    const std::uint16_t port = server.port();
    const auto issue = [&] {
      thread_local serve::HttpClient conn(port);
      const serve::HttpResponse resp = conn.request("POST", "/v1/schedule", dataset_body);
      if (resp.status != 200) {
        std::fprintf(stderr, "unexpected status %d: %s\n", resp.status, resp.body.c_str());
        std::exit(1);
      }
    };
    phases.push_back(run_phase(name, 8, per_thread_batch, issue));
  };

  loopback_phase("http_unbatched", serve::ScheduleService::Options{});
  {
    serve::ScheduleService::Options service_options;
    service_options.batch.window_us = 300;
    service_options.batch.max_batch = 4;
    loopback_phase("batch", service_options);
  }

  {
    // overload: every request is shed — a synthetic gauge sampler reports a
    // queue permanently over max-queue — so this measures the 429 fast path
    // (admission decision + canned body + Retry-After derivation) that an
    // overloaded daemon serves instead of scheduling work.
    serve::AdmissionController::Limits limits;
    limits.max_queue = 1;
    serve::AdmissionController admission(limits);
    admission.record_service_us(50.0);  // give Retry-After a p50 to derive from
    serve::ScheduleService::Options service_options;
    service_options.admission = &admission;
    serve::ScheduleService service(service_options);
    service.set_gauge_sampler([] {
      serve::Telemetry::Gauges gauges;
      gauges.queue_depth = 64;
      return gauges;
    });
    serve::HttpRequest req;
    req.method = "POST";
    req.target = "/v1/schedule";
    req.body = body;
    const auto issue = [&] {
      const serve::HttpResponse resp = service.handle(req);
      if (resp.status != 429) {
        std::fprintf(stderr, "expected 429, got %d: %s\n", resp.status, resp.body.c_str());
        std::exit(1);
      }
    };
    phases.push_back(run_phase("overload", 4, per_thread, issue));
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"serve\",\n");
  std::fprintf(out, "  \"instance\": {\"tasks\": %zu, \"nodes\": %zu, \"kind\": \"fig1\"},\n",
               inst.graph.task_count(), inst.network.node_count());
  std::fprintf(out, "  \"scheduler\": \"HEFT\",\n");
  std::fprintf(out, "  \"phases\": [\n");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    emit_phase(out, phases[i], i + 1 == phases.size());
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
