/// PISA convergence curves — how Algorithm 1's best-found ratio evolves
/// over iterations (context for the paper's Section VI parameter choices:
/// Tmax=10, Tmin=0.1, alpha=0.99 stop the walk after ~459 iterations; this
/// bench shows whether the search has saturated by then).
///
/// For three scheduler pairs, prints best-ratio-so-far at checkpoints for
/// both acceptance rules, averaged over restarts.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/annealer.hpp"
#include "core/constraints.hpp"
#include "sched/registry.hpp"

namespace {

using namespace saga;

/// Mean best-ratio trajectory across restarts, sampled at checkpoints.
std::vector<double> mean_trajectory(const std::string& target_name,
                                    const std::string& baseline_name,
                                    pisa::AnnealingParams params,
                                    const std::vector<std::size_t>& checkpoints,
                                    std::size_t restarts, std::uint64_t seed) {
  params.record_trace = true;
  params.max_iterations = checkpoints.back() + 1;
  params.t_min = 1e-12;  // let iteration count bind so late checkpoints exist
  params.alpha = 0.995;

  const auto target = make_scheduler(target_name, derive_seed(seed, {1}));
  const auto baseline = make_scheduler(baseline_name, derive_seed(seed, {2}));
  const auto reqs = pisa::combine(target->requirements(), baseline->requirements());
  pisa::PerturbationConfig config;
  pisa::apply_requirements(config, reqs);

  std::vector<double> totals(checkpoints.size(), 0.0);
  for (std::size_t run = 0; run < restarts; ++run) {
    auto initial = pisa::random_chain_instance(derive_seed(seed, {3, run}));
    pisa::normalize_instance(initial, reqs);
    const auto result =
        pisa::anneal(*target, *baseline, initial, config, params, derive_seed(seed, {4, run}));
    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
      const std::size_t at = std::min(checkpoints[c], result.trace.size() - 1);
      totals[c] += result.trace[at].best_ratio;
    }
  }
  for (double& t : totals) t /= static_cast<double>(restarts);
  return totals;
}

}  // namespace

int main() {
  bench::banner("bench_pisa_convergence", "Section VI annealing-schedule context");
  bench::ScopedTimer timer("convergence total");
  const std::vector<std::size_t> checkpoints = {9, 49, 99, 199, 459, 999, 1999};
  const std::size_t restarts = saga::scaled_count(20, 10);

  std::printf("\nmean best-ratio-so-far at iteration checkpoints (%zu restarts):\n", restarts);
  std::printf("%-24s %-10s", "pair", "rule");
  for (std::size_t c : checkpoints) std::printf(" %7zu", c + 1);
  std::printf("\n");
  for (const auto& [target, baseline] :
       std::vector<std::pair<const char*, const char*>>{
           {"HEFT", "FastestNode"}, {"HEFT", "CPoP"}, {"MinMin", "MaxMin"}}) {
    for (const auto rule : {saga::pisa::AnnealingParams::AcceptanceRule::kPaper,
                            saga::pisa::AnnealingParams::AcceptanceRule::kMetropolis}) {
      saga::pisa::AnnealingParams params;
      params.acceptance = rule;
      const auto curve = mean_trajectory(target, baseline, params, checkpoints, restarts,
                                         saga::env_seed());
      std::printf("%-24s %-10s",
                  (std::string(target) + " vs " + baseline).c_str(),
                  rule == saga::pisa::AnnealingParams::AcceptanceRule::kPaper ? "paper"
                                                                              : "metropolis");
      for (double v : curve) std::printf(" %7.3f", v);
      std::printf("\n");
    }
  }
  std::printf("\n(the paper's schedule stops at iteration ~459; saturation before that "
              "column means the budget suffices)\n");
  return 0;
}
