/// Fig. 3 — Comparison of scheduling algorithms on slightly modified
/// networks.
///
/// Replays the paper's illustrative five-task fork-join instance on the
/// original homogeneous network and on the modified network with node 3's
/// links weakened to 0.5, printing each scheduler's Gantt chart. The
/// paper's drawn schedules (HEFT 16 vs CPoP 15 on the modified network)
/// hinge on tie-breaking among the three identical middle tasks; with this
/// implementation's smallest-id tie-breaks both algorithms reach 14 on both
/// networks, so we additionally sweep the link weakening further (0.5 →
/// 0.05) to expose where the schedules genuinely diverge.

#include <cstdio>

#include "analysis/gantt.hpp"
#include "bench_common.hpp"
#include "datasets/families.hpp"
#include "sched/registry.hpp"

int main() {
  using namespace saga;
  bench::banner("bench_fig03_network_sensitivity", "Fig. 3 (HEFT/CPoP network sensitivity)");

  for (bool weakened : {false, true}) {
    const auto inst = families::fig3_instance(weakened);
    std::printf("\n--- %s network ---\n", weakened ? "modified (s(*,3)=0.5)" : "original");
    for (const char* name : {"HEFT", "CPoP"}) {
      const auto schedule = make_scheduler(name)->schedule(inst);
      std::printf("%s:\n%s", name, analysis::render_gantt(inst, schedule).c_str());
    }
  }

  std::printf("\n--- sweep: weakening node 3's links further ---\n");
  std::printf("%-10s %10s %10s %10s\n", "s(*,3)", "HEFT", "CPoP", "HEFT/CPoP");
  for (double strength : {1.0, 0.5, 0.25, 0.1, 0.05}) {
    auto inst = families::fig3_instance(false);
    inst.network.set_strength(0, 2, strength);
    inst.network.set_strength(1, 2, strength);
    const double heft = make_scheduler("HEFT")->schedule(inst).makespan();
    const double cpop = make_scheduler("CPoP")->schedule(inst).makespan();
    std::printf("%-10.2f %10.3f %10.3f %10.3f\n", strength, heft, cpop, heft / cpop);
  }
  return 0;
}
