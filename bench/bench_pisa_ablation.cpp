/// PISA ablations — the design choices DESIGN.md calls out.
///
/// Not a paper figure; quantifies how much each PISA ingredient matters,
/// using HEFT-vs-FastestNode (the paper's marquee comparison) and
/// HEFT-vs-CPoP (a near-peer pair) as probes:
///   1. acceptance rule: the paper's exp(-(M'/M_best)/T) vs textbook
///      Metropolis;
///   2. perturbation mix: all six operators vs weights-only (no structural
///      Add/Remove Dependency);
///   3. restart budget: 5x1000 (paper) vs 1x5000 vs 10x500 at equal
///      schedule-evaluation cost;
///   4. initial instance: random chain vs independent tasks (no edges).

#include <cstdio>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/annealer.hpp"
#include "sched/registry.hpp"

namespace {

using namespace saga;

double probe(const char* target, const char* baseline, const pisa::PisaOptions& options,
             std::uint64_t seed) {
  return pisa::run_pisa(*make_scheduler(target), *make_scheduler(baseline), options, seed)
      .best_ratio;
}

void report(const char* label, const pisa::PisaOptions& options, std::uint64_t seed) {
  const double vs_fastest = probe("HEFT", "FastestNode", options, seed);
  const double vs_cpop = probe("HEFT", "CPoP", options, derive_seed(seed, {1}));
  std::printf("  %-38s HEFT/FastestNode=%7.3f  HEFT/CPoP=%7.3f\n", label, vs_fastest, vs_cpop);
}

}  // namespace

int main() {
  bench::banner("bench_pisa_ablation", "DESIGN.md ablations (not a paper figure)");
  bench::ScopedTimer timer("ablation total");
  const std::uint64_t seed = env_seed();

  std::printf("\n1. acceptance rule\n");
  {
    pisa::PisaOptions paper;
    paper.restarts = scaled_count(5, 3);
    report("paper rule exp(-(M'/Mbest)/T)", paper, seed);
    pisa::PisaOptions metropolis = paper;
    metropolis.params.acceptance = pisa::AnnealingParams::AcceptanceRule::kMetropolis;
    report("metropolis rule", metropolis, seed);
  }

  std::printf("\n2. perturbation mix\n");
  {
    pisa::PisaOptions all_ops;
    all_ops.restarts = scaled_count(5, 3);
    report("all six operators (paper)", all_ops, seed);
    pisa::PisaOptions weights_only = all_ops;
    weights_only.config.set_enabled(pisa::PerturbationOp::kAddDependency, false);
    weights_only.config.set_enabled(pisa::PerturbationOp::kRemoveDependency, false);
    report("weights only (structure frozen)", weights_only, seed);
  }

  std::printf("\n3. restart budget (equal evaluation cost)\n");
  {
    // Temperature floor also caps iterations; lift it so max_iterations binds.
    for (const auto& [restarts, iters, label] :
         {std::tuple<std::size_t, std::size_t, const char*>{5, 1000, "5 x 1000 (paper)"},
          {1, 5000, "1 x 5000"},
          {10, 500, "10 x 500"}}) {
      pisa::PisaOptions options;
      options.restarts = restarts;
      options.params.max_iterations = iters;
      options.params.t_min = 1e-12;
      options.params.alpha = 0.999;
      report(label, options, seed);
    }
  }

  std::printf("\n4. initial instance family\n");
  {
    pisa::PisaOptions chain;
    chain.restarts = scaled_count(5, 3);
    report("random chain (paper)", chain, seed);
    pisa::PisaOptions independent = chain;
    independent.make_initial = [](std::uint64_t s) {
      Rng rng(s);
      ProblemInstance inst;
      const auto tasks = rng.uniform_int(3, 5);
      for (std::int64_t i = 0; i < tasks; ++i) inst.graph.add_task(rng.uniform());
      inst.network = Network(static_cast<std::size_t>(rng.uniform_int(3, 5)));
      for (NodeId v = 0; v < inst.network.node_count(); ++v) {
        inst.network.set_speed(v, std::max(rng.uniform(), 1e-3));
      }
      return inst;
    };
    report("independent tasks (no edges)", independent, seed);
  }
  return 0;
}
