/// Fig. 4 — PISA pairwise heatmap: worst-case makespan ratio found for
/// every ordered pair of the 15 polynomial-time schedulers.
///
/// Paper protocol (Section VI): per pair, 5 simulated-annealing restarts
/// from random chain instances (3-5 tasks, 3-5 nodes, weights in [0,1]);
/// Tmax=10, Tmin=0.1, alpha=0.99, Imax=1000; the six PERTURB operators; per-
/// scheduler homogeneity constraints for ETF/FCP/FLB (node speeds) and
/// BIL/GDL/FCP/FLB (link strengths). Restarts scale with SAGA_SCALE; the
/// annealing schedule itself always follows the paper.
///
/// Expected shape (paper Section VI-A): every scheduler has a cell >= 2
/// somewhere; most have one >= 5; HEFT loses to FastestNode by > 4x; cells
/// against OLB/WBA frequently exceed 1000.
///
/// Declaratively driven: the whole scenario is an ExperimentSpec (the same
/// driver behind `saga run`; examples/specs/fig04_small.json is the
/// file-based equivalent).

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "analysis/csv.hpp"
#include "bench_common.hpp"
#include "exp/experiment.hpp"

int main() {
  using namespace saga;
  bench::banner("bench_fig04_pisa_pairwise", "Fig. 4 (PISA pairwise grid, 15 x 15)");
  bench::ScopedTimer timer("fig04 total");

  exp::ExperimentSpec spec;
  spec.name = "Fig. 4: worst-case ratio of column scheduler vs row baseline";
  spec.mode = exp::Mode::kPisaPairwise;
  spec.schedulers = {"@benchmark"};
  // The paper uses 5 restarts; annealing is cheap enough in C++ that we
  // default to 10 (extra restarts only strengthen the discovered lower
  // bounds — 10 reproduces the paper's 15/15 and 10/15 headline counts).
  spec.pisa.restarts = std::max<std::size_t>(scaled_count(5, 5), 10);
  spec.seed = env_seed();

  const auto result = exp::run_experiment(spec, std::cout);
  const auto& grid = result.pairwise;

  // The paper's headline statistics.
  const auto worst = grid.worst_per_target();
  std::size_t at_least_2 = 0, at_least_5 = 0;
  for (double w : worst) {
    if (w >= 2.0) ++at_least_2;
    if (w >= 5.0) ++at_least_5;
  }
  std::printf("schedulers with a >=2x adversarial instance: %zu / %zu (paper: 15/15)\n",
              at_least_2, worst.size());
  std::printf("schedulers with a >=5x adversarial instance: %zu / %zu (paper: 10/15)\n",
              at_least_5, worst.size());

  // HEFT vs FastestNode, the paper's marquee cell (4.34 in the paper).
  const auto& names = grid.scheduler_names;
  std::size_t heft = 0, fastest = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "HEFT") heft = i;
    if (names[i] == "FastestNode") fastest = i;
  }
  std::printf("HEFT worst case vs FastestNode: %.2f (paper: 4.34)\n",
              grid.cell(fastest, heft));

  const auto csv = analysis::maybe_write_csv(
      "fig04", [&](std::ostream& out) { analysis::write_pairwise_csv(out, grid); });
  if (!csv.empty()) std::printf("wrote %s\n", csv.c_str());
  return 0;
}
