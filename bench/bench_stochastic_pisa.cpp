/// Stochastic-objective PISA — composing two of the paper's future-work
/// directions: adversarial search where the objective is the *expected*
/// makespan ratio under weight uncertainty, estimated by Monte Carlo.
///
/// For HEFT vs FastestNode: each candidate instance is lifted to a
/// stochastic instance (clipped-Gaussian noise, cv = 0.3 on every weight);
/// both schedulers plan on the mean instance and their plans are
/// re-executed on K shared realisations; the objective is the mean of the
/// per-realisation makespan ratios. This finds instances that are bad for
/// HEFT *robustly* — not just at one lucky weight setting.
///
/// Expected shape: the expected-ratio witness scores lower than the
/// deterministic PISA witness evaluated deterministically (noise blunts
/// knife-edge constructions), but remains well above 1 — HEFT's
/// over-parallelisation losses survive uncertainty.

#include <cstdio>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/annealer.hpp"
#include "sched/registry.hpp"
#include "stochastic/robustness.hpp"

namespace {

using namespace saga;

double expected_ratio(const Scheduler& target, const Scheduler& baseline,
                      const ProblemInstance& inst, std::size_t samples, std::uint64_t seed) {
  stochastic::StochasticInstance stoch(inst);
  stoch.apply_relative_noise(0.3);
  const ProblemInstance mean = stoch.mean_instance();
  const Schedule target_plan = target.schedule(mean);
  const Schedule baseline_plan = baseline.schedule(mean);
  double total = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const ProblemInstance realization = stoch.realize(derive_seed(seed, {i}));
    const double t = stochastic::reexecute(target_plan, realization).makespan();
    const double b = stochastic::reexecute(baseline_plan, realization).makespan();
    total += b > 0.0 ? t / b : 1.0;
  }
  return total / static_cast<double>(samples);
}

}  // namespace

int main() {
  bench::banner("bench_stochastic_pisa",
                "PISA with an expected-makespan-ratio objective (future-work composition)");
  bench::ScopedTimer timer("stochastic pisa total");

  const auto heft = make_scheduler("HEFT");
  const auto fastest = make_scheduler("FastestNode");
  const std::size_t samples = 16;  // per objective evaluation
  const std::size_t restarts = saga::scaled_count(5, 3);

  const auto objective = [&](const ProblemInstance& inst) {
    return expected_ratio(*heft, *fastest, inst, samples, 0xdecade);
  };

  double stochastic_best = 0.0;
  ProblemInstance stochastic_witness;
  for (std::size_t run = 0; run < restarts; ++run) {
    const auto initial = pisa::random_chain_instance(derive_seed(env_seed(), {1, run}));
    pisa::AnnealingParams params;
    params.max_iterations = 300;  // Monte-Carlo objectives are ~16x pricier
    const auto result = pisa::anneal_objective(
        objective, initial, pisa::PerturbationConfig::generic(), params,
        derive_seed(env_seed(), {2, run}));
    if (result.best_ratio > stochastic_best) {
      stochastic_best = result.best_ratio;
      stochastic_witness = result.best_instance;
    }
  }

  // Reference: the deterministic PISA witness and how it degrades under
  // the same noise.
  pisa::PisaOptions det_options;
  det_options.restarts = restarts;
  const auto det = pisa::run_pisa(*heft, *fastest, det_options, env_seed());
  const double det_under_noise = expected_ratio(*heft, *fastest, det.best_instance, 64, 0xdecade);
  const double stoch_deterministic = pisa::makespan_ratio(*heft, *fastest, stochastic_witness);

  std::printf("\nHEFT vs FastestNode, weight noise cv=0.3, %zu-sample objectives:\n", samples);
  std::printf("  deterministic PISA witness: ratio %.3f, expected ratio under noise %.3f\n",
              det.best_ratio, det_under_noise);
  std::printf("  stochastic   PISA witness: expected ratio %.3f, deterministic ratio %.3f\n",
              stochastic_best, stoch_deterministic);
  std::printf("(a robust witness keeps its expected ratio close to its deterministic one;\n"
              " knife-edge witnesses collapse under noise)\n");
  return 0;
}
