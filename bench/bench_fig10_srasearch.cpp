/// Fig. 10 (= appendix Fig. 13) — benchmarking + application-specific PISA
/// for the srasearch workflow at CCR in {0.2, 0.5, 1, 2, 5}.
///
/// Expected shape (paper): benchmarking rows are bland (everything near 1
/// except FastestNode around 2.5-2.7); PISA rows reveal large gaps —
/// WBA vs FastestNode can exceed 1000x at low CCR, MinMin loses ~2x to
/// CPoP, and even the "good" algorithms (HEFT, MaxMin) lose 10-20% to each
/// other in both directions.

#include "app_specific_common.hpp"

int main() {
  using namespace saga;
  bench::banner("bench_fig10_srasearch", "Fig. 10 (srasearch, 5 CCRs)");
  bench::ScopedTimer timer("fig10 total");
  bench::run_app_specific_workflow("srasearch", env_seed());
  return 0;
}
