/// Figs. 5 and 6 — the HEFT-vs-CPoP case study.
///
/// The paper shows two concrete PISA-discovered instances: one where HEFT
/// is ~1.55x worse than CPoP (Fig. 5) and one where CPoP is ~2.83x worse
/// than HEFT (Fig. 6). The figures' exact weights are not fully legible
/// from the text, so this bench re-runs the discovery: PISA for each
/// direction, printing the witness instance (in the saga-instance format,
/// ready to publish/replay) and both schedulers' Gantt charts, mirroring
/// the figures' layout.
///
/// Expected shape: both directions find ratios comfortably above 1.3;
/// typically well above the paper's 1.55 / 2.83 because the search is not
/// restricted further.

#include <cstdio>

#include "analysis/gantt.hpp"
#include "bench_common.hpp"
#include "core/annealer.hpp"
#include "graph/serialization.hpp"
#include "sched/registry.hpp"

namespace {

void run_direction(const char* target_name, const char* baseline_name, double paper_ratio,
                   std::uint64_t seed) {
  using namespace saga;
  const auto target = make_scheduler(target_name);
  const auto baseline = make_scheduler(baseline_name);

  pisa::PisaOptions options;
  options.restarts = scaled_count(5, 5);
  const auto result = pisa::run_pisa(*target, *baseline, options, seed);

  std::printf("\n=== worst case for %s against %s ===\n", target_name, baseline_name);
  std::printf("found ratio: %.3f (paper's example: %.2f)\n", result.best_ratio, paper_ratio);
  std::printf("witness instance:\n%s", instance_to_string(result.best_instance).c_str());
  for (const auto* s : {target_name, baseline_name}) {
    const auto schedule = make_scheduler(s)->schedule(result.best_instance);
    std::printf("%s schedule:\n%s", s, analysis::render_gantt(result.best_instance, schedule).c_str());
  }
}

}  // namespace

int main() {
  saga::bench::banner("bench_fig05_06_case_study", "Figs. 5-6 (HEFT vs CPoP witnesses)");
  saga::bench::ScopedTimer timer("fig05_06 total");
  run_direction("HEFT", "CPoP", 1.55, saga::env_seed());
  run_direction("CPoP", "HEFT", 2.83, saga::env_seed() + 1);
  return 0;
}
