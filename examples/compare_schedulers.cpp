/// compare_schedulers — the traditional benchmarking workflow (Section V)
/// as a command-line tool.
///
/// Usage: compare_schedulers [dataset] [instances] [seed]
///   dataset    one of the 16 Table II datasets (default: chains)
///   instances  number of instances to generate (default: 50)
///   seed       master seed (default: 42)
///
/// Runs all 15 polynomial-time schedulers on the dataset and prints each
/// scheduler's makespan-ratio distribution plus the Fig. 2-style max-ratio
/// row for the dataset.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/benchmarking.hpp"
#include "analysis/ratio_matrix.hpp"
#include "common/stats.hpp"
#include "datasets/registry.hpp"
#include "sched/registry.hpp"

int main(int argc, char** argv) {
  using namespace saga;
  const std::string dataset_name = argc > 1 ? argv[1] : "chains";
  const std::size_t instances = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  std::printf("dataset=%s instances=%zu seed=%llu\n", dataset_name.c_str(), instances,
              static_cast<unsigned long long>(seed));
  std::printf("available datasets:");
  for (const auto& spec : datasets::all_dataset_specs()) std::printf(" %s", spec.name.c_str());
  std::printf("\n\n");

  const auto dataset = datasets::generate_dataset(dataset_name, seed, instances);
  const auto benchmark =
      analysis::benchmark_dataset(dataset, benchmark_scheduler_names(), seed);

  std::printf("%-12s %s\n", "scheduler", "makespan ratio distribution");
  for (const auto& sb : benchmark.per_scheduler) {
    std::printf("%-12s %s\n", sb.scheduler.c_str(), to_string(sb.summary).c_str());
  }

  const auto table = analysis::benchmarking_table({benchmark}, benchmark_scheduler_names(),
                                                  "max makespan ratio (Fig. 2 row)");
  std::printf("\n%s", table.render().c_str());
  return 0;
}
