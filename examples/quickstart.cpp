/// quickstart — the paper's Fig. 1 worked example, end to end.
///
/// Builds the 4-task diamond task graph and 3-node network from Fig. 1,
/// runs a handful of schedulers on it, validates every schedule, and prints
/// ASCII Gantt charts. This is the smallest complete tour of the public
/// API: TaskGraph/Network construction, Scheduler, Schedule validation,
/// and the Gantt renderer.

#include <cstdlib>
#include <iostream>

#include "analysis/gantt.hpp"
#include "graph/problem_instance.hpp"
#include "graph/serialization.hpp"
#include "sched/registry.hpp"

int main() {
  const saga::ProblemInstance inst = saga::fig1_instance();

  std::cout << "Problem instance (paper Fig. 1):\n"
            << saga::instance_to_string(inst) << "\n";

  for (const char* name : {"HEFT", "CPoP", "MinMin", "FastestNode", "BruteForce"}) {
    const auto scheduler = saga::make_scheduler(name);
    const saga::Schedule schedule = scheduler->schedule(inst);
    const auto validation = schedule.validate(inst);
    if (!validation.ok) {
      std::cerr << name << " produced an invalid schedule: " << validation.message << "\n";
      return EXIT_FAILURE;
    }
    std::cout << "--- " << name << " ---\n"
              << saga::analysis::render_gantt(inst, schedule) << "\n";
  }
  return EXIT_SUCCESS;
}
