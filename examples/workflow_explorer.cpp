/// workflow_explorer — inspect the structure of the scientific-workflow
/// and IoT task graphs (the paper's Fig. 9 shows srasearch and blast).
///
/// Usage: workflow_explorer [dataset] [seed]
///
/// Prints the generated task graph as an indented dependency listing plus
/// summary statistics (task count, edges, critical-path length, CCR on a
/// unit network), and a HEFT Gantt chart on the instance's own network.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/gantt.hpp"
#include "datasets/registry.hpp"
#include "sched/ranks.hpp"
#include "sched/registry.hpp"

int main(int argc, char** argv) {
  using namespace saga;
  const std::string dataset = argc > 1 ? argv[1] : "srasearch";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  const auto inst = datasets::generate_instance(dataset, seed, 0);
  const auto& g = inst.graph;

  std::printf("%s instance (seed %llu): %zu tasks, %zu dependencies, %zu-node network\n\n",
              dataset.c_str(), static_cast<unsigned long long>(seed), g.task_count(),
              g.dependency_count(), inst.network.node_count());

  std::printf("dependency listing (task <- predecessors):\n");
  for (TaskId t : g.topological_order()) {
    std::printf("  %-28s c=%8.2f  <-", g.name(t).c_str(), g.cost(t));
    for (TaskId p : g.predecessors(t)) {
      std::printf(" %s(%.1f)", g.name(p).c_str(), g.dependency_cost(p, t));
    }
    std::printf("\n");
  }

  const auto cp = critical_path(inst);
  std::printf("\ncritical path (%zu tasks):", cp.size());
  for (TaskId t : cp) std::printf(" %s", g.name(t).c_str());
  std::printf("\nCCR (this instance): %.3f\n\n", inst.ccr());

  const auto schedule = make_scheduler("HEFT")->schedule(inst);
  std::printf("HEFT schedule:\n%s", analysis::render_gantt(inst, schedule).c_str());
  return 0;
}
