/// publish_atlas — build a shareable atlas of adversarial instances (the
/// paper's conclusion: "we also plan to develop a framework for publishing
/// the problem instances identified by PISA so that other researchers can
/// use them to evaluate their own algorithms").
///
/// Usage: publish_atlas [output_dir] [restarts] [seed]
///
/// Runs PISA for every ordered pair of a six-scheduler roster, collects the
/// witnesses into an analysis::Atlas, saves it to disk, reloads it, and
/// re-verifies every recorded ratio — the full publish/replay loop. The
/// produced directory can be checked independently with
/// `saga atlas-verify <dir>`.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/atlas.hpp"
#include "core/annealer.hpp"
#include "sched/registry.hpp"

int main(int argc, char** argv) {
  using namespace saga;
  const std::string out_dir = argc > 1 ? argv[1] : "pisa_atlas";
  const std::size_t restarts = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  analysis::Atlas atlas;
  const auto& roster = app_specific_scheduler_names();
  std::uint64_t pair_index = 0;
  for (const auto& target_name : roster) {
    for (const auto& baseline_name : roster) {
      if (target_name == baseline_name) continue;
      const std::uint64_t pair_seed = derive_seed(seed, {pair_index});
      const auto target = make_scheduler(target_name, pair_seed);
      const auto baseline = make_scheduler(baseline_name, pair_seed);
      pisa::PisaOptions options;
      options.restarts = restarts;
      const auto result =
          pisa::run_pisa(*target, *baseline, options, derive_seed(pair_seed, {3}));
      atlas.add({target_name, baseline_name, result.best_ratio, pair_seed,
                 result.best_instance});
      std::printf("%-12s vs %-12s worst ratio %8.3f\n", target_name.c_str(),
                  baseline_name.c_str(), result.best_ratio);
      ++pair_index;
    }
  }

  const auto files = atlas.save(out_dir);
  std::printf("\nwrote %zu instances to %s\n", files.size(), out_dir.c_str());

  // Reload from disk and re-verify: every entry records the seed its
  // schedulers were constructed with, so the whole atlas must reproduce
  // bit-exactly, including the randomized WBA pairs.
  const auto reloaded = analysis::Atlas::load(out_dir);
  const auto mismatches = reloaded.verify(1e-9);
  if (!mismatches.empty()) {
    for (const auto& m : mismatches) std::fprintf(stderr, "MISMATCH: %s\n", m.c_str());
    return EXIT_FAILURE;
  }
  std::printf("reloaded %zu entries; all re-verified exactly\n", reloaded.size());
  return EXIT_SUCCESS;
}
