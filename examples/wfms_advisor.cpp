/// wfms_advisor — scheduler-portfolio selection for a Workflow Management
/// System (the paper's Section VII discussion / future-work idea).
///
/// "It may be reasonable for a WFMS to run a set of scheduling algorithms
/// that best covers the different types of client scientific workflows ...
/// a WFMS designer might run PISA and choose the three algorithms with the
/// combined minimum maximum makespan ratio."
///
/// Usage: wfms_advisor [portfolio_size] [instances_per_workflow] [seed]
///
/// For every (workflow, CCR) cell and every candidate scheduler, measures
/// the scheduler's worst makespan ratio over an in-family dataset, then
/// exhaustively picks the portfolio (set of k schedulers, where the WFMS
/// runs all k and keeps the best schedule) minimising the worst-case ratio
/// across all cells.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "analysis/benchmarking.hpp"
#include "common/rng.hpp"
#include "datasets/registry.hpp"
#include "datasets/workflows/workflow.hpp"
#include "sched/registry.hpp"

int main(int argc, char** argv) {
  using namespace saga;
  const std::size_t portfolio_size = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  const std::size_t instances = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  const auto& roster = app_specific_scheduler_names();
  const auto& workflows_list = datasets::workflow_dataset_names();
  const std::vector<double> ccrs = {0.2, 1.0, 5.0};

  // makespans[cell][instance][scheduler].
  struct Cell {
    std::string label;
    std::vector<std::vector<double>> makespans;
  };
  std::vector<Cell> cells;
  std::printf("measuring %zu schedulers on %zu workflows x %zu CCRs x %zu instances...\n",
              roster.size(), workflows_list.size(), ccrs.size(), instances);
  for (const auto& workflow : workflows_list) {
    for (double ccr : ccrs) {
      Cell cell;
      cell.label = workflow + " (CCR=" + std::to_string(ccr).substr(0, 3) + ")";
      for (std::size_t i = 0; i < instances; ++i) {
        auto inst = datasets::generate_instance(workflow, seed, i);
        workflows::set_homogeneous_ccr(inst, ccr);
        std::vector<double> row;
        for (std::size_t s = 0; s < roster.size(); ++s) {
          const auto scheduler = make_scheduler(roster[s], derive_seed(seed, {s, i}));
          row.push_back(scheduler->schedule(inst).makespan());
        }
        cell.makespans.push_back(std::move(row));
      }
      cells.push_back(std::move(cell));
    }
  }

  // Worst-case ratio of a portfolio: per instance, the portfolio achieves
  // the min makespan of its members; ratio is against the best of ALL
  // schedulers; we take the max over instances and cells.
  const auto portfolio_score = [&](const std::vector<std::size_t>& members) {
    double worst = 1.0;
    for (const auto& cell : cells) {
      for (const auto& row : cell.makespans) {
        double best_all = std::numeric_limits<double>::infinity();
        for (double m : row) best_all = std::min(best_all, m);
        double best_portfolio = std::numeric_limits<double>::infinity();
        for (std::size_t s : members) best_portfolio = std::min(best_portfolio, row[s]);
        if (best_all > 0.0) worst = std::max(worst, best_portfolio / best_all);
      }
    }
    return worst;
  };

  // Exhaustive search over all portfolios of the requested size.
  std::vector<std::size_t> best_members;
  double best_score = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> indices(roster.size());
  for (std::size_t i = 0; i < roster.size(); ++i) indices[i] = i;
  std::vector<bool> mask(roster.size(), false);
  std::fill(mask.end() - static_cast<std::ptrdiff_t>(portfolio_size), mask.end(), true);
  do {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < roster.size(); ++i) {
      if (mask[i]) members.push_back(i);
    }
    const double score = portfolio_score(members);
    if (score < best_score) {
      best_score = score;
      best_members = members;
    }
  } while (std::next_permutation(mask.begin(), mask.end()));

  std::printf("\nsingle-scheduler worst-case ratios:\n");
  for (std::size_t s = 0; s < roster.size(); ++s) {
    std::printf("  %-12s %.3f\n", roster[s].c_str(), portfolio_score({s}));
  }

  std::printf("\nbest portfolio of %zu (WFMS runs all, keeps the best schedule):\n ",
              portfolio_size);
  for (std::size_t s : best_members) std::printf(" %s", roster[s].c_str());
  std::printf("\n  worst-case ratio across all workflow/CCR cells: %.3f\n", best_score);
  return 0;
}
