/// adversarial_search — run PISA on one scheduler pair (Section VI) and
/// print the discovered worst-case instance, ready to save and replay.
///
/// Usage: adversarial_search [target] [baseline] [restarts] [seed]
///   target    scheduler whose worst case we hunt (default: HEFT)
///   baseline  scheduler it is compared against (default: FastestNode)
///
/// Prints the best makespan ratio found, the witness instance in the
/// saga-instance interchange format, and both schedulers' Gantt charts —
/// the same artefacts as the paper's Figs. 5-6 case study.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/gantt.hpp"
#include "core/annealer.hpp"
#include "graph/serialization.hpp"
#include "sched/registry.hpp"

int main(int argc, char** argv) {
  using namespace saga;
  const std::string target_name = argc > 1 ? argv[1] : "HEFT";
  const std::string baseline_name = argc > 2 ? argv[2] : "FastestNode";
  const std::size_t restarts = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 10;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42;

  const auto target = make_scheduler(target_name);
  const auto baseline = make_scheduler(baseline_name);

  std::printf("searching for instances where %s maximally underperforms %s\n",
              target_name.c_str(), baseline_name.c_str());
  std::printf("(%zu simulated-annealing restarts, Tmax=10, Tmin=0.1, alpha=0.99)\n\n",
              restarts);

  pisa::PisaOptions options;
  options.restarts = restarts;
  const auto result = pisa::run_pisa(*target, *baseline, options, seed);

  std::printf("best makespan ratio m(%s)/m(%s) = %.4f\n", target_name.c_str(),
              baseline_name.c_str(), result.best_ratio);
  std::printf("(initial instance scored %.4f; %zu best-updates, %zu downhill accepts)\n\n",
              result.initial_ratio, result.improved, result.accepted);

  std::printf("witness instance (save this text; load_instance replays it):\n%s\n",
              instance_to_string(result.best_instance).c_str());
  for (const auto& name : {target_name, baseline_name}) {
    const auto schedule = make_scheduler(name)->schedule(result.best_instance);
    std::printf("%s schedule:\n%s\n", name.c_str(),
                analysis::render_gantt(result.best_instance, schedule).c_str());
  }
  return 0;
}
