#!/usr/bin/env python3
"""Advisory perf gate for CI: compare a fresh `bench_kernel --smoke` run
against the committed BENCH_kernel.json.

Usage: perf_smoke.py <fresh.json> <committed.json> [--threshold 0.25]

Exits 1 (loudly) if the fresh PISA mean steps/sec is more than the
threshold fraction below the committed number. The CI job wiring this up
is continue-on-error — absolute throughput on shared runners is noisy, so
the gate flags likely regressions for a human rather than blocking merges.
"""

import argparse
import json
import sys


def pisa_mean(path: str) -> float:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return float(doc["pisa"]["mean_steps_per_sec"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="JSON written by bench_kernel --smoke")
    parser.add_argument("committed", help="committed BENCH_kernel.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated fractional regression (default 0.25)")
    args = parser.parse_args()

    fresh = pisa_mean(args.fresh)
    committed = pisa_mean(args.committed)
    ratio = fresh / committed if committed > 0 else float("inf")
    print(f"PISA mean steps/sec: fresh {fresh:.0f} vs committed {committed:.0f} "
          f"({ratio:.2f}x)")
    if fresh < committed * (1.0 - args.threshold):
        print(f"PERF REGRESSION: more than {args.threshold:.0%} below the "
              f"committed baseline", file=sys.stderr)
        return 1
    print("within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
