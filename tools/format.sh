#!/usr/bin/env sh
# Check (default) or fix (--fix) formatting of all C++ sources with
# clang-format, using the repo's .clang-format. Exits non-zero when a
# check finds unformatted files or clang-format is unavailable.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "error: clang-format not found on PATH" >&2
  exit 1
fi

mode="${1:-check}"

if [ "$mode" = "--fix" ]; then
  find src tests bench examples tools \( -name '*.cpp' -o -name '*.hpp' \) \
    -print0 | xargs -0 clang-format -i
  echo "formatting done"
  exit 0
fi

if find src tests bench examples tools \( -name '*.cpp' -o -name '*.hpp' \) \
    -print0 | xargs -0 clang-format --dry-run -Werror; then
  echo "formatting clean"
else
  echo "run tools/format.sh --fix to reformat" >&2
  exit 1
fi
