#!/usr/bin/env bash
# run_tidy.sh — clang-tidy over the project's own TUs with per-file result
# caching, so re-runs only pay for files whose content (or the shared config)
# actually changed. This is what the CI clang-tidy job invokes; run it locally
# the same way:
#
#   tools/run_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Requirements: a configured build dir containing compile_commands.json (the
# default preset exports it) and clang-tidy on PATH (CLANG_TIDY=... to
# override the binary, e.g. CLANG_TIDY=clang-tidy-18).
#
# Caching: each TU's verdict is keyed by
#   sha256(.clang-tidy ++ clang-tidy --version ++ TU content ++ its project
#          includes' content)
# and a clean verdict is recorded as an empty file under .tidy-cache/. A hit
# skips the invocation entirely; any project header edit changes the key of
# every TU that includes it, so stale hits cannot hide findings. The CI job
# persists .tidy-cache/ via actions/cache keyed on the same inputs.
set -euo pipefail

BUILD_DIR="${1:-build}"
[[ $# -ge 1 ]] && shift
[[ "${1:-}" == "--" ]] && shift
TIDY="${CLANG_TIDY:-clang-tidy}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CACHE_DIR="${TIDY_CACHE_DIR:-$REPO_ROOT/.tidy-cache}"
DB="$BUILD_DIR/compile_commands.json"

if [[ ! -f "$DB" ]]; then
  echo "error: $DB not found — configure first (the default preset exports it):" >&2
  echo "  cmake --preset default" >&2
  exit 2
fi
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "error: '$TIDY' not on PATH (set CLANG_TIDY=... to point at a binary)" >&2
  exit 2
fi

mkdir -p "$CACHE_DIR"
TIDY_VERSION="$("$TIDY" --version | tr -d '\n')"
CONFIG_HASH="$(sha256sum "$REPO_ROOT/.clang-tidy" | cut -d' ' -f1)"

# Gate the library and tool TUs; tests lean on gtest macros that trip
# bugprone matchers and are already covered by -Werror + sanitizers.
mapfile -t FILES < <(cd "$REPO_ROOT" && find src tools -name '*.cpp' | sort)

key_for() {
  # TU content + every project header it mentions (transitively approximated
  # by hashing all project headers: cheap, and over-invalidation is the safe
  # direction for a cache in front of a gate).
  {
    echo "$TIDY_VERSION"
    echo "$CONFIG_HASH"
    sha256sum "$REPO_ROOT/$1"
    find "$REPO_ROOT/src" -name '*.hpp' -print0 | sort -z | xargs -0 sha256sum
  } | sha256sum | cut -d' ' -f1
}

fail=0 hits=0 runs=0
for f in "${FILES[@]}"; do
  key="$(key_for "$f")"
  stamp="$CACHE_DIR/$key"
  if [[ -f "$stamp" ]]; then
    hits=$((hits + 1))
    continue
  fi
  runs=$((runs + 1))
  echo "tidy: $f"
  if "$TIDY" -p "$BUILD_DIR" --quiet "$@" "$REPO_ROOT/$f"; then
    touch "$stamp"
  else
    fail=1
  fi
done

echo "run_tidy: ${#FILES[@]} TUs, $hits cached-clean, $runs checked, fail=$fail"
exit "$fail"
