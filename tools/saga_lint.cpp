// saga_lint: project-invariant checker for the saga tree.
//
// The golden-pin suites (119 makespans, 64 dataset digests, serve
// byte-determinism) depend on invariants no compiler enforces: every random
// stream must derive from an explicit seed, wire-visible floats must go
// through the one exact-formatting path, serialized output must never
// iterate an unordered container, and every atomic access must state the
// memory order it was audited at. This tool makes those invariants
// machine-checked. It is dependency-free (C++ standard library only), runs
// as a ctest entry (`ctest -L lint`) and a CI job, and reads an explicit
// allowlist (tools/saga_lint.allow) for the few legitimate exceptions —
// every entry there must carry a justification and must still match
// something, or the lint fails.
//
// Rule catalogue (also printed by --list-rules):
//   banned-random    std::rand/srand/random_device/drand48: entropy sources
//                    outside the seed-derivation discipline (common/rng).
//                    Scope: src, tools, tests, bench.
//   banned-time      time(nullptr)/std::time/clock()/system_clock/
//                    gettimeofday: wall-clock values feeding logic break
//                    replay determinism (steady_clock durations are fine).
//                    Scope: src, tools, tests, bench.
//   unordered-iter   Range-for or .begin() over a std::unordered_map/set
//                    in a serialization/codec/hash TU: iteration order is
//                    implementation-defined, so serialized bytes would be
//                    too. Scope: wire-visible TUs (see kWireFilePattern).
//   float-format     A printf float conversion other than %.17g in a
//                    wire-visible TU: %.17g (== format_exact) is the one
//                    round-trip-exact, platform-stable rendering the pins
//                    rely on. Scope: wire-visible TUs.
//   pragma-once      Every header must contain #pragma once (standalone-
//                    compile hygiene). Scope: all .hpp.
//   include-hygiene  No parent-relative includes ("../...") and no
//                    including .cpp files: both defeat the single -Isrc
//                    include root the build and clang-tidy rely on.
//                    Scope: src, tools, tests, bench.
//   atomic-order     Every atomic load/store/RMW must spell out its
//                    std::memory_order: a defaulted (seq_cst) access is
//                    evidence the call site was never audited. Scope: src,
//                    tools, bench (tests may use defaulted orders — their
//                    assertions are synchronization points, not hot paths).
//   using-namespace  `using namespace` at header scope leaks into every
//                    includer. Scope: all .hpp.
//
// Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;  // repo-relative, forward slashes
  std::size_t line = 0;
  std::string rule;
  std::string message;
  std::string raw_line;  // what the allowlist matches against
};

struct AllowEntry {
  std::string rule;
  std::string path_substring;
  std::string line_substring;  // empty = any line in the file
  std::string justification;
  std::size_t source_line = 0;
  bool used = false;
};

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

constexpr RuleInfo kRules[] = {
    {"banned-random", "entropy sources outside the seed-derivation discipline"},
    {"banned-time", "wall-clock values feeding deterministic logic"},
    {"unordered-iter", "unordered-container iteration in a serialized path"},
    {"float-format", "wire-visible float formatting that is not %.17g"},
    {"pragma-once", "header missing #pragma once"},
    {"include-hygiene", "parent-relative or .cpp include"},
    {"atomic-order", "atomic access without an explicit memory order"},
    {"using-namespace", "using namespace at header scope"},
};

/// TUs whose output is wire-visible (serialized artifacts, wire codecs,
/// hashes, byte-pinned renders). unordered-iter and float-format apply here.
const std::regex kWireFilePattern(
    "(serve/codec|serve/telemetry|exp/json|exp/resultstore|graph/serialization|"
    "sched/schedule_io|sim/simulator|common/hash|analysis/csv)");

/// atomic-order applies to shipped code only; tests assert through
/// synchronization points and may use defaulted orders.
bool atomic_rule_applies(const std::string& rel) {
  return rel.rfind("src/", 0) == 0 || rel.rfind("tools/", 0) == 0 ||
         rel.rfind("bench/", 0) == 0;
}

/// One physical line, split into the code outside comments/strings (string
/// literal bodies replaced by spaces, so column positions survive), a
/// parallel copy that keeps string bodies, and the concatenated string
/// literal bodies alone (for rules that inspect format strings — matching
/// inside literals only keeps `x % foo` from looking like a conversion).
struct ScannedLine {
  std::string code;          // comments stripped, string bodies blanked
  std::string with_strings;  // comments stripped, string bodies kept
  std::string strings;       // string literal bodies only, concatenated
};

/// Strips // and /* */ comments while tracking string/char/raw-string
/// literals. Stateful across lines (block comments, raw strings).
class Scanner {
 public:
  ScannedLine scan(const std::string& line) {
    ScannedLine out;
    out.code.reserve(line.size());
    out.with_strings.reserve(line.size());
    std::size_t i = 0;
    while (i < line.size()) {
      if (state_ == State::kBlockComment) {
        const auto end = line.find("*/", i);
        if (end == std::string::npos) return out;  // comment continues
        i = end + 2;
        state_ = State::kNormal;
        continue;
      }
      if (state_ == State::kRawString) {
        const auto end = line.find(raw_terminator_, i);
        if (end == std::string::npos) {
          // Raw-string body continues past this line; keep it for
          // format-string inspection but not as code.
          out.with_strings += line.substr(i);
          out.strings += line.substr(i);
          return out;
        }
        out.with_strings += line.substr(i, end - i);
        out.strings += line.substr(i, end - i);
        out.code.append(end - i, ' ');
        i = end + raw_terminator_.size();
        out.code += '"';
        out.with_strings += '"';
        state_ = State::kNormal;
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        state_ = State::kBlockComment;
        i += 2;
        continue;
      }
      if (c == 'R' && i + 1 < line.size() && line[i + 1] == '"' &&
          (i == 0 || !is_ident(line[i - 1]))) {
        // R"delim( ... )delim"
        const auto open = line.find('(', i + 2);
        if (open != std::string::npos) {
          // Built with append rather than `")" + ... + "\""`: GCC 12's
          // -Wrestrict false-positives on const char* + std::string&&.
          raw_terminator_ = ")";
          raw_terminator_ += line.substr(i + 2, open - (i + 2));
          raw_terminator_ += '"';
          state_ = State::kRawString;
          out.code += '"';
          out.with_strings += '"';
          i = open + 1;
          continue;
        }
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        out.code += quote;
        out.with_strings += quote;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\' && i + 1 < line.size()) {
            out.code += "  ";
            out.with_strings += line.substr(i, 2);
            if (quote == '"') out.strings += line.substr(i, 2);
            i += 2;
            continue;
          }
          if (line[i] == quote) break;
          out.code += ' ';
          out.with_strings += line[i];
          if (quote == '"') out.strings += line[i];
          ++i;
        }
        if (i < line.size()) {
          out.code += quote;
          out.with_strings += quote;
          ++i;
        }
        if (quote == '"') out.strings += '\n';  // literal boundary
        continue;
      }
      out.code += c;
      out.with_strings += c;
      ++i;
    }
    return out;
  }

 private:
  enum class State { kNormal, kBlockComment, kRawString };
  static bool is_ident(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  }
  State state_ = State::kNormal;
  std::string raw_terminator_;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `token` occurs in `code` with a non-identifier character (or
/// line edge) on its left. The right edge is shaped by the token itself
/// (most end in '(' or name a full identifier).
bool has_token(const std::string& code, std::string_view token) {
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok =
        end >= code.size() || !is_ident_char(code[end]) || token.back() == '(';
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

void check_file(const fs::path& repo, const fs::path& file, std::vector<Violation>& out) {
  const std::string rel = fs::relative(file, repo).generic_string();
  const bool is_header = file.extension() == ".hpp";
  const bool is_wire = std::regex_search(rel, kWireFilePattern);

  std::ifstream in(file);
  if (!in) {
    throw std::runtime_error("cannot read " + rel);
  }
  std::vector<std::string> raw_lines;
  std::string line;
  while (std::getline(in, line)) raw_lines.push_back(line);

  Scanner scanner;
  std::vector<ScannedLine> scanned;
  scanned.reserve(raw_lines.size());
  for (const auto& l : raw_lines) scanned.push_back(scanner.scan(l));

  const auto add = [&](std::size_t idx, std::string_view rule, std::string message) {
    out.push_back({rel, idx + 1, std::string(rule), std::move(message), raw_lines[idx]});
  };

  // pragma-once -------------------------------------------------------------
  if (is_header) {
    const bool has_pragma =
        std::any_of(scanned.begin(), scanned.end(), [](const ScannedLine& s) {
          return s.code.find("#pragma once") != std::string::npos;
        });
    if (!has_pragma) {
      out.push_back({rel, 1, "pragma-once",
                     "header is missing #pragma once (standalone-compile hygiene)", ""});
    }
  }

  // Names declared as unordered containers in this file (heuristic: the
  // first identifier after the closing '>' of an unordered_map/set template
  // argument list, template args joined across at most 3 lines).
  std::vector<std::string> unordered_names;
  if (is_wire) {
    for (std::size_t i = 0; i < scanned.size(); ++i) {
      const std::string& code = scanned[i].code;
      for (std::string_view kw : {"unordered_map", "unordered_set"}) {
        std::size_t pos = code.find(kw);
        if (pos == std::string::npos) continue;
        std::string joined = code.substr(pos);
        for (std::size_t extra = 1; extra <= 3 && i + extra < scanned.size(); ++extra) {
          joined += ' ';
          joined += scanned[i + extra].code;
        }
        const auto open = joined.find('<');
        if (open == std::string::npos) continue;
        int depth = 0;
        std::size_t j = open;
        for (; j < joined.size(); ++j) {
          if (joined[j] == '<') ++depth;
          if (joined[j] == '>' && --depth == 0) break;
        }
        if (depth != 0) continue;
        ++j;
        while (j < joined.size() &&
               (std::isspace(static_cast<unsigned char>(joined[j])) != 0 || joined[j] == '&' ||
                joined[j] == '*')) {
          ++j;
        }
        std::string name;
        while (j < joined.size() && is_ident_char(joined[j])) name += joined[j++];
        if (!name.empty()) unordered_names.push_back(name);
      }
    }
  }

  for (std::size_t i = 0; i < scanned.size(); ++i) {
    const std::string& code = scanned[i].code;
    const std::string& with_strings = scanned[i].with_strings;

    // banned-random ---------------------------------------------------------
    for (std::string_view token :
         {"std::rand", "srand(", "random_device", "drand48", "lrand48"}) {
      if (has_token(code, token)) {
        std::string msg = "'";
        msg += token;
        msg +=
            "' is a nondeterministic entropy source; derive streams from an explicit "
            "seed via common/rng instead";
        add(i, "banned-random", msg);
      }
    }
    if (has_token(code, "rand(") && code.find("srand(") == std::string::npos) {
      add(i, "banned-random",
          "'rand()' is a nondeterministic entropy source; derive streams from an explicit "
          "seed via common/rng instead");
    }

    // banned-time -----------------------------------------------------------
    for (std::string_view token : {"time(nullptr)", "time(NULL)", "time(0)", "std::time(",
                                   "clock(", "system_clock", "gettimeofday", "localtime",
                                   "gmtime("}) {
      if (has_token(code, token)) {
        std::string msg = "'";
        msg += token;
        msg +=
            "' reads the wall clock; deterministic logic must not depend on it "
            "(steady_clock durations for timeouts/telemetry are fine)";
        add(i, "banned-time", msg);
      }
    }

    // unordered-iter --------------------------------------------------------
    if (is_wire) {
      for (const std::string& name : unordered_names) {
        if (code.find("for") != std::string::npos &&
            code.find(": " + name) != std::string::npos) {
          add(i, "unordered-iter",
              "range-for over unordered container '" + name +
                  "' in a wire-visible TU: iteration order is implementation-defined");
        }
        if (code.find(name + ".begin()") != std::string::npos) {
          add(i, "unordered-iter",
              "iteration over unordered container '" + name +
                  "' in a wire-visible TU: iteration order is implementation-defined");
        }
      }
    }

    // float-format ----------------------------------------------------------
    if (is_wire) {
      // Find printf float conversions inside string literals.
      static const std::regex kFloatConversion("%[-+ #0-9.*]*l?[efgEFG]");
      const std::string& literals = scanned[i].strings;
      auto begin = std::sregex_iterator(literals.begin(), literals.end(),
                                        kFloatConversion);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string conversion = it->str();
        if (conversion == "%.17g") continue;  // the format_exact contract
        add(i, "float-format",
            "float conversion '" + conversion +
                "' in a wire-visible TU; wire floats must use the %.17g/format_exact "
                "path so pins stay bit-identical");
      }
    }

    // include-hygiene -------------------------------------------------------
    if (with_strings.find("#include \"..") != std::string::npos) {
      add(i, "include-hygiene",
          "parent-relative include: include repo headers by their src-rooted path");
    }
    if (with_strings.find("#include") != std::string::npos &&
        with_strings.find(".cpp\"") != std::string::npos) {
      add(i, "include-hygiene", "including a .cpp file: move shared code into a header");
    }

    // atomic-order ----------------------------------------------------------
    if (atomic_rule_applies(rel)) {
      for (std::string_view op :
           {".load(", ".store(", ".fetch_add(", ".fetch_sub(", ".fetch_and(", ".fetch_or(",
            ".fetch_xor(", ".exchange(", ".compare_exchange_weak(",
            ".compare_exchange_strong(", ".test_and_set("}) {
        std::size_t pos = code.find(op);
        while (pos != std::string::npos) {
          // Join the call's argument list across at most 4 following lines
          // and require an explicit memory order in it.
          std::string call = code.substr(pos);
          for (std::size_t extra = 1; extra <= 4 && i + extra < scanned.size(); ++extra) {
            int depth = 0;
            bool closed = false;
            for (const char c : call) {
              if (c == '(') ++depth;
              if (c == ')' && --depth == 0) {
                closed = true;
                break;
              }
            }
            if (closed) break;
            call += ' ';
            call += scanned[i + extra].code;
          }
          // Truncate at the call's closing paren.
          int depth = 0;
          std::size_t end = call.size();
          for (std::size_t j = 0; j < call.size(); ++j) {
            if (call[j] == '(') ++depth;
            if (call[j] == ')' && --depth == 0) {
              end = j;
              break;
            }
          }
          call = call.substr(0, end);
          if (call.find("memory_order") == std::string::npos) {
            add(i, "atomic-order",
                "atomic access '" + std::string(op.substr(1)) +
                    "...)' without an explicit std::memory_order: state the audited "
                    "order (and the invariant that makes it sufficient)");
          }
          pos = code.find(op, pos + op.size());
        }
      }
    }

    // using-namespace -------------------------------------------------------
    if (is_header && has_token(code, "using namespace")) {
      add(i, "using-namespace",
          "'using namespace' in a header leaks into every includer");
    }
  }
}

std::vector<AllowEntry> load_allowlist(const fs::path& path) {
  std::vector<AllowEntry> entries;
  std::ifstream in(path);
  if (!in) return entries;  // absent allowlist = empty allowlist
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    // rule|path-substring|line-substring|justification
    std::vector<std::string> fields;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, '|')) fields.push_back(field);
    const auto trim = [](std::string s) {
      const auto a = s.find_first_not_of(" \t");
      if (a == std::string::npos) return std::string();
      const auto b = s.find_last_not_of(" \t");
      return s.substr(a, b - a + 1);
    };
    if (fields.size() != 4 || trim(fields[3]).empty()) {
      throw std::runtime_error(
          path.generic_string() + ":" + std::to_string(lineno) +
          ": allowlist entries need 4 |-separated fields: "
          "rule|path-substring|line-substring|justification (justification mandatory)");
    }
    AllowEntry entry;
    entry.rule = trim(fields[0]);
    entry.path_substring = trim(fields[1]);
    entry.line_substring = trim(fields[2]);
    entry.justification = trim(fields[3]);
    entry.source_line = lineno;
    const bool known = std::any_of(std::begin(kRules), std::end(kRules), [&](const RuleInfo& r) {
      return r.name == entry.rule;
    });
    if (!known) {
      throw std::runtime_error(path.generic_string() + ":" + std::to_string(lineno) +
                               ": unknown rule '" + entry.rule + "'");
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

int run(int argc, char** argv) {
  fs::path repo = ".";
  fs::path allow_path;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const RuleInfo& rule : kRules) {
        std::cout << rule.name << "\t" << rule.summary << "\n";
      }
      return 0;
    }
    if (arg == "--repo" && i + 1 < argc) {
      repo = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allow_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "usage: saga_lint [--repo DIR] [--allowlist FILE] [--list-rules] [dirs...]\n";
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "tools", "tests", "bench"};
  if (allow_path.empty()) allow_path = repo / "tools" / "saga_lint.allow";

  std::vector<AllowEntry> allowlist = load_allowlist(allow_path);

  std::vector<Violation> violations;
  std::size_t files = 0;
  for (const std::string& dir : dirs) {
    const fs::path root = repo / dir;
    if (!fs::exists(root)) {
      std::cerr << "saga_lint: no such directory: " << root.generic_string() << "\n";
      return 2;
    }
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".cpp" || ext == ".hpp") paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());  // deterministic report order
    for (const auto& path : paths) {
      ++files;
      check_file(repo, path, violations);
    }
  }

  // Apply the allowlist.
  std::vector<Violation> remaining;
  for (const Violation& v : violations) {
    bool allowed = false;
    for (AllowEntry& entry : allowlist) {
      if (entry.rule != v.rule) continue;
      if (v.file.find(entry.path_substring) == std::string::npos) continue;
      if (!entry.line_substring.empty() &&
          v.raw_line.find(entry.line_substring) == std::string::npos) {
        continue;
      }
      entry.used = true;
      allowed = true;
      break;
    }
    if (!allowed) remaining.push_back(v);
  }

  int failures = 0;
  for (const Violation& v : remaining) {
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message << "\n";
    ++failures;
  }
  // A stale entry means the exception it justified no longer exists; keeping
  // it would let the violation silently come back.
  for (const AllowEntry& entry : allowlist) {
    if (!entry.used) {
      std::cout << allow_path.generic_string() << ":" << entry.source_line
                << ": [stale-allow] entry '" << entry.rule << "|" << entry.path_substring
                << "' matched nothing; remove it\n";
      ++failures;
    }
  }

  if (failures > 0) {
    std::cout << "saga_lint: " << failures << " finding(s) across " << files << " file(s)\n";
    return 1;
  }
  std::cout << "saga_lint: clean (" << files << " files, "
            << std::size(kRules) << " rules, " << allowlist.size()
            << " allowlisted exception(s))\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "saga_lint: " << e.what() << "\n";
    return 2;
  }
}
