/// saga — command-line front-end to the library, the workflow an
/// open-source release ships for users who don't want to write C++.
///
/// Subcommands:
///   saga run <spec.json|->                        run a declarative
///            [--dry-run] [--set key.path=value]   experiment spec (see
///            [--shard i/N] [--out dir] [--resume] docs/experiments.md);
///                                                 --dry-run validates and
///                                                 prints the resolved plan;
///                                                 --shard runs one slice of
///                                                 the cell grid, --out
///                                                 streams completed cells
///                                                 into a result store, and
///                                                 --resume skips cells the
///                                                 store already holds
///   saga merge <dir>... [--csv path]              recombine result stores
///              [--json path] [--atlas dir]        into the monolithic run's
///                                                 artifacts (byte-identical);
///                                                 fails loudly on missing
///                                                 cells or spec mismatch
///   saga generate <dataset-spec> <index> [seed]   print an instance
///                 [--json]                        (spec strings work:
///                                                 `montage?n=50&ccr=1`);
///                                                 --json emits the wire
///                                                 codec (serve/codec.hpp)
///                                                 instead of the text format
///   saga schedule <scheduler-spec> <instance|->   schedule it, print the
///            [--repeat N] [--time]                schedule + Gantt;
///                                                 --repeat re-runs the
///                                                 scheduler N times on one
///                                                 evaluation arena and
///                                                 --time reports the
///                                                 wall-clock throughput on
///                                                 stderr
///   saga validate <instance-file> <schedule-file> check a schedule
///   saga compare <instance-file> [specs...]       makespans side by side
///   saga pisa <target> <baseline> [restarts]      adversarial search
///   saga atlas-verify <dir>                       re-verify a PISA atlas
///   saga serve [--port P] [--threads N]           scheduler-as-a-service
///              [--max-body BYTES]                 daemon on 127.0.0.1 (see
///              [--port-file path]                 docs/serve.md); --port 0
///                                                 picks an ephemeral port,
///                                                 --port-file records the
///                                                 bound port for scripts;
///                                                 SIGINT/SIGTERM drain
///                                                 gracefully
///   saga list [--tags [tag]]                      datasets & schedulers;
///             [--datasets [tag]]                  --tags/--datasets
///                                                 enumerate the registries
///                                                 by tag with per-entry
///                                                 parameters
///
/// Schedulers are given as registry spec strings: `HEFT`,
/// `ga?pop=64&gens=200`, `ensemble?members=heft+cpop+minmin`.
///
/// "-" reads the instance from stdin, so commands compose:
///   saga generate blast 0 | saga schedule HEFT -
/// Instance-reading commands accept both the text format and the JSON wire
/// codec (sniffed by the first non-space byte), so --json output feeds
/// straight back in.
///
/// Exit codes: 0 success, 1 runtime error, 2 usage error.

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/atlas.hpp"
#include "analysis/gantt.hpp"
#include "common/nearest.hpp"
#include "core/pairwise.hpp"
#include "datasets/registry.hpp"
#include "exp/cells.hpp"
#include "exp/experiment.hpp"
#include "exp/resultstore.hpp"
#include "graph/serialization.hpp"
#include "sched/arena.hpp"
#include "sched/registry.hpp"
#include "sched/schedule_io.hpp"
#include "serve/admission.hpp"
#include "serve/codec.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"

namespace {

using namespace saga;

/// Malformed command lines print their usage string and exit 2 (runtime
/// failures print "error: ..." and exit 1).
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

constexpr const char* kTopLevelUsage =
    "usage: saga <command> ...\n"
    "commands:\n"
    "  run <spec.json|-> [--dry-run] [--set key.path=value]...\n"
    "      [--shard i/N] [--out dir] [--resume]\n"
    "  simulate <spec.json|-> [--dry-run] [--set key.path=value]...\n"
    "      [--shard i/N] [--out dir] [--resume]\n"
    "  merge <dir>... [--csv path] [--json path] [--atlas dir]\n"
    "  generate <dataset-spec> <index> [seed] [--json]\n"
    "  schedule <scheduler-spec> <instance|-> [--repeat N] [--time]\n"
    "  validate <instance-file> <schedule-file>\n"
    "  compare <instance|-> [scheduler-specs...]\n"
    "  pisa <target> <baseline> [restarts]\n"
    "  atlas-verify <dir>\n"
    "  serve [--port P] [--threads N] [--max-body BYTES] [--port-file path]\n"
    "  list [--tags [tag]] [--datasets [tag]]\n";

std::uint64_t parse_u64(const char* arg, const char* what) {
  char* end = nullptr;
  errno = 0;
  const std::uint64_t value = std::strtoull(arg, &end, 10);
  if (!std::isdigit(static_cast<unsigned char>(arg[0])) || end == arg || *end != '\0' ||
      errno == ERANGE) {
    throw std::runtime_error(std::string("invalid ") + what + ": " + arg);
  }
  return value;
}

/// Reads an instance in either format — the text format or the JSON wire
/// codec — sniffed by the first non-space byte.
ProblemInstance read_instance(const std::string& path) {
  if (path == "-") return serve::load_instance_auto(std::cin);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return serve::load_instance_auto(in);
}

int cmd_list(int argc, char** argv) {
  constexpr const char* kUsage = "usage: saga list [--tags [tag]] [--datasets [tag]]";
  if (argc == 0) {
    std::printf("datasets (Table II):\n ");
    for (const auto& spec : datasets::all_dataset_specs()) std::printf(" %s", spec.name.c_str());
    std::printf("\nextension datasets:\n ");
    for (const auto& desc : datasets::DatasetRegistry::instance().descriptors()) {
      if (!desc.has_tag("table2")) std::printf(" %s", desc.name.c_str());
    }
    std::printf("\nschedulers (Table I):\n ");
    for (const auto& name : all_scheduler_names()) std::printf(" %s", name.c_str());
    std::printf("\nextension schedulers:\n ");
    for (const auto& name : extension_scheduler_names()) std::printf(" %s", name.c_str());
    std::printf(
        "\n(`saga list --tags` enumerates schedulers by tag, `saga list --datasets` "
        "datasets)\n");
    return EXIT_SUCCESS;
  }
  const std::string mode = argv[0];
  if ((mode != "--tags" && mode != "--datasets") || argc > 2) throw UsageError(kUsage);

  if (mode == "--datasets") {
    const auto& registry = datasets::DatasetRegistry::instance();
    if (argc == 1) {
      for (const auto& tag : registry.tags()) {
        const auto names = registry.names(tag);
        std::printf("%-13s (%2zu): %s\n", tag.c_str(), names.size(), join(names, " ").c_str());
      }
      return EXIT_SUCCESS;
    }
    const std::string tag = argv[1];
    const auto tags = registry.tags();
    if (std::find(tags.begin(), tags.end(), tag) == tags.end()) {
      throw std::invalid_argument("unknown tag '" + tag + "'; valid tags: " + join(tags, ", "));
    }
    for (const auto& desc : registry.descriptors()) {
      if (!desc.has_tag(tag)) continue;
      std::printf("%-12s %s\n", desc.name.c_str(), desc.summary.c_str());
      if (!desc.aliases.empty()) {
        std::printf("             aliases: %s\n", join(desc.aliases, ", ").c_str());
      }
      for (const auto& param : desc.params) {
        std::printf("             %s: %s\n", param.key.c_str(), param.summary.c_str());
      }
    }
    return EXIT_SUCCESS;
  }

  const auto& registry = SchedulerRegistry::instance();
  if (argc == 1) {
    for (const auto& tag : registry.tags()) {
      const auto names = registry.names(tag, NameOrder::kLexicographic);
      std::printf("%-13s (%2zu): %s\n", tag.c_str(), names.size(), join(names, " ").c_str());
    }
    return EXIT_SUCCESS;
  }
  const std::string tag = argv[1];
  const auto tags = registry.tags();
  if (std::find(tags.begin(), tags.end(), tag) == tags.end()) {
    throw std::invalid_argument("unknown tag '" + tag + "'; valid tags: " + join(tags, ", "));
  }
  for (const auto& desc : registry.descriptors()) {
    if (!desc.has_tag(tag)) continue;
    std::printf("%-12s %s\n", desc.name.c_str(), desc.summary.c_str());
    if (!desc.aliases.empty()) std::printf("             aliases: %s\n", join(desc.aliases, ", ").c_str());
    for (const auto& param : desc.params) {
      std::printf("             %s: %s\n", param.key.c_str(), param.summary.c_str());
    }
  }
  return EXIT_SUCCESS;
}

/// Shared implementation of `saga run` and `saga simulate`. When
/// `forced_mode` is non-null the spec document's mode is pinned to it: a
/// missing mode is filled in, a conflicting one is rejected (a simulate
/// alias silently running a benchmark would be a footgun).
int run_spec_command(int argc, char** argv, const char* kUsage, const char* forced_mode) {
  std::string path;
  std::vector<std::string> overrides;
  bool dry_run = false;
  exp::RunOptions options;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--set") {
      if (i + 1 >= argc) throw UsageError(std::string("--set needs key.path=value\n") + kUsage);
      overrides.emplace_back(argv[++i]);
    } else if (arg == "--shard") {
      if (i + 1 >= argc) throw UsageError(std::string("--shard needs i/N\n") + kUsage);
      try {
        const exp::Shard shard = exp::parse_shard(argv[++i]);
        options.shard_index = shard.index;
        options.shard_count = shard.count;
      } catch (const std::invalid_argument& e) {
        throw UsageError(std::string(e.what()) + "\n" + kUsage);
      }
    } else if (arg == "--out") {
      if (i + 1 >= argc) throw UsageError(std::string("--out needs a directory\n") + kUsage);
      options.out_dir = argv[++i];
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (!path.empty()) {
      throw UsageError(kUsage);
    } else {
      path = arg;
    }
  }
  if (path.empty()) throw UsageError(kUsage);
  if (options.shard_count > 1 && options.out_dir.empty()) {
    throw UsageError(std::string("--shard needs --out: a partial run must persist its cells\n") +
                     kUsage);
  }
  if (options.resume && options.out_dir.empty()) {
    throw UsageError(std::string("--resume needs --out\n") + kUsage);
  }

  exp::Json document = exp::load_spec_document(path);
  for (const auto& assignment : overrides) exp::apply_override(document, assignment);
  if (forced_mode != nullptr) {
    if (const exp::Json* mode = document.find("mode");
        mode != nullptr && mode->as_string() != forced_mode) {
      throw std::runtime_error("this command runs mode '" + std::string(forced_mode) +
                               "' but the spec says mode '" + mode->as_string() +
                               "'; use `saga run` for other modes");
    }
    document.set("mode", exp::Json::string(forced_mode));
  }
  const auto spec = exp::ExperimentSpec::from_json(document);
  spec.validate();
  if (dry_run) {
    std::cout << exp::describe(spec) << "dry run: spec is valid\n";
    return EXIT_SUCCESS;
  }
  exp::run_experiment(spec, std::cout, options);
  return EXIT_SUCCESS;
}

int cmd_run(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: saga run <spec.json|-> [--dry-run] [--set key.path=value]...\n"
      "                [--shard i/N] [--out dir] [--resume]";
  return run_spec_command(argc, argv, kUsage, nullptr);
}

int cmd_simulate(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: saga simulate <spec.json|-> [--dry-run] [--set key.path=value]...\n"
      "                     [--shard i/N] [--out dir] [--resume]";
  return run_spec_command(argc, argv, kUsage, "simulate");
}

int cmd_merge(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: saga merge <dir>... [--csv path] [--json path] [--atlas dir]";
  std::vector<std::filesystem::path> dirs;
  std::string csv_override, json_override, atlas_override;
  bool csv_set = false, json_set = false, atlas_set = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto take = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        throw UsageError(std::string(what) + " needs a value\n" + kUsage);
      }
      return argv[++i];
    };
    if (arg == "--csv") {
      csv_override = take("--csv");
      csv_set = true;
    } else if (arg == "--json") {
      json_override = take("--json");
      json_set = true;
    } else if (arg == "--atlas") {
      atlas_override = take("--atlas");
      atlas_set = true;
    } else if (arg.rfind("--", 0) == 0) {
      throw UsageError("unknown option '" + arg + "'\n" + kUsage);
    } else {
      dirs.emplace_back(arg);
    }
  }
  if (dirs.empty()) throw UsageError(kUsage);

  auto merged = exp::merge_stores(dirs);
  // Flag overrides replace the stored spec's sinks (set or clear), then the
  // spec re-validates so e.g. --atlas on a benchmark store fails exactly
  // like `saga run` would, instead of silently writing nothing.
  if (csv_set) merged.spec.csv = csv_override;
  if (json_set) merged.spec.json = json_override;
  if (atlas_set) merged.spec.atlas = atlas_override;
  merged.spec.validate();
  std::cout << "merged " << dirs.size() << " store(s): " << merged.result.stats.total_cells
            << " cells\n";
  exp::emit_result(merged.spec, merged.result, std::cout);
  return EXIT_SUCCESS;
}

int cmd_generate(int argc, char** argv) {
  constexpr const char* kUsage = "usage: saga generate <dataset-spec> <index> [seed] [--json]";
  std::vector<const char*> positional;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      json = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 2 || positional.size() > 3) throw UsageError(kUsage);
  const std::string dataset = positional[0];
  const auto index = static_cast<std::size_t>(parse_u64(positional[1], "index"));
  const std::uint64_t seed = positional.size() > 2 ? parse_u64(positional[2], "seed") : 42;
  const auto inst = datasets::generate_instance(dataset, seed, index);
  if (json) {
    std::cout << serve::instance_to_json(inst).dump(2) << "\n";
  } else {
    save_instance(std::cout, inst);
  }
  return EXIT_SUCCESS;
}

int cmd_schedule(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: saga schedule <scheduler-spec> <instance|-> [--repeat N] [--time]";
  std::vector<const char*> positional;
  std::uint64_t repeat = 1;
  bool timed = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repeat") {
      if (i + 1 >= argc) throw UsageError(std::string("--repeat needs a count\n") + kUsage);
      repeat = parse_u64(argv[++i], "repeat count");
      if (repeat == 0) throw UsageError(std::string("--repeat must be at least 1\n") + kUsage);
    } else if (arg == "--time") {
      timed = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() != 2) throw UsageError(kUsage);
  // Resolve the scheduler spec before touching the instance stream, so a
  // misspelled name is diagnosed without consuming stdin.
  const auto scheduler = make_scheduler(positional[0]);
  const auto inst = read_instance(positional[1]);

  // One evaluation arena across all repeats — the PISA usage pattern — so
  // `--repeat N --time` measures the scheduler's warm per-call cost.
  TimelineArena arena;
  Schedule schedule;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < repeat; ++i) schedule = scheduler->schedule(inst, &arena);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  if (timed) {
    std::fprintf(stderr, "%llu run(s) in %.3f ms: %.0f ns/schedule, %.0f schedules/sec\n",
                 static_cast<unsigned long long>(repeat), seconds * 1e3,
                 seconds / static_cast<double>(repeat) * 1e9,
                 static_cast<double>(repeat) / seconds);
  }
  save_schedule(std::cout, schedule);
  std::cout << analysis::render_gantt(inst, schedule);
  return EXIT_SUCCESS;
}

int cmd_validate(int argc, char** argv) {
  if (argc < 2) throw UsageError("usage: saga validate <instance> <schedule>");
  const auto inst = read_instance(argv[0]);
  std::ifstream in(argv[1]);
  if (!in) throw std::runtime_error(std::string("cannot open ") + argv[1]);
  const Schedule schedule = load_schedule(in);
  const auto result = schedule.validate(inst);
  if (result.ok) {
    std::printf("valid (makespan %g)\n", schedule.makespan());
    return EXIT_SUCCESS;
  }
  std::printf("INVALID: %s\n", result.message.c_str());
  return EXIT_FAILURE;
}

int cmd_compare(int argc, char** argv) {
  if (argc < 1) throw UsageError("usage: saga compare <instance|-> [scheduler-specs...]");
  exp::ExperimentSpec spec;
  spec.mode = exp::Mode::kSchedule;
  spec.name = "saga compare";
  spec.instance.file = argv[0];
  for (int i = 1; i < argc; ++i) spec.schedulers.emplace_back(argv[i]);
  if (spec.schedulers.empty()) spec.schedulers = {"@benchmark"};
  exp::run_experiment(spec, std::cout);
  return EXIT_SUCCESS;
}

int cmd_pisa(int argc, char** argv) {
  if (argc < 2) throw UsageError("usage: saga pisa <target> <baseline> [restarts]");
  const std::uint64_t seed = 42;
  exp::ExperimentSpec spec;
  spec.mode = exp::Mode::kPisaPairwise;
  spec.name = "saga pisa";
  spec.schedulers = {argv[0], argv[1]};
  spec.pisa.restarts = argc > 2 ? parse_u64(argv[2], "restarts") : 10;
  spec.seed = seed;
  // Tables and progress go to stderr: stdout carries the atlas entry so
  // `saga pisa ... > entry.txt` composes.
  const auto result = exp::run_experiment(spec, std::cerr);

  // The grid is 2x2; the (row=baseline, col=target) cell is (1, 0). The
  // driver computed the reverse direction too — report it rather than
  // discard it.
  const double ratio = result.pairwise.cell(1, 0);
  std::fprintf(stderr, "best ratio m(%s)/m(%s) = %.4f  (reverse: %.4f)\n", argv[0], argv[1],
               ratio, result.pairwise.cell(0, 1));
  const pisa::CellSeeds seeds = pisa::pairwise_cell_seeds(seed, 1, 0);
  analysis::AtlasEntry entry;
  entry.target = exp::annotate_scheduler_seed(argv[0], seeds.target);
  entry.baseline = exp::annotate_scheduler_seed(argv[1], seeds.baseline);
  entry.ratio = ratio;
  entry.seed = seed;
  entry.instance = result.pairwise.best_instance[1][0];
  std::cout << analysis::atlas_entry_to_string(entry);
  return EXIT_SUCCESS;
}

/// Self-pipe for async-signal-safe shutdown: the SIGINT/SIGTERM handler
/// writes one byte; cmd_serve blocks reading the other end.
int g_signal_pipe[2] = {-1, -1};

extern "C" void serve_signal_handler(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = write(g_signal_pipe[1], &byte, 1);
}

int cmd_serve(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: saga serve [--port P] [--threads N] [--max-body BYTES] [--port-file path]\n"
      "                  [--max-queue N] [--max-inflight M] [--batch-window USEC] [--batch-max K]";
  serve::HttpServer::Options options;
  options.port = 8080;
  serve::AdmissionController::Limits limits;
  serve::BatchOptions batch;
  std::string port_file;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto take = [&](const char* what) -> const char* {
      if (i + 1 >= argc) throw UsageError(std::string(what) + " needs a value\n" + kUsage);
      return argv[++i];
    };
    if (arg == "--port") {
      const std::uint64_t port = parse_u64(take("--port"), "port");
      if (port > 65535) throw UsageError(std::string("--port must be at most 65535\n") + kUsage);
      options.port = static_cast<std::uint16_t>(port);
    } else if (arg == "--threads") {
      options.threads = static_cast<std::size_t>(parse_u64(take("--threads"), "thread count"));
    } else if (arg == "--max-body") {
      options.max_body = static_cast<std::size_t>(parse_u64(take("--max-body"), "body limit"));
    } else if (arg == "--max-queue") {
      limits.max_queue = static_cast<std::size_t>(parse_u64(take("--max-queue"), "queue limit"));
    } else if (arg == "--max-inflight") {
      limits.max_inflight =
          static_cast<std::size_t>(parse_u64(take("--max-inflight"), "in-flight limit"));
    } else if (arg == "--batch-window") {
      batch.window_us =
          static_cast<std::uint32_t>(parse_u64(take("--batch-window"), "batch window"));
    } else if (arg == "--batch-max") {
      batch.max_batch = static_cast<std::size_t>(parse_u64(take("--batch-max"), "batch size"));
      if (batch.max_batch == 0) {
        throw UsageError(std::string("--batch-max must be at least 1\n") + kUsage);
      }
    } else if (arg == "--port-file") {
      port_file = take("--port-file");
    } else {
      throw UsageError("unknown option '" + arg + "'\n" + kUsage);
    }
  }

  // Static lifetime: in-flight handlers and the accept backstop may touch
  // the controller right up to server.stop() below; outliving everything in
  // this frame is the simplest safe arrangement for a process-long daemon.
  static serve::AdmissionController admission(limits);
  serve::ScheduleService::Options service_options;
  service_options.admission = &admission;
  service_options.batch = batch;
  serve::ScheduleService service(service_options);
  if (limits.max_queue != 0) {
    // Accept-level backstop, sized well above the path-aware limit so
    // /metrics scrapes are shed by neither layer in practice.
    options.max_pending = std::max<std::size_t>(64, 8 * limits.max_queue);
    options.admission = &admission;
  }
  // The gauge sampler is installed before the server exists (workers start
  // handling requests the moment the constructor returns), so it reaches
  // the server through an atomic pointer published afterwards.
  auto server_slot = std::make_shared<std::atomic<serve::HttpServer*>>(nullptr);
  service.set_gauge_sampler([server_slot] {
    serve::Telemetry::Gauges gauges;
    if (const serve::HttpServer* server = server_slot->load(std::memory_order_acquire)) {
      gauges.queue_depth = server->pool().queue_depth();
      gauges.inflight = server->inflight();
      gauges.jobs_completed = server->pool().jobs_completed();
      gauges.connections = server->connections_accepted();
    }
    return gauges;
  });
  serve::HttpServer server(options,
                           [&service](const serve::HttpRequest& req) { return service.handle(req); });
  server_slot->store(&server, std::memory_order_release);

  if (!port_file.empty()) {
    std::ofstream out(port_file);
    if (!out) throw std::runtime_error("cannot write " + port_file);
    out << server.port() << "\n";
  }

  if (pipe(g_signal_pipe) != 0) {
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);

  std::fprintf(stderr, "saga serve: listening on 127.0.0.1:%u (%zu worker thread(s))\n",
               static_cast<unsigned>(server.port()), server.pool().thread_count());

  char byte = 0;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "saga serve: draining...\n");
  server.stop();
  std::fprintf(stderr, "saga serve: drained; served %llu request(s) over %llu connection(s)\n",
               static_cast<unsigned long long>(server.requests_served()),
               static_cast<unsigned long long>(server.connections_accepted()));

  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  close(g_signal_pipe[0]);
  close(g_signal_pipe[1]);
  return EXIT_SUCCESS;
}

int cmd_atlas_verify(int argc, char** argv) {
  if (argc < 1) throw UsageError("usage: saga atlas-verify <dir>");
  const auto atlas = analysis::Atlas::load(argv[0]);
  const auto mismatches = atlas.verify(1e-9);
  std::printf("%zu entries", atlas.size());
  if (mismatches.empty()) {
    std::printf(", all reproduce\n");
    return EXIT_SUCCESS;
  }
  std::printf(", %zu mismatches:\n", mismatches.size());
  for (const auto& m : mismatches) std::printf("  %s\n", m.c_str());
  return EXIT_FAILURE;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kTopLevelUsage, stderr);
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "list") return cmd_list(argc - 2, argv + 2);
    if (command == "run") return cmd_run(argc - 2, argv + 2);
    if (command == "simulate") return cmd_simulate(argc - 2, argv + 2);
    if (command == "merge") return cmd_merge(argc - 2, argv + 2);
    if (command == "generate") return cmd_generate(argc - 2, argv + 2);
    if (command == "schedule") return cmd_schedule(argc - 2, argv + 2);
    if (command == "validate") return cmd_validate(argc - 2, argv + 2);
    if (command == "compare") return cmd_compare(argc - 2, argv + 2);
    if (command == "pisa") return cmd_pisa(argc - 2, argv + 2);
    if (command == "atlas-verify") return cmd_atlas_verify(argc - 2, argv + 2);
    if (command == "serve") return cmd_serve(argc - 2, argv + 2);
    std::fprintf(stderr, "unknown command: %s\n%s", command.c_str(), kTopLevelUsage);
    return 2;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
