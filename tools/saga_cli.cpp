/// saga — command-line front-end to the library, the workflow an
/// open-source release ships for users who don't want to write C++.
///
/// Subcommands:
///   saga generate <dataset> <index> [seed]        print an instance
///   saga schedule <scheduler> <instance-file|->   schedule it, print the
///            [--repeat N] [--time]                schedule + Gantt;
///                                                 --repeat re-runs the
///                                                 scheduler N times on one
///                                                 evaluation arena and
///                                                 --time reports the
///                                                 wall-clock throughput on
///                                                 stderr
///   saga validate <instance-file> <schedule-file> check a schedule
///   saga compare <instance-file> [schedulers...]  makespans side by side
///   saga pisa <target> <baseline> [restarts]      adversarial search
///   saga atlas-verify <dir>                       re-verify a PISA atlas
///   saga list                                     datasets & schedulers
///
/// "-" reads the instance from stdin, so commands compose:
///   saga generate blast 0 | saga schedule HEFT -

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/atlas.hpp"
#include "analysis/gantt.hpp"
#include "core/annealer.hpp"
#include "datasets/registry.hpp"
#include "graph/serialization.hpp"
#include "sched/arena.hpp"
#include "sched/registry.hpp"
#include "sched/schedule_io.hpp"

namespace {

using namespace saga;

std::uint64_t parse_u64(const char* arg, const char* what) {
  char* end = nullptr;
  errno = 0;
  const std::uint64_t value = std::strtoull(arg, &end, 10);
  if (!std::isdigit(static_cast<unsigned char>(arg[0])) || end == arg || *end != '\0' ||
      errno == ERANGE) {
    throw std::runtime_error(std::string("invalid ") + what + ": " + arg);
  }
  return value;
}

ProblemInstance read_instance(const std::string& path) {
  if (path == "-") return load_instance(std::cin);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return load_instance(in);
}

int cmd_list() {
  std::printf("datasets (Table II):\n ");
  for (const auto& spec : datasets::all_dataset_specs()) std::printf(" %s", spec.name.c_str());
  std::printf("\nschedulers (Table I):\n ");
  for (const auto& name : all_scheduler_names()) std::printf(" %s", name.c_str());
  std::printf("\nextension schedulers:\n ");
  for (const auto& name : extension_scheduler_names()) std::printf(" %s", name.c_str());
  std::printf("\n");
  return EXIT_SUCCESS;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 2) throw std::runtime_error("usage: saga generate <dataset> <index> [seed]");
  const std::string dataset = argv[0];
  const auto index = static_cast<std::size_t>(parse_u64(argv[1], "index"));
  const std::uint64_t seed = argc > 2 ? parse_u64(argv[2], "seed") : 42;
  save_instance(std::cout, datasets::generate_instance(dataset, seed, index));
  return EXIT_SUCCESS;
}

int cmd_schedule(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: saga schedule <scheduler> <instance|-> [--repeat N] [--time]";
  std::vector<const char*> positional;
  std::uint64_t repeat = 1;
  bool timed = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repeat") {
      if (i + 1 >= argc) throw std::runtime_error("--repeat needs a count");
      repeat = parse_u64(argv[++i], "repeat count");
      if (repeat == 0) throw std::runtime_error("--repeat must be at least 1");
    } else if (arg == "--time") {
      timed = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() != 2) throw std::runtime_error(kUsage);
  const auto inst = read_instance(positional[1]);
  const auto scheduler = make_scheduler(positional[0]);

  // One evaluation arena across all repeats — the PISA usage pattern — so
  // `--repeat N --time` measures the scheduler's warm per-call cost.
  TimelineArena arena;
  Schedule schedule;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < repeat; ++i) schedule = scheduler->schedule(inst, &arena);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  if (timed) {
    std::fprintf(stderr, "%llu run(s) in %.3f ms: %.0f ns/schedule, %.0f schedules/sec\n",
                 static_cast<unsigned long long>(repeat), seconds * 1e3,
                 seconds / static_cast<double>(repeat) * 1e9,
                 static_cast<double>(repeat) / seconds);
  }
  save_schedule(std::cout, schedule);
  std::cout << analysis::render_gantt(inst, schedule);
  return EXIT_SUCCESS;
}

int cmd_validate(int argc, char** argv) {
  if (argc < 2) throw std::runtime_error("usage: saga validate <instance> <schedule>");
  const auto inst = read_instance(argv[0]);
  std::ifstream in(argv[1]);
  if (!in) throw std::runtime_error(std::string("cannot open ") + argv[1]);
  const Schedule schedule = load_schedule(in);
  const auto result = schedule.validate(inst);
  if (result.ok) {
    std::printf("valid (makespan %g)\n", schedule.makespan());
    return EXIT_SUCCESS;
  }
  std::printf("INVALID: %s\n", result.message.c_str());
  return EXIT_FAILURE;
}

int cmd_compare(int argc, char** argv) {
  if (argc < 1) throw std::runtime_error("usage: saga compare <instance|-> [schedulers...]");
  const auto inst = read_instance(argv[0]);
  std::vector<std::string> roster;
  for (int i = 1; i < argc; ++i) roster.emplace_back(argv[i]);
  if (roster.empty()) roster = benchmark_scheduler_names();
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::pair<std::string, double>> results;
  for (const auto& name : roster) {
    const double makespan = make_scheduler(name)->schedule(inst).makespan();
    results.emplace_back(name, makespan);
    if (makespan < best) best = makespan;
  }
  std::printf("%-14s %12s %8s\n", "scheduler", "makespan", "ratio");
  for (const auto& [name, makespan] : results) {
    std::printf("%-14s %12.4f %8.3f\n", name.c_str(), makespan,
                best > 0.0 ? makespan / best : 1.0);
  }
  return EXIT_SUCCESS;
}

int cmd_pisa(int argc, char** argv) {
  if (argc < 2) throw std::runtime_error("usage: saga pisa <target> <baseline> [restarts]");
  const std::uint64_t seed = 42;
  const auto target = make_scheduler(argv[0], seed);
  const auto baseline = make_scheduler(argv[1], seed);
  pisa::PisaOptions options;
  options.restarts = argc > 2 ? parse_u64(argv[2], "restarts") : 10;
  const auto result = pisa::run_pisa(*target, *baseline, options, seed);
  std::fprintf(stderr, "best ratio m(%s)/m(%s) = %.4f\n", argv[0], argv[1], result.best_ratio);
  analysis::AtlasEntry entry;
  entry.target = argv[0];
  entry.baseline = argv[1];
  entry.ratio = result.best_ratio;
  entry.seed = seed;
  entry.instance = result.best_instance;
  std::cout << analysis::atlas_entry_to_string(entry);
  return EXIT_SUCCESS;
}

int cmd_atlas_verify(int argc, char** argv) {
  if (argc < 1) throw std::runtime_error("usage: saga atlas-verify <dir>");
  const auto atlas = analysis::Atlas::load(argv[0]);
  const auto mismatches = atlas.verify(1e-9);
  std::printf("%zu entries", atlas.size());
  if (mismatches.empty()) {
    std::printf(", all reproduce\n");
    return EXIT_SUCCESS;
  }
  std::printf(", %zu mismatches:\n", mismatches.size());
  for (const auto& m : mismatches) std::printf("  %s\n", m.c_str());
  return EXIT_FAILURE;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: saga <list|generate|schedule|validate|compare|pisa|atlas-verify> ...\n");
    return EXIT_FAILURE;
  }
  const std::string command = argv[1];
  try {
    if (command == "list") return cmd_list();
    if (command == "generate") return cmd_generate(argc - 2, argv + 2);
    if (command == "schedule") return cmd_schedule(argc - 2, argv + 2);
    if (command == "validate") return cmd_validate(argc - 2, argv + 2);
    if (command == "compare") return cmd_compare(argc - 2, argv + 2);
    if (command == "pisa") return cmd_pisa(argc - 2, argv + 2);
    if (command == "atlas-verify") return cmd_atlas_verify(argc - 2, argv + 2);
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
  }
  return EXIT_FAILURE;
}
