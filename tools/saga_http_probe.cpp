/// saga_http_probe — tiny blocking HTTP client for the serve smoke test
/// (and for poking a running daemon on machines without curl).
///
///   saga_http_probe <port> <method> <path> [body-file|-] [-o outfile]
///
/// Issues one request to 127.0.0.1:<port> and writes the response body to
/// stdout (or `-o outfile`, byte-exact). The status line goes to stderr.
/// Exit codes: 0 for a 2xx response, 1 for any other status or a transport
/// error, 2 for a usage error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/http.hpp"

int main(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: saga_http_probe <port> <method> <path> [body-file|-] [-o outfile]\n";
  std::vector<std::string> positional;
  std::string outfile;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (i + 1 >= argc) {
        std::fputs(kUsage, stderr);
        return 2;
      }
      outfile = argv[++i];
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 3 || positional.size() > 4) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  try {
    const unsigned long port = std::stoul(positional[0]);
    if (port == 0 || port > 65535) throw std::runtime_error("port out of range");

    std::string body;
    if (positional.size() == 4) {
      if (positional[3] == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        body = buffer.str();
      } else {
        std::ifstream in(positional[3], std::ios::binary);
        if (!in) throw std::runtime_error("cannot open " + positional[3]);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        body = buffer.str();
      }
    }

    const saga::serve::HttpResponse resp = saga::serve::HttpClient::fetch(
        static_cast<std::uint16_t>(port), positional[1], positional[2], body);
    std::fprintf(stderr, "saga_http_probe: %d %s\n", resp.status,
                 std::string(saga::serve::status_reason(resp.status)).c_str());
    if (outfile.empty()) {
      std::fwrite(resp.body.data(), 1, resp.body.size(), stdout);
    } else {
      std::ofstream out(outfile, std::ios::binary);
      if (!out) throw std::runtime_error("cannot write " + outfile);
      out.write(resp.body.data(), static_cast<std::streamsize>(resp.body.size()));
    }
    return resp.status >= 200 && resp.status < 300 ? EXIT_SUCCESS : EXIT_FAILURE;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "saga_http_probe: error: %s\n", e.what());
    return EXIT_FAILURE;
  }
}
