#include "datasets/chameleon.hpp"

#include "common/rng.hpp"

namespace saga::datasets {

saga::Network chameleon_network(std::uint64_t seed, std::size_t min_nodes,
                                std::size_t max_nodes) {
  saga::Rng rng(seed);
  const auto nodes = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(min_nodes), static_cast<std::int64_t>(max_nodes)));
  saga::Network net(nodes);
  for (saga::NodeId v = 0; v < nodes; ++v) {
    net.set_speed(v, rng.clipped_gaussian(1.0, 0.25, 0.5, 1.5));
  }
  for (saga::NodeId a = 0; a < nodes; ++a) {
    for (saga::NodeId b = a + 1; b < nodes; ++b) {
      net.set_strength(a, b, saga::Network::kInfiniteStrength);
    }
  }
  return net;
}

}  // namespace saga::datasets
