#include "datasets/source.hpp"

#include <utility>

#include "common/rng.hpp"

namespace saga::datasets {

std::uint64_t dataset_name_hash(std::string_view name) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : name) hash = (hash ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  return hash;
}

GeneratorSource::GeneratorSource(std::string stream, std::size_t size,
                                 std::uint64_t master_seed, Generator generator,
                                 std::string display)
    : display_(display.empty() ? stream : std::move(display)),
      stream_hash_(dataset_name_hash(stream)),
      size_(size),
      master_seed_(master_seed),
      generator_(std::move(generator)) {}

ProblemInstance GeneratorSource::generate(std::size_t index) const {
  return generator_(derive_seed(master_seed_, {stream_hash_, index}));
}

}  // namespace saga::datasets
