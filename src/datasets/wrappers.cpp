#include "datasets/wrappers.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "core/perturbation.hpp"
#include "datasets/dataset.hpp"
#include "datasets/registry.hpp"
#include "graph/network.hpp"
#include "stochastic/stochastic_instance.hpp"

namespace saga::datasets {

namespace {

/// PISA-style adversarial wrapper: applies `level x (tasks + dependencies)`
/// random perturbation steps (all six operators) to each base instance,
/// with weight ranges scaled to the instance's observed maxima — the
/// Section VII "application-specific" recipe generalised to any base
/// dataset.
class PerturbedSource final : public InstanceSource {
 public:
  PerturbedSource(InstanceSourcePtr base, double level, std::uint64_t master_seed)
      : base_(std::move(base)),
        name_("perturbed?base=" + base_->name() + "&level=" + std::to_string(level)),
        level_(level),
        master_seed_(master_seed) {}

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::size_t size() const noexcept override { return base_->size(); }

  [[nodiscard]] ProblemInstance generate(std::size_t index) const override {
    ProblemInstance inst = base_->generate(index);
    const auto config = scaled_config(inst);
    const auto elements = inst.graph.task_count() + inst.graph.dependency_count();
    const auto steps = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(level_ * static_cast<double>(elements))));
    Rng rng(derive_seed(master_seed_, {dataset_name_hash("perturbed"), index}));
    for (std::size_t s = 0; s < steps; ++s) {
      (void)pisa::perturb_in_place(inst, config, rng);
    }
    return inst;
  }

 private:
  /// Weight ranges spanning [floor, 2 x observed max] per category, so
  /// perturbations stay on the instance's natural scale.
  [[nodiscard]] static pisa::PerturbationConfig scaled_config(const ProblemInstance& inst) {
    const auto& g = inst.graph;
    const auto& net = inst.network;
    double max_cost = 0.0;
    for (TaskId t = 0; t < g.task_count(); ++t) max_cost = std::max(max_cost, g.cost(t));
    double max_dep = 0.0;
    for (const auto& [from, to] : g.dependencies()) {
      max_dep = std::max(max_dep, g.dependency_cost(from, to));
    }
    double max_speed = 0.0;
    for (NodeId v = 0; v < net.node_count(); ++v) max_speed = std::max(max_speed, net.speed(v));
    double max_strength = 0.0;  // infinite links (Chameleon) are skipped
    for (NodeId a = 0; a < net.node_count(); ++a) {
      for (NodeId b = a + 1; b < net.node_count(); ++b) {
        const double s = net.strength(a, b);
        if (std::isfinite(s)) max_strength = std::max(max_strength, s);
      }
    }
    pisa::PerturbationConfig config = pisa::PerturbationConfig::generic();
    config.task_cost = {0.0, std::max(1.0, 2.0 * max_cost)};
    config.dependency_cost = {0.0, std::max(1.0, 2.0 * max_dep)};
    config.node_speed = {kMinNetworkWeight, std::max(1.0, 2.0 * max_speed)};
    config.link_strength = {kMinNetworkWeight, std::max(1.0, 2.0 * max_strength)};
    return config;
  }

  InstanceSourcePtr base_;
  std::string name_;
  double level_;
  std::uint64_t master_seed_;
};

/// Stochastic wrapper over src/stochastic: every weight of the base
/// instance becomes a clipped Gaussian with coefficient of variation `cv`,
/// and generate(i) returns one realisation.
class NoisySource final : public InstanceSource {
 public:
  NoisySource(InstanceSourcePtr base, double cv, std::uint64_t master_seed)
      : base_(std::move(base)),
        name_("noisy?base=" + base_->name() + "&cv=" + std::to_string(cv)),
        cv_(cv),
        master_seed_(master_seed) {}

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::size_t size() const noexcept override { return base_->size(); }

  [[nodiscard]] ProblemInstance generate(std::size_t index) const override {
    stochastic::StochasticInstance stochastic(base_->generate(index));
    stochastic.apply_relative_noise(cv_);
    return stochastic.realize(derive_seed(master_seed_, {dataset_name_hash("noisy"), index}));
  }

 private:
  InstanceSourcePtr base_;
  std::string name_;
  double cv_;
  std::uint64_t master_seed_;
};

InstanceSourcePtr make_base(const char* wrapper, const DatasetParams& params,
                            std::uint64_t master_seed) {
  const std::string base = params.get_string("base", "");
  if (base.empty()) {
    throw std::invalid_argument(std::string("dataset '") + wrapper +
                                "' requires base=<dataset spec>, e.g. " + wrapper +
                                "?base=montage");
  }
  return DatasetRegistry::instance().make(base, master_seed);
}

}  // namespace

void register_wrapper_datasets(DatasetRegistry& registry) {
  DatasetDesc perturbed;
  perturbed.name = "perturbed";
  perturbed.summary =
      "adversarial wrapper: PISA-style weight/structure perturbations over a base dataset";
  perturbed.tags = {"wrapper", "adversarial", "extension"};
  perturbed.params = {
      {"base", "base dataset spec (required), e.g. base=montage"},
      {"level", "perturbation intensity: steps per graph element, number in [0, 10] "
                "(default 0.3)"},
  };
  perturbed.factory = [](const DatasetParams& params,
                         std::uint64_t master_seed) -> InstanceSourcePtr {
    const double level = params.get_double("level", 0.3);
    if (!(level >= 0.0 && level <= 10.0)) {
      throw std::invalid_argument("dataset 'perturbed' parameter 'level' must lie in [0, 10]");
    }
    return std::make_unique<PerturbedSource>(make_base("perturbed", params, master_seed),
                                             level, master_seed);
  };
  registry.add(std::move(perturbed));

  DatasetDesc noisy;
  noisy.name = "noisy";
  noisy.aliases = {"stochastic"};
  noisy.summary =
      "stochastic wrapper: clipped-Gaussian weight noise (coefficient of variation cv) over "
      "a base dataset";
  noisy.tags = {"wrapper", "stochastic", "extension"};
  noisy.params = {
      {"base", "base dataset spec (required), e.g. base=blast"},
      {"cv", "coefficient of variation: number in [0, 2] (default 0.2)"},
  };
  noisy.factory = [](const DatasetParams& params,
                     std::uint64_t master_seed) -> InstanceSourcePtr {
    const double cv = params.get_double("cv", 0.2);
    if (!(cv >= 0.0 && cv <= 2.0)) {
      throw std::invalid_argument("dataset 'noisy' parameter 'cv' must lie in [0, 2]");
    }
    return std::make_unique<NoisySource>(make_base("noisy", params, master_seed), cv,
                                         master_seed);
  };
  registry.add(std::move(noisy));
}

}  // namespace saga::datasets
