#pragma once

#include <cstdint>

#include "graph/problem_instance.hpp"

/// \file families.hpp
/// The two hand-crafted adversarial instance families of the paper's
/// Section VI-B case study (Figs. 7 and 8), generalising the patterns PISA
/// discovered in the HEFT-vs-CPoP comparison.

namespace saga::families {

/// Fig. 7 family — HEFT performs poorly against CPoP.
///
/// Fork-join A -> {B, C} -> D where tasks A and D have cost 1, B and C have
/// cost ~ N(10, 10/3) (clipped at 0), and all dependencies cost 1 except
/// one expensive edge ~ N(100, 100/3) on C's chain. (The paper's prose says
/// the expensive edge is C->D while its Fig. 7 drawing puts it on A->C; we
/// follow the drawing, which matches the stated hypothesis that one chain
/// has "a much higher *initial* communication cost".) Network: completely
/// homogeneous (3 nodes, all weights 1), matching "on a completely
/// homogeneous network, for simplicity".
[[nodiscard]] saga::ProblemInstance heft_adversarial_instance(std::uint64_t seed);

/// The illustrative instance of the paper's Fig. 3: a five-task fork-join
/// (t1 fans out to t2, t3, t4, all joining at t5; all task costs 3, fork
/// edges cost 2, join edges cost 3) on a 3-node homogeneous network. With
/// `weakened_network` the links touching node 3 drop from strength 1 to
/// 0.5 (Fig. 3c), the "minor alteration" that flips the HEFT/CPoP ranking.
[[nodiscard]] saga::ProblemInstance fig3_instance(bool weakened_network);

/// Fig. 8 family — CPoP performs poorly against HEFT.
///
/// Wide fork-join A -> {B..J} -> K (9 inner tasks): all task costs
/// ~ N(1, 1/3); fork edges A->inner ~ N(1, 1/3); join edges inner->K
/// ~ N(10, 10/3). Network: 4 nodes; the fastest node has speed 3, the rest
/// ~ N(1, 1/3); the link between the fastest and second-fastest node is
/// ~ N(1, 1/3) (weak) while all other links are ~ N(10, 5/3) (strong).
[[nodiscard]] saga::ProblemInstance cpop_adversarial_instance(std::uint64_t seed);

}  // namespace saga::families
