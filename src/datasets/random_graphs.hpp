#pragma once

#include <cstdint>

#include "graph/problem_instance.hpp"

/// \file random_graphs.hpp
/// The three randomly weighted datasets of the paper's Table II:
/// `in_trees`, `out_trees`, and `chains` (parallel chains), paired with
/// random complete networks. Parameters follow Section IV-B exactly:
///  - in/out-trees: 2-4 levels, branching factor 2 or 3 (both uniform),
///    node/edge weights from a clipped Gaussian (mean 1, std 1/3, min 0,
///    max 2);
///  - parallel chains: 2-5 chains of length 2-5 (uniform), same weights;
///  - networks: complete graphs of 3-5 nodes (uniform), same weights
///    (clamped away from zero, see dataset.hpp).

namespace saga {

/// A complete network with 3-5 nodes and clipped-Gaussian weights.
[[nodiscard]] Network random_network(std::uint64_t seed);

/// In-tree: every task has exactly one successor; data flows from the
/// leaves (sources) toward the single root (sink).
[[nodiscard]] TaskGraph random_in_tree(std::uint64_t seed);

/// Out-tree: mirror image of the in-tree (root is the single source).
[[nodiscard]] TaskGraph random_out_tree(std::uint64_t seed);

/// 2-5 independent chains of 2-5 tasks each.
[[nodiscard]] TaskGraph random_parallel_chains(std::uint64_t seed);

/// Full instances (graph + independent random network).
[[nodiscard]] ProblemInstance in_trees_instance(std::uint64_t seed);
[[nodiscard]] ProblemInstance out_trees_instance(std::uint64_t seed);
[[nodiscard]] ProblemInstance chains_instance(std::uint64_t seed);

}  // namespace saga
