#pragma once

#include <cstdint>

#include "graph/problem_instance.hpp"

/// \file random_graphs.hpp
/// The three randomly weighted datasets of the paper's Table II:
/// `in_trees`, `out_trees`, and `chains` (parallel chains), paired with
/// random complete networks. Parameters follow Section IV-B exactly:
///  - in/out-trees: 2-4 levels, branching factor 2 or 3 (both uniform),
///    node/edge weights from a clipped Gaussian (mean 1, std 1/3, min 0,
///    max 2);
///  - parallel chains: 2-5 chains of length 2-5 (uniform), same weights;
///  - networks: complete graphs of 3-5 nodes (uniform), same weights
///    (clamped away from zero, see dataset.hpp).

namespace saga {

namespace datasets {
class DatasetRegistry;
}  // namespace datasets

/// Spec-string knobs for the tree datasets. Zero values mean "the paper's
/// uniform draw", so a default-constructed tuning reproduces the
/// paper-default instances bit for bit.
struct TreeTuning {
  std::int64_t levels = 0;  // 0: uniform 2-4
  std::int64_t branch = 0;  // 0: uniform 2 or 3
  std::int64_t nodes = 0;   // network nodes; 0: uniform 3-5
};

/// Spec-string knobs for the parallel-chains dataset.
struct ChainsTuning {
  std::int64_t chains = 0;  // 0: uniform 2-5
  std::int64_t length = 0;  // 0: uniform 2-5
  std::int64_t nodes = 0;   // network nodes; 0: uniform 3-5
};

/// A complete network with clipped-Gaussian weights; `nodes` fixes the node
/// count (0: the paper's uniform 3-5 draw).
[[nodiscard]] Network random_network(std::uint64_t seed, std::int64_t nodes = 0);

/// In-tree: every task has exactly one successor; data flows from the
/// leaves (sources) toward the single root (sink).
[[nodiscard]] TaskGraph random_in_tree(std::uint64_t seed, const TreeTuning& tuning = {});

/// Out-tree: mirror image of the in-tree (root is the single source).
[[nodiscard]] TaskGraph random_out_tree(std::uint64_t seed, const TreeTuning& tuning = {});

/// 2-5 independent chains of 2-5 tasks each (unless tuned).
[[nodiscard]] TaskGraph random_parallel_chains(std::uint64_t seed,
                                               const ChainsTuning& tuning = {});

/// Full instances (graph + independent random network).
[[nodiscard]] ProblemInstance in_trees_instance(std::uint64_t seed);
[[nodiscard]] ProblemInstance in_trees_instance(std::uint64_t seed, const TreeTuning& tuning);
[[nodiscard]] ProblemInstance out_trees_instance(std::uint64_t seed);
[[nodiscard]] ProblemInstance out_trees_instance(std::uint64_t seed, const TreeTuning& tuning);
[[nodiscard]] ProblemInstance chains_instance(std::uint64_t seed);
[[nodiscard]] ProblemInstance chains_instance(std::uint64_t seed, const ChainsTuning& tuning);

/// Registers in_trees, out_trees, and chains (Table II order).
void register_random_graph_datasets(datasets::DatasetRegistry& registry);

}  // namespace saga
