#pragma once

/// \file register.hpp (datasets)
/// Registration hooks for the built-in datasets. Each function lives in its
/// family's own .cpp (next to the generator it describes) and adds that
/// family's DatasetDesc(s) to the registry; register.cpp invokes them all,
/// in the paper's Table II order followed by the extension order. Direct
/// calls (rather than static-initializer tricks) keep registration
/// deterministic and immune to static-library dead-stripping — the same
/// scheme as schedulers/register.hpp.

namespace saga::datasets {

class DatasetRegistry;

}  // namespace saga::datasets

// The per-family hooks are declared next to their generators:
//   register_random_graph_datasets   datasets/random_graphs.hpp
//   register_<workflow>_dataset      datasets/workflows/<workflow>.hpp (x9)
//   register_riotbench_datasets      datasets/iot/riotbench.hpp
//   register_erdos_dataset           datasets/erdos.hpp
//   register_wrapper_datasets        datasets/wrappers.hpp
