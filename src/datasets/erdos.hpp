#pragma once

#include <cstdint>

#include "graph/problem_instance.hpp"

/// \file erdos.hpp
/// Erdős–Rényi style random DAGs — an extension family beyond the paper's
/// Table II for scale and density sweeps. Tasks are ordered 0..n-1 and each
/// forward pair (i, j), i < j, is an edge independently with probability p,
/// so every draw is acyclic by construction. Task and edge weights follow
/// the Table II random-dataset distribution (clipped Gaussian, mean 1,
/// std 1/3, in [0, 2]). The network is complete; with heterogeneity factor
/// h > 1, node speeds and link strengths are additionally scaled by a
/// log-uniform factor in [1/h, h] (h = 1 reproduces the homogeneous-ish
/// clipped-Gaussian network of the tree/chain datasets).

namespace saga::datasets {

class DatasetRegistry;

struct ErdosTuning {
  std::int64_t n = 32;     // tasks
  double p = 0.1;          // forward-edge probability
  double hetero = 1.0;     // network heterogeneity factor (>= 1)
  std::int64_t nodes = 0;  // network nodes; 0: uniform 4-8
};

[[nodiscard]] saga::ProblemInstance erdos_instance(std::uint64_t seed,
                                                   const ErdosTuning& tuning = {});

void register_erdos_dataset(DatasetRegistry& registry);

}  // namespace saga::datasets
