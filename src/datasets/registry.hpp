#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/registry.hpp"
#include "common/spec.hpp"
#include "datasets/dataset.hpp"
#include "datasets/source.hpp"

/// \file registry.hpp (datasets)
/// Descriptor-based dataset registry, the exact parallel of the scheduler
/// registry (sched/registry.hpp). Every dataset self-registers a
/// `DatasetDesc` (see its .cpp under src/datasets/) carrying its name,
/// aliases, tags, declared parameters, paper instance count, and a factory
/// taking a typed key=value parameter map plus the master seed. Consumers
/// construct streaming InstanceSources from spec strings
/// (`montage?n=200&ccr=0.5`, `erdos?n=64&p=0.1&hetero=2.0`, see
/// common/spec.hpp) or enumerate the roster by tag, so dataset scenarios
/// are data rather than hand-maintained C++ name lists.
///
/// Standard tags:
///   table2      the paper's Table II set (16 datasets)
///   random      randomly weighted graph families (trees, chains, erdos)
///   workflow    the nine scientific-workflow generators
///   iot         the four RIoTBench streaming applications
///   extension   families beyond the paper's Table II (erdos, wrappers)
///   wrapper     composable sources wrapping a `base=` dataset
///   adversarial PISA-style structural/weight perturbations (perturbed)
///   stochastic  weight-noise realisations over src/stochastic (noisy)
///
/// Every dataset accepts the universal `seed=` key, which overrides the
/// master seed passed to the factory.

namespace saga::datasets {

/// Typed parameter access handed to dataset factories by the registry;
/// conversion failures name the dataset and the offending key.
class DatasetParams : public SpecParams {
 public:
  DatasetParams(std::string dataset,
                const std::vector<std::pair<std::string, std::string>>* params)
      : SpecParams("dataset", std::move(dataset), params) {}
};

/// Self-description one dataset registers.
struct DatasetDesc {
  std::string name;                  // canonical, paper spelling ("montage")
  std::vector<std::string> aliases;  // alternative spellings; lookup is
                                     // case-insensitive on top of these
  std::string summary;               // one-line family description
  std::vector<std::string> tags;     // see the standard tags above
  std::size_t paper_count = 0;       // Table II instance count (0: no paper
                                     // default, e.g. wrapping sources)
  std::vector<ParamDesc> params;     // accepted spec keys (besides `seed`)
  std::function<InstanceSourcePtr(const DatasetParams&, std::uint64_t master_seed)> factory;

  [[nodiscard]] bool has_tag(std::string_view tag) const;
  [[nodiscard]] const ParamDesc* find_param(std::string_view key) const;
};

/// Lookup/enumeration mechanics (add, find, resolve with "did you mean",
/// tags, names in registration order — Table II order, then extension
/// registration order) are shared with the scheduler registry via
/// common/registry.hpp.
class DatasetRegistry : public DescriptorRegistry<DatasetDesc> {
 public:
  DatasetRegistry() : DescriptorRegistry("dataset", "saga list --datasets") {}

  /// The process-wide registry; the built-in datasets are registered on
  /// first access (see datasets/register.cpp).
  [[nodiscard]] static DatasetRegistry& instance();

  /// Constructs a streaming source from a parsed spec. Unknown names and
  /// unknown parameter keys throw std::invalid_argument naming the offender
  /// (with a nearest-name suggestion). A `seed=` spec parameter overrides
  /// `master_seed`. The source's name() is the canonical dataset name, or
  /// the full spec string when parameters were given.
  [[nodiscard]] InstanceSourcePtr make(const Spec& spec, std::uint64_t master_seed) const;

  /// Parses `spec_string` and constructs (see common/spec.hpp for the
  /// grammar).
  [[nodiscard]] InstanceSourcePtr make(std::string_view spec_string,
                                       std::uint64_t master_seed) const;
};

/// Shared range validation for factory parameters; throws
/// std::invalid_argument naming the dataset and key unless `value` lies in
/// [lo, hi] — or equals 0 when `zero_is_default` (the "paper draw"
/// sentinel).
void check_param_range(const std::string& dataset, const char* key, std::int64_t value,
                       std::int64_t lo, std::int64_t hi, bool zero_is_default = true);

/// Registers the built-in datasets (defined in datasets/register.cpp; each
/// descriptor lives in its family's own .cpp). Called once by
/// DatasetRegistry::instance().
void register_builtin_datasets(DatasetRegistry& registry);

/// ---- Thin compatibility shims over the registry ------------------------
/// These preserve the historical entry points bit for bit: paper-default
/// instances are identical through the shims and through spec strings (the
/// golden digest suite pins this).

/// A single instance of the named dataset (name or spec string),
/// deterministic in (master_seed, index). Throws std::invalid_argument for
/// unknown names, with a nearest-name suggestion.
[[nodiscard]] saga::ProblemInstance generate_instance(const std::string& dataset,
                                                      std::uint64_t master_seed,
                                                      std::size_t index);

/// Dataset names in the paper's Table II order, with paper instance counts
/// (1000 for random/IoT datasets, 100 for scientific workflows).
[[nodiscard]] const std::vector<saga::DatasetSpec>& all_dataset_specs();

/// The nine scientific-workflow dataset names (Section VII uses these).
[[nodiscard]] const std::vector<std::string>& workflow_dataset_names();

/// Eagerly materializes `count` instances of the named dataset (indices
/// 0..count-1). Prefer streaming through DatasetRegistry::make + generate.
[[nodiscard]] saga::Dataset generate_dataset(const std::string& dataset,
                                             std::uint64_t master_seed, std::size_t count);

}  // namespace saga::datasets
