#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "datasets/dataset.hpp"

/// \file registry.hpp (datasets)
/// Name-based access to the 16 dataset generators of the paper's Table II.

namespace saga::datasets {

/// A single instance of the named dataset, deterministic in (master_seed,
/// index). Throws std::invalid_argument for unknown names.
[[nodiscard]] saga::ProblemInstance generate_instance(const std::string& dataset,
                                                      std::uint64_t master_seed,
                                                      std::size_t index);

/// Dataset names in the paper's Table II order, with paper instance counts
/// (1000 for random/IoT datasets, 100 for scientific workflows).
[[nodiscard]] const std::vector<saga::DatasetSpec>& all_dataset_specs();

/// The nine scientific-workflow dataset names (Section VII uses these).
[[nodiscard]] const std::vector<std::string>& workflow_dataset_names();

/// Generates `count` instances of the named dataset (indices 0..count-1).
[[nodiscard]] saga::Dataset generate_dataset(const std::string& dataset,
                                             std::uint64_t master_seed, std::size_t count);

}  // namespace saga::datasets
