#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/network.hpp"

/// \file chameleon.hpp
/// Chameleon-cloud inspired networks (paper Section IV-B): machine speeds
/// sampled from a distribution fitted to WfCommons execution traces, and —
/// because Chameleon uses a shared filesystem whose transfer cost is
/// absorbed into task runtimes — infinite communication strength between
/// all nodes.

namespace saga::datasets {

/// Complete network with `min_nodes`..`max_nodes` nodes (uniform), speeds
/// from a clipped Gaussian around 1 (Chameleon nodes are near-homogeneous
/// bare-metal instances: mean 1, std 0.25, clipped to [0.5, 1.5]), and
/// infinite link strengths.
[[nodiscard]] saga::Network chameleon_network(std::uint64_t seed, std::size_t min_nodes = 4,
                                              std::size_t max_nodes = 12);

}  // namespace saga::datasets
