#include "datasets/families.hpp"

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "datasets/dataset.hpp"

namespace saga::families {

using saga::NodeId;
using saga::TaskId;

saga::ProblemInstance heft_adversarial_instance(std::uint64_t seed) {
  saga::Rng rng(seed);
  saga::ProblemInstance inst;
  auto& g = inst.graph;
  const auto inner_cost = [&] {
    return std::max(0.0, rng.gaussian(10.0, 10.0 / 3.0));
  };
  const TaskId a = g.add_task("A", 1.0);
  const TaskId b = g.add_task("B", inner_cost());
  const TaskId c = g.add_task("C", inner_cost());
  const TaskId d = g.add_task("D", 1.0);
  g.add_dependency(a, b, 1.0);
  g.add_dependency(a, c, std::max(0.0, rng.gaussian(100.0, 100.0 / 3.0)));
  g.add_dependency(b, d, 1.0);
  g.add_dependency(c, d, 1.0);

  inst.network = saga::Network(3);  // all speeds/strengths at their default of 1
  return inst;
}

saga::ProblemInstance fig3_instance(bool weakened_network) {
  saga::ProblemInstance inst;
  auto& g = inst.graph;
  const TaskId t1 = g.add_task("1", 3.0);
  const TaskId t2 = g.add_task("2", 3.0);
  const TaskId t3 = g.add_task("3", 3.0);
  const TaskId t4 = g.add_task("4", 3.0);
  const TaskId t5 = g.add_task("5", 3.0);
  for (TaskId mid : {t2, t3, t4}) {
    g.add_dependency(t1, mid, 2.0);
    g.add_dependency(mid, t5, 3.0);
  }
  inst.network = saga::Network(3);  // speeds and strengths default to 1
  if (weakened_network) {
    inst.network.set_strength(0, 2, 0.5);  // s(1,3)
    inst.network.set_strength(1, 2, 0.5);  // s(2,3)
  }
  return inst;
}

saga::ProblemInstance cpop_adversarial_instance(std::uint64_t seed) {
  saga::Rng rng(seed);
  saga::ProblemInstance inst;
  auto& g = inst.graph;
  const auto small = [&] {
    return std::max(saga::kMinNetworkWeight, rng.gaussian(1.0, 1.0 / 3.0));
  };

  const TaskId a = g.add_task("A", small());
  std::vector<TaskId> inner;
  for (char name = 'B'; name <= 'J'; ++name) {
    inner.push_back(g.add_task(std::string(1, name), small()));
  }
  const TaskId k = g.add_task("K", small());
  for (TaskId t : inner) {
    g.add_dependency(a, t, small());
    g.add_dependency(t, k, std::max(0.0, rng.gaussian(10.0, 10.0 / 3.0)));
  }

  // Node 0 is the fast node (speed 3); node 1 is typically second-fastest.
  inst.network = saga::Network(4);
  inst.network.set_speed(0, 3.0);
  for (NodeId v = 1; v < 4; ++v) inst.network.set_speed(v, small());
  // Weak link between the two fastest nodes, strong links elsewhere.
  NodeId second = 1;
  for (NodeId v = 2; v < 4; ++v) {
    if (inst.network.speed(v) > inst.network.speed(second)) second = v;
  }
  for (NodeId x = 0; x < 4; ++x) {
    for (NodeId y = x + 1; y < 4; ++y) {
      const bool weak = (x == 0 && y == second) || (y == 0 && x == second);
      const double strength =
          weak ? small() : std::max(saga::kMinNetworkWeight, rng.gaussian(10.0, 5.0 / 3.0));
      inst.network.set_strength(x, y, strength);
    }
  }
  return inst;
}

}  // namespace saga::families
