#include "datasets/registry.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "common/nearest.hpp"

namespace saga::datasets {

bool DatasetDesc::has_tag(std::string_view tag) const {
  for (const auto& t : tags) {
    if (t == tag) return true;
  }
  return false;
}

const ParamDesc* DatasetDesc::find_param(std::string_view key) const {
  for (const auto& param : params) {
    if (param.key == key) return &param;
  }
  return nullptr;
}

DatasetRegistry& DatasetRegistry::instance() {
  static DatasetRegistry& registry = *[] {
    auto* r = new DatasetRegistry;  // never destroyed: sources may be
                                    // constructed from static destructors
    register_builtin_datasets(*r);
    return r;
  }();
  return registry;
}

namespace {

/// Wraps a factory-built source so name() reports the spec string the
/// consumer actually wrote (InstanceSource's documented contract for
/// parameterized sources).
class RenamedSource final : public InstanceSource {
 public:
  RenamedSource(InstanceSourcePtr inner, std::string name)
      : inner_(std::move(inner)), name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::size_t size() const noexcept override { return inner_->size(); }
  [[nodiscard]] ProblemInstance generate(std::size_t index) const override {
    return inner_->generate(index);
  }

 private:
  InstanceSourcePtr inner_;
  std::string name_;
};

}  // namespace

InstanceSourcePtr DatasetRegistry::make(const Spec& spec, std::uint64_t master_seed) const {
  const DatasetDesc& desc = resolve(spec.name);
  std::vector<std::string> valid_keys;
  valid_keys.reserve(desc.params.size() + 1);
  for (const auto& param : desc.params) valid_keys.push_back(param.key);
  valid_keys.emplace_back("seed");
  for (const auto& [key, value] : spec.params) {
    if (key == "seed" || desc.find_param(key) != nullptr) continue;
    std::string message = "dataset '" + desc.name + "' has no parameter '" + key + "'" +
                          did_you_mean(key, valid_keys);
    message += desc.params.empty() ? "; it only accepts 'seed'"
                                   : "; valid parameters: " + join(valid_keys, ", ");
    throw std::invalid_argument(message);
  }
  const DatasetParams params(desc.name, &spec.params);
  InstanceSourcePtr source = desc.factory(params, params.get_u64("seed", master_seed));
  if (spec.params.empty()) return source;
  return std::make_unique<RenamedSource>(std::move(source), spec.to_string());
}

InstanceSourcePtr DatasetRegistry::make(std::string_view spec_string,
                                        std::uint64_t master_seed) const {
  return make(parse_spec(spec_string, "dataset"), master_seed);
}

void check_param_range(const std::string& dataset, const char* key, std::int64_t value,
                       std::int64_t lo, std::int64_t hi, bool zero_is_default) {
  if (zero_is_default && value == 0) return;
  if (value >= lo && value <= hi) return;
  throw std::invalid_argument("dataset '" + dataset + "' parameter '" + key +
                              "' must lie in [" + std::to_string(lo) + ", " +
                              std::to_string(hi) + "]" +
                              (zero_is_default ? " (or 0 for the paper draw)" : ""));
}

/// ---- Compatibility shims ------------------------------------------------

saga::ProblemInstance generate_instance(const std::string& dataset, std::uint64_t master_seed,
                                        std::size_t index) {
  return DatasetRegistry::instance().make(dataset, master_seed)->generate(index);
}

const std::vector<saga::DatasetSpec>& all_dataset_specs() {
  static const std::vector<saga::DatasetSpec> specs = [] {
    std::vector<saga::DatasetSpec> out;
    for (const auto& desc : DatasetRegistry::instance().descriptors()) {
      if (desc.has_tag("table2")) out.push_back({desc.name, desc.paper_count});
    }
    return out;
  }();
  return specs;
}

const std::vector<std::string>& workflow_dataset_names() {
  static const std::vector<std::string> names =
      DatasetRegistry::instance().names("workflow");
  return names;
}

saga::Dataset generate_dataset(const std::string& dataset, std::uint64_t master_seed,
                               std::size_t count) {
  const auto source = DatasetRegistry::instance().make(dataset, master_seed);
  saga::Dataset out;
  out.name = dataset;
  out.instances.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.instances.push_back(source->generate(i));
  return out;
}

}  // namespace saga::datasets
