#include "datasets/registry.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "datasets/iot/riotbench.hpp"
#include "datasets/random_graphs.hpp"
#include "datasets/workflows/blast.hpp"
#include "datasets/workflows/bwa.hpp"
#include "datasets/workflows/cycles.hpp"
#include "datasets/workflows/epigenomics.hpp"
#include "datasets/workflows/genome.hpp"
#include "datasets/workflows/montage.hpp"
#include "datasets/workflows/seismology.hpp"
#include "datasets/workflows/soykb.hpp"
#include "datasets/workflows/srasearch.hpp"

namespace saga::datasets {

namespace {

using Generator = saga::ProblemInstance (*)(std::uint64_t seed);

struct Entry {
  const char* name;
  Generator generator;
  std::size_t paper_count;
};

constexpr std::size_t kRandomCount = 1000;
constexpr std::size_t kWorkflowCount = 100;
constexpr std::size_t kIotCount = 1000;

const Entry kEntries[] = {
    {"in_trees", saga::in_trees_instance, kRandomCount},
    {"out_trees", saga::out_trees_instance, kRandomCount},
    {"chains", saga::chains_instance, kRandomCount},
    {"blast", saga::workflows::blast_instance, kWorkflowCount},
    {"bwa", saga::workflows::bwa_instance, kWorkflowCount},
    {"cycles", saga::workflows::cycles_instance, kWorkflowCount},
    {"epigenomics", saga::workflows::epigenomics_instance, kWorkflowCount},
    {"genome", saga::workflows::genome_instance, kWorkflowCount},
    {"montage", saga::workflows::montage_instance, kWorkflowCount},
    {"seismology", saga::workflows::seismology_instance, kWorkflowCount},
    {"soykb", saga::workflows::soykb_instance, kWorkflowCount},
    {"srasearch", saga::workflows::srasearch_instance, kWorkflowCount},
    {"etl", saga::iot::etl_instance, kIotCount},
    {"predict", saga::iot::predict_instance, kIotCount},
    {"stats", saga::iot::stats_instance, kIotCount},
    {"train", saga::iot::train_instance, kIotCount},
};

const Entry& find_entry(const std::string& dataset) {
  for (const auto& entry : kEntries) {
    if (dataset == entry.name) return entry;
  }
  throw std::invalid_argument("unknown dataset: " + dataset);
}

}  // namespace

saga::ProblemInstance generate_instance(const std::string& dataset, std::uint64_t master_seed,
                                        std::size_t index) {
  const auto& entry = find_entry(dataset);
  // Mix the dataset name into the stream so same-index instances of
  // different datasets are unrelated.
  std::uint64_t name_hash = 0xcbf29ce484222325ULL;
  for (char c : dataset) name_hash = (name_hash ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  return entry.generator(saga::derive_seed(master_seed, {name_hash, index}));
}

const std::vector<saga::DatasetSpec>& all_dataset_specs() {
  static const std::vector<saga::DatasetSpec> specs = [] {
    std::vector<saga::DatasetSpec> out;
    for (const auto& entry : kEntries) out.push_back({entry.name, entry.paper_count});
    return out;
  }();
  return specs;
}

const std::vector<std::string>& workflow_dataset_names() {
  static const std::vector<std::string> names = {
      "blast",   "bwa",        "cycles", "epigenomics", "genome",
      "montage", "seismology", "soykb",  "srasearch"};
  return names;
}

saga::Dataset generate_dataset(const std::string& dataset, std::uint64_t master_seed,
                               std::size_t count) {
  saga::Dataset out;
  out.name = dataset;
  out.instances.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.instances.push_back(generate_instance(dataset, master_seed, i));
  }
  return out;
}

}  // namespace saga::datasets
