#pragma once

/// \file wrappers.hpp
/// Composable wrapping sources: datasets whose instances are derived from
/// another registered dataset (`base=`), making adversarial and noisy
/// scenarios first-class spec strings:
///
///   perturbed?base=montage&level=0.3   PISA-style random perturbations
///                                      (weights and structure) applied to
///                                      each base instance, ranges scaled
///                                      to the instance's observed weights
///   noisy?base=blast&cv=0.2            stochastic realisation: every
///                                      weight resampled from a clipped
///                                      Gaussian centred on its base value
///                                      with coefficient of variation cv
///                                      (src/stochastic)
///
/// The `base` value is itself resolved through the DatasetRegistry, so it
/// may carry its own parameters as long as they need no '&' separator
/// (e.g. `perturbed?base=montage?n=50&level=0.5` — '&'-separated keys bind
/// to the outer spec).

namespace saga::datasets {

class DatasetRegistry;

void register_wrapper_datasets(DatasetRegistry& registry);

}  // namespace saga::datasets
