#include "datasets/dataset.hpp"

// Dataset is a plain aggregate; this TU exists so the module has a home for
// future out-of-line helpers and to keep one .cpp per module rule intact.

namespace saga {}  // namespace saga
