#include "datasets/iot/edge_fog_cloud.hpp"

#include "common/rng.hpp"

namespace saga::iot {

namespace {

enum class Tier { kEdge, kFog, kCloud };

Tier tier_of(const EdgeFogCloudShape& shape, saga::NodeId v) {
  if (v < shape.edge_nodes) return Tier::kEdge;
  if (v < shape.edge_nodes + shape.fog_nodes) return Tier::kFog;
  return Tier::kCloud;
}

double tier_speed(Tier t) {
  switch (t) {
    case Tier::kEdge: return 1.0;
    case Tier::kFog: return 6.0;
    case Tier::kCloud: return 50.0;
  }
  return 1.0;
}

double link_strength(Tier a, Tier b) {
  if (a == Tier::kCloud && b == Tier::kCloud) return saga::Network::kInfiniteStrength;
  const bool has_fog = a == Tier::kFog || b == Tier::kFog;
  const bool has_edge = a == Tier::kEdge || b == Tier::kEdge;
  if (has_fog && !has_edge) return 100.0;  // fog-fog, fog-cloud
  return 60.0;                             // edge-fog, edge-cloud, edge-edge
}

}  // namespace

EdgeFogCloudShape sample_edge_fog_cloud_shape(std::uint64_t seed) {
  saga::Rng rng(seed);
  EdgeFogCloudShape shape;
  shape.edge_nodes = static_cast<std::size_t>(rng.uniform_int(75, 125));
  shape.fog_nodes = static_cast<std::size_t>(rng.uniform_int(3, 7));
  shape.cloud_nodes = static_cast<std::size_t>(rng.uniform_int(1, 10));
  return shape;
}

saga::Network make_edge_fog_cloud_network(const EdgeFogCloudShape& shape) {
  const std::size_t total = shape.edge_nodes + shape.fog_nodes + shape.cloud_nodes;
  saga::Network net(total);
  for (saga::NodeId v = 0; v < total; ++v) {
    net.set_speed(v, tier_speed(tier_of(shape, v)));
  }
  for (saga::NodeId a = 0; a < total; ++a) {
    for (saga::NodeId b = a + 1; b < total; ++b) {
      net.set_strength(a, b, link_strength(tier_of(shape, a), tier_of(shape, b)));
    }
  }
  return net;
}

saga::Network edge_fog_cloud_network(std::uint64_t seed) {
  return make_edge_fog_cloud_network(sample_edge_fog_cloud_shape(seed));
}

}  // namespace saga::iot
