#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "graph/problem_instance.hpp"

/// \file riotbench.hpp
/// IoT data-streaming task graphs modelled on RIoTBench (Shukla, Chaturvedi
/// & Simmhan 2017), following the generation procedure of Varshney et al.
/// 2022 as described in the paper's Section IV-B:
///   - task costs: clipped Gaussian (mean 35, std 25/3, min 10, max 60);
///   - application input size: clipped Gaussian (mean 1000, std 500/3,
///     min 500, max 1500);
///   - dependency weights: derived from the tasks' known input/output
///     ratios — each stage forwards data_out = ratio × data_in to every
///     successor.
/// Four applications: ETL, STATS, PREDICT, and TRAIN.

namespace saga::iot {

[[nodiscard]] saga::TaskGraph make_etl_graph(saga::Rng& rng);
[[nodiscard]] saga::TaskGraph make_stats_graph(saga::Rng& rng);
[[nodiscard]] saga::TaskGraph make_predict_graph(saga::Rng& rng);
[[nodiscard]] saga::TaskGraph make_train_graph(saga::Rng& rng);

/// Full instances paired with an Edge/Fog/Cloud network.
[[nodiscard]] saga::ProblemInstance etl_instance(std::uint64_t seed);
[[nodiscard]] saga::ProblemInstance stats_instance(std::uint64_t seed);
[[nodiscard]] saga::ProblemInstance predict_instance(std::uint64_t seed);
[[nodiscard]] saga::ProblemInstance train_instance(std::uint64_t seed);

}  // namespace saga::iot
