#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "graph/problem_instance.hpp"

/// \file riotbench.hpp
/// IoT data-streaming task graphs modelled on RIoTBench (Shukla, Chaturvedi
/// & Simmhan 2017), following the generation procedure of Varshney et al.
/// 2022 as described in the paper's Section IV-B:
///   - task costs: clipped Gaussian (mean 35, std 25/3, min 10, max 60);
///   - application input size: clipped Gaussian (mean 1000, std 500/3,
///     min 500, max 1500);
///   - dependency weights: derived from the tasks' known input/output
///     ratios — each stage forwards data_out = ratio × data_in to every
///     successor.
/// Four applications: ETL, STATS, PREDICT, and TRAIN.

namespace saga::datasets {
class DatasetRegistry;
}  // namespace saga::datasets

namespace saga::iot {

[[nodiscard]] saga::TaskGraph make_etl_graph(saga::Rng& rng);
[[nodiscard]] saga::TaskGraph make_stats_graph(saga::Rng& rng);
[[nodiscard]] saga::TaskGraph make_predict_graph(saga::Rng& rng);
[[nodiscard]] saga::TaskGraph make_train_graph(saga::Rng& rng);

/// Spec-string knobs for the Edge/Fog/Cloud topology. Zero values mean
/// "the paper's uniform draw", so a default-constructed tuning reproduces
/// the paper-default instances bit for bit.
struct IotTuning {
  std::int64_t edge = 0;   // edge nodes; 0: uniform 75-125
  std::int64_t fog = 0;    // fog nodes; 0: uniform 3-7
  std::int64_t cloud = 0;  // cloud nodes; 0: uniform 1-10
};

/// Full instances paired with an Edge/Fog/Cloud network.
[[nodiscard]] saga::ProblemInstance etl_instance(std::uint64_t seed);
[[nodiscard]] saga::ProblemInstance etl_instance(std::uint64_t seed, const IotTuning& tuning);
[[nodiscard]] saga::ProblemInstance stats_instance(std::uint64_t seed);
[[nodiscard]] saga::ProblemInstance stats_instance(std::uint64_t seed, const IotTuning& tuning);
[[nodiscard]] saga::ProblemInstance predict_instance(std::uint64_t seed);
[[nodiscard]] saga::ProblemInstance predict_instance(std::uint64_t seed,
                                                     const IotTuning& tuning);
[[nodiscard]] saga::ProblemInstance train_instance(std::uint64_t seed);
[[nodiscard]] saga::ProblemInstance train_instance(std::uint64_t seed, const IotTuning& tuning);

/// Registers etl, predict, stats, and train (Table II order).
void register_riotbench_datasets(saga::datasets::DatasetRegistry& registry);

}  // namespace saga::iot
