#include "datasets/iot/riotbench.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "datasets/iot/edge_fog_cloud.hpp"
#include "datasets/registry.hpp"

namespace saga::iot {

namespace {

using saga::TaskGraph;
using saga::TaskId;

/// Builder that wires stages together while propagating data sizes through
/// the graph according to each stage's input/output ratio.
class StreamGraphBuilder {
 public:
  explicit StreamGraphBuilder(saga::Rng& rng) : rng_(&rng) {
    input_size_ = rng.clipped_gaussian(1000.0, 500.0 / 3.0, 500.0, 1500.0);
  }

  /// Adds a stage. `inputs` lists producing stages; a source stage (empty
  /// inputs) consumes the application input. `ratio` is the stage's
  /// output/input data ratio.
  TaskId stage(const std::string& name, std::vector<TaskId> inputs, double ratio) {
    const double cost = rng_->clipped_gaussian(35.0, 25.0 / 3.0, 10.0, 60.0);
    const TaskId id = graph_.add_task(name, cost);
    double data_in = 0.0;
    if (inputs.empty()) {
      data_in = input_size_;
    } else {
      for (TaskId producer : inputs) {
        graph_.add_dependency(producer, id, data_out_[producer]);
        data_in += data_out_[producer];
      }
    }
    data_out_.resize(graph_.task_count(), 0.0);
    data_out_[id] = data_in * ratio;
    return id;
  }

  [[nodiscard]] TaskGraph take() { return std::move(graph_); }

 private:
  saga::Rng* rng_;
  TaskGraph graph_;
  std::vector<double> data_out_;
  double input_size_ = 0.0;
};

}  // namespace

TaskGraph make_etl_graph(saga::Rng& rng) {
  // Extract-Transform-Load: a linear sensing pipeline with a dual-sink tail.
  StreamGraphBuilder b(rng);
  const TaskId source = b.stage("mqtt_source", {}, 1.0);
  const TaskId parse = b.stage("senml_parse", {source}, 0.9);
  const TaskId range = b.stage("range_filter", {parse}, 0.95);
  const TaskId bloom = b.stage("bloom_filter", {range}, 0.95);
  const TaskId interp = b.stage("interpolate", {bloom}, 1.0);
  const TaskId join = b.stage("join", {interp}, 1.0);
  const TaskId annotate = b.stage("annotate", {join}, 1.1);
  b.stage("azure_insert", {annotate}, 0.1);
  b.stage("mqtt_publish", {annotate}, 0.1);
  return b.take();
}

TaskGraph make_stats_graph(saga::Rng& rng) {
  // Statistical summarisation: parse fans out to three windowed statistics
  // whose outputs are grouped and plotted.
  StreamGraphBuilder b(rng);
  const TaskId source = b.stage("mqtt_source", {}, 1.0);
  const TaskId parse = b.stage("senml_parse", {source}, 0.9);
  const TaskId average = b.stage("block_window_average", {parse}, 0.2);
  const TaskId kalman = b.stage("kalman_filter", {parse}, 1.0);
  const TaskId window = b.stage("sliding_window_count", {kalman}, 0.2);
  const TaskId distinct = b.stage("distinct_approx_count", {parse}, 0.2);
  const TaskId group = b.stage("group_viz", {average, window, distinct}, 0.5);
  b.stage("blob_upload", {group}, 0.1);
  return b.take();
}

TaskGraph make_predict_graph(saga::Rng& rng) {
  // Online prediction: two parallel models score each message; results are
  // blended and published.
  StreamGraphBuilder b(rng);
  const TaskId source = b.stage("mqtt_source", {}, 1.0);
  const TaskId parse = b.stage("senml_parse", {source}, 0.9);
  const TaskId tree = b.stage("decision_tree_classify", {parse}, 0.3);
  const TaskId regression = b.stage("linear_regression_predict", {parse}, 0.3);
  const TaskId average = b.stage("average", {parse}, 0.2);
  const TaskId error = b.stage("error_estimate", {regression, average}, 0.3);
  const TaskId publish = b.stage("mqtt_publish", {tree, error}, 0.5);
  (void)publish;
  return b.take();
}

TaskGraph make_train_graph(saga::Rng& rng) {
  // Periodic model retraining: fetch training data, train two models,
  // validate and upload.
  StreamGraphBuilder b(rng);
  const TaskId timer = b.stage("timer_source", {}, 1.0);
  const TaskId fetch = b.stage("table_read", {timer}, 5.0);
  const TaskId tree = b.stage("decision_tree_train", {fetch}, 0.2);
  const TaskId regression = b.stage("linear_regression_train", {fetch}, 0.2);
  const TaskId annotate = b.stage("annotate", {tree, regression}, 1.0);
  b.stage("blob_write", {annotate}, 1.0);
  b.stage("mqtt_publish", {annotate}, 0.1);
  return b.take();
}

namespace {

saga::ProblemInstance make_instance(TaskGraph (*make_graph)(saga::Rng&), std::uint64_t seed,
                                    std::uint64_t salt, const IotTuning& tuning) {
  saga::Rng rng(seed);
  saga::ProblemInstance inst;
  inst.graph = make_graph(rng);
  // Sample the paper's shape first (keeping the default path bit-identical),
  // then apply any fixed tier sizes from the tuning.
  EdgeFogCloudShape shape = sample_edge_fog_cloud_shape(saga::derive_seed(seed, {salt}));
  if (tuning.edge > 0) shape.edge_nodes = static_cast<std::size_t>(tuning.edge);
  if (tuning.fog > 0) shape.fog_nodes = static_cast<std::size_t>(tuning.fog);
  if (tuning.cloud > 0) shape.cloud_nodes = static_cast<std::size_t>(tuning.cloud);
  inst.network = make_edge_fog_cloud_network(shape);
  return inst;
}

}  // namespace

saga::ProblemInstance etl_instance(std::uint64_t seed, const IotTuning& tuning) {
  return make_instance(make_etl_graph, seed, 0xe71ULL, tuning);
}

saga::ProblemInstance stats_instance(std::uint64_t seed, const IotTuning& tuning) {
  return make_instance(make_stats_graph, seed, 0x57a75ULL, tuning);
}

saga::ProblemInstance predict_instance(std::uint64_t seed, const IotTuning& tuning) {
  return make_instance(make_predict_graph, seed, 0x94ed1c7ULL, tuning);
}

saga::ProblemInstance train_instance(std::uint64_t seed, const IotTuning& tuning) {
  return make_instance(make_train_graph, seed, 0x72a12ULL, tuning);
}

saga::ProblemInstance etl_instance(std::uint64_t seed) { return etl_instance(seed, {}); }

saga::ProblemInstance stats_instance(std::uint64_t seed) { return stats_instance(seed, {}); }

saga::ProblemInstance predict_instance(std::uint64_t seed) { return predict_instance(seed, {}); }

saga::ProblemInstance train_instance(std::uint64_t seed) { return train_instance(seed, {}); }

namespace {

constexpr std::size_t kIotPaperCount = 1000;

void register_iot_dataset(saga::datasets::DatasetRegistry& registry, const char* name,
                          const char* summary,
                          saga::ProblemInstance (*instance)(std::uint64_t, const IotTuning&)) {
  saga::datasets::DatasetDesc desc;
  desc.name = name;
  desc.summary = summary;
  desc.tags = {"table2", "iot"};
  desc.paper_count = kIotPaperCount;
  desc.params = {
      {"edge", "edge nodes (speed 1): integer in [1, 10000] (default: uniform 75-125)"},
      {"fog", "fog nodes (speed 6): integer in [1, 10000] (default: uniform 3-7)"},
      {"cloud", "cloud nodes (speed 50): integer in [1, 10000] (default: uniform 1-10)"},
  };
  desc.factory = [name, instance](const saga::datasets::DatasetParams& params,
                                  std::uint64_t master_seed)
      -> saga::datasets::InstanceSourcePtr {
    IotTuning tuning;
    tuning.edge = params.get_i64("edge", 0);
    tuning.fog = params.get_i64("fog", 0);
    tuning.cloud = params.get_i64("cloud", 0);
    saga::datasets::check_param_range(name, "edge", tuning.edge, 1, 10000);
    saga::datasets::check_param_range(name, "fog", tuning.fog, 1, 10000);
    saga::datasets::check_param_range(name, "cloud", tuning.cloud, 1, 10000);
    return std::make_unique<saga::datasets::GeneratorSource>(
        name, kIotPaperCount, master_seed,
        [instance, tuning](std::uint64_t seed) { return instance(seed, tuning); });
  };
  registry.add(std::move(desc));
}

}  // namespace

void register_riotbench_datasets(saga::datasets::DatasetRegistry& registry) {
  register_iot_dataset(registry, "etl",
                       "RIoTBench ETL: linear sensing pipeline with a dual-sink tail on an "
                       "Edge/Fog/Cloud network",
                       etl_instance);
  register_iot_dataset(registry, "predict",
                       "RIoTBench PREDICT: two parallel models score each message, blended "
                       "and published",
                       predict_instance);
  register_iot_dataset(registry, "stats",
                       "RIoTBench STATS: parse fans out to three windowed statistics, "
                       "grouped and plotted",
                       stats_instance);
  register_iot_dataset(registry, "train",
                       "RIoTBench TRAIN: periodic model retraining with validation and upload",
                       train_instance);
}

}  // namespace saga::iot
