#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/network.hpp"

/// \file edge_fog_cloud.hpp
/// Edge/Fog/Cloud networks (paper Section IV-B, after Varshney et al. 2022):
///   - 75-125 edge nodes of speed 1, 3-7 fog nodes of speed 6, and 1-10
///     cloud nodes of speed 50 (all counts uniform);
///   - link strengths: edge-fog 60, fog-fog and fog-cloud 100, edge-cloud 60
///     (to complete the graph), cloud-cloud infinite (no delay);
///   - edge-edge links are not specified by the paper; we route them at the
///     edge-fog strength of 60.

namespace saga::iot {

struct EdgeFogCloudShape {
  std::size_t edge_nodes = 0;
  std::size_t fog_nodes = 0;
  std::size_t cloud_nodes = 0;
};

/// Samples the node counts for a network (uniform in the paper's ranges).
[[nodiscard]] EdgeFogCloudShape sample_edge_fog_cloud_shape(std::uint64_t seed);

/// Builds the complete network for a given shape. Node ids are laid out as
/// [edge nodes][fog nodes][cloud nodes].
[[nodiscard]] saga::Network make_edge_fog_cloud_network(const EdgeFogCloudShape& shape);

/// Convenience: sample a shape and build its network.
[[nodiscard]] saga::Network edge_fog_cloud_network(std::uint64_t seed);

}  // namespace saga::iot
