#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/problem_instance.hpp"

/// \file dataset.hpp
/// A dataset is a named collection of problem instances (paper Table II).
/// Generators are deterministic in (seed, index), so datasets can be
/// regenerated instance-by-instance in parallel.

namespace saga {

struct Dataset {
  std::string name;
  std::vector<ProblemInstance> instances;
};

/// Paper-default instance counts: 1000 for the random-graph and IoT
/// datasets, 100 for the scientific-workflow datasets.
struct DatasetSpec {
  std::string name;
  std::size_t paper_instance_count = 0;
};

/// Weight-sanitising floor applied to sampled network weights: the paper's
/// clipped Gaussians allow 0, but a zero speed/strength makes every
/// makespan infinite and the ratio undefined, so generators clamp network
/// weights to at least this value.
inline constexpr double kMinNetworkWeight = 1e-3;

}  // namespace saga
