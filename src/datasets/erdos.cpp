#include "datasets/erdos.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "datasets/dataset.hpp"
#include "datasets/registry.hpp"

namespace saga::datasets {

namespace {

double weight(Rng& rng) { return rng.clipped_gaussian(1.0, 1.0 / 3.0, 0.0, 2.0); }

double net_weight(Rng& rng) { return std::max(weight(rng), kMinNetworkWeight); }

/// Log-uniform factor in [1/h, h]; 1 when the network is homogeneous.
double hetero_factor(Rng& rng, double h) {
  if (h <= 1.0) return 1.0;
  return std::exp(rng.uniform(-std::log(h), std::log(h)));
}

}  // namespace

saga::ProblemInstance erdos_instance(std::uint64_t seed, const ErdosTuning& tuning) {
  Rng rng(seed);
  saga::ProblemInstance inst;
  auto& g = inst.graph;
  const auto n = tuning.n;
  for (std::int64_t i = 0; i < n; ++i) (void)g.add_task(weight(rng));
  for (std::int64_t j = 1; j < n; ++j) {
    for (std::int64_t i = 0; i < j; ++i) {
      if (!rng.bernoulli(tuning.p)) continue;
      g.add_dependency(static_cast<TaskId>(i), static_cast<TaskId>(j), weight(rng));
    }
  }

  Rng net_rng(derive_seed(seed, {0x4e4554ULL}));  // "NET"
  const auto nodes = tuning.nodes > 0 ? static_cast<std::size_t>(tuning.nodes)
                                      : static_cast<std::size_t>(net_rng.uniform_int(4, 8));
  inst.network = Network(nodes);
  for (NodeId v = 0; v < nodes; ++v) {
    inst.network.set_speed(v, net_weight(net_rng) * hetero_factor(net_rng, tuning.hetero));
  }
  for (NodeId a = 0; a < nodes; ++a) {
    for (NodeId b = a + 1; b < nodes; ++b) {
      inst.network.set_strength(a, b,
                                net_weight(net_rng) * hetero_factor(net_rng, tuning.hetero));
    }
  }
  return inst;
}

void register_erdos_dataset(DatasetRegistry& registry) {
  DatasetDesc desc;
  desc.name = "erdos";
  desc.aliases = {"erdos_renyi", "gnp"};
  desc.summary =
      "Erdős–Rényi random DAGs: n tasks, forward edges with probability p, complete "
      "network with tunable heterogeneity";
  desc.tags = {"random", "extension"};
  desc.params = {
      {"n", "tasks: integer in [1, 100000] (default 32)"},
      {"p", "forward-edge probability: number in [0, 1] (default 0.1)"},
      {"hetero", "network heterogeneity factor: number >= 1 (default 1, homogeneous)"},
      {"nodes", "network nodes: integer in [1, 10000] (default: uniform 4-8)"},
  };
  desc.factory = [](const DatasetParams& params,
                    std::uint64_t master_seed) -> InstanceSourcePtr {
    ErdosTuning tuning;
    tuning.n = params.get_i64("n", tuning.n);
    tuning.p = params.get_double("p", tuning.p);
    tuning.hetero = params.get_double("hetero", tuning.hetero);
    tuning.nodes = params.get_i64("nodes", 0);
    check_param_range("erdos", "n", tuning.n, 1, 100000, /*zero_is_default=*/false);
    check_param_range("erdos", "nodes", tuning.nodes, 1, 10000);
    if (!(tuning.p >= 0.0 && tuning.p <= 1.0)) {
      throw std::invalid_argument("dataset 'erdos' parameter 'p' must lie in [0, 1]");
    }
    if (!(tuning.hetero >= 1.0) || !std::isfinite(tuning.hetero)) {
      throw std::invalid_argument("dataset 'erdos' parameter 'hetero' must be >= 1");
    }
    return std::make_unique<GeneratorSource>(
        "erdos", 1000, master_seed,
        [tuning](std::uint64_t seed) { return erdos_instance(seed, tuning); });
  };
  registry.add(std::move(desc));
}

}  // namespace saga::datasets
