#include "datasets/register.hpp"

#include "datasets/erdos.hpp"
#include "datasets/iot/riotbench.hpp"
#include "datasets/random_graphs.hpp"
#include "datasets/registry.hpp"
#include "datasets/workflows/blast.hpp"
#include "datasets/workflows/bwa.hpp"
#include "datasets/workflows/cycles.hpp"
#include "datasets/workflows/epigenomics.hpp"
#include "datasets/workflows/genome.hpp"
#include "datasets/workflows/montage.hpp"
#include "datasets/workflows/seismology.hpp"
#include "datasets/workflows/soykb.hpp"
#include "datasets/workflows/srasearch.hpp"
#include "datasets/wrappers.hpp"

namespace saga::datasets {

void register_builtin_datasets(DatasetRegistry& registry) {
  // Table II order (the historical all_dataset_specs() roster)...
  register_random_graph_datasets(registry);
  workflows::register_blast_dataset(registry);
  workflows::register_bwa_dataset(registry);
  workflows::register_cycles_dataset(registry);
  workflows::register_epigenomics_dataset(registry);
  workflows::register_genome_dataset(registry);
  workflows::register_montage_dataset(registry);
  workflows::register_seismology_dataset(registry);
  workflows::register_soykb_dataset(registry);
  workflows::register_srasearch_dataset(registry);
  iot::register_riotbench_datasets(registry);
  // ...then the extensions.
  register_erdos_dataset(registry);
  register_wrapper_datasets(registry);
}

}  // namespace saga::datasets
