#include "datasets/random_graphs.hpp"

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "datasets/dataset.hpp"

namespace saga {

namespace {

/// Clipped Gaussian used by all three datasets: mean 1, std 1/3, in [0, 2].
double weight(Rng& rng) { return rng.clipped_gaussian(1.0, 1.0 / 3.0, 0.0, 2.0); }

/// Network weights additionally get the division-safety floor.
double net_weight(Rng& rng) { return std::max(weight(rng), kMinNetworkWeight); }

/// Builds the level structure of a (in|out)-tree: levels 0..L-1, level k
/// has b^k tasks, with b the branching factor. Returns per-level task ids.
std::vector<std::vector<TaskId>> tree_levels(TaskGraph& g, Rng& rng, int levels, int branch) {
  std::vector<std::vector<TaskId>> by_level(static_cast<std::size_t>(levels));
  std::size_t width = 1;
  for (int level = 0; level < levels; ++level) {
    for (std::size_t i = 0; i < width; ++i) {
      by_level[static_cast<std::size_t>(level)].push_back(g.add_task(weight(rng)));
    }
    width *= static_cast<std::size_t>(branch);
  }
  return by_level;
}

}  // namespace

Network random_network(std::uint64_t seed) {
  Rng rng(seed);
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(3, 5));
  Network net(nodes);
  for (NodeId v = 0; v < nodes; ++v) net.set_speed(v, net_weight(rng));
  for (NodeId a = 0; a < nodes; ++a) {
    for (NodeId b = a + 1; b < nodes; ++b) net.set_strength(a, b, net_weight(rng));
  }
  return net;
}

TaskGraph random_in_tree(std::uint64_t seed) {
  Rng rng(seed);
  const int levels = static_cast<int>(rng.uniform_int(2, 4));
  const int branch = static_cast<int>(rng.uniform_int(2, 3));
  TaskGraph g;
  const auto by_level = tree_levels(g, rng, levels, branch);
  // In-tree: children (deeper level) feed their parent.
  for (std::size_t level = 1; level < by_level.size(); ++level) {
    for (std::size_t i = 0; i < by_level[level].size(); ++i) {
      const TaskId parent = by_level[level - 1][i / static_cast<std::size_t>(branch)];
      g.add_dependency(by_level[level][i], parent, weight(rng));
    }
  }
  return g;
}

TaskGraph random_out_tree(std::uint64_t seed) {
  Rng rng(seed);
  const int levels = static_cast<int>(rng.uniform_int(2, 4));
  const int branch = static_cast<int>(rng.uniform_int(2, 3));
  TaskGraph g;
  const auto by_level = tree_levels(g, rng, levels, branch);
  // Out-tree: the parent feeds its children.
  for (std::size_t level = 1; level < by_level.size(); ++level) {
    for (std::size_t i = 0; i < by_level[level].size(); ++i) {
      const TaskId parent = by_level[level - 1][i / static_cast<std::size_t>(branch)];
      g.add_dependency(parent, by_level[level][i], weight(rng));
    }
  }
  return g;
}

TaskGraph random_parallel_chains(std::uint64_t seed) {
  Rng rng(seed);
  const auto chains = rng.uniform_int(2, 5);
  const auto length = rng.uniform_int(2, 5);
  TaskGraph g;
  for (std::int64_t c = 0; c < chains; ++c) {
    TaskId prev = g.add_task(weight(rng));
    for (std::int64_t i = 1; i < length; ++i) {
      const TaskId cur = g.add_task(weight(rng));
      g.add_dependency(prev, cur, weight(rng));
      prev = cur;
    }
  }
  return g;
}

namespace {

ProblemInstance make_instance(TaskGraph graph, std::uint64_t seed) {
  ProblemInstance inst;
  inst.graph = std::move(graph);
  inst.network = random_network(derive_seed(seed, {0x4e4554ULL}));  // "NET"
  return inst;
}

}  // namespace

ProblemInstance in_trees_instance(std::uint64_t seed) {
  return make_instance(random_in_tree(seed), seed);
}

ProblemInstance out_trees_instance(std::uint64_t seed) {
  return make_instance(random_out_tree(seed), seed);
}

ProblemInstance chains_instance(std::uint64_t seed) {
  return make_instance(random_parallel_chains(seed), seed);
}

}  // namespace saga
