#include "datasets/random_graphs.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "datasets/dataset.hpp"
#include "datasets/registry.hpp"

namespace saga {

namespace {

/// Clipped Gaussian used by all three datasets: mean 1, std 1/3, in [0, 2].
double weight(Rng& rng) { return rng.clipped_gaussian(1.0, 1.0 / 3.0, 0.0, 2.0); }

/// Network weights additionally get the division-safety floor.
double net_weight(Rng& rng) { return std::max(weight(rng), kMinNetworkWeight); }

/// Builds the level structure of a (in|out)-tree: levels 0..L-1, level k
/// has b^k tasks, with b the branching factor. Returns per-level task ids.
std::vector<std::vector<TaskId>> tree_levels(TaskGraph& g, Rng& rng, std::int64_t levels,
                                             std::int64_t branch) {
  std::vector<std::vector<TaskId>> by_level(static_cast<std::size_t>(levels));
  std::size_t width = 1;
  for (std::int64_t level = 0; level < levels; ++level) {
    for (std::size_t i = 0; i < width; ++i) {
      by_level[static_cast<std::size_t>(level)].push_back(g.add_task(weight(rng)));
    }
    width *= static_cast<std::size_t>(branch);
  }
  return by_level;
}

}  // namespace

Network random_network(std::uint64_t seed, std::int64_t node_override) {
  Rng rng(seed);
  const auto nodes = node_override > 0 ? static_cast<std::size_t>(node_override)
                                       : static_cast<std::size_t>(rng.uniform_int(3, 5));
  Network net(nodes);
  for (NodeId v = 0; v < nodes; ++v) net.set_speed(v, net_weight(rng));
  for (NodeId a = 0; a < nodes; ++a) {
    for (NodeId b = a + 1; b < nodes; ++b) net.set_strength(a, b, net_weight(rng));
  }
  return net;
}

TaskGraph random_in_tree(std::uint64_t seed, const TreeTuning& tuning) {
  Rng rng(seed);
  const auto levels = tuning.levels > 0 ? tuning.levels : rng.uniform_int(2, 4);
  const auto branch = tuning.branch > 0 ? tuning.branch : rng.uniform_int(2, 3);
  TaskGraph g;
  const auto by_level = tree_levels(g, rng, levels, branch);
  // In-tree: children (deeper level) feed their parent.
  for (std::size_t level = 1; level < by_level.size(); ++level) {
    for (std::size_t i = 0; i < by_level[level].size(); ++i) {
      const TaskId parent = by_level[level - 1][i / static_cast<std::size_t>(branch)];
      g.add_dependency(by_level[level][i], parent, weight(rng));
    }
  }
  return g;
}

TaskGraph random_out_tree(std::uint64_t seed, const TreeTuning& tuning) {
  Rng rng(seed);
  const auto levels = tuning.levels > 0 ? tuning.levels : rng.uniform_int(2, 4);
  const auto branch = tuning.branch > 0 ? tuning.branch : rng.uniform_int(2, 3);
  TaskGraph g;
  const auto by_level = tree_levels(g, rng, levels, branch);
  // Out-tree: the parent feeds its children.
  for (std::size_t level = 1; level < by_level.size(); ++level) {
    for (std::size_t i = 0; i < by_level[level].size(); ++i) {
      const TaskId parent = by_level[level - 1][i / static_cast<std::size_t>(branch)];
      g.add_dependency(parent, by_level[level][i], weight(rng));
    }
  }
  return g;
}

TaskGraph random_parallel_chains(std::uint64_t seed, const ChainsTuning& tuning) {
  Rng rng(seed);
  const auto chains = tuning.chains > 0 ? tuning.chains : rng.uniform_int(2, 5);
  const auto length = tuning.length > 0 ? tuning.length : rng.uniform_int(2, 5);
  TaskGraph g;
  for (std::int64_t c = 0; c < chains; ++c) {
    TaskId prev = g.add_task(weight(rng));
    for (std::int64_t i = 1; i < length; ++i) {
      const TaskId cur = g.add_task(weight(rng));
      g.add_dependency(prev, cur, weight(rng));
      prev = cur;
    }
  }
  return g;
}

namespace {

ProblemInstance make_instance(TaskGraph graph, std::uint64_t seed, std::int64_t nodes) {
  ProblemInstance inst;
  inst.graph = std::move(graph);
  inst.network = random_network(derive_seed(seed, {0x4e4554ULL}), nodes);  // "NET"
  return inst;
}

}  // namespace

ProblemInstance in_trees_instance(std::uint64_t seed, const TreeTuning& tuning) {
  return make_instance(random_in_tree(seed, tuning), seed, tuning.nodes);
}

ProblemInstance out_trees_instance(std::uint64_t seed, const TreeTuning& tuning) {
  return make_instance(random_out_tree(seed, tuning), seed, tuning.nodes);
}

ProblemInstance chains_instance(std::uint64_t seed, const ChainsTuning& tuning) {
  return make_instance(random_parallel_chains(seed, tuning), seed, tuning.nodes);
}

ProblemInstance in_trees_instance(std::uint64_t seed) { return in_trees_instance(seed, {}); }

ProblemInstance out_trees_instance(std::uint64_t seed) { return out_trees_instance(seed, {}); }

ProblemInstance chains_instance(std::uint64_t seed) { return chains_instance(seed, {}); }

namespace {

constexpr std::size_t kRandomPaperCount = 1000;
constexpr std::int64_t kMaxTreeLevels = 24;
constexpr std::int64_t kMaxWidth = 100000;  // cap on total task count
constexpr std::int64_t kMaxNetNodes = 10000;

void register_tree_dataset(datasets::DatasetRegistry& registry, const char* name,
                           const char* summary,
                           ProblemInstance (*instance)(std::uint64_t, const TreeTuning&)) {
  datasets::DatasetDesc desc;
  desc.name = name;
  desc.summary = summary;
  desc.tags = {"table2", "random"};
  desc.paper_count = kRandomPaperCount;
  desc.params = {
      {"levels", "tree levels: integer in [1, 24] (default: uniform 2-4); total tasks "
                 "capped at 100000"},
      {"branch", "branching factor: integer in [1, 16] (default: uniform 2 or 3)"},
      {"nodes", "network nodes: integer in [1, 10000] (default: uniform 3-5)"},
  };
  desc.factory = [name, instance](const datasets::DatasetParams& params,
                                  std::uint64_t master_seed) -> datasets::InstanceSourcePtr {
    TreeTuning tuning;
    tuning.levels = params.get_i64("levels", 0);
    tuning.branch = params.get_i64("branch", 0);
    tuning.nodes = params.get_i64("nodes", 0);
    datasets::check_param_range(name, "levels", tuning.levels, 1, kMaxTreeLevels);
    datasets::check_param_range(name, "branch", tuning.branch, 1, 16);
    datasets::check_param_range(name, "nodes", tuning.nodes, 1, kMaxNetNodes);
    // Joint explosion cap: levels and branch multiply (sum of branch^k
    // tasks), so bound the worst-case task count with any unfixed knob at
    // its maximum paper draw. Doubles avoid overflow (16^23 >> 2^63).
    const double branch_max = tuning.branch > 0 ? static_cast<double>(tuning.branch) : 3.0;
    const auto levels_max = tuning.levels > 0 ? tuning.levels : 4;
    double total = 0.0;
    double width = 1.0;
    for (std::int64_t level = 0; level < levels_max; ++level) {
      total += width;
      width *= branch_max;
    }
    if (total > static_cast<double>(kMaxWidth)) {
      throw std::invalid_argument(std::string("dataset '") + name +
                                  "': levels/branch would generate ~" +
                                  std::to_string(static_cast<long long>(total)) +
                                  " tasks, beyond the cap of " + std::to_string(kMaxWidth));
    }
    return std::make_unique<datasets::GeneratorSource>(
        name, kRandomPaperCount, master_seed,
        [instance, tuning](std::uint64_t seed) { return instance(seed, tuning); });
  };
  registry.add(std::move(desc));
}

}  // namespace

void register_random_graph_datasets(datasets::DatasetRegistry& registry) {
  register_tree_dataset(registry, "in_trees",
                        "random in-trees: leaves feed a single root, clipped-Gaussian weights, "
                        "complete 3-5 node network",
                        in_trees_instance);
  register_tree_dataset(registry, "out_trees",
                        "random out-trees: a single root feeds the leaves, clipped-Gaussian "
                        "weights, complete 3-5 node network",
                        out_trees_instance);

  datasets::DatasetDesc chains;
  chains.name = "chains";
  chains.summary =
      "independent parallel chains, clipped-Gaussian weights, complete 3-5 node network";
  chains.tags = {"table2", "random"};
  chains.paper_count = kRandomPaperCount;
  chains.params = {
      {"chains", "chain count: integer in [1, 100000] (default: uniform 2-5); total tasks "
                 "capped at 100000"},
      {"length", "tasks per chain: integer in [1, 100000] (default: uniform 2-5)"},
      {"nodes", "network nodes: integer in [1, 10000] (default: uniform 3-5)"},
  };
  chains.factory = [](const datasets::DatasetParams& params,
                      std::uint64_t master_seed) -> datasets::InstanceSourcePtr {
    ChainsTuning tuning;
    tuning.chains = params.get_i64("chains", 0);
    tuning.length = params.get_i64("length", 0);
    tuning.nodes = params.get_i64("nodes", 0);
    datasets::check_param_range("chains", "chains", tuning.chains, 1, kMaxWidth);
    datasets::check_param_range("chains", "length", tuning.length, 1, kMaxWidth);
    datasets::check_param_range("chains", "nodes", tuning.nodes, 1, kMaxNetNodes);
    // Joint cap: chains x length tasks, unfixed knobs at their max draw (5).
    const double total = static_cast<double>(tuning.chains > 0 ? tuning.chains : 5) *
                         static_cast<double>(tuning.length > 0 ? tuning.length : 5);
    if (total > static_cast<double>(kMaxWidth)) {
      throw std::invalid_argument("dataset 'chains': chains x length would generate ~" +
                                  std::to_string(static_cast<long long>(total)) +
                                  " tasks, beyond the cap of " + std::to_string(kMaxWidth));
    }
    return std::make_unique<datasets::GeneratorSource>(
        "chains", kRandomPaperCount, master_seed,
        [tuning](std::uint64_t seed) { return chains_instance(seed, tuning); });
  };
  registry.add(std::move(chains));
}

}  // namespace saga
