#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "graph/problem_instance.hpp"

/// \file source.hpp (datasets)
/// The streaming dataset API. An InstanceSource is a lazy, index-addressable
/// stream of problem instances: `generate(i)` is pure (same index, same
/// instance) and safe to call concurrently from benchmark workers, so whole
/// datasets never need to be materialized in memory. Sources are produced by
/// the DatasetRegistry from spec strings (`montage?n=200&ccr=0.5`, see
/// datasets/registry.hpp) and compose: wrapping sources (perturbed, noisy)
/// take another source as their base.

namespace saga::datasets {

class InstanceSource {
 public:
  virtual ~InstanceSource() = default;

  /// The source's display name: the canonical dataset name, or the spec
  /// string it was constructed from when parameters were given.
  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// The source's natural instance count — the paper's Table II count for
  /// registry datasets, the base source's size for wrapping sources. This is
  /// a default for consumers that want "the whole dataset": `generate`
  /// accepts any index, so callers may stream past `size()` freely.
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// Generates the instance at `index`. Pure and thread-safe: deterministic
  /// in (source configuration, master seed, index), no mutable state.
  [[nodiscard]] virtual ProblemInstance generate(std::size_t index) const = 0;
};

using InstanceSourcePtr = std::unique_ptr<InstanceSource>;

/// FNV-1a hash of a dataset name, the per-instance seed-stream selector
/// historically used by datasets::generate_instance. Kept stable so
/// paper-default instances are bit-identical through every entry point.
[[nodiscard]] std::uint64_t dataset_name_hash(std::string_view name) noexcept;

/// Adapts a plain `seed -> instance` generator into a source: instance i is
/// generated from derive_seed(master_seed, {dataset_name_hash(stream), i}),
/// where `stream` is the canonical dataset name — exactly the historical
/// generate_instance seed derivation. `display` defaults to `stream`; pass
/// the full spec string for parameterized sources.
class GeneratorSource final : public InstanceSource {
 public:
  using Generator = std::function<ProblemInstance(std::uint64_t seed)>;

  GeneratorSource(std::string stream, std::size_t size, std::uint64_t master_seed,
                  Generator generator, std::string display = {});

  [[nodiscard]] const std::string& name() const noexcept override { return display_; }
  [[nodiscard]] std::size_t size() const noexcept override { return size_; }
  [[nodiscard]] ProblemInstance generate(std::size_t index) const override;

 private:
  std::string display_;
  std::uint64_t stream_hash_ = 0;
  std::size_t size_ = 0;
  std::uint64_t master_seed_ = 0;
  Generator generator_;
};

}  // namespace saga::datasets
