#pragma once

#include <cstdint>

#include "datasets/workflows/workflow.hpp"

/// \file seismology.hpp
/// Seismology — seismic cross-correlation workflow (Filgueira et al. 2016).
///
/// The simplest of the nine structures: n parallel deconvolution tasks
/// (sG1IterDecon) whose outputs are combined by a single misfit-sifting
/// task:
///
///   sG1IterDecon × n ──> wrapper_siftSTFByMisfit
namespace saga::workflows {

/// `n` overrides the primary width (stations; 0: the paper's draw).
[[nodiscard]] TaskGraph make_seismology_graph(Rng& rng, std::int64_t n = 0);
[[nodiscard]] ProblemInstance seismology_instance(std::uint64_t seed);
[[nodiscard]] ProblemInstance seismology_instance(std::uint64_t seed, const WorkflowTuning& tuning);
[[nodiscard]] const TraceStats& seismology_stats();
void register_seismology_dataset(saga::datasets::DatasetRegistry& registry);

}  // namespace saga::workflows
