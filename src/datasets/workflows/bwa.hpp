#pragma once

#include <cstdint>

#include "datasets/workflows/workflow.hpp"

/// \file bwa.hpp
/// BWA — Burrows-Wheeler sequence alignment workflow (Makeflow examples).
///
/// Structure: two preparation tasks (reference indexing and FASTQ
/// reduction) feed n parallel alignment shards, which merge into a single
/// concatenation task:
///
///   bwa_index ──┐
///               ├──> align_1 .. align_n ──> cat_sam
///   fastq_reduce┘
namespace saga::workflows {

/// `n` overrides the primary width (n; 0: the paper's draw).
[[nodiscard]] TaskGraph make_bwa_graph(Rng& rng, std::int64_t n = 0);
[[nodiscard]] ProblemInstance bwa_instance(std::uint64_t seed);
[[nodiscard]] ProblemInstance bwa_instance(std::uint64_t seed, const WorkflowTuning& tuning);
[[nodiscard]] const TraceStats& bwa_stats();
void register_bwa_dataset(saga::datasets::DatasetRegistry& registry);

}  // namespace saga::workflows
