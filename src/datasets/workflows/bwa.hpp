#pragma once

#include <cstdint>

#include "datasets/workflows/workflow.hpp"

/// \file bwa.hpp
/// BWA — Burrows-Wheeler sequence alignment workflow (Makeflow examples).
///
/// Structure: two preparation tasks (reference indexing and FASTQ
/// reduction) feed n parallel alignment shards, which merge into a single
/// concatenation task:
///
///   bwa_index ──┐
///               ├──> align_1 .. align_n ──> cat_sam
///   fastq_reduce┘
namespace saga::workflows {

[[nodiscard]] TaskGraph make_bwa_graph(Rng& rng);
[[nodiscard]] ProblemInstance bwa_instance(std::uint64_t seed);
[[nodiscard]] const TraceStats& bwa_stats();

}  // namespace saga::workflows
