#pragma once

#include <cstdint>

#include "datasets/workflows/workflow.hpp"

/// \file montage.hpp
/// Montage — astronomical image mosaic workflow (Rynge et al. 2014).
///
/// Classic layered structure:
///
///   mProject × n                       (re-project each input image)
///   mDiffFit × ~n                      (fit overlapping projection pairs)
///   mConcatFit -> mBgModel             (global background model)
///   mBackground × n                    (apply corrections per image)
///   mImgtbl -> mAdd -> mShrink -> mJPEG (assemble final mosaic)
namespace saga::workflows {

/// `n` overrides the input-image count (0: the paper's uniform 6-16 draw).
[[nodiscard]] TaskGraph make_montage_graph(Rng& rng, std::int64_t n = 0);
[[nodiscard]] ProblemInstance montage_instance(std::uint64_t seed);
[[nodiscard]] ProblemInstance montage_instance(std::uint64_t seed, const WorkflowTuning& tuning);
[[nodiscard]] const TraceStats& montage_stats();
void register_montage_dataset(saga::datasets::DatasetRegistry& registry);

}  // namespace saga::workflows
