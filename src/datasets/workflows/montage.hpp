#pragma once

#include <cstdint>

#include "datasets/workflows/workflow.hpp"

/// \file montage.hpp
/// Montage — astronomical image mosaic workflow (Rynge et al. 2014).
///
/// Classic layered structure:
///
///   mProject × n                       (re-project each input image)
///   mDiffFit × ~n                      (fit overlapping projection pairs)
///   mConcatFit -> mBgModel             (global background model)
///   mBackground × n                    (apply corrections per image)
///   mImgtbl -> mAdd -> mShrink -> mJPEG (assemble final mosaic)
namespace saga::workflows {

[[nodiscard]] TaskGraph make_montage_graph(Rng& rng);
[[nodiscard]] ProblemInstance montage_instance(std::uint64_t seed);
[[nodiscard]] const TraceStats& montage_stats();

}  // namespace saga::workflows
