#include "datasets/workflows/soykb.hpp"

#include <array>

#include "datasets/chameleon.hpp"

namespace saga::workflows {

const TraceStats& soykb_stats() {
  static const TraceStats stats{
      .min_runtime = 1.0,
      .max_runtime = 1000.0,
      .min_io = 0.5,
      .max_io = 600.0,
      .min_speed = 0.5,
      .max_speed = 1.5,
  };
  return stats;
}

TaskGraph make_soykb_graph(Rng& rng, std::int64_t n) {
  const auto& stats = soykb_stats();
  const auto samples = n > 0 ? n : rng.uniform_int(3, 8);

  // (stage name, mean runtime, mean output size) for each per-sample stage.
  static constexpr std::array<std::tuple<const char*, double, double>, 7> kStages = {{
      {"alignment_to_reference", 400.0, 150.0},
      {"sort_sam", 60.0, 150.0},
      {"dedup", 80.0, 120.0},
      {"add_replace", 40.0, 120.0},
      {"realign_target_creator", 150.0, 20.0},
      {"indel_realign", 200.0, 120.0},
      {"haplotype_caller", 600.0, 60.0},
  }};

  TaskGraph g;
  const TaskId combine = g.add_task("combine_variants", sample_runtime(rng, 50.0, stats));
  for (std::int64_t s = 0; s < samples; ++s) {
    const auto tag = std::to_string(s);
    TaskId prev = 0;
    bool first = true;
    for (const auto& [stage, runtime, io] : kStages) {
      const TaskId cur =
          g.add_task(std::string(stage) + "_" + tag, sample_runtime(rng, runtime, stats));
      if (!first) g.add_dependency(prev, cur, sample_io(rng, io, stats));
      prev = cur;
      first = false;
    }
    g.add_dependency(prev, combine, sample_io(rng, 60.0, stats));
  }
  const TaskId genotype = g.add_task("genotype_gvcfs", sample_runtime(rng, 300.0, stats));
  const TaskId filtering = g.add_task("filtering", sample_runtime(rng, 80.0, stats));
  g.add_dependency(combine, genotype, sample_io(rng, 100.0, stats));
  g.add_dependency(genotype, filtering, sample_io(rng, 80.0, stats));
  return g;
}

ProblemInstance soykb_instance(std::uint64_t seed, const WorkflowTuning& tuning) {
  Rng rng(seed);
  ProblemInstance inst;
  inst.graph = make_soykb_graph(rng, tuning.n);
  inst.network = datasets::chameleon_network(derive_seed(seed, {0x50b6ULL}),
                                             tuning.min_nodes, tuning.max_nodes);
  if (tuning.ccr > 0.0) set_homogeneous_ccr(inst, tuning.ccr);
  return inst;
}

ProblemInstance soykb_instance(std::uint64_t seed) { return soykb_instance(seed, {}); }

void register_soykb_dataset(saga::datasets::DatasetRegistry& registry) {
  register_workflow_family(
      registry,
      {.name = "soykb",
       .summary = "SoyKB variant calling: per-sample 7-task GATK chains, combine/genotype/filtering tail",
       .n_help = "samples: integer in [1, 100000] (default: uniform 3-8)",
       .instance = [](std::uint64_t seed, const WorkflowTuning& tuning) {
         return soykb_instance(seed, tuning);
       }});
}

}  // namespace saga::workflows
