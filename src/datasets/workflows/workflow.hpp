#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "graph/problem_instance.hpp"

namespace saga::datasets {
class DatasetRegistry;
}  // namespace saga::datasets

/// \file workflow.hpp
/// Shared machinery for the nine scientific-workflow dataset generators
/// (paper Table II / Section IV-B). The paper generates task graphs with the
/// WfCommons synthetic generator from real Pegasus/Makeflow execution
/// traces; offline, we encode each application's published structural
/// recipe (see per-app headers) and sample task runtimes / IO sizes from
/// clipped Gaussians standing in for the trace-fitted distributions
/// (substitution documented in DESIGN.md).

namespace saga::workflows {

/// Distribution envelope of an application's execution traces: the ranges
/// the application-specific PISA perturbations scale into (Section VII-A:
/// "scaled between the range of speeds/runtimes/IO sizes observed in the
/// real execution trace data").
struct TraceStats {
  double min_runtime = 0.0;
  double max_runtime = 0.0;
  double min_io = 0.0;
  double max_io = 0.0;
  double min_speed = 0.0;
  double max_speed = 0.0;
};

/// Samples a task runtime around `mean` (clipped Gaussian, std = mean/3),
/// clamped to stay within the recipe's trace range.
[[nodiscard]] double sample_runtime(Rng& rng, double mean, const TraceStats& stats);

/// Samples an IO size around `mean`, clamped to the trace range.
[[nodiscard]] double sample_io(Rng& rng, double mean, const TraceStats& stats);

/// Overrides every link strength with the single finite value that makes
/// the instance's average CCR (mean communication time / mean execution
/// time) equal to `ccr` (Section VII-A: "We set communication rates to be
/// homogeneous so that the average CCR ... is 1/5, 1/2, 1, 2, or 5").
/// No-op if the graph has no dependencies.
void set_homogeneous_ccr(ProblemInstance& inst, double ccr);

/// A per-application generator: builds the task graph (random size, fixed
/// structure) and its Chameleon-inspired network.
struct WorkflowRecipe {
  std::string name;
  TraceStats stats;
  ProblemInstance (*make_instance)(std::uint64_t seed);
};

/// Spec-string knobs shared by all nine workflow families. Zero values mean
/// "the paper's random draw", so a default-constructed tuning reproduces
/// the paper-default instances bit for bit.
struct WorkflowTuning {
  std::int64_t n = 0;         // primary width (images/shards/lanes/...)
  std::int64_t analyses = 0;  // genome only: analysis pairs
  double ccr = 0.0;           // > 0: homogeneous links at this average CCR
  std::size_t min_nodes = 4;  // chameleon network size range
  std::size_t max_nodes = 12;
};

/// Registration glue shared by the nine workflow families: builds the
/// DatasetDesc (params `n`, `ccr`, `min_nodes`, `max_nodes`, plus
/// `analyses` when `analyses_param` is set) around a tuned-instance
/// generator and adds it to the registry with tags table2 + workflow.
struct WorkflowFamily {
  std::string name;
  std::string summary;
  std::string n_help;  // family-specific meaning of the `n` parameter
  bool analyses_param = false;
  ProblemInstance (*instance)(std::uint64_t seed, const WorkflowTuning& tuning);
};

void register_workflow_family(saga::datasets::DatasetRegistry& registry,
                              WorkflowFamily family);

}  // namespace saga::workflows
