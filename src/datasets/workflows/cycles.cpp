#include "datasets/workflows/cycles.hpp"

#include "datasets/chameleon.hpp"

namespace saga::workflows {

const TraceStats& cycles_stats() {
  static const TraceStats stats{
      .min_runtime = 1.0,
      .max_runtime = 300.0,
      .min_io = 0.1,
      .max_io = 50.0,
      .min_speed = 0.5,
      .max_speed = 1.5,
  };
  return stats;
}

TaskGraph make_cycles_graph(Rng& rng, std::int64_t n) {
  const auto& stats = cycles_stats();
  const auto pipelines = n > 0 ? n : rng.uniform_int(4, 12);

  TaskGraph g;
  const TaskId summary = g.add_task("cycles_summary", sample_runtime(rng, 10.0, stats));
  for (std::int64_t p = 0; p < pipelines; ++p) {
    const auto tag = std::to_string(p);
    const TaskId baseline =
        g.add_task("baseline_cycles_" + tag, sample_runtime(rng, 60.0, stats));
    const TaskId cycles = g.add_task("cycles_" + tag, sample_runtime(rng, 120.0, stats));
    const TaskId fert =
        g.add_task("fertilizer_increase_output_" + tag, sample_runtime(rng, 20.0, stats));
    const TaskId plot = g.add_task("cycles_plots_" + tag, sample_runtime(rng, 40.0, stats));
    g.add_dependency(baseline, cycles, sample_io(rng, 5.0, stats));
    g.add_dependency(cycles, fert, sample_io(rng, 10.0, stats));
    g.add_dependency(fert, plot, sample_io(rng, 5.0, stats));
    g.add_dependency(plot, summary, sample_io(rng, 2.0, stats));
  }
  return g;
}

ProblemInstance cycles_instance(std::uint64_t seed, const WorkflowTuning& tuning) {
  Rng rng(seed);
  ProblemInstance inst;
  inst.graph = make_cycles_graph(rng, tuning.n);
  inst.network = datasets::chameleon_network(derive_seed(seed, {0xc7c1e5ULL}),
                                             tuning.min_nodes, tuning.max_nodes);
  if (tuning.ccr > 0.0) set_homogeneous_ccr(inst, tuning.ccr);
  return inst;
}

ProblemInstance cycles_instance(std::uint64_t seed) { return cycles_instance(seed, {}); }

void register_cycles_dataset(saga::datasets::DatasetRegistry& registry) {
  register_workflow_family(
      registry,
      {.name = "cycles",
       .summary = "Cycles agroecosystem parameter sweep: independent 4-task pipelines joined by a summary task",
       .n_help = "simulation pipelines: integer in [1, 100000] (default: uniform 4-12)",
       .instance = [](std::uint64_t seed, const WorkflowTuning& tuning) {
         return cycles_instance(seed, tuning);
       }});
}

}  // namespace saga::workflows
