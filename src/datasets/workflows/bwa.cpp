#include "datasets/workflows/bwa.hpp"

#include "datasets/chameleon.hpp"

namespace saga::workflows {

const TraceStats& bwa_stats() {
  static const TraceStats stats{
      .min_runtime = 1.0,
      .max_runtime = 900.0,
      .min_io = 1.0,
      .max_io = 800.0,
      .min_speed = 0.5,
      .max_speed = 1.5,
  };
  return stats;
}

TaskGraph make_bwa_graph(Rng& rng, std::int64_t n_override) {
  const auto& stats = bwa_stats();
  const auto n = n_override > 0 ? n_override : rng.uniform_int(6, 20);

  TaskGraph g;
  const TaskId index = g.add_task("bwa_index", sample_runtime(rng, 200.0, stats));
  const TaskId reduce = g.add_task("fastq_reduce", sample_runtime(rng, 60.0, stats));
  const TaskId cat = g.add_task("cat_sam", sample_runtime(rng, 15.0, stats));
  for (std::int64_t i = 0; i < n; ++i) {
    const TaskId align = g.add_task("bwa_align_" + std::to_string(i),
                                    sample_runtime(rng, 400.0, stats));
    g.add_dependency(index, align, sample_io(rng, 300.0, stats));
    g.add_dependency(reduce, align, sample_io(rng, 100.0, stats));
    g.add_dependency(align, cat, sample_io(rng, 80.0, stats));
  }
  return g;
}

ProblemInstance bwa_instance(std::uint64_t seed, const WorkflowTuning& tuning) {
  Rng rng(seed);
  ProblemInstance inst;
  inst.graph = make_bwa_graph(rng, tuning.n);
  inst.network = datasets::chameleon_network(derive_seed(seed, {0xb3aULL}),
                                             tuning.min_nodes, tuning.max_nodes);
  if (tuning.ccr > 0.0) set_homogeneous_ccr(inst, tuning.ccr);
  return inst;
}

ProblemInstance bwa_instance(std::uint64_t seed) { return bwa_instance(seed, {}); }

void register_bwa_dataset(saga::datasets::DatasetRegistry& registry) {
  register_workflow_family(
      registry,
      {.name = "bwa",
       .summary = "BWA Burrows-Wheeler alignment: index + reduce feeding parallel alignment shards, single merge",
       .n_help = "alignment shards: integer in [1, 100000] (default: uniform 6-20)",
       .instance = [](std::uint64_t seed, const WorkflowTuning& tuning) {
         return bwa_instance(seed, tuning);
       }});
}

}  // namespace saga::workflows
