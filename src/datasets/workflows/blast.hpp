#pragma once

#include <cstdint>

#include "datasets/workflows/workflow.hpp"

/// \file blast.hpp
/// BLAST — sequence-similarity search workflow (paper Fig. 9b).
///
/// Structure (rigid, size-parameterised by n):
///
///        t0 (split_fasta)
///         | fan-out
///     t1  t2 ... tn     (blastall, embarrassingly parallel, heavy)
///         | fan-in
///     t_{n+1}  t_{n+2}  (cat_blast, cat — two merge tasks, each
///                        receiving output from every blastall task)
namespace saga::workflows {

/// `n` overrides the primary width (n; 0: the paper's draw).
[[nodiscard]] TaskGraph make_blast_graph(Rng& rng, std::int64_t n = 0);
[[nodiscard]] ProblemInstance blast_instance(std::uint64_t seed);
[[nodiscard]] ProblemInstance blast_instance(std::uint64_t seed, const WorkflowTuning& tuning);
[[nodiscard]] const TraceStats& blast_stats();
void register_blast_dataset(saga::datasets::DatasetRegistry& registry);

}  // namespace saga::workflows
