#pragma once

#include <cstdint>

#include "datasets/workflows/workflow.hpp"

/// \file blast.hpp
/// BLAST — sequence-similarity search workflow (paper Fig. 9b).
///
/// Structure (rigid, size-parameterised by n):
///
///        t0 (split_fasta)
///         | fan-out
///     t1  t2 ... tn     (blastall, embarrassingly parallel, heavy)
///         | fan-in
///     t_{n+1}  t_{n+2}  (cat_blast, cat — two merge tasks, each
///                        receiving output from every blastall task)
namespace saga::workflows {

[[nodiscard]] TaskGraph make_blast_graph(Rng& rng);
[[nodiscard]] ProblemInstance blast_instance(std::uint64_t seed);
[[nodiscard]] const TraceStats& blast_stats();

}  // namespace saga::workflows
