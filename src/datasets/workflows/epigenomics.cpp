#include "datasets/workflows/epigenomics.hpp"

#include "datasets/chameleon.hpp"

namespace saga::workflows {

const TraceStats& epigenomics_stats() {
  static const TraceStats stats{
      .min_runtime = 1.0,
      .max_runtime = 800.0,
      .min_io = 0.5,
      .max_io = 400.0,
      .min_speed = 0.5,
      .max_speed = 1.5,
  };
  return stats;
}

TaskGraph make_epigenomics_graph(Rng& rng, std::int64_t n) {
  const auto& stats = epigenomics_stats();
  const auto lanes = n > 0 ? n : rng.uniform_int(4, 10);

  TaskGraph g;
  const TaskId split = g.add_task("fastqSplit", sample_runtime(rng, 30.0, stats));
  const TaskId merge = g.add_task("mapMerge", sample_runtime(rng, 40.0, stats));
  for (std::int64_t lane = 0; lane < lanes; ++lane) {
    const auto tag = std::to_string(lane);
    const TaskId filter = g.add_task("filterContams_" + tag, sample_runtime(rng, 60.0, stats));
    const TaskId sol = g.add_task("sol2sanger_" + tag, sample_runtime(rng, 30.0, stats));
    const TaskId bfq = g.add_task("fastq2bfq_" + tag, sample_runtime(rng, 30.0, stats));
    const TaskId map = g.add_task("map_" + tag, sample_runtime(rng, 500.0, stats));
    g.add_dependency(split, filter, sample_io(rng, 100.0, stats));
    g.add_dependency(filter, sol, sample_io(rng, 80.0, stats));
    g.add_dependency(sol, bfq, sample_io(rng, 60.0, stats));
    g.add_dependency(bfq, map, sample_io(rng, 50.0, stats));
    g.add_dependency(map, merge, sample_io(rng, 40.0, stats));
  }
  const TaskId index = g.add_task("maqIndex", sample_runtime(rng, 45.0, stats));
  const TaskId pileup = g.add_task("pileup", sample_runtime(rng, 55.0, stats));
  g.add_dependency(merge, index, sample_io(rng, 150.0, stats));
  g.add_dependency(index, pileup, sample_io(rng, 150.0, stats));
  return g;
}

ProblemInstance epigenomics_instance(std::uint64_t seed, const WorkflowTuning& tuning) {
  Rng rng(seed);
  ProblemInstance inst;
  inst.graph = make_epigenomics_graph(rng, tuning.n);
  inst.network = datasets::chameleon_network(derive_seed(seed, {0xe9165ULL}),
                                             tuning.min_nodes, tuning.max_nodes);
  if (tuning.ccr > 0.0) set_homogeneous_ccr(inst, tuning.ccr);
  return inst;
}

ProblemInstance epigenomics_instance(std::uint64_t seed) { return epigenomics_instance(seed, {}); }

void register_epigenomics_dataset(saga::datasets::DatasetRegistry& registry) {
  register_workflow_family(
      registry,
      {.name = "epigenomics",
       .summary = "Epigenomics DNA methylation: fastqSplit fan-out to 4-task lanes, mapMerge/maqIndex/pileup tail",
       .n_help = "read-processing lanes: integer in [1, 100000] (default: uniform 4-10)",
       .instance = [](std::uint64_t seed, const WorkflowTuning& tuning) {
         return epigenomics_instance(seed, tuning);
       }});
}

}  // namespace saga::workflows
