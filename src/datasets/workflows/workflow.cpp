#include "datasets/workflows/workflow.hpp"

#include <algorithm>

#include "datasets/dataset.hpp"

namespace saga::workflows {

double sample_runtime(Rng& rng, double mean, const TraceStats& stats) {
  return rng.clipped_gaussian(mean, mean / 3.0, stats.min_runtime, stats.max_runtime);
}

double sample_io(Rng& rng, double mean, const TraceStats& stats) {
  return rng.clipped_gaussian(mean, mean / 3.0, stats.min_io, stats.max_io);
}

void set_homogeneous_ccr(ProblemInstance& inst, double ccr) {
  const auto deps = inst.graph.dependencies();
  if (deps.empty() || ccr <= 0.0) return;

  double mean_data = 0.0;
  for (const auto& [from, to] : deps) mean_data += inst.graph.dependency_cost(from, to);
  mean_data /= static_cast<double>(deps.size());

  double mean_cost = 0.0;
  for (TaskId t = 0; t < inst.graph.task_count(); ++t) mean_cost += inst.graph.cost(t);
  mean_cost /= static_cast<double>(inst.graph.task_count());
  const double mean_exec = mean_cost * inst.network.mean_inverse_speed();
  if (mean_exec <= 0.0 || mean_data <= 0.0) return;

  // CCR = (mean_data / strength) / mean_exec  =>  strength as below.
  const double strength = std::max(mean_data / (ccr * mean_exec), kMinNetworkWeight);
  for (NodeId a = 0; a < inst.network.node_count(); ++a) {
    for (NodeId b = a + 1; b < inst.network.node_count(); ++b) {
      inst.network.set_strength(a, b, strength);
    }
  }
}

}  // namespace saga::workflows
