#include "datasets/workflows/workflow.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "datasets/dataset.hpp"
#include "datasets/registry.hpp"

namespace saga::workflows {

double sample_runtime(Rng& rng, double mean, const TraceStats& stats) {
  return rng.clipped_gaussian(mean, mean / 3.0, stats.min_runtime, stats.max_runtime);
}

double sample_io(Rng& rng, double mean, const TraceStats& stats) {
  return rng.clipped_gaussian(mean, mean / 3.0, stats.min_io, stats.max_io);
}

void set_homogeneous_ccr(ProblemInstance& inst, double ccr) {
  const auto deps = inst.graph.dependencies();
  if (deps.empty() || ccr <= 0.0) return;

  double mean_data = 0.0;
  for (const auto& [from, to] : deps) mean_data += inst.graph.dependency_cost(from, to);
  mean_data /= static_cast<double>(deps.size());

  double mean_cost = 0.0;
  for (TaskId t = 0; t < inst.graph.task_count(); ++t) mean_cost += inst.graph.cost(t);
  mean_cost /= static_cast<double>(inst.graph.task_count());
  const double mean_exec = mean_cost * inst.network.mean_inverse_speed();
  if (mean_exec <= 0.0 || mean_data <= 0.0) return;

  // CCR = (mean_data / strength) / mean_exec  =>  strength as below.
  const double strength = std::max(mean_data / (ccr * mean_exec), kMinNetworkWeight);
  for (NodeId a = 0; a < inst.network.node_count(); ++a) {
    for (NodeId b = a + 1; b < inst.network.node_count(); ++b) {
      inst.network.set_strength(a, b, strength);
    }
  }
}

namespace {

constexpr std::size_t kWorkflowPaperCount = 100;
constexpr std::int64_t kMaxWidth = 100000;   // sanity cap on n / analyses
constexpr std::size_t kMaxNetNodes = 10000;  // sanity cap on network sizes

}  // namespace

void register_workflow_family(saga::datasets::DatasetRegistry& registry,
                              WorkflowFamily family) {
  datasets::DatasetDesc desc;
  desc.name = family.name;
  desc.summary = family.summary;
  desc.tags = {"table2", "workflow"};
  desc.paper_count = kWorkflowPaperCount;
  desc.params = {
      {"n", family.n_help},
      {"ccr", "homogeneous average CCR override: positive number (default: off, "
              "Chameleon's infinite-strength links)"},
      {"min_nodes", "network size range, lower bound: integer >= 1 (default 4)"},
      {"max_nodes", "network size range, upper bound: integer >= min_nodes (default 12)"},
  };
  if (family.analyses_param) {
    desc.params.insert(desc.params.begin() + 1,
                       {"analyses", "analysis pairs: integer in [1, 100000] (default: uniform 3-8)"});
  }
  desc.factory = [family = std::move(family)](const datasets::DatasetParams& params,
                                              std::uint64_t master_seed)
      -> datasets::InstanceSourcePtr {
    WorkflowTuning tuning;
    tuning.n = params.get_i64("n", 0);
    if (family.analyses_param) tuning.analyses = params.get_i64("analyses", 0);
    tuning.ccr = params.get_double("ccr", 0.0);
    tuning.min_nodes = params.get_size("min_nodes", tuning.min_nodes);
    tuning.max_nodes = params.get_size("max_nodes", tuning.max_nodes);
    datasets::check_param_range(family.name, "n", tuning.n, 1, kMaxWidth);
    datasets::check_param_range(family.name, "analyses", tuning.analyses, 1, kMaxWidth);
    if (tuning.ccr < 0.0) {
      throw std::invalid_argument("dataset '" + family.name +
                                  "' parameter 'ccr' must be positive");
    }
    if (tuning.min_nodes < 1 || tuning.max_nodes < tuning.min_nodes ||
        tuning.max_nodes > kMaxNetNodes) {
      throw std::invalid_argument("dataset '" + family.name +
                                  "' needs 1 <= min_nodes <= max_nodes <= " +
                                  std::to_string(kMaxNetNodes));
    }
    auto instance = family.instance;
    return std::make_unique<datasets::GeneratorSource>(
        family.name, kWorkflowPaperCount, master_seed,
        [instance, tuning](std::uint64_t seed) { return instance(seed, tuning); });
  };
  registry.add(std::move(desc));
}

}  // namespace saga::workflows
