#include "datasets/workflows/srasearch.hpp"

#include "datasets/chameleon.hpp"

namespace saga::workflows {

const TraceStats& srasearch_stats() {
  static const TraceStats stats{
      .min_runtime = 1.0,
      .max_runtime = 600.0,
      .min_io = 1.0,
      .max_io = 2000.0,  // SRA archives are large
      .min_speed = 0.5,
      .max_speed = 1.5,
  };
  return stats;
}

TaskGraph make_srasearch_graph(Rng& rng, std::int64_t n_override) {
  const auto& stats = srasearch_stats();
  const auto n = n_override > 0 ? n_override : rng.uniform_int(4, 12);  // accessions processed in parallel

  TaskGraph g;
  const TaskId bootstrap = g.add_task("bootstrap", sample_runtime(rng, 5.0, stats));
  std::vector<TaskId> prefetch, metadata, dump, search;
  for (std::int64_t i = 0; i < n; ++i) {
    prefetch.push_back(
        g.add_task("prefetch_" + std::to_string(i), sample_runtime(rng, 120.0, stats)));
    metadata.push_back(
        g.add_task("metadata_" + std::to_string(i), sample_runtime(rng, 20.0, stats)));
  }
  for (std::int64_t i = 0; i < n; ++i) {
    dump.push_back(
        g.add_task("fasterq_dump_" + std::to_string(i), sample_runtime(rng, 240.0, stats)));
    search.push_back(
        g.add_task("sra_search_" + std::to_string(i), sample_runtime(rng, 300.0, stats)));
  }
  const TaskId merge_a = g.add_task("merge_reads", sample_runtime(rng, 20.0, stats));
  const TaskId merge_b = g.add_task("merge_hits", sample_runtime(rng, 20.0, stats));
  const TaskId report = g.add_task("report", sample_runtime(rng, 10.0, stats));

  for (std::int64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    g.add_dependency(bootstrap, prefetch[idx], sample_io(rng, 5.0, stats));
    g.add_dependency(bootstrap, metadata[idx], sample_io(rng, 5.0, stats));
    g.add_dependency(prefetch[idx], dump[idx], sample_io(rng, 800.0, stats));
    g.add_dependency(metadata[idx], search[idx], sample_io(rng, 50.0, stats));
    g.add_dependency(dump[idx], merge_a, sample_io(rng, 400.0, stats));
    g.add_dependency(search[idx], merge_b, sample_io(rng, 20.0, stats));
  }
  g.add_dependency(merge_a, report, sample_io(rng, 100.0, stats));
  g.add_dependency(merge_b, report, sample_io(rng, 20.0, stats));
  return g;
}

ProblemInstance srasearch_instance(std::uint64_t seed, const WorkflowTuning& tuning) {
  Rng rng(seed);
  ProblemInstance inst;
  inst.graph = make_srasearch_graph(rng, tuning.n);
  inst.network = datasets::chameleon_network(derive_seed(seed, {0x5a5eaULL}),
                                             tuning.min_nodes, tuning.max_nodes);
  if (tuning.ccr > 0.0) set_homogeneous_ccr(inst, tuning.ccr);
  return inst;
}

ProblemInstance srasearch_instance(std::uint64_t seed) { return srasearch_instance(seed, {}); }

void register_srasearch_dataset(saga::datasets::DatasetRegistry& registry) {
  register_workflow_family(
      registry,
      {.name = "srasearch",
       .summary = "SRASearch archive search: bootstrap fan-out to prefetch/metadata columns, dual merge + report",
       .n_help = "accessions: integer in [1, 100000] (default: uniform 4-12)",
       .instance = [](std::uint64_t seed, const WorkflowTuning& tuning) {
         return srasearch_instance(seed, tuning);
       }});
}

}  // namespace saga::workflows
