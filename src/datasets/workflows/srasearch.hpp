#pragma once

#include <cstdint>

#include "datasets/workflows/workflow.hpp"

/// \file srasearch.hpp
/// SRASearch — INSDC Sequence Read Archive search toolkit (paper Fig. 9a).
///
/// Rigid 4n+4-task structure, size-parameterised by n:
///
///   t0 (bootstrap) fans out to two tasks per column i in 1..n:
///     t_i        (prefetch)     t0 -> t_i
///     t_{n+i}    (metadata)     t0 -> t_{n+i}
///   each column continues with
///     t_{2n+i}   (fasterq_dump) t_i -> t_{2n+i}
///     t_{3n+i}   (sra_search)   t_{n+i} -> t_{3n+i}
///   and the columns join through two mergers feeding the final task:
///     t_{4n+1}   (merge A)      t_{2n+i} -> t_{4n+1} for all i
///     t_{4n+2}   (merge B)      t_{3n+i} -> t_{4n+2} for all i
///     t_{4n+3}   (report)       t_{4n+1}, t_{4n+2} -> t_{4n+3}
namespace saga::workflows {

/// `n` overrides the primary width (n; 0: the paper's draw).
[[nodiscard]] TaskGraph make_srasearch_graph(Rng& rng, std::int64_t n = 0);
[[nodiscard]] ProblemInstance srasearch_instance(std::uint64_t seed);
[[nodiscard]] ProblemInstance srasearch_instance(std::uint64_t seed, const WorkflowTuning& tuning);
[[nodiscard]] const TraceStats& srasearch_stats();
void register_srasearch_dataset(saga::datasets::DatasetRegistry& registry);

}  // namespace saga::workflows
