#pragma once

#include <cstdint>

#include "datasets/workflows/workflow.hpp"

/// \file soykb.hpp
/// SoyKB — soybean genomics variant-calling workflow (Liu et al. 2016).
///
/// Structure: s parallel per-sample GATK pipelines (chains of six tasks),
/// joined by combine_variants and finished with a genotyping/filtering
/// tail:
///
///   (align -> sort -> dedup -> add_replace -> realign_target ->
///    indel_realign -> haplotype_caller) × s
///      -> combine_variants -> genotype_gvcfs -> filtering
namespace saga::workflows {

[[nodiscard]] TaskGraph make_soykb_graph(Rng& rng);
[[nodiscard]] ProblemInstance soykb_instance(std::uint64_t seed);
[[nodiscard]] const TraceStats& soykb_stats();

}  // namespace saga::workflows
