#pragma once

#include <cstdint>

#include "datasets/workflows/workflow.hpp"

/// \file soykb.hpp
/// SoyKB — soybean genomics variant-calling workflow (Liu et al. 2016).
///
/// Structure: s parallel per-sample GATK pipelines (chains of six tasks),
/// joined by combine_variants and finished with a genotyping/filtering
/// tail:
///
///   (align -> sort -> dedup -> add_replace -> realign_target ->
///    indel_realign -> haplotype_caller) × s
///      -> combine_variants -> genotype_gvcfs -> filtering
namespace saga::workflows {

/// `n` overrides the primary width (samples; 0: the paper's draw).
[[nodiscard]] TaskGraph make_soykb_graph(Rng& rng, std::int64_t n = 0);
[[nodiscard]] ProblemInstance soykb_instance(std::uint64_t seed);
[[nodiscard]] ProblemInstance soykb_instance(std::uint64_t seed, const WorkflowTuning& tuning);
[[nodiscard]] const TraceStats& soykb_stats();
void register_soykb_dataset(saga::datasets::DatasetRegistry& registry);

}  // namespace saga::workflows
