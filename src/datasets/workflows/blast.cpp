#include "datasets/workflows/blast.hpp"

#include "datasets/chameleon.hpp"

namespace saga::workflows {

const TraceStats& blast_stats() {
  // Envelope of the Makeflow blast traces: long, uniform blastall tasks
  // (hundreds of seconds), tiny merge tasks, and FASTA chunks of tens of MB.
  static const TraceStats stats{
      .min_runtime = 1.0,
      .max_runtime = 1200.0,
      .min_io = 1.0,
      .max_io = 500.0,  // MB
      .min_speed = 0.5,
      .max_speed = 1.5,
  };
  return stats;
}

TaskGraph make_blast_graph(Rng& rng, std::int64_t n_override) {
  const auto& stats = blast_stats();
  const auto n = n_override > 0 ? n_override : rng.uniform_int(8, 24);  // number of blastall shards

  TaskGraph g;
  const TaskId split = g.add_task("split_fasta", sample_runtime(rng, 30.0, stats));
  std::vector<TaskId> shards;
  for (std::int64_t i = 0; i < n; ++i) {
    shards.push_back(g.add_task("blastall_" + std::to_string(i),
                                sample_runtime(rng, 600.0, stats)));
  }
  const TaskId cat_blast = g.add_task("cat_blast", sample_runtime(rng, 5.0, stats));
  const TaskId cat = g.add_task("cat", sample_runtime(rng, 5.0, stats));

  for (TaskId shard : shards) {
    g.add_dependency(split, shard, sample_io(rng, 40.0, stats));
    g.add_dependency(shard, cat_blast, sample_io(rng, 10.0, stats));
    g.add_dependency(shard, cat, sample_io(rng, 2.0, stats));
  }
  return g;
}

ProblemInstance blast_instance(std::uint64_t seed, const WorkflowTuning& tuning) {
  Rng rng(seed);
  ProblemInstance inst;
  inst.graph = make_blast_graph(rng, tuning.n);
  inst.network = datasets::chameleon_network(derive_seed(seed, {0xb1a57ULL}),
                                             tuning.min_nodes, tuning.max_nodes);
  if (tuning.ccr > 0.0) set_homogeneous_ccr(inst, tuning.ccr);
  return inst;
}

ProblemInstance blast_instance(std::uint64_t seed) { return blast_instance(seed, {}); }

void register_blast_dataset(saga::datasets::DatasetRegistry& registry) {
  register_workflow_family(
      registry,
      {.name = "blast",
       .summary = "BLAST sequence-similarity search: split_fasta fan-out to heavy blastall shards, dual merge tail",
       .n_help = "blastall shards: integer in [1, 100000] (default: uniform 8-24)",
       .instance = [](std::uint64_t seed, const WorkflowTuning& tuning) {
         return blast_instance(seed, tuning);
       }});
}

}  // namespace saga::workflows
