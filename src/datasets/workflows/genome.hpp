#pragma once

#include <cstdint>

#include "datasets/workflows/workflow.hpp"

/// \file genome.hpp
/// 1000Genome — human genome reconstruction workflow (da Silva et al. 2019).
///
/// Structure (single-chromosome slice): n parallel `individuals` extraction
/// tasks merge into `individuals_merge`; an independent `sifting` task runs
/// alongside; and m parallel analysis tasks (`mutation_overlap` and
/// `frequency`) each consume both the merge and sifting outputs:
///
///   individuals × n ─> individuals_merge ─┐
///                                         ├─> {mutation_overlap, frequency} × m
///   sifting ────────────────────────────--┘
namespace saga::workflows {

[[nodiscard]] TaskGraph make_genome_graph(Rng& rng);
[[nodiscard]] ProblemInstance genome_instance(std::uint64_t seed);
[[nodiscard]] const TraceStats& genome_stats();

}  // namespace saga::workflows
