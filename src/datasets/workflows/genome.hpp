#pragma once

#include <cstdint>

#include "datasets/workflows/workflow.hpp"

/// \file genome.hpp
/// 1000Genome — human genome reconstruction workflow (da Silva et al. 2019).
///
/// Structure (single-chromosome slice): n parallel `individuals` extraction
/// tasks merge into `individuals_merge`; an independent `sifting` task runs
/// alongside; and m parallel analysis tasks (`mutation_overlap` and
/// `frequency`) each consume both the merge and sifting outputs:
///
///   individuals × n ─> individuals_merge ─┐
///                                         ├─> {mutation_overlap, frequency} × m
///   sifting ────────────────────────────--┘
namespace saga::workflows {

/// `n` overrides the extractor count, `m` the analysis-pair count (0: the
/// paper's uniform draws).
[[nodiscard]] TaskGraph make_genome_graph(Rng& rng, std::int64_t n = 0, std::int64_t m = 0);
[[nodiscard]] ProblemInstance genome_instance(std::uint64_t seed);
[[nodiscard]] ProblemInstance genome_instance(std::uint64_t seed, const WorkflowTuning& tuning);
[[nodiscard]] const TraceStats& genome_stats();
void register_genome_dataset(saga::datasets::DatasetRegistry& registry);

}  // namespace saga::workflows
