#pragma once

#include <cstdint>

#include "datasets/workflows/workflow.hpp"

/// \file cycles.hpp
/// Cycles — agroecosystem modelling workflow (da Silva et al. 2019).
///
/// Structure: a parameter sweep of p independent simulation pipelines, each
/// a short chain baseline_cycles -> cycles -> fertilizer_increase_output ->
/// cycles_plots, with every pipeline's outputs aggregated by a final
/// summary task:
///
///   (baseline -> cycles -> fert_out -> plot) × p  ──>  summary
namespace saga::workflows {

[[nodiscard]] TaskGraph make_cycles_graph(Rng& rng);
[[nodiscard]] ProblemInstance cycles_instance(std::uint64_t seed);
[[nodiscard]] const TraceStats& cycles_stats();

}  // namespace saga::workflows
