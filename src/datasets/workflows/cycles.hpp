#pragma once

#include <cstdint>

#include "datasets/workflows/workflow.hpp"

/// \file cycles.hpp
/// Cycles — agroecosystem modelling workflow (da Silva et al. 2019).
///
/// Structure: a parameter sweep of p independent simulation pipelines, each
/// a short chain baseline_cycles -> cycles -> fertilizer_increase_output ->
/// cycles_plots, with every pipeline's outputs aggregated by a final
/// summary task:
///
///   (baseline -> cycles -> fert_out -> plot) × p  ──>  summary
namespace saga::workflows {

/// `n` overrides the primary width (pipelines; 0: the paper's draw).
[[nodiscard]] TaskGraph make_cycles_graph(Rng& rng, std::int64_t n = 0);
[[nodiscard]] ProblemInstance cycles_instance(std::uint64_t seed);
[[nodiscard]] ProblemInstance cycles_instance(std::uint64_t seed, const WorkflowTuning& tuning);
[[nodiscard]] const TraceStats& cycles_stats();
void register_cycles_dataset(saga::datasets::DatasetRegistry& registry);

}  // namespace saga::workflows
