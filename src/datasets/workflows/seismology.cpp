#include "datasets/workflows/seismology.hpp"

#include "datasets/chameleon.hpp"

namespace saga::workflows {

const TraceStats& seismology_stats() {
  static const TraceStats stats{
      .min_runtime = 0.5,
      .max_runtime = 200.0,
      .min_io = 0.1,
      .max_io = 50.0,
      .min_speed = 0.5,
      .max_speed = 1.5,
  };
  return stats;
}

TaskGraph make_seismology_graph(Rng& rng, std::int64_t n) {
  const auto& stats = seismology_stats();
  const auto stations = n > 0 ? n : rng.uniform_int(8, 30);

  TaskGraph g;
  const TaskId sift = g.add_task("wrapper_siftSTFByMisfit", sample_runtime(rng, 30.0, stats));
  for (std::int64_t i = 0; i < stations; ++i) {
    const TaskId decon =
        g.add_task("sG1IterDecon_" + std::to_string(i), sample_runtime(rng, 60.0, stats));
    g.add_dependency(decon, sift, sample_io(rng, 5.0, stats));
  }
  return g;
}

ProblemInstance seismology_instance(std::uint64_t seed, const WorkflowTuning& tuning) {
  Rng rng(seed);
  ProblemInstance inst;
  inst.graph = make_seismology_graph(rng, tuning.n);
  inst.network = datasets::chameleon_network(derive_seed(seed, {0x5e15ULL}),
                                             tuning.min_nodes, tuning.max_nodes);
  if (tuning.ccr > 0.0) set_homogeneous_ccr(inst, tuning.ccr);
  return inst;
}

ProblemInstance seismology_instance(std::uint64_t seed) { return seismology_instance(seed, {}); }

void register_seismology_dataset(saga::datasets::DatasetRegistry& registry) {
  register_workflow_family(
      registry,
      {.name = "seismology",
       .summary = "Seismology cross-correlation: parallel sG1IterDecon stations joined by one sifting task",
       .n_help = "seismic stations: integer in [1, 100000] (default: uniform 8-30)",
       .instance = [](std::uint64_t seed, const WorkflowTuning& tuning) {
         return seismology_instance(seed, tuning);
       }});
}

}  // namespace saga::workflows
