#pragma once

#include <cstdint>

#include "datasets/workflows/workflow.hpp"

/// \file epigenomics.hpp
/// Epigenomics — DNA methylation analysis workflow (Juve et al. 2013).
///
/// Structure: a fastqSplit source fans out to m parallel read-processing
/// pipelines (filterContams -> sol2sanger -> fastq2bfq -> map), which merge
/// and finish with an indexing/pileup tail:
///
///   fastqSplit -> (filter -> sol2sanger -> fastq2bfq -> map) × m
///              -> mapMerge -> maqIndex -> pileup
namespace saga::workflows {

[[nodiscard]] TaskGraph make_epigenomics_graph(Rng& rng);
[[nodiscard]] ProblemInstance epigenomics_instance(std::uint64_t seed);
[[nodiscard]] const TraceStats& epigenomics_stats();

}  // namespace saga::workflows
