#pragma once

#include <cstdint>

#include "datasets/workflows/workflow.hpp"

/// \file epigenomics.hpp
/// Epigenomics — DNA methylation analysis workflow (Juve et al. 2013).
///
/// Structure: a fastqSplit source fans out to m parallel read-processing
/// pipelines (filterContams -> sol2sanger -> fastq2bfq -> map), which merge
/// and finish with an indexing/pileup tail:
///
///   fastqSplit -> (filter -> sol2sanger -> fastq2bfq -> map) × m
///              -> mapMerge -> maqIndex -> pileup
namespace saga::workflows {

/// `n` overrides the primary width (lanes; 0: the paper's draw).
[[nodiscard]] TaskGraph make_epigenomics_graph(Rng& rng, std::int64_t n = 0);
[[nodiscard]] ProblemInstance epigenomics_instance(std::uint64_t seed);
[[nodiscard]] ProblemInstance epigenomics_instance(std::uint64_t seed, const WorkflowTuning& tuning);
[[nodiscard]] const TraceStats& epigenomics_stats();
void register_epigenomics_dataset(saga::datasets::DatasetRegistry& registry);

}  // namespace saga::workflows
