#include "datasets/workflows/montage.hpp"

#include "datasets/chameleon.hpp"

namespace saga::workflows {

const TraceStats& montage_stats() {
  static const TraceStats stats{
      .min_runtime = 0.5,
      .max_runtime = 300.0,
      .min_io = 0.5,
      .max_io = 200.0,
      .min_speed = 0.5,
      .max_speed = 1.5,
  };
  return stats;
}

TaskGraph make_montage_graph(Rng& rng, std::int64_t n) {
  const auto& stats = montage_stats();
  const auto images = n > 0 ? n : rng.uniform_int(6, 16);

  TaskGraph g;
  std::vector<TaskId> projects;
  for (std::int64_t i = 0; i < images; ++i) {
    projects.push_back(
        g.add_task("mProject_" + std::to_string(i), sample_runtime(rng, 60.0, stats)));
  }
  // Each mDiffFit consumes a pair of adjacent projections.
  const TaskId concat = g.add_task("mConcatFit", sample_runtime(rng, 10.0, stats));
  for (std::size_t i = 0; i + 1 < projects.size(); ++i) {
    const TaskId diff =
        g.add_task("mDiffFit_" + std::to_string(i), sample_runtime(rng, 15.0, stats));
    g.add_dependency(projects[i], diff, sample_io(rng, 30.0, stats));
    g.add_dependency(projects[i + 1], diff, sample_io(rng, 30.0, stats));
    g.add_dependency(diff, concat, sample_io(rng, 1.0, stats));
  }
  const TaskId bgmodel = g.add_task("mBgModel", sample_runtime(rng, 30.0, stats));
  g.add_dependency(concat, bgmodel, sample_io(rng, 1.0, stats));

  const TaskId imgtbl = g.add_task("mImgtbl", sample_runtime(rng, 5.0, stats));
  for (std::size_t i = 0; i < projects.size(); ++i) {
    const TaskId background =
        g.add_task("mBackground_" + std::to_string(i), sample_runtime(rng, 10.0, stats));
    g.add_dependency(projects[i], background, sample_io(rng, 30.0, stats));
    g.add_dependency(bgmodel, background, sample_io(rng, 1.0, stats));
    g.add_dependency(background, imgtbl, sample_io(rng, 30.0, stats));
  }
  const TaskId add = g.add_task("mAdd", sample_runtime(rng, 120.0, stats));
  const TaskId shrink = g.add_task("mShrink", sample_runtime(rng, 20.0, stats));
  const TaskId jpeg = g.add_task("mJPEG", sample_runtime(rng, 5.0, stats));
  g.add_dependency(imgtbl, add, sample_io(rng, 150.0, stats));
  g.add_dependency(add, shrink, sample_io(rng, 150.0, stats));
  g.add_dependency(shrink, jpeg, sample_io(rng, 20.0, stats));
  return g;
}

ProblemInstance montage_instance(std::uint64_t seed, const WorkflowTuning& tuning) {
  Rng rng(seed);
  ProblemInstance inst;
  inst.graph = make_montage_graph(rng, tuning.n);
  inst.network = datasets::chameleon_network(derive_seed(seed, {0x303aULL}), tuning.min_nodes,
                                             tuning.max_nodes);
  if (tuning.ccr > 0.0) set_homogeneous_ccr(inst, tuning.ccr);
  return inst;
}

ProblemInstance montage_instance(std::uint64_t seed) { return montage_instance(seed, {}); }

void register_montage_dataset(saga::datasets::DatasetRegistry& registry) {
  register_workflow_family(
      registry,
      {.name = "montage",
       .summary = "Montage astronomical image mosaic: layered "
                  "mProject/mDiffFit/mBackground structure on a Chameleon network",
       .n_help = "input images: integer in [1, 100000] (default: uniform 6-16)",
       .instance = [](std::uint64_t seed, const WorkflowTuning& tuning) {
         return montage_instance(seed, tuning);
       }});
}

}  // namespace saga::workflows
