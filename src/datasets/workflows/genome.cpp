#include "datasets/workflows/genome.hpp"

#include "datasets/chameleon.hpp"

namespace saga::workflows {

const TraceStats& genome_stats() {
  static const TraceStats stats{
      .min_runtime = 1.0,
      .max_runtime = 1500.0,
      .min_io = 1.0,
      .max_io = 1000.0,
      .min_speed = 0.5,
      .max_speed = 1.5,
  };
  return stats;
}

TaskGraph make_genome_graph(Rng& rng, std::int64_t n, std::int64_t m) {
  const auto& stats = genome_stats();
  const auto extractors = n > 0 ? n : rng.uniform_int(5, 15);
  const auto analyses = m > 0 ? m : rng.uniform_int(3, 8);

  TaskGraph g;
  const TaskId merge = g.add_task("individuals_merge", sample_runtime(rng, 100.0, stats));
  const TaskId sifting = g.add_task("sifting", sample_runtime(rng, 300.0, stats));
  for (std::int64_t i = 0; i < extractors; ++i) {
    const TaskId ind =
        g.add_task("individuals_" + std::to_string(i), sample_runtime(rng, 800.0, stats));
    g.add_dependency(ind, merge, sample_io(rng, 200.0, stats));
  }
  for (std::int64_t i = 0; i < analyses; ++i) {
    const auto tag = std::to_string(i);
    const TaskId overlap =
        g.add_task("mutation_overlap_" + tag, sample_runtime(rng, 120.0, stats));
    const TaskId freq = g.add_task("frequency_" + tag, sample_runtime(rng, 200.0, stats));
    for (TaskId analysis : {overlap, freq}) {
      g.add_dependency(merge, analysis, sample_io(rng, 400.0, stats));
      g.add_dependency(sifting, analysis, sample_io(rng, 50.0, stats));
    }
  }
  return g;
}

ProblemInstance genome_instance(std::uint64_t seed, const WorkflowTuning& tuning) {
  Rng rng(seed);
  ProblemInstance inst;
  inst.graph = make_genome_graph(rng, tuning.n, tuning.analyses);
  inst.network = datasets::chameleon_network(derive_seed(seed, {0x6e40eULL}),
                                             tuning.min_nodes, tuning.max_nodes);
  if (tuning.ccr > 0.0) set_homogeneous_ccr(inst, tuning.ccr);
  return inst;
}

ProblemInstance genome_instance(std::uint64_t seed) { return genome_instance(seed, {}); }

void register_genome_dataset(saga::datasets::DatasetRegistry& registry) {
  register_workflow_family(
      registry,
      {.name = "genome",
       .summary = "1000Genome reconstruction: parallel individuals extraction, merge + sifting "
                  "feeding analysis pairs",
       .n_help = "individuals extraction tasks: integer in [1, 100000] (default: uniform 5-15)",
       .analyses_param = true,
       .instance = [](std::uint64_t seed, const WorkflowTuning& tuning) {
         return genome_instance(seed, tuning);
       }});
}

}  // namespace saga::workflows
