#pragma once

#include <iosfwd>
#include <string>

#include "graph/problem_instance.hpp"
#include "sched/schedule.hpp"

/// \file schedule_io.hpp
/// Plain-text (de)serialization of schedules, complementing the instance
/// format in graph/serialization.hpp — together they let a WFMS (or a
/// reviewer) persist both halves of a scheduling decision and re-validate
/// it later.
///
/// Format:
///
///   saga-schedule v1
///   assignments <n>
///   assign <task> <node> <start> <finish>   (n lines, task-id order)

namespace saga {

void save_schedule(std::ostream& out, const Schedule& schedule);
[[nodiscard]] std::string schedule_to_string(const Schedule& schedule);

/// Parses a schedule; throws std::runtime_error on malformed input. The
/// result is not validated against any instance — call
/// Schedule::validate(inst) to check it.
[[nodiscard]] Schedule load_schedule(std::istream& in);
[[nodiscard]] Schedule schedule_from_string(const std::string& text);

}  // namespace saga
