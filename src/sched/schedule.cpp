#include "sched/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace saga {

void Schedule::reserve(std::size_t task_count) {
  assignments_.reserve(task_count);
  by_task_.reserve(task_count);
}

void Schedule::add(const Assignment& a) {
  if (a.task < by_task_.size() && by_task_[a.task].has_value()) {
    throw std::invalid_argument("task scheduled twice");
  }
  if (a.task >= by_task_.size()) by_task_.resize(a.task + 1);
  by_task_[a.task] = assignments_.size();
  assignments_.push_back(a);
}

bool Schedule::contains(TaskId t) const {
  return t < by_task_.size() && by_task_[t].has_value();
}

const Assignment& Schedule::of_task(TaskId t) const {
  if (!contains(t)) throw std::out_of_range("task not scheduled");
  return assignments_[*by_task_[t]];
}

std::vector<Assignment> Schedule::on_node(NodeId node) const {
  std::vector<Assignment> out;
  out.reserve(assignments_.size());
  for (const auto& a : assignments_) {
    if (a.node == node) out.push_back(a);
  }
  std::sort(out.begin(), out.end(),
            [](const Assignment& x, const Assignment& y) { return x.start < y.start; });
  return out;
}

double Schedule::makespan() const {
  double m = 0.0;
  for (const auto& a : assignments_) m = std::max(m, a.finish);
  return m;
}

ValidationResult Schedule::validate(const ProblemInstance& inst, double tol) const {
  const auto& g = inst.graph;
  const auto& net = inst.network;
  const auto fail = [](std::string msg) { return ValidationResult{false, std::move(msg)}; };

  // Every task scheduled exactly once (Schedule::add already prevents
  // duplicates, so only absence can occur).
  for (TaskId t = 0; t < g.task_count(); ++t) {
    if (!contains(t)) return fail("task " + g.name(t) + " is not scheduled");
  }
  if (size() != g.task_count()) return fail("schedule contains unknown tasks");

  for (const auto& a : assignments_) {
    if (a.node >= net.node_count()) return fail("assignment to unknown node");
    if (a.start < -tol) return fail("task " + g.name(a.task) + " starts before time 0");
    const double exec = net.exec_time(g.cost(a.task), a.node);
    if (std::abs(a.finish - (a.start + exec)) > tol + 1e-12 * std::abs(a.finish)) {
      return fail("task " + g.name(a.task) + " finish time inconsistent with exec time");
    }
  }

  // No overlap per node. Zero-duration tasks (cost 0) occupy no time and
  // may legally coincide with other work, so they are skipped; nesting is
  // caught by tracking the running finish-time watermark rather than only
  // comparing adjacent slots.
  for (NodeId v = 0; v < net.node_count(); ++v) {
    const auto slots = on_node(v);
    double watermark = 0.0;
    TaskId watermark_task = 0;
    for (const auto& slot : slots) {
      if (slot.finish <= slot.start + tol) continue;  // zero-duration
      if (slot.start < watermark - tol) {
        std::ostringstream msg;
        msg << "tasks " << g.name(watermark_task) << " and " << g.name(slot.task)
            << " overlap on node " << v;
        return fail(msg.str());
      }
      if (slot.finish > watermark) {
        watermark = slot.finish;
        watermark_task = slot.task;
      }
    }
  }

  // Precedence + communication constraints.
  for (const auto& [from, to] : g.dependencies()) {
    const auto& producer = of_task(from);
    const auto& consumer = of_task(to);
    const double arrival =
        producer.finish + net.comm_time(g.dependency_cost(from, to), producer.node, consumer.node);
    if (consumer.start < arrival - tol) {
      std::ostringstream msg;
      msg << "task " << g.name(to) << " starts at " << consumer.start
          << " before its input from " << g.name(from) << " arrives at " << arrival;
      return fail(msg.str());
    }
  }
  return {};
}

}  // namespace saga
