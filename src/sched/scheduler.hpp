#pragma once

#include <memory>
#include <string_view>

#include "graph/problem_instance.hpp"
#include "sched/schedule.hpp"

/// \file scheduler.hpp
/// Common interface of all 17 scheduling algorithms (the paper's Table I).

namespace saga {

class TimelineArena;

/// Network-model restrictions a scheduler was designed for. The paper's
/// PISA setup honours these by fixing the corresponding weights to 1 and
/// excluding them from perturbation (Section VI): ETF, FCP and FLB assume
/// homogeneous node speeds; BIL, GDL, FCP and FLB assume homogeneous link
/// strengths.
struct NetworkRequirements {
  bool homogeneous_node_speeds = false;
  bool homogeneous_link_strengths = false;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Short display name matching the paper's tables ("HEFT", "CPoP", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  [[nodiscard]] virtual NetworkRequirements requirements() const { return {}; }

  /// Produces a valid schedule for the instance. Implementations are
  /// deterministic: randomized schedulers (WBA) derive their stream from a
  /// constructor-provided seed.
  ///
  /// `arena` supplies the shared evaluation kernel's cached InstanceView
  /// and recycled timeline scratch (see sched/arena.hpp); hot loops such as
  /// PISA pass one arena per worker thread so repeated calls are
  /// allocation-free. A null arena is always valid and falls back to
  /// one-shot state. The schedule produced is identical either way.
  [[nodiscard]] virtual Schedule schedule(const ProblemInstance& inst,
                                          TimelineArena* arena) const = 0;

  /// Makespan of the schedule this scheduler would produce, without
  /// materializing the Schedule object. Bit-identical to
  /// `schedule(inst, arena).makespan()` — the hot-loop form for objectives
  /// (PISA evaluates two schedulers per annealing step and only needs the
  /// scalar). The default forwards to schedule(); kernel-migrated
  /// schedulers override it to read the timeline's running makespan, which
  /// skips the Schedule allocation entirely.
  [[nodiscard]] virtual double plan_makespan(const ProblemInstance& inst,
                                             TimelineArena* arena) const {
    return schedule(inst, arena).makespan();
  }

  /// Legacy entry point, kept as a forwarding shim so existing callers
  /// don't break. Concrete schedulers re-export it via
  /// `using Scheduler::schedule;`.
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst) const {
    return schedule(inst, nullptr);
  }
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

}  // namespace saga
