#pragma once

#include <memory>
#include <string_view>

#include "graph/problem_instance.hpp"
#include "sched/schedule.hpp"

/// \file scheduler.hpp
/// Common interface of all 17 scheduling algorithms (the paper's Table I).

namespace saga {

/// Network-model restrictions a scheduler was designed for. The paper's
/// PISA setup honours these by fixing the corresponding weights to 1 and
/// excluding them from perturbation (Section VI): ETF, FCP and FLB assume
/// homogeneous node speeds; BIL, GDL, FCP and FLB assume homogeneous link
/// strengths.
struct NetworkRequirements {
  bool homogeneous_node_speeds = false;
  bool homogeneous_link_strengths = false;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Short display name matching the paper's tables ("HEFT", "CPoP", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  [[nodiscard]] virtual NetworkRequirements requirements() const { return {}; }

  /// Produces a valid schedule for the instance. Implementations are
  /// deterministic: randomized schedulers (WBA) derive their stream from a
  /// constructor-provided seed.
  [[nodiscard]] virtual Schedule schedule(const ProblemInstance& inst) const = 0;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

}  // namespace saga
