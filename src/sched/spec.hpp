#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file spec.hpp
/// The scheduler spec-string grammar:
///
///   spec   := name [ '?' param ( '&' param )* ]
///   param  := key '=' value
///   value  := any characters except '&' ('+' separates list elements)
///
/// Examples: `HEFT`, `heft?rank=best&insertion=false`, `ga?pop=64&gens=200`,
/// `ensemble?members=heft+cpop+minmin`. Names resolve case-insensitively
/// against the SchedulerRegistry (sched/registry.hpp); parameter keys are
/// validated against the scheduler's declared descriptor. Every scheduler
/// also accepts the universal `seed` key, which overrides the seed passed
/// to the factory. `parse` / `to_string` round-trip exactly.

namespace saga {

/// A parsed spec string: scheduler name plus key=value parameters in the
/// order they were written.
struct SchedulerSpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;

  /// Serializes back to the grammar above; `parse_scheduler_spec(s).to_string() == s`
  /// for any valid spec string `s`.
  [[nodiscard]] std::string to_string() const;

  /// The value for `key`, or null when absent.
  [[nodiscard]] const std::string* find(std::string_view key) const;
};

/// Parses a spec string; throws std::invalid_argument on grammar errors
/// (empty name, missing '=', empty or duplicate keys — the message names
/// the offending key). Does not consult the registry: unknown scheduler
/// names and parameter keys are diagnosed at construction time.
[[nodiscard]] SchedulerSpec parse_scheduler_spec(std::string_view text);

/// Typed, validated access to a spec's parameters, handed to scheduler
/// factories by the registry. Conversion failures throw
/// std::invalid_argument naming the scheduler and the offending key.
class SchedulerParams {
 public:
  SchedulerParams(std::string scheduler,
                  const std::vector<std::pair<std::string, std::string>>* params);

  [[nodiscard]] bool has(std::string_view key) const;
  [[nodiscard]] std::uint64_t get_u64(std::string_view key, std::uint64_t fallback) const;
  [[nodiscard]] std::size_t get_size(std::string_view key, std::size_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string get_string(std::string_view key, std::string_view fallback) const;
  /// '+'-separated list, e.g. `members=heft+cpop+minmin`.
  [[nodiscard]] std::vector<std::string> get_list(std::string_view key,
                                                  std::vector<std::string> fallback) const;

 private:
  [[nodiscard]] const std::string* raw(std::string_view key) const;
  [[noreturn]] void fail(std::string_view key, std::string_view expected,
                         const std::string& got) const;

  std::string scheduler_;
  const std::vector<std::pair<std::string, std::string>>* params_;
};

}  // namespace saga
