#pragma once

#include <string_view>
#include <utility>
#include <vector>

#include "common/spec.hpp"

/// \file spec.hpp (sched)
/// Scheduler-flavoured aliases over the shared spec-string grammar
/// (common/spec.hpp). Examples: `HEFT`, `heft?rank=best&insertion=false`,
/// `ga?pop=64&gens=200`, `ensemble?members=heft+cpop+minmin`. Names resolve
/// case-insensitively against the SchedulerRegistry (sched/registry.hpp);
/// parameter keys are validated against the scheduler's declared
/// descriptor. Every scheduler also accepts the universal `seed` key, which
/// overrides the seed passed to the factory.

namespace saga {

/// A parsed scheduler spec string (shared grammar, see common/spec.hpp).
using SchedulerSpec = Spec;

/// Parses a scheduler spec string; throws std::invalid_argument on grammar
/// errors with a message naming the offending key.
[[nodiscard]] inline SchedulerSpec parse_scheduler_spec(std::string_view text) {
  return parse_spec(text, "scheduler");
}

/// Typed parameter access handed to scheduler factories by the registry;
/// conversion failures name the scheduler and the offending key.
class SchedulerParams : public SpecParams {
 public:
  SchedulerParams(std::string scheduler,
                  const std::vector<std::pair<std::string, std::string>>* params)
      : SpecParams("scheduler", std::move(scheduler), params) {}
};

}  // namespace saga
