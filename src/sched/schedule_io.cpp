#include "sched/schedule_io.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace saga {

namespace {

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string next_line(std::istream& in, int& line_no) {
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    const auto last = line.find_last_not_of(" \t\r");
    return line.substr(first, last - first + 1);
  }
  throw std::runtime_error("unexpected end of schedule at line " + std::to_string(line_no));
}

}  // namespace

void save_schedule(std::ostream& out, const Schedule& schedule) {
  out << "saga-schedule v1\n";
  out << "assignments " << schedule.size() << "\n";
  for (const auto& a : schedule.assignments()) {
    out << "assign " << a.task << " " << a.node << " " << fmt(a.start) << " " << fmt(a.finish)
        << "\n";
  }
}

std::string schedule_to_string(const Schedule& schedule) {
  std::ostringstream out;
  save_schedule(out, schedule);
  return out.str();
}

Schedule load_schedule(std::istream& in) {
  int line_no = 0;
  if (next_line(in, line_no) != "saga-schedule v1") {
    throw std::runtime_error("not a saga-schedule v1 file");
  }
  std::istringstream header(next_line(in, line_no));
  std::string word;
  std::size_t count = 0;
  if (!(header >> word >> count) || word != "assignments") {
    throw std::runtime_error("line " + std::to_string(line_no) + ": expected 'assignments <n>'");
  }
  Schedule schedule;
  for (std::size_t i = 0; i < count; ++i) {
    std::istringstream row(next_line(in, line_no));
    Assignment a;
    if (!(row >> word >> a.task >> a.node >> a.start >> a.finish) || word != "assign") {
      throw std::runtime_error("line " + std::to_string(line_no) + ": bad assign record");
    }
    schedule.add(a);
  }
  return schedule;
}

Schedule schedule_from_string(const std::string& text) {
  std::istringstream in(text);
  return load_schedule(in);
}

}  // namespace saga
