#include "sched/arena.hpp"

namespace saga {

void TimelineScratch::reset(std::size_t tasks, std::size_t nodes) {
  busy.resize(nodes);
  for (auto& lane : busy) lane.clear();
  assignment.resize(tasks);
  placed.assign(tasks, 0);
  // Sized but not zeroed: TimelineBuilder::init writes every entry right
  // after reset, so a fill here would be a second pass over the array.
  pending_preds.resize(tasks);
  data_ready.assign(tasks * nodes, 0.0);
  node_avail.assign(nodes, 0.0);
  row_start.resize(nodes);
  row_finish.resize(nodes);
  ready_list.clear();
  ready_dirty = true;
}

}  // namespace saga
