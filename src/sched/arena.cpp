#include "sched/arena.hpp"

namespace saga {

void TimelineScratch::reset(std::size_t tasks, std::size_t nodes) {
  busy.resize(nodes);
  for (auto& lane : busy) lane.clear();
  assignment.resize(tasks);
  placed.assign(tasks, 0);
  pending_preds.assign(tasks, 0);
  data_ready.assign(tasks * nodes, 0.0);
}

std::unique_ptr<TimelineScratch> TimelineArena::acquire() {
  if (pool_.empty()) return std::make_unique<TimelineScratch>();
  auto scratch = std::move(pool_.back());
  pool_.pop_back();
  return scratch;
}

void TimelineArena::release(std::unique_ptr<TimelineScratch> scratch) {
  if (scratch) pool_.push_back(std::move(scratch));
}

}  // namespace saga
