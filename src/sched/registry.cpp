#include "sched/registry.hpp"

#include <stdexcept>

#include "schedulers/bil.hpp"
#include "schedulers/ensemble.hpp"
#include "schedulers/ert.hpp"
#include "schedulers/genetic.hpp"
#include "schedulers/linear_clustering.hpp"
#include "schedulers/lmt.hpp"
#include "schedulers/mh.hpp"
#include "schedulers/peft.hpp"
#include "schedulers/sim_anneal.hpp"
#include "schedulers/brute_force.hpp"
#include "schedulers/cpop.hpp"
#include "schedulers/duplex.hpp"
#include "schedulers/etf.hpp"
#include "schedulers/fastest_node.hpp"
#include "schedulers/fcp.hpp"
#include "schedulers/flb.hpp"
#include "schedulers/gdl.hpp"
#include "schedulers/heft.hpp"
#include "schedulers/maxmin.hpp"
#include "schedulers/mct.hpp"
#include "schedulers/met.hpp"
#include "schedulers/minmin.hpp"
#include "schedulers/olb.hpp"
#include "schedulers/smt_binary_search.hpp"
#include "schedulers/wba.hpp"

namespace saga {

const std::vector<std::string>& all_scheduler_names() {
  static const std::vector<std::string> names = {
      "BIL",  "BruteForce", "CPoP",   "Duplex", "ETF",    "FastestNode",
      "FCP",  "FLB",        "GDL",    "HEFT",   "MaxMin", "MCT",
      "MET",  "MinMin",     "OLB",    "SMT",    "WBA"};
  return names;
}

const std::vector<std::string>& benchmark_scheduler_names() {
  static const std::vector<std::string> names = {
      "BIL", "CPoP", "Duplex", "ETF",    "FCP",    "FLB", "FastestNode", "GDL",
      "HEFT", "MCT", "MET",    "MaxMin", "MinMin", "OLB", "WBA"};
  return names;
}

const std::vector<std::string>& app_specific_scheduler_names() {
  static const std::vector<std::string> names = {"CPoP",   "FastestNode", "HEFT",
                                                 "MaxMin", "MinMin",      "WBA"};
  return names;
}

const std::vector<std::string>& extension_scheduler_names() {
  static const std::vector<std::string> names = {"ERT", "MH",        "LMT",      "LC",
                                                 "GA",  "SimAnneal", "Ensemble", "PEFT"};
  return names;
}

SchedulerPtr make_scheduler(const std::string& name, std::uint64_t seed) {
  if (name == "BIL") return std::make_unique<BilScheduler>();
  if (name == "ERT") return std::make_unique<ErtScheduler>();
  if (name == "PEFT") return std::make_unique<PeftScheduler>();
  if (name == "MH") return std::make_unique<MhScheduler>();
  if (name == "LMT") return std::make_unique<LmtScheduler>();
  if (name == "LC") return std::make_unique<LinearClusteringScheduler>();
  if (name == "GA") return std::make_unique<GeneticScheduler>(seed);
  if (name == "SimAnneal") return std::make_unique<SimAnnealScheduler>(seed);
  if (name == "Ensemble") return std::make_unique<EnsembleScheduler>(
      std::vector<std::string>{"HEFT", "CPoP", "MinMin"}, seed);
  if (name == "BruteForce") return std::make_unique<BruteForceScheduler>();
  if (name == "CPoP") return std::make_unique<CpopScheduler>();
  if (name == "Duplex") return std::make_unique<DuplexScheduler>();
  if (name == "ETF") return std::make_unique<EtfScheduler>();
  if (name == "FastestNode") return std::make_unique<FastestNodeScheduler>();
  if (name == "FCP") return std::make_unique<FcpScheduler>();
  if (name == "FLB") return std::make_unique<FlbScheduler>();
  if (name == "GDL") return std::make_unique<GdlScheduler>();
  if (name == "HEFT") return std::make_unique<HeftScheduler>();
  if (name == "MaxMin") return std::make_unique<MaxMinScheduler>();
  if (name == "MCT") return std::make_unique<MctScheduler>();
  if (name == "MET") return std::make_unique<MetScheduler>();
  if (name == "MinMin") return std::make_unique<MinMinScheduler>();
  if (name == "OLB") return std::make_unique<OlbScheduler>();
  if (name == "SMT") return std::make_unique<SmtBinarySearchScheduler>();
  if (name == "WBA") return std::make_unique<WbaScheduler>(seed);
  throw std::invalid_argument("unknown scheduler: " + name);
}

SchedulerPtr make_scheduler(const std::string& name) {
  return make_scheduler(name, 0x5a6a0001ULL);
}

std::vector<SchedulerPtr> make_benchmark_schedulers() {
  std::vector<SchedulerPtr> out;
  out.reserve(benchmark_scheduler_names().size());
  for (const auto& name : benchmark_scheduler_names()) out.push_back(make_scheduler(name));
  return out;
}

}  // namespace saga
