#include "sched/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/nearest.hpp"

namespace saga {

bool SchedulerDesc::has_tag(std::string_view tag) const {
  for (const auto& t : tags) {
    if (t == tag) return true;
  }
  return false;
}

const ParamDesc* SchedulerDesc::find_param(std::string_view key) const {
  for (const auto& param : params) {
    if (param.key == key) return &param;
  }
  return nullptr;
}

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry& registry = *[] {
    auto* r = new SchedulerRegistry;  // never destroyed: schedulers may be
                                      // constructed from static destructors
    register_builtin_schedulers(*r);
    return r;
  }();
  return registry;
}

void SchedulerRegistry::add(SchedulerDesc desc) {
  if (desc.randomized && !desc.has_tag("randomized")) desc.tags.emplace_back("randomized");
  DescriptorRegistry::add(std::move(desc));
}

std::vector<std::string> SchedulerRegistry::names(std::string_view tag,
                                                  NameOrder order) const {
  std::vector<std::string> out = DescriptorRegistry::names(tag);
  if (order == NameOrder::kLexicographic) std::sort(out.begin(), out.end());
  return out;
}

SchedulerPtr SchedulerRegistry::make(const SchedulerSpec& spec, std::uint64_t seed) const {
  const SchedulerDesc& desc = resolve(spec.name);
  std::vector<std::string> valid_keys;
  valid_keys.reserve(desc.params.size() + 1);
  for (const auto& param : desc.params) valid_keys.push_back(param.key);
  valid_keys.emplace_back("seed");
  for (const auto& [key, value] : spec.params) {
    if (key == "seed" || desc.find_param(key) != nullptr) continue;
    std::string message = "scheduler '" + desc.name + "' has no parameter '" + key + "'" +
                          did_you_mean(key, valid_keys);
    message += desc.params.empty() ? "; it only accepts 'seed'"
                                   : "; valid parameters: " + join(valid_keys, ", ");
    throw std::invalid_argument(message);
  }
  const SchedulerParams params(desc.name, &spec.params);
  return desc.factory(params, params.get_u64("seed", seed));
}

SchedulerPtr SchedulerRegistry::make(std::string_view spec_string, std::uint64_t seed) const {
  return make(parse_scheduler_spec(spec_string), seed);
}

/// ---- Compatibility shims ------------------------------------------------

const std::vector<std::string>& all_scheduler_names() {
  static const std::vector<std::string> names =
      SchedulerRegistry::instance().names("table1", NameOrder::kRegistration);
  return names;
}

const std::vector<std::string>& benchmark_scheduler_names() {
  // The historical benchmarking roster was byte-wise sorted; the order seeds
  // the per-cell RNG streams of the Fig. 2/Fig. 4 drivers, so keep it.
  static const std::vector<std::string> names =
      SchedulerRegistry::instance().names("benchmark", NameOrder::kLexicographic);
  return names;
}

const std::vector<std::string>& app_specific_scheduler_names() {
  static const std::vector<std::string> names =
      SchedulerRegistry::instance().names("app-specific", NameOrder::kRegistration);
  return names;
}

const std::vector<std::string>& extension_scheduler_names() {
  static const std::vector<std::string> names =
      SchedulerRegistry::instance().names("extension", NameOrder::kRegistration);
  return names;
}

SchedulerPtr make_scheduler(const std::string& name, std::uint64_t seed) {
  return SchedulerRegistry::instance().make(name, seed);
}

SchedulerPtr make_scheduler(const std::string& name) {
  return make_scheduler(name, 0x5a6a0001ULL);
}

std::vector<SchedulerPtr> make_benchmark_schedulers() {
  std::vector<SchedulerPtr> out;
  out.reserve(benchmark_scheduler_names().size());
  for (const auto& name : benchmark_scheduler_names()) out.push_back(make_scheduler(name));
  return out;
}

}  // namespace saga
