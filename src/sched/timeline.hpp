#pragma once

#include <cstddef>
#include <vector>

#include "graph/problem_instance.hpp"
#include "sched/schedule.hpp"

/// \file timeline.hpp
/// Incremental schedule construction shared by all list schedulers: tracks
/// per-node busy intervals and per-task placement, computes data-ready and
/// earliest-start times, and supports both append-only placement (MCT,
/// MinMin, ...) and insertion-based placement (HEFT, CPoP) where a task may
/// slot into an idle gap between already-placed tasks.

namespace saga {

class TimelineBuilder {
 public:
  explicit TimelineBuilder(const ProblemInstance& inst);

  [[nodiscard]] const ProblemInstance& instance() const noexcept { return *inst_; }

  [[nodiscard]] bool placed(TaskId t) const { return placed_[t]; }
  [[nodiscard]] std::size_t placed_count() const noexcept { return placed_count_; }
  [[nodiscard]] const Assignment& assignment_of(TaskId t) const;

  /// Time at which all of t's inputs are available on node v, given the
  /// placements of t's predecessors (which must all be placed).
  [[nodiscard]] double data_ready_time(TaskId t, NodeId v) const;

  /// Earliest start of t on v: with `insertion`, the earliest idle gap of
  /// sufficient length at or after the data-ready time; otherwise
  /// max(data-ready time, end of the node's last busy interval).
  [[nodiscard]] double earliest_start(TaskId t, NodeId v, bool insertion) const;

  /// earliest_start + execution time.
  [[nodiscard]] double earliest_finish(TaskId t, NodeId v, bool insertion) const;

  /// Execution time of t on v (cost / speed).
  [[nodiscard]] double exec_time(TaskId t, NodeId v) const;

  /// End of the last busy interval on v (0 if idle).
  [[nodiscard]] double node_available(NodeId v) const;

  /// Number of predecessors of t not yet placed.
  [[nodiscard]] std::size_t unplaced_predecessors(TaskId t) const {
    return pending_preds_[t];
  }
  [[nodiscard]] bool ready(TaskId t) const { return !placed_[t] && pending_preds_[t] == 0; }

  /// Tasks whose predecessors are all placed, in id order.
  [[nodiscard]] std::vector<TaskId> ready_tasks() const;

  /// Places t on v starting at `start` (which must be >= both the node's
  /// free slot and the data-ready time; checked in debug builds).
  void place(TaskId t, NodeId v, double start);

  /// Convenience: place at the earliest start.
  void place_earliest(TaskId t, NodeId v, bool insertion) {
    place(t, v, earliest_start(t, v, insertion));
  }

  /// True once every task has been placed.
  [[nodiscard]] bool complete() const noexcept {
    return placed_count_ == inst_->graph.task_count();
  }

  /// Current makespan of the partial schedule.
  [[nodiscard]] double current_makespan() const noexcept { return makespan_; }

  /// Extracts the finished schedule. Requires complete().
  [[nodiscard]] Schedule to_schedule() const;

 private:
  struct Interval {
    double start;
    double end;
    TaskId task;
  };

  const ProblemInstance* inst_;
  std::vector<std::vector<Interval>> busy_;  // per node, sorted by start
  std::vector<Assignment> assignment_;       // per task; valid iff placed_
  std::vector<bool> placed_;
  std::vector<std::size_t> pending_preds_;
  std::size_t placed_count_ = 0;
  double makespan_ = 0.0;
};

}  // namespace saga
