#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "graph/instance_view.hpp"
#include "graph/problem_instance.hpp"
#include "sched/arena.hpp"
#include "sched/schedule.hpp"

/// \file timeline.hpp
/// Incremental schedule construction shared by all list schedulers: tracks
/// per-node busy intervals and per-task placement, computes data-ready and
/// earliest-start times, and supports both append-only placement (MCT,
/// MinMin, ...) and insertion-based placement (HEFT, CPoP) where a task may
/// slot into an idle gap between already-placed tasks.
///
/// The builder runs on the shared evaluation kernel: all instance reads go
/// through a flat InstanceView, and per-(task, node) data-ready times are
/// memoized — maintained incrementally as predecessors are placed — so the
/// inner node-selection loops of the list schedulers are O(1) per query
/// with no adjacency walk. Constructed with a TimelineArena, the builder
/// borrows the arena's cached view and recycled scratch buffers, making
/// repeated `schedule()` calls allocation-free once the arena is warm.

namespace saga {

class TimelineBuilder {
 public:
  /// One-shot constructor: builds a private view and scratch (allocates).
  explicit TimelineBuilder(const ProblemInstance& inst);

  /// Kernel constructor: borrows the arena's cached view and a pooled
  /// scratch block. `arena == nullptr` falls back to the one-shot path.
  /// The builder must not outlive the arena.
  TimelineBuilder(const ProblemInstance& inst, TimelineArena* arena);

  /// For callers that already hold a synced view (must stay valid and
  /// unchanged for the builder's lifetime).
  TimelineBuilder(const InstanceView& view, TimelineArena* arena);

  TimelineBuilder(const TimelineBuilder& other);
  TimelineBuilder& operator=(const TimelineBuilder& other);
  ~TimelineBuilder();

  [[nodiscard]] const InstanceView& view() const noexcept { return *view_; }
  [[nodiscard]] const ProblemInstance& instance() const noexcept { return view_->instance(); }

  [[nodiscard]] bool placed(TaskId t) const { return scratch_->placed[t] != 0; }
  [[nodiscard]] std::size_t placed_count() const noexcept { return placed_count_; }
  [[nodiscard]] const Assignment& assignment_of(TaskId t) const;

  /// Time at which all of t's inputs are available on node v, given the
  /// placements of t's predecessors (which must all be placed). O(1): reads
  /// the memo maintained by `place`.
  [[nodiscard]] double data_ready_time(TaskId t, NodeId v) const;

  /// Earliest start of t on v: with `insertion`, the earliest idle gap of
  /// sufficient length at or after the data-ready time (binary search to
  /// the first busy interval ending after the ready time, then a forward
  /// gap scan); otherwise max(data-ready time, end of the node's last busy
  /// interval).
  [[nodiscard]] double earliest_start(TaskId t, NodeId v, bool insertion) const;

  /// earliest_start + execution time.
  [[nodiscard]] double earliest_finish(TaskId t, NodeId v, bool insertion) const;

  /// Execution time of t on v (cost / speed).
  [[nodiscard]] double exec_time(TaskId t, NodeId v) const { return view_->exec_time(t, v); }

  /// End of the last busy interval on v (0 if idle).
  [[nodiscard]] double node_available(NodeId v) const {
    const auto& lane = scratch_->busy[v];
    return lane.empty() ? 0.0 : lane.back().end;
  }

  /// Number of predecessors of t not yet placed.
  [[nodiscard]] std::size_t unplaced_predecessors(TaskId t) const {
    return scratch_->pending_preds[t];
  }
  [[nodiscard]] bool ready(TaskId t) const {
    return scratch_->placed[t] == 0 && scratch_->pending_preds[t] == 0;
  }

  /// Tasks whose predecessors are all placed, in id order.
  [[nodiscard]] std::vector<TaskId> ready_tasks() const;

  /// Places t on v starting at `start` (which must be >= both the node's
  /// free slot and the data-ready time; checked in debug builds). Updates
  /// the successors' data-ready memo incrementally.
  void place(TaskId t, NodeId v, double start);

  /// Convenience: place at the earliest start.
  void place_earliest(TaskId t, NodeId v, bool insertion) {
    place(t, v, earliest_start(t, v, insertion));
  }

  /// True once every task has been placed.
  [[nodiscard]] bool complete() const noexcept {
    return placed_count_ == view_->task_count();
  }

  /// Current makespan of the partial schedule.
  [[nodiscard]] double current_makespan() const noexcept { return makespan_; }

  /// Extracts the finished schedule. Requires complete().
  [[nodiscard]] Schedule to_schedule() const;

 private:
  void init();

  const InstanceView* view_ = nullptr;
  std::shared_ptr<const InstanceView> owned_view_;  // one-shot path; shared by copies
  TimelineArena* arena_ = nullptr;
  std::unique_ptr<TimelineScratch> scratch_;
  std::size_t placed_count_ = 0;
  double makespan_ = 0.0;
};

}  // namespace saga
