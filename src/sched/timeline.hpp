#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "graph/instance_view.hpp"
#include "graph/problem_instance.hpp"
#include "sched/arena.hpp"
#include "sched/schedule.hpp"

/// \file timeline.hpp
/// Incremental schedule construction shared by all list schedulers: tracks
/// per-node busy intervals and per-task placement, computes data-ready and
/// earliest-start times, and supports both append-only placement (MCT,
/// MinMin, ...) and insertion-based placement (HEFT, CPoP) where a task may
/// slot into an idle gap between already-placed tasks.
///
/// The builder runs on the shared evaluation kernel: all instance reads go
/// through a flat InstanceView, and per-(task, node) data-ready times are
/// memoized — maintained incrementally as predecessors are placed — so the
/// inner node-selection loops of the list schedulers are O(1) per query
/// with no adjacency walk. Constructed with a TimelineArena, the builder
/// borrows the arena's cached view and recycled scratch buffers, making
/// repeated `schedule()` calls allocation-free once the arena is warm.
///
/// The row-wise candidate API (`data_ready_row`, `eft_row`, `best_eft`,
/// `node_available_row`) evaluates a candidate task against **all** nodes
/// in one contiguous structure-of-arrays sweep over the data-ready memo,
/// the availability row, and the view's packed speed table — the form the
/// compiler autovectorizes — and is bit-identical to the scalar
/// `earliest_start`/`earliest_finish` queries it replaces.

namespace saga {

class TimelineBuilder {
 public:
  /// One-shot constructor: builds a private view and scratch (allocates).
  explicit TimelineBuilder(const ProblemInstance& inst);

  /// Kernel constructor: borrows the arena's cached view and a pooled
  /// scratch block. `arena == nullptr` falls back to the one-shot path.
  /// The builder must not outlive the arena.
  TimelineBuilder(const ProblemInstance& inst, TimelineArena* arena);

  /// For callers that already hold a synced view (must stay valid and
  /// unchanged for the builder's lifetime).
  TimelineBuilder(const InstanceView& view, TimelineArena* arena);

  TimelineBuilder(const TimelineBuilder& other);
  TimelineBuilder& operator=(const TimelineBuilder& other);
  ~TimelineBuilder();

  [[nodiscard]] const InstanceView& view() const noexcept { return *view_; }
  [[nodiscard]] const ProblemInstance& instance() const noexcept { return view_->instance(); }

  [[nodiscard]] bool placed(TaskId t) const { return scratch_->placed[t] != 0; }
  [[nodiscard]] std::size_t placed_count() const noexcept { return placed_count_; }
  [[nodiscard]] const Assignment& assignment_of(TaskId t) const;

  /// Time at which all of t's inputs are available on node v, given the
  /// placements of t's predecessors (which must all be placed). O(1): reads
  /// the memo maintained by `place`.
  [[nodiscard]] double data_ready_time(TaskId t, NodeId v) const;

  /// Earliest start of t on v: with `insertion`, the earliest idle gap of
  /// sufficient length at or after the data-ready time (binary search to
  /// the first busy interval ending after the ready time, then a forward
  /// gap scan); otherwise max(data-ready time, end of the node's last busy
  /// interval).
  [[nodiscard]] double earliest_start(TaskId t, NodeId v, bool insertion) const;

  /// earliest_start + execution time.
  [[nodiscard]] double earliest_finish(TaskId t, NodeId v, bool insertion) const;

  /// One row of per-node candidate values for a ready task, produced by a
  /// single SoA sweep (see eft_row). Spans point into the builder's scratch
  /// and are valid until the next eft_row or place call.
  struct CandidateRow {
    std::span<const double> start;   ///< earliest_start(t, v, insertion) per node
    std::span<const double> finish;  ///< start[v] + exec_time(t, v) per node
  };

  /// Computes earliest start and finish of t across **all** nodes in one
  /// contiguous sweep over the data-ready row, the availability row, and
  /// the packed speed table. Bit-identical to querying
  /// `earliest_start`/`earliest_finish` per node: the append-mode value is
  /// max(ready, avail) + cost/speed computed element-wise; in insertion
  /// mode, lanes where a gap could beat appending (some busy interval ends
  /// after the ready time) are patched with the scalar gap scan.
  [[nodiscard]] CandidateRow eft_row(TaskId t, bool insertion);

  /// The memoized data-ready row of t (all predecessors must be placed):
  /// data_ready_time(t, v) for every v as one contiguous span.
  [[nodiscard]] std::span<const double> data_ready_row(TaskId t) const {
    const std::size_t nodes = view_->node_count();
    return {scratch_->data_ready.data() + static_cast<std::size_t>(t) * nodes, nodes};
  }

  /// node_available(v) for every v as one contiguous span, maintained
  /// incrementally by place().
  [[nodiscard]] std::span<const double> node_available_row() const noexcept {
    return scratch_->node_avail;
  }

  /// Argmin over the eft_row finish row; the first (lowest-id) node wins
  /// ties, the same rule as the schedulers' scalar argmin loops.
  struct NodeChoice {
    NodeId node = 0;
    double start = 0.0;
    double finish = 0.0;
  };
  [[nodiscard]] NodeChoice best_eft(TaskId t, bool insertion);

  /// Reusable scheduler-side temporaries pooled with this builder's scratch
  /// (see TimelineScratch::Workspace).
  [[nodiscard]] TimelineScratch::Workspace& workspace() noexcept { return scratch_->ws; }

  /// Execution time of t on v (cost / speed).
  [[nodiscard]] double exec_time(TaskId t, NodeId v) const { return view_->exec_time(t, v); }

  /// End of the last busy interval on v (0 if idle). O(1): reads the
  /// availability row place() maintains.
  [[nodiscard]] double node_available(NodeId v) const { return scratch_->node_avail[v]; }

  /// Number of predecessors of t not yet placed.
  [[nodiscard]] std::size_t unplaced_predecessors(TaskId t) const {
    return scratch_->pending_preds[t];
  }
  [[nodiscard]] bool ready(TaskId t) const {
    return scratch_->placed[t] == 0 && scratch_->pending_preds[t] == 0;
  }

  /// Tasks whose predecessors are all placed, in id order. Returns a span
  /// over an id-sorted list rebuilt on the first query after a placement
  /// (one O(T) scan, no allocation once warm) — schedulers that place in a
  /// precomputed priority order never pay for it. Valid until the next
  /// place call.
  [[nodiscard]] std::span<const TaskId> ready_tasks() const noexcept {
    TimelineScratch& s = *scratch_;
    if (s.ready_dirty) {
      s.ready_list.clear();
      const std::size_t tasks = view_->task_count();
      for (TaskId t = 0; t < tasks; ++t) {
        if (s.placed[t] == 0 && s.pending_preds[t] == 0) s.ready_list.push_back(t);
      }
      s.ready_dirty = false;
    }
    return s.ready_list;
  }

  /// Places t on v starting at `start` (which must be >= both the node's
  /// free slot and the data-ready time; checked in debug builds). Updates
  /// the successors' data-ready memo incrementally.
  void place(TaskId t, NodeId v, double start);

  /// Convenience: place at the earliest start.
  void place_earliest(TaskId t, NodeId v, bool insertion) {
    place(t, v, earliest_start(t, v, insertion));
  }

  /// True once every task has been placed.
  [[nodiscard]] bool complete() const noexcept {
    return placed_count_ == view_->task_count();
  }

  /// Current makespan of the partial schedule.
  [[nodiscard]] double current_makespan() const noexcept { return makespan_; }

  /// Extracts the finished schedule. Requires complete().
  [[nodiscard]] Schedule to_schedule() const;

 private:
  void init();

  const InstanceView* view_ = nullptr;
  std::shared_ptr<const InstanceView> owned_view_;  // one-shot path; shared by copies
  TimelineArena* arena_ = nullptr;
  std::unique_ptr<TimelineScratch> scratch_;
  std::size_t placed_count_ = 0;
  double makespan_ = 0.0;
};

}  // namespace saga
