#include "sched/timeline.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace saga {

TimelineBuilder::TimelineBuilder(const ProblemInstance& inst) : TimelineBuilder(inst, nullptr) {}

TimelineBuilder::TimelineBuilder(const ProblemInstance& inst, TimelineArena* arena) {
  if (arena != nullptr) {
    view_ = &arena->view_for(inst);
    arena_ = arena;
    scratch_ = arena->acquire();
  } else {
    auto owned = std::make_shared<InstanceView>(inst);
    view_ = owned.get();
    owned_view_ = std::move(owned);
    scratch_ = std::make_unique<TimelineScratch>();
  }
  init();
}

TimelineBuilder::TimelineBuilder(const InstanceView& view, TimelineArena* arena)
    : view_(&view),
      arena_(arena),
      scratch_(arena != nullptr ? arena->acquire() : std::make_unique<TimelineScratch>()) {
  init();
}

TimelineBuilder::TimelineBuilder(const TimelineBuilder& other)
    : view_(other.view_),
      owned_view_(other.owned_view_),
      arena_(other.arena_),
      scratch_(other.arena_ != nullptr ? other.arena_->acquire()
                                       : std::make_unique<TimelineScratch>()),
      placed_count_(other.placed_count_),
      makespan_(other.makespan_) {
  *scratch_ = *other.scratch_;
}

TimelineBuilder& TimelineBuilder::operator=(const TimelineBuilder& other) {
  if (this == &other) return *this;
  view_ = other.view_;
  owned_view_ = other.owned_view_;
  *scratch_ = *other.scratch_;
  placed_count_ = other.placed_count_;
  makespan_ = other.makespan_;
  return *this;
}

TimelineBuilder::~TimelineBuilder() {
  if (arena_ != nullptr) arena_->release(std::move(scratch_));
}

void TimelineBuilder::init() {
  const std::size_t tasks = view_->task_count();
  scratch_->reset(tasks, view_->node_count());
  for (TaskId t = 0; t < tasks; ++t) {
    scratch_->pending_preds[t] = static_cast<std::uint32_t>(view_->predecessors(t).size());
  }
  placed_count_ = 0;
  makespan_ = 0.0;
}

const Assignment& TimelineBuilder::assignment_of(TaskId t) const {
  if (scratch_->placed[t] == 0) throw std::logic_error("task not placed yet");
  return scratch_->assignment[t];
}

double TimelineBuilder::data_ready_time(TaskId t, NodeId v) const {
  assert(scratch_->pending_preds[t] == 0 && "all predecessors must be placed first");
  return scratch_->data_ready[t * view_->node_count() + v];
}

double TimelineBuilder::earliest_start(TaskId t, NodeId v, bool insertion) const {
  const double ready = data_ready_time(t, v);
  if (!insertion) return std::max(ready, node_available(v));
  const double duration = exec_time(t, v);
  const auto& lane = scratch_->busy[v];
  // Intervals are disjoint and sorted, so end times are non-decreasing:
  // binary-search the first interval ending after the ready time. Earlier
  // intervals can neither advance the cursor nor host a break, so skipping
  // them reproduces the full scan exactly.
  auto it = std::lower_bound(
      lane.begin(), lane.end(), ready,
      [](const TimelineScratch::Interval& iv, double limit) { return iv.end <= limit; });
  double cursor = ready;
  for (; it != lane.end(); ++it) {
    if (it->start >= cursor + duration) break;  // gap before *it fits
    cursor = std::max(cursor, it->end);
  }
  return cursor;
}

double TimelineBuilder::earliest_finish(TaskId t, NodeId v, bool insertion) const {
  return earliest_start(t, v, insertion) + exec_time(t, v);
}

std::vector<TaskId> TimelineBuilder::ready_tasks() const {
  std::vector<TaskId> out;
  for (TaskId t = 0; t < view_->task_count(); ++t) {
    if (ready(t)) out.push_back(t);
  }
  return out;
}

void TimelineBuilder::place(TaskId t, NodeId v, double start) {
  if (scratch_->placed[t] != 0) throw std::logic_error("task already placed");
  if (scratch_->pending_preds[t] != 0) throw std::logic_error("task has unplaced predecessors");
  const double duration = exec_time(t, v);
  assert(start >= data_ready_time(t, v) - 1e-9 && "start before data is ready");

  const TimelineScratch::Interval iv{start, start + duration, t};
  auto& lane = scratch_->busy[v];
  // (start, end) lexicographic order keeps *ends* non-decreasing too: a
  // zero-length interval placed at the start boundary of a longer one (the
  // only same-start case a valid placement can produce) sorts before it.
  // earliest_start's binary search relies on this invariant.
  const auto pos = std::upper_bound(lane.begin(), lane.end(), iv,
                                    [](const TimelineScratch::Interval& a,
                                       const TimelineScratch::Interval& b) {
                                      if (a.start != b.start) return a.start < b.start;
                                      return a.end < b.end;
                                    });
  // Overlap check against neighbours (debug only; callers compute valid starts).
  assert((pos == lane.begin() || std::prev(pos)->end <= iv.start + 1e-9) && "overlaps previous");
  assert((pos == lane.end() || iv.end <= pos->start + 1e-9) && "overlaps next");
  lane.insert(pos, iv);

  const double finish = start + duration;
  scratch_->assignment[t] = Assignment{t, v, start, finish};
  scratch_->placed[t] = 1;
  ++placed_count_;
  makespan_ = std::max(makespan_, finish);

  // Fold t's contribution into each successor's data-ready row; once the
  // last predecessor is placed the row holds max over predecessors of
  // (finish + comm), exactly the value the adjacency walk used to compute.
  const std::size_t nodes = view_->node_count();
  for (const auto& edge : view_->successors(t)) {
    --scratch_->pending_preds[edge.task];
    double* row = scratch_->data_ready.data() + edge.task * nodes;
    for (NodeId u = 0; u < nodes; ++u) {
      const double arrival = finish + view_->comm_time(edge.cost, v, u);
      if (arrival > row[u]) row[u] = arrival;
    }
  }
}

Schedule TimelineBuilder::to_schedule() const {
  if (!complete()) throw std::logic_error("schedule is incomplete");
  Schedule s;
  s.reserve(view_->task_count());
  for (TaskId t = 0; t < view_->task_count(); ++t) s.add(scratch_->assignment[t]);
  return s;
}

}  // namespace saga
