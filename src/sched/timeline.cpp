#include "sched/timeline.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace saga {

TimelineBuilder::TimelineBuilder(const ProblemInstance& inst) : TimelineBuilder(inst, nullptr) {}

TimelineBuilder::TimelineBuilder(const ProblemInstance& inst, TimelineArena* arena) {
  if (arena != nullptr) {
    view_ = &arena->view_for(inst);
    arena_ = arena;
    scratch_ = arena->acquire();
  } else {
    auto owned = std::make_shared<InstanceView>(inst);
    view_ = owned.get();
    owned_view_ = std::move(owned);
    scratch_ = std::make_unique<TimelineScratch>();
  }
  init();
}

TimelineBuilder::TimelineBuilder(const InstanceView& view, TimelineArena* arena)
    : view_(&view),
      arena_(arena),
      scratch_(arena != nullptr ? arena->acquire() : std::make_unique<TimelineScratch>()) {
  init();
}

TimelineBuilder::TimelineBuilder(const TimelineBuilder& other)
    : view_(other.view_),
      owned_view_(other.owned_view_),
      arena_(other.arena_),
      scratch_(other.arena_ != nullptr ? other.arena_->acquire()
                                       : std::make_unique<TimelineScratch>()),
      placed_count_(other.placed_count_),
      makespan_(other.makespan_) {
  *scratch_ = *other.scratch_;
}

TimelineBuilder& TimelineBuilder::operator=(const TimelineBuilder& other) {
  if (this == &other) return *this;
  view_ = other.view_;
  owned_view_ = other.owned_view_;
  *scratch_ = *other.scratch_;
  placed_count_ = other.placed_count_;
  makespan_ = other.makespan_;
  return *this;
}

TimelineBuilder::~TimelineBuilder() {
  if (arena_ != nullptr) arena_->release(std::move(scratch_));
}

void TimelineBuilder::init() {
  const std::size_t tasks = view_->task_count();
  scratch_->reset(tasks, view_->node_count());
  for (TaskId t = 0; t < tasks; ++t) {
    scratch_->pending_preds[t] = static_cast<std::uint32_t>(view_->predecessors(t).size());
  }
  placed_count_ = 0;
  makespan_ = 0.0;
}

const Assignment& TimelineBuilder::assignment_of(TaskId t) const {
  if (scratch_->placed[t] == 0) throw std::logic_error("task not placed yet");
  return scratch_->assignment[t];
}

double TimelineBuilder::data_ready_time(TaskId t, NodeId v) const {
  assert(scratch_->pending_preds[t] == 0 && "all predecessors must be placed first");
  return scratch_->data_ready[t * view_->node_count() + v];
}

double TimelineBuilder::earliest_start(TaskId t, NodeId v, bool insertion) const {
  const double ready = data_ready_time(t, v);
  if (!insertion) return std::max(ready, node_available(v));
  const double duration = exec_time(t, v);
  const auto& lane = scratch_->busy[v];
  // Intervals are disjoint and sorted, so end times are non-decreasing:
  // binary-search the first interval ending after the ready time. Earlier
  // intervals can neither advance the cursor nor host a break, so skipping
  // them reproduces the full scan exactly.
  auto it = std::lower_bound(
      lane.begin(), lane.end(), ready,
      [](const TimelineScratch::Interval& iv, double limit) { return iv.end <= limit; });
  double cursor = ready;
  for (; it != lane.end(); ++it) {
    if (it->start >= cursor + duration) break;  // gap before *it fits
    cursor = std::max(cursor, it->end);
  }
  return cursor;
}

double TimelineBuilder::earliest_finish(TaskId t, NodeId v, bool insertion) const {
  return earliest_start(t, v, insertion) + exec_time(t, v);
}

TimelineBuilder::CandidateRow TimelineBuilder::eft_row(TaskId t, bool insertion) {
  assert(scratch_->pending_preds[t] == 0 && "all predecessors must be placed first");
  const std::size_t n = view_->node_count();
  const double* ready = scratch_->data_ready.data() + static_cast<std::size_t>(t) * n;
  const double* avail = scratch_->node_avail.data();
  const double* speed = view_->node_speeds().data();
  const double* exec = view_->exec_row_or_null(t);
  const double cost = view_->task_cost(t);
  double* start = scratch_->row_start.data();
  double* finish = scratch_->row_finish.data();
  // Append-mode candidates for the whole row in one SoA sweep — identical
  // arithmetic to max(ready, node_available(v)) + exec_time(t, v) per node.
  // The cached exec row (small instances) holds exactly cost / speed[v], so
  // both branches produce the same bits; the cached one skips the division.
  if (exec != nullptr) {
    for (std::size_t v = 0; v < n; ++v) {
      const double s = std::max(ready[v], avail[v]);
      start[v] = s;
      finish[v] = s + exec[v];
    }
  } else {
    for (std::size_t v = 0; v < n; ++v) {
      const double s = std::max(ready[v], avail[v]);
      start[v] = s;
      finish[v] = s + cost / speed[v];
    }
  }
  if (insertion) {
    // A gap can only beat appending on lanes where some busy interval ends
    // after the ready time (otherwise the scalar scan degenerates to
    // start = ready, which the sweep already produced). Patch those lanes
    // with the exact gap scan.
    for (NodeId v = 0; v < n; ++v) {
      if (avail[v] > ready[v]) {
        const double s = earliest_start(t, v, /*insertion=*/true);
        start[v] = s;
        finish[v] = s + (exec != nullptr ? exec[v] : cost / speed[v]);
      }
    }
  }
  return {{start, n}, {finish, n}};
}

TimelineBuilder::NodeChoice TimelineBuilder::best_eft(TaskId t, bool insertion) {
  const CandidateRow row = eft_row(t, insertion);
  NodeId best = 0;
  double best_finish = row.finish[0];
  for (NodeId v = 1; v < row.finish.size(); ++v) {
    if (row.finish[v] < best_finish) {
      best_finish = row.finish[v];
      best = v;
    }
  }
  return {best, row.start[best], best_finish};
}

void TimelineBuilder::place(TaskId t, NodeId v, double start) {
  if (scratch_->placed[t] != 0) throw std::logic_error("task already placed");
  if (scratch_->pending_preds[t] != 0) throw std::logic_error("task has unplaced predecessors");
  const double duration = exec_time(t, v);
  assert(start >= data_ready_time(t, v) - 1e-9 && "start before data is ready");

  const TimelineScratch::Interval iv{start, start + duration, t};
  auto& lane = scratch_->busy[v];
  // (start, end) lexicographic order keeps *ends* non-decreasing too: a
  // zero-length interval placed at the start boundary of a longer one (the
  // only same-start case a valid placement can produce) sorts before it.
  // earliest_start's binary search relies on this invariant.
  const auto pos = std::upper_bound(lane.begin(), lane.end(), iv,
                                    [](const TimelineScratch::Interval& a,
                                       const TimelineScratch::Interval& b) {
                                      if (a.start != b.start) return a.start < b.start;
                                      return a.end < b.end;
                                    });
  // Overlap check against neighbours (debug only; callers compute valid starts).
  assert((pos == lane.begin() || std::prev(pos)->end <= iv.start + 1e-9) && "overlaps previous");
  assert((pos == lane.end() || iv.end <= pos->start + 1e-9) && "overlaps next");
  lane.insert(pos, iv);

  const double finish = start + duration;
  scratch_->assignment[t] = Assignment{t, v, start, finish};
  scratch_->placed[t] = 1;
  ++placed_count_;
  makespan_ = std::max(makespan_, finish);
  // Ends are non-decreasing along a lane, so the lane maximum is
  // max(previous maximum, the new interval's end).
  scratch_->node_avail[v] = std::max(scratch_->node_avail[v], iv.end);
  scratch_->ready_dirty = true;

  // Fold t's contribution into each successor's data-ready row; once the
  // last predecessor is placed the row holds max over predecessors of
  // (finish + comm), exactly the value the adjacency walk used to compute.
  const std::size_t nodes = view_->node_count();
  const std::size_t succ_base = view_->successors_base(t);
  const auto succs = view_->successors(t);
  for (std::size_t i = 0; i < succs.size(); ++i) {
    const auto& edge = succs[i];
    --scratch_->pending_preds[edge.task];
    double* row = scratch_->data_ready.data() + edge.task * nodes;
    if (const double* comm = view_->comm_row_or_null(succ_base + i, v)) {
      // Cached comm row (small instances): exactly cost / strength[v][u]
      // per lane, +0.0 on the diagonal and all-zero for a zero-cost edge,
      // so one division-free fold covers every case below bit for bit.
      for (NodeId u = 0; u < nodes; ++u) {
        const double arrival = finish + comm[u];
        if (arrival > row[u]) row[u] = arrival;
      }
    } else if (edge.cost == 0.0) {
      // comm_time is identically zero for a zero-size transfer; the whole
      // row folds against the bare finish time.
      for (NodeId u = 0; u < nodes; ++u) row[u] = std::max(row[u], finish);
    } else {
      // SoA sweep over one strength row. The diagonal is +inf, so
      // cost / strength[v] is exactly comm_time's co-located 0 — the
      // branch-free form divides where the scalar code special-cased.
      const double* strength = view_->strength_row(v).data();
      for (NodeId u = 0; u < nodes; ++u) {
        const double arrival = finish + edge.cost / strength[u];
        if (arrival > row[u]) row[u] = arrival;
      }
    }
  }
}

Schedule TimelineBuilder::to_schedule() const {
  if (!complete()) throw std::logic_error("schedule is incomplete");
  Schedule s;
  s.reserve(view_->task_count());
  for (TaskId t = 0; t < view_->task_count(); ++t) s.add(scratch_->assignment[t]);
  return s;
}

}  // namespace saga
