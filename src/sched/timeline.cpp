#include "sched/timeline.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace saga {

TimelineBuilder::TimelineBuilder(const ProblemInstance& inst)
    : inst_(&inst),
      busy_(inst.network.node_count()),
      assignment_(inst.graph.task_count()),
      placed_(inst.graph.task_count(), false),
      pending_preds_(inst.graph.task_count()) {
  for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
    pending_preds_[t] = inst.graph.predecessors(t).size();
  }
}

const Assignment& TimelineBuilder::assignment_of(TaskId t) const {
  if (!placed_[t]) throw std::logic_error("task not placed yet");
  return assignment_[t];
}

double TimelineBuilder::exec_time(TaskId t, NodeId v) const {
  return inst_->network.exec_time(inst_->graph.cost(t), v);
}

double TimelineBuilder::data_ready_time(TaskId t, NodeId v) const {
  double ready = 0.0;
  for (TaskId p : inst_->graph.predecessors(t)) {
    assert(placed_[p] && "all predecessors must be placed first");
    const auto& pa = assignment_[p];
    const double arrival =
        pa.finish + inst_->network.comm_time(inst_->graph.dependency_cost(p, t), pa.node, v);
    ready = std::max(ready, arrival);
  }
  return ready;
}

double TimelineBuilder::node_available(NodeId v) const {
  return busy_[v].empty() ? 0.0 : busy_[v].back().end;
}

double TimelineBuilder::earliest_start(TaskId t, NodeId v, bool insertion) const {
  const double ready = data_ready_time(t, v);
  if (!insertion) return std::max(ready, node_available(v));
  const double duration = exec_time(t, v);
  // Scan idle gaps in start-time order; the list is small in practice.
  double cursor = ready;
  for (const auto& iv : busy_[v]) {
    if (iv.start >= cursor + duration) break;  // gap before iv fits
    cursor = std::max(cursor, iv.end);
  }
  return cursor;
}

double TimelineBuilder::earliest_finish(TaskId t, NodeId v, bool insertion) const {
  return earliest_start(t, v, insertion) + exec_time(t, v);
}

std::vector<TaskId> TimelineBuilder::ready_tasks() const {
  std::vector<TaskId> out;
  for (TaskId t = 0; t < inst_->graph.task_count(); ++t) {
    if (ready(t)) out.push_back(t);
  }
  return out;
}

void TimelineBuilder::place(TaskId t, NodeId v, double start) {
  if (placed_[t]) throw std::logic_error("task already placed");
  if (pending_preds_[t] != 0) throw std::logic_error("task has unplaced predecessors");
  const double duration = exec_time(t, v);
  assert(start >= data_ready_time(t, v) - 1e-9 && "start before data is ready");

  const Interval iv{start, start + duration, t};
  auto& lane = busy_[v];
  const auto pos = std::upper_bound(
      lane.begin(), lane.end(), iv,
      [](const Interval& a, const Interval& b) { return a.start < b.start; });
  // Overlap check against neighbours (debug only; callers compute valid starts).
  assert((pos == lane.begin() || std::prev(pos)->end <= iv.start + 1e-9) && "overlaps previous");
  assert((pos == lane.end() || iv.end <= pos->start + 1e-9) && "overlaps next");
  lane.insert(pos, iv);

  assignment_[t] = Assignment{t, v, start, start + duration};
  placed_[t] = true;
  ++placed_count_;
  makespan_ = std::max(makespan_, start + duration);
  for (TaskId s : inst_->graph.successors(t)) --pending_preds_[s];
}

Schedule TimelineBuilder::to_schedule() const {
  if (!complete()) throw std::logic_error("schedule is incomplete");
  Schedule s;
  for (TaskId t = 0; t < inst_->graph.task_count(); ++t) s.add(assignment_[t]);
  return s;
}

}  // namespace saga
