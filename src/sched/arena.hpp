#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/instance_view.hpp"
#include "sched/schedule.hpp"

/// \file arena.hpp
/// Reusable evaluation state for the scheduling kernel. A TimelineArena
/// owns (1) a cached InstanceView that is stamp-synced — weight-only
/// instance mutations, the common case in PISA's annealing loop, refresh it
/// in place without allocating — and (2) a pool of TimelineScratch blocks
/// whose vectors keep their capacity across `schedule()` calls, making
/// repeated timeline construction allocation-free once warm.
///
/// Intended use: one arena per worker thread, passed down through
/// Scheduler::schedule(inst, &arena). Arenas are not thread-safe, and every
/// TimelineBuilder drawing on an arena must be destroyed before the arena.
/// All builders concurrently alive on one arena must target the same
/// instance (nested schedulers — Duplex, Ensemble, GA — satisfy this
/// naturally; they recurse on the instance they were given).

namespace saga {

/// Scratch state behind one in-flight TimelineBuilder. Plain aggregate so
/// builder copies (exact search branches) are a member-wise vector copy
/// that reuses the destination's capacity.
struct TimelineScratch {
  struct Interval {
    double start;
    double end;
    TaskId task;
  };

  /// Reusable scheduler-side temporaries (rank/level/priority tables,
  /// option lists). Recycled with the scratch block, so a scheduler that
  /// draws its working vectors from here instead of function-locals runs
  /// allocation-free through a warm arena. Contents are unspecified between
  /// uses; callers size them on entry. Slots are named by shape only —
  /// each scheduler assigns its own meaning.
  struct Workspace {
    std::vector<double> d0, d1, d2;
    std::vector<TaskId> tasks;
    std::vector<NodeId> nodes;
    std::vector<std::uint32_t> idx;
    std::vector<char> flags;
  };

  std::vector<std::vector<Interval>> busy;   // per node, sorted by (start, end)
  std::vector<Assignment> assignment;        // per task; valid iff placed
  std::vector<char> placed;                  // per task
  std::vector<std::uint32_t> pending_preds;  // per task: unplaced predecessors
  std::vector<double> data_ready;            // T*N memo, see TimelineBuilder
  std::vector<double> node_avail;            // per node: end of last busy interval
  std::vector<double> row_start;             // per node: eft_row output, see eft_row
  std::vector<double> row_finish;            // per node: eft_row output
  std::vector<TaskId> ready_list;            // ready tasks, id-sorted, lazily rebuilt
  bool ready_dirty = true;                   // ready_list stale; rebuild on query
  Workspace ws;

  /// Sizes every buffer for (tasks, nodes) and clears logical state,
  /// reusing existing capacity. Workspace vectors are left as-is (callers
  /// size them on use).
  void reset(std::size_t tasks, std::size_t nodes);
};

class TimelineArena {
 public:
  TimelineArena() = default;
  TimelineArena(const TimelineArena&) = delete;
  TimelineArena& operator=(const TimelineArena&) = delete;

  /// The arena's cached view, synced to `inst` (see InstanceView::sync).
  const InstanceView& view_for(const ProblemInstance& inst) {
    if (!view_.in_sync_with(inst)) view_.sync(inst);
    return view_;
  }

  /// Direct access to the cached view without syncing — for the annealer's
  /// O(1) weight patches (InstanceView::patch_*) driven by a recorded
  /// perturbation. Check in_sync_with before relying on its contents.
  [[nodiscard]] InstanceView& view() noexcept { return view_; }

  /// Takes a scratch block from the pool (or allocates the pool's first).
  /// Contents are stale; callers reset before use. Inline: this runs twice
  /// per PISA objective evaluation.
  [[nodiscard]] std::unique_ptr<TimelineScratch> acquire() {
    if (pool_.empty()) return std::make_unique<TimelineScratch>();
    auto scratch = std::move(pool_.back());
    pool_.pop_back();
    return scratch;
  }

  /// Returns a scratch block to the pool for reuse.
  void release(std::unique_ptr<TimelineScratch> scratch) {
    if (scratch) pool_.push_back(std::move(scratch));
  }

  /// Number of pooled (idle) scratch blocks, for tests and stats.
  [[nodiscard]] std::size_t pooled() const noexcept { return pool_.size(); }

 private:
  InstanceView view_;
  std::vector<std::unique_ptr<TimelineScratch>> pool_;
};

}  // namespace saga
