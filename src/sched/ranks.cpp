#include "sched/ranks.hpp"

#include <algorithm>
#include <cmath>

namespace saga {

std::vector<double> mean_exec_times(const ProblemInstance& inst) {
  const double inv_speed = inst.network.mean_inverse_speed();
  std::vector<double> out(inst.graph.task_count());
  for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
    out[t] = inst.graph.cost(t) * inv_speed;
  }
  return out;
}

std::vector<double> upward_ranks(const ProblemInstance& inst) {
  const auto& g = inst.graph;
  const double inv_strength = inst.network.mean_inverse_strength();
  const auto w = mean_exec_times(inst);
  std::vector<double> rank(g.task_count(), 0.0);
  const auto order = g.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    double best = 0.0;
    for (TaskId s : g.successors(t)) {
      best = std::max(best, g.dependency_cost(t, s) * inv_strength + rank[s]);
    }
    rank[t] = w[t] + best;
  }
  return rank;
}

std::vector<double> downward_ranks(const ProblemInstance& inst) {
  const auto& g = inst.graph;
  const double inv_strength = inst.network.mean_inverse_strength();
  const auto w = mean_exec_times(inst);
  std::vector<double> rank(g.task_count(), 0.0);
  for (TaskId t : g.topological_order()) {
    double best = 0.0;
    for (TaskId p : g.predecessors(t)) {
      best = std::max(best, rank[p] + w[p] + g.dependency_cost(p, t) * inv_strength);
    }
    rank[t] = best;
  }
  return rank;
}

std::vector<double> static_levels(const ProblemInstance& inst) {
  const auto& g = inst.graph;
  const auto w = mean_exec_times(inst);
  std::vector<double> level(g.task_count(), 0.0);
  const auto order = g.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    double best = 0.0;
    for (TaskId s : g.successors(t)) best = std::max(best, level[s]);
    level[t] = w[t] + best;
  }
  return level;
}

std::vector<TaskId> critical_path(const ProblemInstance& inst, double tol) {
  const auto& g = inst.graph;
  if (g.task_count() == 0) return {};
  const auto up = upward_ranks(inst);
  const auto down = downward_ranks(inst);

  // |CP| = max over tasks of rank_u + rank_d; attained by every task on the
  // critical path.
  double cp_value = 0.0;
  for (TaskId t = 0; t < g.task_count(); ++t) cp_value = std::max(cp_value, up[t] + down[t]);
  const double eps = tol * std::max(1.0, cp_value);
  const auto on_cp = [&](TaskId t) { return up[t] + down[t] >= cp_value - eps; };

  // Walk from a critical source to a sink following critical successors.
  std::vector<TaskId> path;
  TaskId current = 0;
  bool found = false;
  for (TaskId t : g.sources()) {
    if (on_cp(t)) {
      current = t;
      found = true;
      break;
    }
  }
  if (!found) return {};
  path.push_back(current);
  for (;;) {
    bool advanced = false;
    for (TaskId s : g.successors(current)) {
      if (on_cp(s)) {
        current = s;
        path.push_back(current);
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  return path;
}

}  // namespace saga
