#include "sched/ranks.hpp"

#include <algorithm>
#include <cmath>

namespace saga {

void mean_exec_times(const InstanceView& view, std::vector<double>& out) {
  const double inv_speed = view.mean_inverse_speed();
  const std::size_t tasks = view.task_count();
  out.resize(tasks);
  for (TaskId t = 0; t < tasks; ++t) out[t] = view.task_cost(t) * inv_speed;
}

std::vector<double> mean_exec_times(const ProblemInstance& inst) {
  std::vector<double> out;
  mean_exec_times(InstanceView(inst), out);
  return out;
}

void upward_ranks(const InstanceView& view, std::vector<double>& out) {
  const double inv_strength = view.mean_inverse_strength();
  const double inv_speed = view.mean_inverse_speed();
  const std::size_t tasks = view.task_count();
  out.assign(tasks, 0.0);
  const auto order = view.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    double best = 0.0;
    for (const auto& edge : view.successors(t)) {
      best = std::max(best, edge.cost * inv_strength + out[edge.task]);
    }
    out[t] = view.task_cost(t) * inv_speed + best;
  }
}

std::vector<double> upward_ranks(const ProblemInstance& inst) {
  std::vector<double> out;
  upward_ranks(InstanceView(inst), out);
  return out;
}

void downward_ranks(const InstanceView& view, std::vector<double>& out) {
  const double inv_strength = view.mean_inverse_strength();
  const double inv_speed = view.mean_inverse_speed();
  out.assign(view.task_count(), 0.0);
  for (TaskId t : view.topological_order()) {
    double best = 0.0;
    for (const auto& edge : view.predecessors(t)) {
      best = std::max(best, out[edge.task] + view.task_cost(edge.task) * inv_speed +
                                edge.cost * inv_strength);
    }
    out[t] = best;
  }
}

std::vector<double> downward_ranks(const ProblemInstance& inst) {
  std::vector<double> out;
  downward_ranks(InstanceView(inst), out);
  return out;
}

void static_levels(const InstanceView& view, std::vector<double>& out) {
  const double inv_speed = view.mean_inverse_speed();
  out.assign(view.task_count(), 0.0);
  const auto order = view.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    double best = 0.0;
    for (const auto& edge : view.successors(t)) best = std::max(best, out[edge.task]);
    out[t] = view.task_cost(t) * inv_speed + best;
  }
}

std::vector<double> static_levels(const ProblemInstance& inst) {
  std::vector<double> out;
  static_levels(InstanceView(inst), out);
  return out;
}

void critical_path(const InstanceView& view, const std::vector<double>& up,
                   const std::vector<double>& down, std::vector<TaskId>& out, double tol) {
  out.clear();
  const std::size_t tasks = view.task_count();
  if (tasks == 0) return;

  // |CP| = max over tasks of rank_u + rank_d; attained by every task on the
  // critical path.
  double cp_value = 0.0;
  for (TaskId t = 0; t < tasks; ++t) cp_value = std::max(cp_value, up[t] + down[t]);
  const double eps = tol * std::max(1.0, cp_value);
  const auto on_cp = [&](TaskId t) { return up[t] + down[t] >= cp_value - eps; };

  // Walk from a critical source to a sink following critical successors.
  TaskId current = 0;
  bool found = false;
  for (TaskId t = 0; t < tasks; ++t) {
    if (view.predecessors(t).empty() && on_cp(t)) {
      current = t;
      found = true;
      break;
    }
  }
  if (!found) return;
  out.push_back(current);
  for (;;) {
    bool advanced = false;
    for (const auto& edge : view.successors(current)) {
      if (on_cp(edge.task)) {
        current = edge.task;
        out.push_back(current);
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
}

std::vector<TaskId> critical_path(const InstanceView& view, double tol) {
  std::vector<double> up;
  std::vector<double> down;
  upward_ranks(view, up);
  downward_ranks(view, down);
  std::vector<TaskId> path;
  critical_path(view, up, down, path, tol);
  return path;
}

std::vector<TaskId> critical_path(const ProblemInstance& inst, double tol) {
  return critical_path(InstanceView(inst), tol);
}

}  // namespace saga
