#pragma once

#include <vector>

#include "graph/instance_view.hpp"
#include "graph/problem_instance.hpp"

/// \file ranks.hpp
/// Task priority metrics shared by the list schedulers:
///   - mean execution time  w̄(t)     = c(t) · mean(1/s(v))
///   - mean communication   c̄(t,t')  = c(t,t') · mean(1/s(v,v'))
///   - upward rank (HEFT):  rank_u(t) = w̄(t) + max over successors s of
///                                      (c̄(t,s) + rank_u(s))
///   - downward rank (CPoP): rank_d(t) = max over predecessors p of
///                                      (rank_d(p) + w̄(p) + c̄(p,t))
///   - static level (GDL/DLS): like upward rank but ignoring communication
/// and the critical path: the source-to-sink chain maximizing
/// rank_u + rank_d (all of whose tasks share the maximal priority value).
///
/// Each metric has two forms: an InstanceView-based one that writes into a
/// caller-provided buffer (the kernel path — no allocation when the buffer
/// has capacity), and a convenience ProblemInstance-based one that builds a
/// temporary view and returns a fresh vector. Both produce bit-identical
/// values.

namespace saga {

/// Mean execution time of every task across the network's nodes.
void mean_exec_times(const InstanceView& view, std::vector<double>& out);
[[nodiscard]] std::vector<double> mean_exec_times(const ProblemInstance& inst);

/// rank_u for every task.
void upward_ranks(const InstanceView& view, std::vector<double>& out);
[[nodiscard]] std::vector<double> upward_ranks(const ProblemInstance& inst);

/// rank_d for every task.
void downward_ranks(const InstanceView& view, std::vector<double>& out);
[[nodiscard]] std::vector<double> downward_ranks(const ProblemInstance& inst);

/// Static level: longest mean-execution-time chain from t to any sink,
/// ignoring communication.
void static_levels(const InstanceView& view, std::vector<double>& out);
[[nodiscard]] std::vector<double> static_levels(const ProblemInstance& inst);

/// Tasks on the critical path (maximal rank_u + rank_d), as a source-to-sink
/// chain in execution order. `tol` is the relative tolerance used when
/// comparing priorities.
///
/// The buffer form takes the already-computed rank tables (exactly
/// `upward_ranks` / `downward_ranks` output) and writes the chain into
/// `out`, allocation-free when the buffers have capacity. The convenience
/// forms compute the ranks internally and return a fresh vector.
void critical_path(const InstanceView& view, const std::vector<double>& up,
                   const std::vector<double>& down, std::vector<TaskId>& out,
                   double tol = 1e-9);
[[nodiscard]] std::vector<TaskId> critical_path(const InstanceView& view, double tol = 1e-9);
[[nodiscard]] std::vector<TaskId> critical_path(const ProblemInstance& inst,
                                                double tol = 1e-9);

}  // namespace saga
