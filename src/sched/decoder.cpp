#include "sched/decoder.hpp"

#include <stdexcept>

#include "sched/timeline.hpp"

namespace saga {

Schedule decode_schedule(const ProblemInstance& inst, const ScheduleEncoding& encoding,
                         TimelineArena* arena) {
  const std::size_t n = inst.graph.task_count();
  if (encoding.assignment.size() != n || encoding.priority.size() != n) {
    throw std::invalid_argument("encoding size does not match task count");
  }
  for (NodeId v : encoding.assignment) {
    if (v >= inst.network.node_count()) throw std::invalid_argument("invalid node in encoding");
  }

  TimelineBuilder builder(inst, arena);
  while (!builder.complete()) {
    TaskId next = 0;
    bool found = false;
    for (TaskId t = 0; t < n; ++t) {
      if (!builder.ready(t)) continue;
      if (!found || encoding.priority[t] > encoding.priority[next]) {
        next = t;
        found = true;
      }
    }
    builder.place_earliest(next, encoding.assignment[next], /*insertion=*/false);
  }
  return builder.to_schedule();
}

double decoded_makespan(const ProblemInstance& inst, const ScheduleEncoding& encoding,
                        TimelineArena* arena) {
  return decode_schedule(inst, encoding, arena).makespan();
}

}  // namespace saga
