#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "graph/problem_instance.hpp"

/// \file schedule.hpp
/// A schedule is a set of (task, node, start) tuples (paper Section II).
/// We additionally store the finish time (start + exec time) for
/// convenience; `validate` checks the paper's two validity conditions.

namespace saga {

struct Assignment {
  TaskId task = 0;
  NodeId node = 0;
  double start = 0.0;
  double finish = 0.0;
};

/// Outcome of Schedule::validate.
struct ValidationResult {
  bool ok = true;
  std::string message;  // human-readable description of the first violation
};

class Schedule {
 public:
  Schedule() = default;

  /// Pre-sizes internal storage for `task_count` assignments (one
  /// allocation each instead of push_back growth; used by hot builders).
  void reserve(std::size_t task_count);

  /// Records an assignment. Throws if the task is already scheduled.
  void add(const Assignment& a);

  [[nodiscard]] std::size_t size() const noexcept { return assignments_.size(); }
  [[nodiscard]] bool contains(TaskId t) const;
  [[nodiscard]] const Assignment& of_task(TaskId t) const;

  /// All assignments in task-id order.
  [[nodiscard]] const std::vector<Assignment>& assignments() const noexcept {
    return assignments_;
  }

  /// Assignments placed on `node`, sorted by start time.
  [[nodiscard]] std::vector<Assignment> on_node(NodeId node) const;

  /// Time at which the last task finishes (0 for an empty schedule).
  [[nodiscard]] double makespan() const;

  /// Checks the schedule against the instance:
  ///  - every task scheduled exactly once,
  ///  - finish == start + exec time on the assigned node,
  ///  - no two tasks overlap on a node,
  ///  - every dependency's data arrives before the dependent task starts.
  [[nodiscard]] ValidationResult validate(const ProblemInstance& inst,
                                          double tol = 1e-9) const;

 private:
  std::vector<Assignment> assignments_;           // task-id order (sparse until sorted)
  std::vector<std::optional<std::size_t>> by_task_;  // task -> index into assignments_
};

}  // namespace saga
