#pragma once

#include <vector>

#include "sched/schedule.hpp"

/// \file decoder.hpp
/// Shared decoding of indirect schedule representations into concrete
/// schedules. The meta-heuristic schedulers (GA, SimAnneal) and the
/// clustering scheduler all search over compact encodings — a task→node
/// assignment plus task priorities — and rely on this decoder to turn an
/// encoding into the best "eager" schedule consistent with it: repeatedly
/// take the highest-priority ready task and start it as early as possible
/// on its assigned node. For a fixed (assignment, priority) pair the eager
/// schedule is optimal among schedules honouring that pair, so the search
/// spaces lose nothing by the indirection.

namespace saga {

class TimelineArena;

/// The compact encoding: `assignment[t]` is the node of task t and
/// `priority[t]` its dispatch priority (higher dispatches first among
/// ready tasks; ties broken by smaller task id).
struct ScheduleEncoding {
  std::vector<NodeId> assignment;
  std::vector<double> priority;
};

/// Decodes an encoding into a schedule. Requires `assignment.size()` and
/// `priority.size()` to equal the instance's task count, and all node ids
/// to be valid. `arena` (optional) supplies the shared evaluation kernel's
/// recycled state for hot decode loops (GA, SimAnneal).
[[nodiscard]] Schedule decode_schedule(const ProblemInstance& inst,
                                       const ScheduleEncoding& encoding,
                                       TimelineArena* arena = nullptr);

/// Convenience: decoded makespan.
[[nodiscard]] double decoded_makespan(const ProblemInstance& inst,
                                      const ScheduleEncoding& encoding,
                                      TimelineArena* arena = nullptr);

}  // namespace saga
