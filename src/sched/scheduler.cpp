#include "sched/scheduler.hpp"

// The Scheduler interface is header-only; this translation unit anchors the
// vtable so that the key function is emitted exactly once.

namespace saga {}  // namespace saga
