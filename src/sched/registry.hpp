#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/registry.hpp"
#include "sched/scheduler.hpp"
#include "sched/spec.hpp"

/// \file registry.hpp
/// Descriptor-based scheduler registry. Every scheduler self-registers a
/// `SchedulerDesc` (see its .cpp under src/schedulers/) carrying its name,
/// aliases, tags, capability flags, declared parameters, and a factory
/// taking a typed key=value parameter map plus a seed. Consumers construct
/// schedulers from spec strings (`"ga?pop=64&gens=200"`, see sched/spec.hpp)
/// or enumerate the roster by tag, so experiment scenarios are data rather
/// than hand-maintained C++ name lists.
///
/// Standard tags:
///   table1        the paper's Table I set (17 schedulers)
///   benchmark     the 15 polynomial-time schedulers of Figs. 2 and 4
///   app-specific  the Section VII application-specific subset (6)
///   extension     algorithms beyond the paper's roster (8)
///   randomized    seed-sensitive schedulers (WBA, GA, SimAnneal, Ensemble)

namespace saga {

// ParamDesc (one declared spec parameter) now lives in common/spec.hpp,
// shared with the dataset registry.

/// Self-description one scheduler registers.
struct SchedulerDesc {
  std::string name;                   // canonical, paper spelling ("HEFT")
  std::vector<std::string> aliases;   // alternative spellings; lookup is
                                      // case-insensitive on top of these
  std::string summary;                // one-line algorithm description
  std::vector<std::string> tags;      // see the standard tags above
  bool randomized = false;            // construction consumes the seed
  bool exponential_time = false;      // oracle; excluded from benchmarking
  NetworkRequirements requirements;   // declared network-model restrictions
  std::vector<ParamDesc> params;      // accepted spec keys (besides `seed`)
  std::function<SchedulerPtr(const SchedulerParams&, std::uint64_t seed)> factory;

  [[nodiscard]] bool has_tag(std::string_view tag) const;
  [[nodiscard]] const ParamDesc* find_param(std::string_view key) const;
};

/// Enumeration order for SchedulerRegistry::names().
enum class NameOrder {
  kRegistration,   // Table I order, then extension registration order
  kLexicographic,  // byte-wise sorted (the historical benchmark-roster order)
};

/// Lookup/enumeration mechanics (add, find, resolve with "did you mean",
/// tags) are shared with the dataset registry via common/registry.hpp.
class SchedulerRegistry : public DescriptorRegistry<SchedulerDesc> {
 public:
  SchedulerRegistry() : DescriptorRegistry("scheduler", "saga list --tags") {}

  /// The process-wide registry; the built-in schedulers are registered on
  /// first access (see schedulers/register.cpp).
  [[nodiscard]] static SchedulerRegistry& instance();

  /// Registers a descriptor (see DescriptorRegistry::add); additionally
  /// tags randomized schedulers with "randomized".
  void add(SchedulerDesc desc);

  /// Canonical names carrying `tag` (all names when `tag` is empty).
  /// Returns an empty vector for an unknown tag.
  [[nodiscard]] std::vector<std::string> names(
      std::string_view tag = {}, NameOrder order = NameOrder::kRegistration) const;

  /// Constructs a scheduler from a parsed spec. Unknown names and unknown
  /// parameter keys throw std::invalid_argument naming the offender (with a
  /// nearest-name suggestion). A `seed=` spec parameter overrides `seed`.
  [[nodiscard]] SchedulerPtr make(const SchedulerSpec& spec, std::uint64_t seed) const;

  /// Parses `spec_string` and constructs (see sched/spec.hpp for the grammar).
  [[nodiscard]] SchedulerPtr make(std::string_view spec_string, std::uint64_t seed) const;
};

/// Registers the 25 built-in schedulers (defined in schedulers/register.cpp;
/// each descriptor lives in its scheduler's own .cpp). Called once by
/// SchedulerRegistry::instance().
void register_builtin_schedulers(SchedulerRegistry& registry);

/// ---- Thin compatibility shims over the registry ------------------------
/// These preserve the historical rosters bit for bit (including their
/// orderings, which seed the experiment drivers' per-cell RNG streams).

/// All Table I scheduler names, in the paper's order.
[[nodiscard]] const std::vector<std::string>& all_scheduler_names();

/// The 15 polynomial-time schedulers used in Figs. 2 and 4.
[[nodiscard]] const std::vector<std::string>& benchmark_scheduler_names();

/// The 6 schedulers of the application-specific study (Section VII).
[[nodiscard]] const std::vector<std::string>& app_specific_scheduler_names();

/// Extension schedulers beyond the paper's Table I.
[[nodiscard]] const std::vector<std::string>& extension_scheduler_names();

/// Constructs a scheduler from a name or spec string; randomized schedulers
/// get a fixed default seed. Equivalent to SchedulerRegistry::make.
[[nodiscard]] SchedulerPtr make_scheduler(const std::string& name);
[[nodiscard]] SchedulerPtr make_scheduler(const std::string& name, std::uint64_t seed);

/// Constructs the full benchmarking roster (15 schedulers).
[[nodiscard]] std::vector<SchedulerPtr> make_benchmark_schedulers();

}  // namespace saga
