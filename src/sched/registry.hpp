#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

/// \file registry.hpp
/// Name-based construction of the 17 schedulers in SAGA's Table I, plus the
/// standard benchmarking roster (the 15 polynomial-time schedulers: the
/// paper excludes BruteForce and SMT from benchmarking and PISA because of
/// their exponential runtime).

namespace saga {

/// All scheduler names, in the paper's Table I order.
[[nodiscard]] const std::vector<std::string>& all_scheduler_names();

/// The 15 polynomial-time schedulers used in Figs. 2 and 4.
[[nodiscard]] const std::vector<std::string>& benchmark_scheduler_names();

/// The 6 schedulers used in the application-specific study (Section VII):
/// CPoP, FastestNode, HEFT, MaxMin, MinMin, WBA.
[[nodiscard]] const std::vector<std::string>& app_specific_scheduler_names();

/// Extension schedulers beyond the paper's Table I, implementing its
/// related-work baselines and future-work directions: ERT, MH (Mapping
/// Heuristic), LMT (Levelized Min Time), LC (linear clustering), GA and
/// SimAnneal (meta-heuristics), Ensemble (scheduler portfolios), and PEFT
/// (Predict Earliest Finish Time).
[[nodiscard]] const std::vector<std::string>& extension_scheduler_names();

/// Constructs a scheduler by name; throws std::invalid_argument for unknown
/// names. Randomized schedulers are constructed with a fixed default seed;
/// use `make_scheduler(name, seed)` to derive independent streams.
[[nodiscard]] SchedulerPtr make_scheduler(const std::string& name);
[[nodiscard]] SchedulerPtr make_scheduler(const std::string& name, std::uint64_t seed);

/// Constructs the full benchmarking roster (15 schedulers).
[[nodiscard]] std::vector<SchedulerPtr> make_benchmark_schedulers();

}  // namespace saga
