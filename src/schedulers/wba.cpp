#include "schedulers/wba.hpp"

#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

namespace {

void build_wba(TimelineBuilder& builder, std::uint64_t seed, double tolerance) {
  Rng rng(seed);
  const InstanceView& view = builder.view();

  // The option list lives in the pooled workspace, decomposed into parallel
  // arrays (task, node, increase) so a warm arena makes the whole build
  // allocation-free.
  auto& ws = builder.workspace();
  std::vector<TaskId>& opt_task = ws.tasks;
  std::vector<NodeId>& opt_node = ws.nodes;
  std::vector<double>& opt_increase = ws.d0;
  std::vector<std::uint32_t>& candidates = ws.idx;

  while (!builder.complete()) {
    opt_task.clear();
    opt_node.clear();
    opt_increase.clear();
    double min_inc = std::numeric_limits<double>::infinity();
    double max_inc = -std::numeric_limits<double>::infinity();
    const double current = builder.current_makespan();
    for (TaskId t : builder.ready_tasks()) {
      const auto row = builder.eft_row(t, /*insertion=*/false);
      for (NodeId v = 0; v < view.node_count(); ++v) {
        const double increase = std::max(0.0, row.finish[v] - current);
        opt_task.push_back(t);
        opt_node.push_back(v);
        opt_increase.push_back(increase);
        min_inc = std::min(min_inc, increase);
        max_inc = std::max(max_inc, increase);
      }
    }

    // Keep every option within the tolerance band of the least increase and
    // choose uniformly among them.
    const double band = min_inc + tolerance * (max_inc - min_inc);
    candidates.clear();
    for (std::size_t i = 0; i < opt_increase.size(); ++i) {
      if (opt_increase[i] <= band + 1e-15) {
        candidates.push_back(static_cast<std::uint32_t>(i));
      }
    }
    const std::size_t chosen = candidates[rng.index(candidates.size())];
    builder.place_earliest(opt_task[chosen], opt_node[chosen], /*insertion=*/false);
  }
}

}  // namespace

Schedule WbaScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_wba(builder, seed_, tolerance_);
  return builder.to_schedule();
}

double WbaScheduler::plan_makespan(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_wba(builder, seed_, tolerance_);
  return builder.current_makespan();
}


void register_wba_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "WBA";
  desc.summary = "Workflow-Based Allocation (Blythe et al. 2005): randomized greedy, least makespan increase per step";
  desc.tags = {"table1", "benchmark", "app-specific"};
  desc.randomized = true;
  desc.params = {{"tolerance", "width of the random-choice band in [0,1] (default 0.5)"}};
  desc.factory = [](const SchedulerParams& params, std::uint64_t seed) -> SchedulerPtr {
    return std::make_unique<WbaScheduler>(seed, params.get_double("tolerance", 0.5));
  };
  registry.add(std::move(desc));
}

}  // namespace saga
