#include "schedulers/wba.hpp"

#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule WbaScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  Rng rng(seed_);
  TimelineBuilder builder(inst, arena);
  const InstanceView& view = builder.view();

  struct Option {
    TaskId task;
    NodeId node;
    double increase;
  };
  std::vector<Option> options;
  std::vector<std::size_t> candidates;

  while (!builder.complete()) {
    options.clear();
    double min_inc = std::numeric_limits<double>::infinity();
    double max_inc = -std::numeric_limits<double>::infinity();
    const double current = builder.current_makespan();
    for (TaskId t = 0; t < view.task_count(); ++t) {
      if (!builder.ready(t)) continue;
      for (NodeId v = 0; v < view.node_count(); ++v) {
        const double finish = builder.earliest_finish(t, v, /*insertion=*/false);
        const double increase = std::max(0.0, finish - current);
        options.push_back({t, v, increase});
        min_inc = std::min(min_inc, increase);
        max_inc = std::max(max_inc, increase);
      }
    }

    // Keep every option within the tolerance band of the least increase and
    // choose uniformly among them.
    const double band = min_inc + tolerance_ * (max_inc - min_inc);
    candidates.clear();
    for (std::size_t i = 0; i < options.size(); ++i) {
      if (options[i].increase <= band + 1e-15) candidates.push_back(i);
    }
    const Option& chosen = options[candidates[rng.index(candidates.size())]];
    builder.place_earliest(chosen.task, chosen.node, /*insertion=*/false);
  }
  return builder.to_schedule();
}


void register_wba_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "WBA";
  desc.summary = "Workflow-Based Allocation (Blythe et al. 2005): randomized greedy, least makespan increase per step";
  desc.tags = {"table1", "benchmark", "app-specific"};
  desc.randomized = true;
  desc.params = {{"tolerance", "width of the random-choice band in [0,1] (default 0.5)"}};
  desc.factory = [](const SchedulerParams& params, std::uint64_t seed) -> SchedulerPtr {
    return std::make_unique<WbaScheduler>(seed, params.get_double("tolerance", 0.5));
  };
  registry.add(std::move(desc));
}

}  // namespace saga
