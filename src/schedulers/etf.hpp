#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// ETF — Earliest Task First (Hwang, Chow, Anger & Lee 1989).
///
/// At every step, among all (ready task, node) pairs, schedule the pair with
/// the earliest possible *start* time (not finish time — the property that
/// enables the published (2 - 1/n)·ω_opt + C bound). Ties are broken by the
/// higher static level, then by task id. O(|T| |V|^2) per the original
/// analysis; designed for homogeneous node speeds, which `requirements`
/// declares so PISA pins node weights to 1.
class EtfScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "ETF"; }
  [[nodiscard]] NetworkRequirements requirements() const override {
    return {.homogeneous_node_speeds = true, .homogeneous_link_strengths = false};
  }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;
};

}  // namespace saga
