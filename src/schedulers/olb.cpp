#include "schedulers/olb.hpp"

#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

namespace {

void build_olb(TimelineBuilder& builder) {
  const std::size_t nodes = builder.view().node_count();
  for (TaskId t : builder.view().topological_order()) {
    const auto avail = builder.node_available_row();
    NodeId best_node = 0;
    double best_available = avail[0];
    for (NodeId v = 1; v < nodes; ++v) {
      if (avail[v] < best_available) {
        best_available = avail[v];
        best_node = v;
      }
    }
    builder.place_earliest(t, best_node, /*insertion=*/false);
  }
}

}  // namespace

Schedule OlbScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_olb(builder);
  return builder.to_schedule();
}

double OlbScheduler::plan_makespan(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_olb(builder);
  return builder.current_makespan();
}


void register_olb_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "OLB";
  desc.summary = "Opportunistic Load Balancing (Armstrong et al. 1998): earliest-available node, costs ignored";
  desc.tags = {"table1", "benchmark"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<OlbScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
