#include "schedulers/olb.hpp"

#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule OlbScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  const InstanceView& view = builder.view();
  for (TaskId t : view.topological_order()) {
    NodeId best_node = 0;
    double best_available = builder.node_available(0);
    for (NodeId v = 1; v < view.node_count(); ++v) {
      const double available = builder.node_available(v);
      if (available < best_available) {
        best_available = available;
        best_node = v;
      }
    }
    builder.place_earliest(t, best_node, /*insertion=*/false);
  }
  return builder.to_schedule();
}


void register_olb_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "OLB";
  desc.summary = "Opportunistic Load Balancing (Armstrong et al. 1998): earliest-available node, costs ignored";
  desc.tags = {"table1", "benchmark"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<OlbScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
