#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// BIL — Best Imaginary Level (Oh & Ha 1996).
///
/// The best imaginary level of task t on node v is the length of the
/// shortest possible completion path assuming ideal downstream decisions:
///
///   BIL(t, v) = w(t, v) + max over successors s of
///               min( BIL(s, v),                          — stay on v
///                    min over v' != v of
///                        BIL(s, v') + c(t, s)/s(v, v') ) — migrate
///
/// Tasks are selected by decreasing best imaginary makespan
/// BIM(t, v) = EST(t, v) + BIL(t, v) minimised over nodes (the original
/// paper's revised-BIM processor-ordering refinements are folded into this
/// selection; see the implementation note in bil.cpp). O(|T|^2 |V| log |V|).
/// Designed for homogeneous link strengths (paper Section VI pins BIL's
/// links to 1).
class BilScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "BIL"; }
  [[nodiscard]] NetworkRequirements requirements() const override {
    return {.homogeneous_node_speeds = false, .homogeneous_link_strengths = true};
  }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;
};

}  // namespace saga
