#include "schedulers/fcp.hpp"

#include <queue>
#include <utility>
#include <vector>

#include "sched/ranks.hpp"
#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

namespace {

/// The node where the predecessor whose message arrives last was placed.
/// Falls back to node 0 for source tasks.
NodeId enabling_node(const TimelineBuilder& builder, TaskId t) {
  const InstanceView& view = builder.view();
  NodeId enabler = 0;
  double last_arrival = -1.0;
  for (const auto& edge : view.predecessors(t)) {
    const auto& pa = builder.assignment_of(edge.task);
    // Arrival as seen from a *different* node — the cost the enabling
    // placement would save.
    double worst = pa.finish;
    for (NodeId v = 0; v < view.node_count(); ++v) {
      const double arrival = pa.finish + view.comm_time(edge.cost, pa.node, v);
      worst = std::max(worst, arrival);
    }
    if (worst > last_arrival) {
      last_arrival = worst;
      enabler = pa.node;
    }
  }
  return enabler;
}

void build_fcp(TimelineBuilder& builder) {
  const InstanceView& view = builder.view();
  auto& ws = builder.workspace();
  std::vector<double>& rank = ws.d0;
  upward_ranks(view, rank);

  // Max-heap of ready tasks by static priority (upward rank, then id).
  using Entry = std::pair<double, TaskId>;
  const auto cmp = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> ready(cmp);
  for (TaskId t : builder.ready_tasks()) ready.emplace(rank[t], t);

  while (!ready.empty()) {
    const TaskId t = ready.top().second;
    ready.pop();

    // Candidate 1: earliest-idle node.
    const auto avail = builder.node_available_row();
    NodeId idle_node = 0;
    for (NodeId v = 1; v < view.node_count(); ++v) {
      if (avail[v] < avail[idle_node]) idle_node = v;
    }
    // Candidate 2: the enabling node.
    const NodeId enabler = enabling_node(builder, t);

    const double f_idle = builder.earliest_finish(t, idle_node, /*insertion=*/false);
    const double f_enab = builder.earliest_finish(t, enabler, /*insertion=*/false);
    const NodeId chosen = f_enab <= f_idle ? enabler : idle_node;

    builder.place_earliest(t, chosen, /*insertion=*/false);
    for (const auto& edge : view.successors(t)) {
      if (builder.ready(edge.task)) ready.emplace(rank[edge.task], edge.task);
    }
  }
}

}  // namespace

Schedule FcpScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_fcp(builder);
  return builder.to_schedule();
}

double FcpScheduler::plan_makespan(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_fcp(builder);
  return builder.current_makespan();
}


void register_fcp_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "FCP";
  desc.summary = "Fast Critical Path (Radulescu & van Gemund 2000): static rank queue, two candidate nodes per task";
  desc.tags = {"table1", "benchmark"};
  desc.requirements.homogeneous_node_speeds = true;
  desc.requirements.homogeneous_link_strengths = true;
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<FcpScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
