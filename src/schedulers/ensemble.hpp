#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sched/scheduler.hpp"

namespace saga {

/// Ensemble — runs a portfolio of schedulers and returns the schedule with
/// the smallest makespan (the paper's Section VII/VIII suggestion: "It may
/// be reasonable for a WFMS to run a set of scheduling algorithms that best
/// covers the different types of client scientific workflows"; Duplex is
/// the two-member special case). Members are constructed by name via the
/// registry; the default portfolio {HEFT, CPoP, MinMin} is the winner of
/// the wfms_advisor example's exhaustive portfolio search.
class EnsembleScheduler final : public Scheduler {
 public:
  explicit EnsembleScheduler(std::vector<std::string> members = {"HEFT", "CPoP", "MinMin"},
                             std::uint64_t seed = 0xe45e3b1eULL);

  [[nodiscard]] std::string_view name() const override { return "Ensemble"; }
  [[nodiscard]] NetworkRequirements requirements() const override;
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;

  [[nodiscard]] const std::vector<std::string>& members() const noexcept { return members_; }

 private:
  std::vector<std::string> members_;
  std::uint64_t seed_;
  std::vector<SchedulerPtr> built_;  // members constructed once, reused per call
};

}  // namespace saga
