#include "schedulers/gdl.hpp"

#include <limits>
#include <vector>

#include "sched/ranks.hpp"
#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

namespace {

void build_gdl(TimelineBuilder& builder) {
  const InstanceView& view = builder.view();
  auto& ws = builder.workspace();
  std::vector<double>& sl = ws.d0;
  std::vector<double>& mean_exec = ws.d1;
  static_levels(view, sl);
  mean_exec_times(view, mean_exec);
  while (!builder.complete()) {
    TaskId best_task = 0;
    NodeId best_node = 0;
    double best_start = 0.0;
    double best_dl = -std::numeric_limits<double>::infinity();
    bool found = false;
    for (TaskId t : builder.ready_tasks()) {
      const auto row = builder.eft_row(t, /*insertion=*/false);
      for (NodeId v = 0; v < view.node_count(); ++v) {
        const double delta = mean_exec[t] - builder.exec_time(t, v);
        const double dl = sl[t] - row.start[v] + delta;
        if (!found || dl > best_dl || (dl == best_dl && t < best_task)) {
          best_dl = dl;
          best_task = t;
          best_node = v;
          best_start = row.start[v];
          found = true;
        }
      }
    }
    builder.place(best_task, best_node, best_start);
  }
}

}  // namespace

Schedule GdlScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_gdl(builder);
  return builder.to_schedule();
}

double GdlScheduler::plan_makespan(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_gdl(builder);
  return builder.current_makespan();
}


void register_gdl_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "GDL";
  desc.aliases = {"DLS"};
  desc.summary = "Generalized Dynamic Level / DLS (Sih & Lee 1993): maximise static level minus availability";
  desc.tags = {"table1", "benchmark"};
  desc.requirements.homogeneous_link_strengths = true;
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<GdlScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
