#include "schedulers/gdl.hpp"

#include <limits>
#include <vector>

#include "sched/ranks.hpp"
#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule GdlScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  const InstanceView& view = builder.view();
  std::vector<double> sl;
  std::vector<double> mean_exec;
  static_levels(view, sl);
  mean_exec_times(view, mean_exec);
  while (!builder.complete()) {
    TaskId best_task = 0;
    NodeId best_node = 0;
    double best_dl = -std::numeric_limits<double>::infinity();
    bool found = false;
    for (TaskId t = 0; t < view.task_count(); ++t) {
      if (!builder.ready(t)) continue;
      for (NodeId v = 0; v < view.node_count(); ++v) {
        const double start = builder.earliest_start(t, v, /*insertion=*/false);
        const double delta = mean_exec[t] - builder.exec_time(t, v);
        const double dl = sl[t] - start + delta;
        if (!found || dl > best_dl || (dl == best_dl && t < best_task)) {
          best_dl = dl;
          best_task = t;
          best_node = v;
          found = true;
        }
      }
    }
    builder.place_earliest(best_task, best_node, /*insertion=*/false);
  }
  return builder.to_schedule();
}


void register_gdl_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "GDL";
  desc.aliases = {"DLS"};
  desc.summary = "Generalized Dynamic Level / DLS (Sih & Lee 1993): maximise static level minus availability";
  desc.tags = {"table1", "benchmark"};
  desc.requirements.homogeneous_link_strengths = true;
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<GdlScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
