#include "schedulers/flb.hpp"

#include <limits>

#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

namespace {

NodeId enabling_node(const TimelineBuilder& builder, TaskId t) {
  const InstanceView& view = builder.view();
  NodeId enabler = 0;
  double last_arrival = -1.0;
  for (const auto& edge : view.predecessors(t)) {
    const auto& pa = builder.assignment_of(edge.task);
    double worst = pa.finish;
    for (NodeId v = 0; v < view.node_count(); ++v) {
      const double arrival = pa.finish + view.comm_time(edge.cost, pa.node, v);
      worst = std::max(worst, arrival);
    }
    if (worst > last_arrival) {
      last_arrival = worst;
      enabler = pa.node;
    }
  }
  return enabler;
}

void build_flb(TimelineBuilder& builder) {
  const InstanceView& view = builder.view();
  while (!builder.complete()) {
    TaskId best_task = 0;
    NodeId best_node = 0;
    double best_finish = std::numeric_limits<double>::infinity();
    bool found = false;
    for (TaskId t : builder.ready_tasks()) {
      const auto avail = builder.node_available_row();
      NodeId idle_node = 0;
      for (NodeId v = 1; v < view.node_count(); ++v) {
        if (avail[v] < avail[idle_node]) idle_node = v;
      }
      const NodeId enabler = enabling_node(builder, t);

      for (NodeId candidate : {idle_node, enabler}) {
        const double finish = builder.earliest_finish(t, candidate, /*insertion=*/false);
        if (!found || finish < best_finish ||
            (finish == best_finish && t < best_task)) {
          best_finish = finish;
          best_task = t;
          best_node = candidate;
          found = true;
        }
      }
    }
    builder.place_earliest(best_task, best_node, /*insertion=*/false);
  }
}

}  // namespace

Schedule FlbScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_flb(builder);
  return builder.to_schedule();
}

double FlbScheduler::plan_makespan(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_flb(builder);
  return builder.current_makespan();
}


void register_flb_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "FLB";
  desc.summary = "Fast Load Balancing (Radulescu & van Gemund 2000): earliest-finishing ready task, two-candidate placement";
  desc.tags = {"table1", "benchmark"};
  desc.requirements.homogeneous_node_speeds = true;
  desc.requirements.homogeneous_link_strengths = true;
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<FlbScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
