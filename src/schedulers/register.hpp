#pragma once

/// \file register.hpp
/// Registration hooks for the built-in schedulers. Each function lives in
/// its scheduler's own .cpp (next to the algorithm it describes) and adds
/// that scheduler's SchedulerDesc to the registry; register.cpp invokes
/// them all, in the paper's Table I order followed by the extension order.
/// Direct calls (rather than static-initializer tricks) keep registration
/// deterministic and immune to static-library dead-stripping.

namespace saga {

class SchedulerRegistry;

void register_bil_scheduler(SchedulerRegistry& registry);
void register_brute_force_scheduler(SchedulerRegistry& registry);
void register_cpop_scheduler(SchedulerRegistry& registry);
void register_duplex_scheduler(SchedulerRegistry& registry);
void register_etf_scheduler(SchedulerRegistry& registry);
void register_fastest_node_scheduler(SchedulerRegistry& registry);
void register_fcp_scheduler(SchedulerRegistry& registry);
void register_flb_scheduler(SchedulerRegistry& registry);
void register_gdl_scheduler(SchedulerRegistry& registry);
void register_heft_scheduler(SchedulerRegistry& registry);
void register_maxmin_scheduler(SchedulerRegistry& registry);
void register_mct_scheduler(SchedulerRegistry& registry);
void register_met_scheduler(SchedulerRegistry& registry);
void register_minmin_scheduler(SchedulerRegistry& registry);
void register_olb_scheduler(SchedulerRegistry& registry);
void register_smt_binary_search_scheduler(SchedulerRegistry& registry);
void register_wba_scheduler(SchedulerRegistry& registry);

void register_ert_scheduler(SchedulerRegistry& registry);
void register_mh_scheduler(SchedulerRegistry& registry);
void register_lmt_scheduler(SchedulerRegistry& registry);
void register_linear_clustering_scheduler(SchedulerRegistry& registry);
void register_genetic_scheduler(SchedulerRegistry& registry);
void register_sim_anneal_scheduler(SchedulerRegistry& registry);
void register_ensemble_scheduler(SchedulerRegistry& registry);
void register_peft_scheduler(SchedulerRegistry& registry);
void register_online_scheduler(SchedulerRegistry& registry);

}  // namespace saga
