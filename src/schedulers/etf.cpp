#include "schedulers/etf.hpp"

#include <limits>
#include <vector>

#include "sched/ranks.hpp"
#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule EtfScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  const InstanceView& view = builder.view();
  std::vector<double> level;
  static_levels(view, level);
  while (!builder.complete()) {
    TaskId best_task = 0;
    NodeId best_node = 0;
    double best_start = std::numeric_limits<double>::infinity();
    double best_level = -1.0;
    for (TaskId t = 0; t < view.task_count(); ++t) {
      if (!builder.ready(t)) continue;
      for (NodeId v = 0; v < view.node_count(); ++v) {
        const double start = builder.earliest_start(t, v, /*insertion=*/false);
        const bool better =
            start < best_start ||
            (start == best_start && (level[t] > best_level ||
                                     (level[t] == best_level && t < best_task)));
        if (better) {
          best_start = start;
          best_level = level[t];
          best_task = t;
          best_node = v;
        }
      }
    }
    builder.place_earliest(best_task, best_node, /*insertion=*/false);
  }
  return builder.to_schedule();
}


void register_etf_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "ETF";
  desc.summary = "Earliest Task First (Hwang et al. 1989): globally earliest start over (ready task, node) pairs";
  desc.tags = {"table1", "benchmark"};
  desc.requirements.homogeneous_node_speeds = true;
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<EtfScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
