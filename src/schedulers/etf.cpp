#include "schedulers/etf.hpp"

#include <limits>
#include <vector>

#include "sched/ranks.hpp"
#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

namespace {

void build_etf(TimelineBuilder& builder) {
  const InstanceView& view = builder.view();
  auto& ws = builder.workspace();
  std::vector<double>& level = ws.d0;
  static_levels(view, level);
  while (!builder.complete()) {
    TaskId best_task = 0;
    NodeId best_node = 0;
    double best_start = std::numeric_limits<double>::infinity();
    double best_level = -1.0;
    for (TaskId t : builder.ready_tasks()) {
      const auto row = builder.eft_row(t, /*insertion=*/false);
      for (NodeId v = 0; v < view.node_count(); ++v) {
        const double start = row.start[v];
        const bool better =
            start < best_start ||
            (start == best_start && (level[t] > best_level ||
                                     (level[t] == best_level && t < best_task)));
        if (better) {
          best_start = start;
          best_level = level[t];
          best_task = t;
          best_node = v;
        }
      }
    }
    builder.place(best_task, best_node, best_start);
  }
}

}  // namespace

Schedule EtfScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_etf(builder);
  return builder.to_schedule();
}

double EtfScheduler::plan_makespan(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_etf(builder);
  return builder.current_makespan();
}


void register_etf_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "ETF";
  desc.summary = "Earliest Task First (Hwang et al. 1989): globally earliest start over (ready task, node) pairs";
  desc.tags = {"table1", "benchmark"};
  desc.requirements.homogeneous_node_speeds = true;
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<EtfScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
