#include "schedulers/etf.hpp"

#include <limits>
#include <vector>

#include "sched/ranks.hpp"
#include "sched/timeline.hpp"

namespace saga {

Schedule EtfScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  const InstanceView& view = builder.view();
  std::vector<double> level;
  static_levels(view, level);
  while (!builder.complete()) {
    TaskId best_task = 0;
    NodeId best_node = 0;
    double best_start = std::numeric_limits<double>::infinity();
    double best_level = -1.0;
    for (TaskId t = 0; t < view.task_count(); ++t) {
      if (!builder.ready(t)) continue;
      for (NodeId v = 0; v < view.node_count(); ++v) {
        const double start = builder.earliest_start(t, v, /*insertion=*/false);
        const bool better =
            start < best_start ||
            (start == best_start && (level[t] > best_level ||
                                     (level[t] == best_level && t < best_task)));
        if (better) {
          best_start = start;
          best_level = level[t];
          best_task = t;
          best_node = v;
        }
      }
    }
    builder.place_earliest(best_task, best_node, /*insertion=*/false);
  }
  return builder.to_schedule();
}

}  // namespace saga
