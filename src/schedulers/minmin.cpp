#include "schedulers/minmin.hpp"

#include <limits>

#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

namespace {

void build_minmin(TimelineBuilder& builder) {
  const std::size_t nodes = builder.view().node_count();
  while (!builder.complete()) {
    TaskId best_task = 0;
    NodeId best_node = 0;
    double best_start = 0.0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (TaskId t : builder.ready_tasks()) {
      const auto row = builder.eft_row(t, /*insertion=*/false);
      for (NodeId v = 0; v < nodes; ++v) {
        if (row.finish[v] < best_finish) {
          best_finish = row.finish[v];
          best_start = row.start[v];
          best_task = t;
          best_node = v;
        }
      }
    }
    builder.place(best_task, best_node, best_start);
  }
}

}  // namespace

Schedule MinMinScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_minmin(builder);
  return builder.to_schedule();
}

double MinMinScheduler::plan_makespan(const ProblemInstance& inst,
                                      TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_minmin(builder);
  return builder.current_makespan();
}


void register_minmin_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "MinMin";
  desc.summary = "MinMin (Braun et al. 2001): smallest minimum-completion-time ready task goes first";
  desc.tags = {"table1", "benchmark", "app-specific"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<MinMinScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
