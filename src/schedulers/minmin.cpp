#include "schedulers/minmin.hpp"

#include <limits>

#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule MinMinScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  const InstanceView& view = builder.view();
  while (!builder.complete()) {
    TaskId best_task = 0;
    NodeId best_node = 0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (TaskId t = 0; t < view.task_count(); ++t) {
      if (!builder.ready(t)) continue;
      for (NodeId v = 0; v < view.node_count(); ++v) {
        const double finish = builder.earliest_finish(t, v, /*insertion=*/false);
        if (finish < best_finish) {
          best_finish = finish;
          best_task = t;
          best_node = v;
        }
      }
    }
    builder.place_earliest(best_task, best_node, /*insertion=*/false);
  }
  return builder.to_schedule();
}


void register_minmin_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "MinMin";
  desc.summary = "MinMin (Braun et al. 2001): smallest minimum-completion-time ready task goes first";
  desc.tags = {"table1", "benchmark", "app-specific"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<MinMinScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
