#include "schedulers/maxmin.hpp"

#include <limits>

#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule MaxMinScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  const InstanceView& view = builder.view();
  while (!builder.complete()) {
    TaskId chosen_task = 0;
    NodeId chosen_node = 0;
    double chosen_mct = -1.0;
    bool found = false;
    for (TaskId t = 0; t < view.task_count(); ++t) {
      if (!builder.ready(t)) continue;
      // Minimum completion time of t across nodes.
      NodeId arg_node = 0;
      double mct = std::numeric_limits<double>::infinity();
      for (NodeId v = 0; v < view.node_count(); ++v) {
        const double finish = builder.earliest_finish(t, v, /*insertion=*/false);
        if (finish < mct) {
          mct = finish;
          arg_node = v;
        }
      }
      if (!found || mct > chosen_mct) {
        chosen_mct = mct;
        chosen_task = t;
        chosen_node = arg_node;
        found = true;
      }
    }
    builder.place_earliest(chosen_task, chosen_node, /*insertion=*/false);
  }
  return builder.to_schedule();
}


void register_maxmin_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "MaxMin";
  desc.summary = "MaxMin (Braun et al. 2001): largest minimum-completion-time ready task goes first";
  desc.tags = {"table1", "benchmark", "app-specific"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<MaxMinScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
