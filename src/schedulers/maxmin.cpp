#include "schedulers/maxmin.hpp"

#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

namespace {

void build_maxmin(TimelineBuilder& builder) {
  while (!builder.complete()) {
    TaskId chosen_task = 0;
    NodeId chosen_node = 0;
    double chosen_start = 0.0;
    double chosen_mct = -1.0;
    bool found = false;
    for (TaskId t : builder.ready_tasks()) {
      // Minimum completion time of t across nodes.
      const auto choice = builder.best_eft(t, /*insertion=*/false);
      if (!found || choice.finish > chosen_mct) {
        chosen_mct = choice.finish;
        chosen_start = choice.start;
        chosen_task = t;
        chosen_node = choice.node;
        found = true;
      }
    }
    builder.place(chosen_task, chosen_node, chosen_start);
  }
}

}  // namespace

Schedule MaxMinScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_maxmin(builder);
  return builder.to_schedule();
}

double MaxMinScheduler::plan_makespan(const ProblemInstance& inst,
                                      TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_maxmin(builder);
  return builder.current_makespan();
}


void register_maxmin_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "MaxMin";
  desc.summary = "MaxMin (Braun et al. 2001): largest minimum-completion-time ready task goes first";
  desc.tags = {"table1", "benchmark", "app-specific"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<MaxMinScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
