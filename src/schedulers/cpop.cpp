#include "schedulers/cpop.hpp"

#include <limits>
#include <vector>

#include "sched/ranks.hpp"
#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

namespace {

void build_cpop(TimelineBuilder& builder) {
  const InstanceView& view = builder.view();
  const std::size_t tasks = view.task_count();
  auto& ws = builder.workspace();
  std::vector<double>& up = ws.d0;
  std::vector<double>& down = ws.d1;
  std::vector<double>& priority = ws.d2;
  upward_ranks(view, up);
  downward_ranks(view, down);

  priority.resize(tasks);
  for (TaskId t = 0; t < tasks; ++t) priority[t] = up[t] + down[t];

  // Critical-path tasks and the processor they are pinned to. The general
  // CPoP rule picks the node minimising the summed execution time of the
  // critical path; under related machines every task is fastest on the same
  // node, but we evaluate the sum anyway so the implementation stays honest
  // to the published algorithm.
  std::vector<TaskId>& cp = ws.tasks;
  critical_path(view, up, down, cp);
  std::vector<char>& on_cp = ws.flags;
  on_cp.assign(tasks, 0);
  for (TaskId t : cp) on_cp[t] = 1;
  NodeId cp_node = 0;
  double best_total = std::numeric_limits<double>::infinity();
  for (NodeId v = 0; v < view.node_count(); ++v) {
    double total = 0.0;
    for (TaskId t : cp) total += view.exec_time(t, v);
    if (total < best_total) {
      best_total = total;
      cp_node = v;
    }
  }

  while (!builder.complete()) {
    TaskId next = 0;
    double best_priority = -1.0;
    bool found = false;
    for (TaskId t : builder.ready_tasks()) {
      if (!found || priority[t] > best_priority) {
        next = t;
        best_priority = priority[t];
        found = true;
      }
    }

    if (on_cp[next] != 0) {
      builder.place_earliest(next, cp_node, /*insertion=*/true);
      continue;
    }
    const auto choice = builder.best_eft(next, /*insertion=*/true);
    builder.place(next, choice.node, choice.start);
  }
}

}  // namespace

Schedule CpopScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_cpop(builder);
  return builder.to_schedule();
}

double CpopScheduler::plan_makespan(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_cpop(builder);
  return builder.current_makespan();
}


void register_cpop_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "CPoP";
  desc.summary = "Critical Path on Processor (Topcuoglu et al. 1999): up+down rank, critical path pinned to one node";
  desc.tags = {"table1", "benchmark", "app-specific"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<CpopScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
