#include "schedulers/sim_anneal.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "sched/arena.hpp"
#include "sched/decoder.hpp"
#include "sched/ranks.hpp"
#include "schedulers/heft.hpp"

namespace saga {

Schedule SimAnnealScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  const std::size_t n = inst.graph.task_count();
  if (n == 0) return Schedule{};
  const std::size_t nodes = inst.network.node_count();
  Rng rng(seed_);

  // Start from HEFT's solution.
  ScheduleEncoding current;
  {
    const Schedule heft = HeftScheduler{}.schedule(inst, arena);
    current.assignment.resize(n);
    for (TaskId t = 0; t < n; ++t) current.assignment[t] = heft.of_task(t).node;
    if (arena != nullptr) {
      upward_ranks(arena->view_for(inst), current.priority);
    } else {
      current.priority = upward_ranks(inst);
    }
  }
  double current_makespan = decoded_makespan(inst, current, arena);
  ScheduleEncoding best = current;
  double best_makespan = current_makespan;

  // Temperatures are relative to the initial makespan so the acceptance
  // probability is scale-free.
  const double scale = current_makespan > 0.0 ? current_makespan : 1.0;
  for (double t = params_.t_max; t > params_.t_min; t *= params_.alpha) {
    for (std::size_t step = 0; step < params_.steps_per_temperature; ++step) {
      ScheduleEncoding candidate = current;
      const TaskId task = static_cast<TaskId>(rng.index(n));
      if (nodes > 1 && rng.bernoulli(0.5)) {
        candidate.assignment[task] = static_cast<NodeId>(rng.index(nodes));
      } else {
        candidate.priority[task] += rng.uniform(-0.2, 0.2) *
                                    (candidate.priority[task] != 0.0
                                         ? std::abs(candidate.priority[task])
                                         : 1.0);
      }
      const double candidate_makespan = decoded_makespan(inst, candidate, arena);
      const double delta = (candidate_makespan - current_makespan) / scale;
      if (delta <= 0.0 || rng.bernoulli(std::exp(-delta / t))) {
        current = std::move(candidate);
        current_makespan = candidate_makespan;
        if (current_makespan < best_makespan) {
          best = current;
          best_makespan = current_makespan;
        }
      }
    }
  }
  return decode_schedule(inst, best, arena);
}

}  // namespace saga
