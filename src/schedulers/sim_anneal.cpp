#include "schedulers/sim_anneal.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "sched/arena.hpp"
#include "sched/decoder.hpp"
#include "sched/ranks.hpp"
#include "schedulers/heft.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule SimAnnealScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  const std::size_t n = inst.graph.task_count();
  if (n == 0) return Schedule{};
  const std::size_t nodes = inst.network.node_count();
  Rng rng(seed_);

  // Start from HEFT's solution.
  ScheduleEncoding current;
  {
    const Schedule heft = HeftScheduler{}.schedule(inst, arena);
    current.assignment.resize(n);
    for (TaskId t = 0; t < n; ++t) current.assignment[t] = heft.of_task(t).node;
    if (arena != nullptr) {
      upward_ranks(arena->view_for(inst), current.priority);
    } else {
      current.priority = upward_ranks(inst);
    }
  }
  double current_makespan = decoded_makespan(inst, current, arena);
  ScheduleEncoding best = current;
  double best_makespan = current_makespan;

  // Temperatures are relative to the initial makespan so the acceptance
  // probability is scale-free.
  const double scale = current_makespan > 0.0 ? current_makespan : 1.0;
  for (double t = params_.t_max; t > params_.t_min; t *= params_.alpha) {
    for (std::size_t step = 0; step < params_.steps_per_temperature; ++step) {
      ScheduleEncoding candidate = current;
      const TaskId task = static_cast<TaskId>(rng.index(n));
      if (nodes > 1 && rng.bernoulli(0.5)) {
        candidate.assignment[task] = static_cast<NodeId>(rng.index(nodes));
      } else {
        candidate.priority[task] += rng.uniform(-0.2, 0.2) *
                                    (candidate.priority[task] != 0.0
                                         ? std::abs(candidate.priority[task])
                                         : 1.0);
      }
      const double candidate_makespan = decoded_makespan(inst, candidate, arena);
      const double delta = (candidate_makespan - current_makespan) / scale;
      if (delta <= 0.0 || rng.bernoulli(std::exp(-delta / t))) {
        current = std::move(candidate);
        current_makespan = candidate_makespan;
        if (current_makespan < best_makespan) {
          best = current;
          best_makespan = current_makespan;
        }
      }
    }
  }
  return decode_schedule(inst, best, arena);
}


void register_sim_anneal_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "SimAnneal";
  desc.aliases = {"SA"};
  desc.summary = "Simulated annealing over schedule chromosomes (not PISA), HEFT-seeded";
  desc.tags = {"extension"};
  desc.randomized = true;
  desc.params = {
      {"tmax", "initial temperature relative to the initial makespan (default 1.0)"},
      {"tmin", "final temperature (default 1e-3)"},
      {"alpha", "geometric cooling rate (default 0.98)"},
      {"steps", "steps per temperature (default 8)"},
  };
  desc.factory = [](const SchedulerParams& params, std::uint64_t seed) -> SchedulerPtr {
    SimAnnealScheduler::Params p;
    p.t_max = params.get_double("tmax", p.t_max);
    p.t_min = params.get_double("tmin", p.t_min);
    p.alpha = params.get_double("alpha", p.alpha);
    p.steps_per_temperature = params.get_size("steps", p.steps_per_temperature);
    return std::make_unique<SimAnnealScheduler>(seed, p);
  };
  registry.add(std::move(desc));
}

}  // namespace saga
