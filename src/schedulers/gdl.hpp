#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// GDL — Generalized Dynamic Level scheduling, also known as DLS
/// (Sih & Lee 1993).
///
/// At every step, picks the (ready task, node) pair maximising the dynamic
/// level DL(t, v) = SL(t) − max(DAT(t, v), avail(v)) + Δ(t, v), where SL is
/// the static level (longest mean-execution chain to a sink, no
/// communication), DAT the data-available time of t on v, and
/// Δ(t, v) = w̄(t) − w(t, v) rewards nodes faster than average. Priorities
/// are re-evaluated after every placement, giving O(|T|^2 |V|) pair
/// evaluations. Designed assuming homogeneous link strengths, which
/// `requirements` declares so PISA pins link weights to 1.
class GdlScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "GDL"; }
  [[nodiscard]] NetworkRequirements requirements() const override {
    return {.homogeneous_node_speeds = false, .homogeneous_link_strengths = true};
  }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;
};

}  // namespace saga
