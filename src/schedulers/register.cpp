#include "schedulers/register.hpp"

#include "sched/registry.hpp"

namespace saga {

void register_builtin_schedulers(SchedulerRegistry& registry) {
  // Table I, in the paper's order (the `table1` enumeration preserves it).
  register_bil_scheduler(registry);
  register_brute_force_scheduler(registry);
  register_cpop_scheduler(registry);
  register_duplex_scheduler(registry);
  register_etf_scheduler(registry);
  register_fastest_node_scheduler(registry);
  register_fcp_scheduler(registry);
  register_flb_scheduler(registry);
  register_gdl_scheduler(registry);
  register_heft_scheduler(registry);
  register_maxmin_scheduler(registry);
  register_mct_scheduler(registry);
  register_met_scheduler(registry);
  register_minmin_scheduler(registry);
  register_olb_scheduler(registry);
  register_smt_binary_search_scheduler(registry);
  register_wba_scheduler(registry);

  // Extensions, in the historical extension-roster order.
  register_ert_scheduler(registry);
  register_mh_scheduler(registry);
  register_lmt_scheduler(registry);
  register_linear_clustering_scheduler(registry);
  register_genetic_scheduler(registry);
  register_sim_anneal_scheduler(registry);
  register_ensemble_scheduler(registry);
  register_peft_scheduler(registry);

  // Protocol adapters (not part of the offline extension roster).
  register_online_scheduler(registry);
}

}  // namespace saga
