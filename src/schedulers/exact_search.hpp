#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "sched/schedule.hpp"

/// \file exact_search.hpp
/// Exact makespan optimisation by exhaustive search over eager schedules.
///
/// For the model of Section II, every (topological order, task→node
/// assignment) pair induces a unique "eager" schedule in which each task
/// starts as early as possible given the decisions so far; delaying a task
/// can never help any other task (nodes are independent and data-arrival
/// times are monotone in producer finish times), so some eager schedule is
/// optimal. The engine therefore enumerates ready-task × node choices with
/// depth-first search and branch-and-bound pruning.
///
/// Complexity is exponential; the engine is intended for the BruteForce and
/// SMT oracle schedulers on small instances (the paper likewise excludes
/// both from benchmarking and PISA runs).

namespace saga {

class TimelineArena;

struct ExactSearchOptions {
  /// Prune subtrees whose partial makespan already reaches `bound`
  /// (non-strict). infinity = pure optimisation.
  double bound = std::numeric_limits<double>::infinity();

  /// Stop as soon as any complete schedule strictly below `bound` is found
  /// (decision mode, used by the binary-search driver).
  bool first_below_bound = false;

  /// Safety valve on explored states; the search throws std::runtime_error
  /// when exceeded so misuse on large instances fails loudly instead of
  /// hanging.
  std::uint64_t max_states = 50'000'000;
};

struct ExactSearchResult {
  std::optional<Schedule> schedule;  // empty if no schedule beat the bound
  std::uint64_t states_explored = 0;
};

/// Finds a minimum-makespan schedule (or, in decision mode, any schedule
/// strictly below the bound). `arena` (optional) lets the search recycle
/// timeline scratch across its copy-on-branch states.
[[nodiscard]] ExactSearchResult exact_search(const ProblemInstance& inst,
                                             const ExactSearchOptions& options = {},
                                             TimelineArena* arena = nullptr);

/// A simple lower bound on the optimal makespan: max over tasks of the
/// length of the fastest-execution chain through that task, ignoring
/// communication (every chain must run somewhere, and no node is faster
/// than the fastest node).
[[nodiscard]] double makespan_lower_bound(const ProblemInstance& inst);

}  // namespace saga
