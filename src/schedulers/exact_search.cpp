#include "schedulers/exact_search.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sched/timeline.hpp"

namespace saga {

namespace {

class Searcher {
 public:
  Searcher(const ProblemInstance& inst, const ExactSearchOptions& options, TimelineArena* arena)
      : inst_(inst), options_(options), arena_(arena), best_bound_(options.bound) {
    // Per-task lower bound on remaining work: the fastest-node execution
    // time of the longest cost chain from the task to a sink.
    const auto& g = inst.graph;
    const double fastest = inst.network.speed(inst.network.fastest_node());
    tail_cost_.assign(g.task_count(), 0.0);
    const auto order = g.topological_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const TaskId t = *it;
      double best = 0.0;
      for (TaskId s : g.successors(t)) best = std::max(best, tail_cost_[s]);
      tail_cost_[t] = g.cost(t) / fastest + best;
    }
  }

  ExactSearchResult run() {
    TimelineBuilder builder(inst_, arena_);
    dfs(builder);
    ExactSearchResult result;
    result.states_explored = states_;
    if (best_schedule_.has_value()) result.schedule = std::move(best_schedule_);
    return result;
  }

 private:
  // Returns true if the search should stop entirely (decision-mode hit).
  bool dfs(TimelineBuilder& builder) {
    if (++states_ > options_.max_states) {
      throw std::runtime_error("exact_search: state budget exceeded — instance too large");
    }
    if (builder.complete()) {
      const double m = builder.current_makespan();
      if (m < best_bound_) {
        best_bound_ = m;
        best_schedule_ = builder.to_schedule();
        if (options_.first_below_bound) return true;
      }
      return false;
    }

    const auto ready = builder.ready_tasks();
    for (TaskId t : ready) {
      for (NodeId v = 0; v < inst_.network.node_count(); ++v) {
        const double start = builder.earliest_start(t, v, /*insertion=*/false);
        // Bound: this branch can't finish before start + remaining chain.
        if (start + tail_cost_[t] >= best_bound_) continue;
        TimelineBuilder next = builder;  // copy-on-branch keeps the code simple
        next.place(t, v, start);
        if (next.current_makespan() >= best_bound_) continue;
        if (dfs(next)) return true;
      }
    }
    return false;
  }

  const ProblemInstance& inst_;
  const ExactSearchOptions& options_;
  TimelineArena* arena_;
  double best_bound_;
  std::optional<Schedule> best_schedule_;
  std::vector<double> tail_cost_;
  std::uint64_t states_ = 0;
};

}  // namespace

ExactSearchResult exact_search(const ProblemInstance& inst, const ExactSearchOptions& options,
                               TimelineArena* arena) {
  Searcher searcher(inst, options, arena);
  return searcher.run();
}

double makespan_lower_bound(const ProblemInstance& inst) {
  const auto& g = inst.graph;
  const double fastest = inst.network.speed(inst.network.fastest_node());
  std::vector<double> chain(g.task_count(), 0.0);
  double bound = 0.0;
  const auto order = g.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    double best = 0.0;
    for (TaskId s : g.successors(t)) best = std::max(best, chain[s]);
    chain[t] = g.cost(t) / fastest + best;
    bound = std::max(bound, chain[t]);
  }
  return bound;
}

}  // namespace saga
