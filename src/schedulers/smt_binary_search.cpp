#include "schedulers/smt_binary_search.hpp"

#include <cmath>

#include "schedulers/exact_search.hpp"
#include "schedulers/fastest_node.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule SmtBinarySearchScheduler::schedule(const ProblemInstance& inst,
                                            TimelineArena* arena) const {
  Schedule incumbent = FastestNodeScheduler{}.schedule(inst, arena);
  double hi = incumbent.makespan();
  double lo = makespan_lower_bound(inst);
  if (hi <= 0.0) return incumbent;  // all-zero-cost graph: already optimal
  lo = std::min(lo, hi);

  // Invariant: a schedule with makespan ≤ hi exists (the incumbent);
  // no schedule with makespan < lo exists.
  while (hi > (1.0 + epsilon_) * lo && hi - lo > 1e-12) {
    const double mid = 0.5 * (lo + hi);
    ExactSearchOptions options;
    options.bound = mid;
    options.first_below_bound = true;
    const auto result = exact_search(inst, options, arena);
    if (result.schedule.has_value()) {
      incumbent = *result.schedule;
      hi = incumbent.makespan();
    } else {
      lo = mid;
    }
  }
  return incumbent;
}


void register_smt_binary_search_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "SMT";
  desc.summary = "SMT-style binary search on the makespan bound; (1+epsilon)-optimal oracle";
  desc.tags = {"table1"};
  desc.exponential_time = true;
  desc.params = {{"epsilon", "relative optimality gap (default 0.01)"}};
  desc.factory = [](const SchedulerParams& params, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<SmtBinarySearchScheduler>(params.get_double("epsilon", 0.01));
  };
  registry.add(std::move(desc));
}

}  // namespace saga
