#include "schedulers/smt_binary_search.hpp"

#include <cmath>

#include "schedulers/exact_search.hpp"
#include "schedulers/fastest_node.hpp"

namespace saga {

Schedule SmtBinarySearchScheduler::schedule(const ProblemInstance& inst,
                                            TimelineArena* arena) const {
  Schedule incumbent = FastestNodeScheduler{}.schedule(inst, arena);
  double hi = incumbent.makespan();
  double lo = makespan_lower_bound(inst);
  if (hi <= 0.0) return incumbent;  // all-zero-cost graph: already optimal
  lo = std::min(lo, hi);

  // Invariant: a schedule with makespan ≤ hi exists (the incumbent);
  // no schedule with makespan < lo exists.
  while (hi > (1.0 + epsilon_) * lo && hi - lo > 1e-12) {
    const double mid = 0.5 * (lo + hi);
    ExactSearchOptions options;
    options.bound = mid;
    options.first_below_bound = true;
    const auto result = exact_search(inst, options, arena);
    if (result.schedule.has_value()) {
      incumbent = *result.schedule;
      hi = incumbent.makespan();
    } else {
      lo = mid;
    }
  }
  return incumbent;
}

}  // namespace saga
