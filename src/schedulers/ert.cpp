#include "schedulers/ert.hpp"

#include <limits>

#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule ErtScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  const InstanceView& view = builder.view();
  while (!builder.complete()) {
    // Ready task with the earliest minimum data-ready time across nodes.
    TaskId next = 0;
    double best_ready = std::numeric_limits<double>::infinity();
    bool found = false;
    for (TaskId t = 0; t < view.task_count(); ++t) {
      if (!builder.ready(t)) continue;
      double ready = std::numeric_limits<double>::infinity();
      for (NodeId v = 0; v < view.node_count(); ++v) {
        ready = std::min(ready, builder.data_ready_time(t, v));
      }
      if (!found || ready < best_ready) {
        best_ready = ready;
        next = t;
        found = true;
      }
    }

    NodeId best_node = 0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < view.node_count(); ++v) {
      const double finish = builder.earliest_finish(next, v, /*insertion=*/false);
      if (finish < best_finish) {
        best_finish = finish;
        best_node = v;
      }
    }
    builder.place_earliest(next, best_node, /*insertion=*/false);
  }
  return builder.to_schedule();
}


void register_ert_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "ERT";
  desc.summary = "Earliest Ready Task (Lee et al. 1988): dispatch the earliest-data-arrival ready task";
  desc.tags = {"extension"};
  desc.requirements.homogeneous_node_speeds = true;
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<ErtScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
