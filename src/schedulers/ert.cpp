#include "schedulers/ert.hpp"

#include <limits>

#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

namespace {

void build_ert(TimelineBuilder& builder) {
  const std::size_t nodes = builder.view().node_count();
  while (!builder.complete()) {
    // Ready task with the earliest minimum data-ready time across nodes.
    TaskId next = 0;
    double best_ready = std::numeric_limits<double>::infinity();
    bool found = false;
    for (TaskId t : builder.ready_tasks()) {
      const auto row = builder.data_ready_row(t);
      double ready = std::numeric_limits<double>::infinity();
      for (NodeId v = 0; v < nodes; ++v) ready = std::min(ready, row[v]);
      if (!found || ready < best_ready) {
        best_ready = ready;
        next = t;
        found = true;
      }
    }

    const auto choice = builder.best_eft(next, /*insertion=*/false);
    builder.place(next, choice.node, choice.start);
  }
}

}  // namespace

Schedule ErtScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_ert(builder);
  return builder.to_schedule();
}

double ErtScheduler::plan_makespan(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_ert(builder);
  return builder.current_makespan();
}


void register_ert_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "ERT";
  desc.summary = "Earliest Ready Task (Lee et al. 1988): dispatch the earliest-data-arrival ready task";
  desc.tags = {"extension"};
  desc.requirements.homogeneous_node_speeds = true;
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<ErtScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
