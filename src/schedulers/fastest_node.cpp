#include "schedulers/fastest_node.hpp"

#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

namespace {

void build_fastest_node(TimelineBuilder& builder, NodeId fastest) {
  for (TaskId t : builder.view().topological_order()) {
    builder.place_earliest(t, fastest, /*insertion=*/false);
  }
}

}  // namespace

Schedule FastestNodeScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  const NodeId fastest = inst.network.fastest_node();
  TimelineBuilder builder(inst, arena);
  build_fastest_node(builder, fastest);
  return builder.to_schedule();
}

double FastestNodeScheduler::plan_makespan(const ProblemInstance& inst,
                                           TimelineArena* arena) const {
  const NodeId fastest = inst.network.fastest_node();
  TimelineBuilder builder(inst, arena);
  build_fastest_node(builder, fastest);
  return builder.current_makespan();
}


void register_fastest_node_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "FastestNode";
  desc.aliases = {"Fastest"};
  desc.summary = "Serial baseline: the whole graph in topological order on the single fastest node";
  desc.tags = {"table1", "benchmark", "app-specific"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<FastestNodeScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
