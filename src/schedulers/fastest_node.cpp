#include "schedulers/fastest_node.hpp"

#include "sched/timeline.hpp"

namespace saga {

Schedule FastestNodeScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  const NodeId fastest = inst.network.fastest_node();
  TimelineBuilder builder(inst, arena);
  for (TaskId t : builder.view().topological_order()) {
    builder.place_earliest(t, fastest, /*insertion=*/false);
  }
  return builder.to_schedule();
}

}  // namespace saga
