#include "schedulers/fastest_node.hpp"

#include "sched/timeline.hpp"

namespace saga {

Schedule FastestNodeScheduler::schedule(const ProblemInstance& inst) const {
  const NodeId fastest = inst.network.fastest_node();
  TimelineBuilder builder(inst);
  for (TaskId t : inst.graph.topological_order()) {
    builder.place_earliest(t, fastest, /*insertion=*/false);
  }
  return builder.to_schedule();
}

}  // namespace saga
