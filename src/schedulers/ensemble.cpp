#include "schedulers/ensemble.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

EnsembleScheduler::EnsembleScheduler(std::vector<std::string> members, std::uint64_t seed)
    : members_(std::move(members)), seed_(seed) {
  if (members_.empty()) throw std::invalid_argument("ensemble needs at least one member");
  // Construct every member eagerly so a misspelled name or parameter fails
  // here — where spec validation and `saga run --dry-run` can report it —
  // rather than mid-experiment on the first schedule() call. The built
  // members are kept and reused: schedulers are stateless between calls
  // (randomized ones re-derive their stream from the constructor seed), so
  // re-construction per call would only cost allocations.
  built_.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    built_.push_back(make_scheduler(members_[i], derive_seed(seed_, {i})));
  }
}

NetworkRequirements EnsembleScheduler::requirements() const {
  // The ensemble inherits the union of its members' restrictions: it can
  // only be trusted on networks every member was designed for.
  NetworkRequirements combined;
  for (const auto& member : built_) {
    const auto reqs = member->requirements();
    combined.homogeneous_node_speeds |= reqs.homogeneous_node_speeds;
    combined.homogeneous_link_strengths |= reqs.homogeneous_link_strengths;
  }
  return combined;
}

Schedule EnsembleScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  Schedule best;
  bool first = true;
  for (const auto& member : built_) {
    Schedule candidate = member->schedule(inst, arena);
    if (first || candidate.makespan() < best.makespan()) {
      best = std::move(candidate);
      first = false;
    }
  }
  return best;
}

double EnsembleScheduler::plan_makespan(const ProblemInstance& inst,
                                        TimelineArena* arena) const {
  // `candidate < best` keeps the first of equals, so the result is exactly
  // the running min of the members' makespans.
  double best = built_.front()->plan_makespan(inst, arena);
  for (std::size_t i = 1; i < built_.size(); ++i) {
    best = std::min(best, built_[i]->plan_makespan(inst, arena));
  }
  return best;
}


void register_ensemble_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "Ensemble";
  desc.aliases = {"Portfolio"};
  desc.summary = "Portfolio: runs every member scheduler, returns the best schedule";
  desc.tags = {"extension"};
  desc.randomized = true;
  desc.params = {
      {"members", "'+'-separated member names (default heft+cpop+minmin)"},
  };
  desc.factory = [](const SchedulerParams& params, std::uint64_t seed) -> SchedulerPtr {
    return std::make_unique<EnsembleScheduler>(
        params.get_list("members", {"HEFT", "CPoP", "MinMin"}), seed);
  };
  registry.add(std::move(desc));
}

}  // namespace saga
