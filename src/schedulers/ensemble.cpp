#include "schedulers/ensemble.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "sched/registry.hpp"

namespace saga {

EnsembleScheduler::EnsembleScheduler(std::vector<std::string> members, std::uint64_t seed)
    : members_(std::move(members)), seed_(seed) {
  if (members_.empty()) throw std::invalid_argument("ensemble needs at least one member");
}

NetworkRequirements EnsembleScheduler::requirements() const {
  // The ensemble inherits the union of its members' restrictions: it can
  // only be trusted on networks every member was designed for.
  NetworkRequirements combined;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const auto reqs = make_scheduler(members_[i], derive_seed(seed_, {i}))->requirements();
    combined.homogeneous_node_speeds |= reqs.homogeneous_node_speeds;
    combined.homogeneous_link_strengths |= reqs.homogeneous_link_strengths;
  }
  return combined;
}

Schedule EnsembleScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  Schedule best;
  bool first = true;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    Schedule candidate =
        make_scheduler(members_[i], derive_seed(seed_, {i}))->schedule(inst, arena);
    if (first || candidate.makespan() < best.makespan()) {
      best = std::move(candidate);
      first = false;
    }
  }
  return best;
}

}  // namespace saga
