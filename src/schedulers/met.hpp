#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// MET — Minimum Execution Time (Armstrong, Hensgen & Kidd 1998).
///
/// Assigns each task to the node with the smallest execution time,
/// regardless of node availability, O(|T| |V|). Under the related machines
/// model every task's fastest node is the same, so MET degenerates to
/// serialising the whole graph on the fastest node — one of the behaviours
/// the paper's adversarial analysis exposes.
class MetScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "MET"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;
};

}  // namespace saga
