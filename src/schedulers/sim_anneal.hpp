#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// SimAnneal — simulated-annealing scheduler (the meta-heuristic baseline
/// of Braun et al. 2001; not to be confused with PISA, which anneals over
/// *problem instances* rather than schedules).
///
/// State: a (task→node assignment, task priority) encoding; neighbours
/// reassign one task to a random node or jitter one priority. Metropolis
/// acceptance on the decoded makespan with geometric cooling. Seeded from
/// the HEFT encoding. Deterministic for a fixed seed. Extension scheduler,
/// excluded from benchmark rosters (slow).
class SimAnnealScheduler final : public Scheduler {
 public:
  struct Params {
    double t_max = 1.0;    // relative to the initial makespan
    double t_min = 1e-3;
    double alpha = 0.98;
    std::size_t steps_per_temperature = 8;
  };

  explicit SimAnnealScheduler(std::uint64_t seed = 0x51a77ULL) : seed_(seed) {}
  SimAnnealScheduler(std::uint64_t seed, const Params& params)
      : seed_(seed), params_(params) {}

  [[nodiscard]] std::string_view name() const override { return "SimAnneal"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;

 private:
  std::uint64_t seed_;
  Params params_;
};

}  // namespace saga
