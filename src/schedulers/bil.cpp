#include "schedulers/bil.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

namespace {

void build_bil(TimelineBuilder& builder) {
  const InstanceView& view = builder.view();
  const std::size_t tasks = view.task_count();
  const std::size_t n_nodes = view.node_count();
  auto& ws = builder.workspace();

  // BIL table (T*N, row per task), computed bottom-up over a reverse
  // topological order. The inner contention scan is a row sweep over the
  // dense strength table: the +inf diagonal makes `cost / strength[v]`
  // exactly the co-located 0, so no v2 == v branch is needed; min-folds are
  // insensitive to evaluation order, so the sweep is bit-identical to the
  // skip-the-diagonal loop it replaces.
  std::vector<double>& bil = ws.d0;
  bil.assign(tasks * n_nodes, 0.0);
  const auto order = view.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    const std::size_t succ_base = view.successors_base(t);
    const auto succs = view.successors(t);
    for (NodeId v = 0; v < n_nodes; ++v) {
      const double* strength = view.strength_row(v).data();
      double tail = 0.0;
      for (std::size_t i = 0; i < succs.size(); ++i) {
        const auto& edge = succs[i];
        const double* succ_row = bil.data() + edge.task * n_nodes;
        double best = succ_row[v];  // keep the successor co-located with t
        if (const double* comm = view.comm_row_or_null(succ_base + i, v)) {
          // Cached comm row: exactly cost / strength[v2] per lane (zero on
          // the diagonal and for zero-cost edges), division-free.
          for (NodeId v2 = 0; v2 < n_nodes; ++v2) {
            best = std::min(best, succ_row[v2] + comm[v2]);
          }
        } else if (edge.cost == 0.0) {
          // comm_time is 0 everywhere for a zero-size transfer.
          for (NodeId v2 = 0; v2 < n_nodes; ++v2) best = std::min(best, succ_row[v2]);
        } else {
          for (NodeId v2 = 0; v2 < n_nodes; ++v2) {
            best = std::min(best, succ_row[v2] + edge.cost / strength[v2]);
          }
        }
        tail = std::max(tail, best);
      }
      bil[t * n_nodes + v] = view.exec_time(t, v) + tail;
    }
  }

  // Selection. The original BIL orders ready tasks by their "best imaginary
  // makespan" and resolves contention with a revised BIM that accounts for
  // how many tasks compete for the same processor. We implement the core
  // rule — schedule the ready task with the largest best-case BIM (it is the
  // most constrained), on the node minimising its BIM — which preserves
  // BIL's optimality on linear chains: on a chain the single ready task goes
  // to the node minimising EST + BIL, the dynamic-programming optimum.
  while (!builder.complete()) {
    TaskId best_task = 0;
    NodeId best_node = 0;
    double best_start = 0.0;
    double best_key = -std::numeric_limits<double>::infinity();
    bool found = false;
    for (TaskId t : builder.ready_tasks()) {
      const auto row = builder.eft_row(t, /*insertion=*/false);
      const double* bil_row = bil.data() + t * n_nodes;
      NodeId arg_node = 0;
      double arg_start = 0.0;
      double best_bim = std::numeric_limits<double>::infinity();
      for (NodeId v = 0; v < n_nodes; ++v) {
        const double bim = row.start[v] + bil_row[v];
        if (bim < best_bim) {
          best_bim = bim;
          arg_node = v;
          arg_start = row.start[v];
        }
      }
      if (!found || best_bim > best_key || (best_bim == best_key && t < best_task)) {
        best_key = best_bim;
        best_task = t;
        best_node = arg_node;
        best_start = arg_start;
        found = true;
      }
    }
    builder.place(best_task, best_node, best_start);
  }
}

}  // namespace

Schedule BilScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_bil(builder);
  return builder.to_schedule();
}

double BilScheduler::plan_makespan(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_bil(builder);
  return builder.current_makespan();
}


void register_bil_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "BIL";
  desc.summary = "Best Imaginary Level (Oh & Ha 1996): shortest ideal-completion-path priority, revised-BIM placement";
  desc.tags = {"table1", "benchmark"};
  desc.requirements.homogeneous_link_strengths = true;
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<BilScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
