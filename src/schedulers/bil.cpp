#include "schedulers/bil.hpp"

#include <limits>
#include <vector>

#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule BilScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  const InstanceView& view = builder.view();
  const std::size_t tasks = view.task_count();
  const std::size_t n_nodes = view.node_count();

  // BIL table, computed bottom-up over a reverse topological order.
  std::vector<std::vector<double>> bil(tasks, std::vector<double>(n_nodes, 0.0));
  const auto order = view.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    for (NodeId v = 0; v < n_nodes; ++v) {
      double tail = 0.0;
      for (const auto& edge : view.successors(t)) {
        double best = bil[edge.task][v];  // keep the successor co-located with t
        for (NodeId v2 = 0; v2 < n_nodes; ++v2) {
          if (v2 == v) continue;
          best = std::min(best, bil[edge.task][v2] + view.comm_time(edge.cost, v, v2));
        }
        tail = std::max(tail, best);
      }
      bil[t][v] = view.exec_time(t, v) + tail;
    }
  }

  // Selection. The original BIL orders ready tasks by their "best imaginary
  // makespan" and resolves contention with a revised BIM that accounts for
  // how many tasks compete for the same processor. We implement the core
  // rule — schedule the ready task with the largest best-case BIM (it is the
  // most constrained), on the node minimising its BIM — which preserves
  // BIL's optimality on linear chains: on a chain the single ready task goes
  // to the node minimising EST + BIL, the dynamic-programming optimum.
  while (!builder.complete()) {
    TaskId best_task = 0;
    NodeId best_node = 0;
    double best_key = -std::numeric_limits<double>::infinity();
    bool found = false;
    for (TaskId t = 0; t < tasks; ++t) {
      if (!builder.ready(t)) continue;
      NodeId arg_node = 0;
      double best_bim = std::numeric_limits<double>::infinity();
      for (NodeId v = 0; v < n_nodes; ++v) {
        const double bim = builder.earliest_start(t, v, /*insertion=*/false) + bil[t][v];
        if (bim < best_bim) {
          best_bim = bim;
          arg_node = v;
        }
      }
      if (!found || best_bim > best_key || (best_bim == best_key && t < best_task)) {
        best_key = best_bim;
        best_task = t;
        best_node = arg_node;
        found = true;
      }
    }
    builder.place_earliest(best_task, best_node, /*insertion=*/false);
  }
  return builder.to_schedule();
}


void register_bil_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "BIL";
  desc.summary = "Best Imaginary Level (Oh & Ha 1996): shortest ideal-completion-path priority, revised-BIM placement";
  desc.tags = {"table1", "benchmark"};
  desc.requirements.homogeneous_link_strengths = true;
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<BilScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
