#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// GA — Genetic Algorithm scheduler, representing the meta-heuristic
/// paradigm the paper's related work discusses (Braun et al. 2001 found
/// GAs competitive on independent-task mapping; Houssein et al. 2021
/// survey the cloud-scheduling variants).
///
/// Chromosome: a task→node assignment vector plus a task priority vector
/// (decoded by decode_schedule, which dispatches ready tasks by priority
/// and starts them eagerly on their assigned node). Standard generational
/// loop: tournament selection, uniform crossover on both parts, per-gene
/// mutation, elitism of one. Seeded with the HEFT encoding so the search
/// never does worse than list scheduling by more than mutation noise.
///
/// Deterministic for a fixed seed. Extension scheduler — like BruteForce
/// and SMT it is excluded from benchmark rosters (slow), but it is useful
/// as a strong makespan reference on small instances.
class GeneticScheduler final : public Scheduler {
 public:
  struct Params {
    std::size_t population = 24;
    std::size_t generations = 60;
    std::size_t tournament = 3;
    double crossover_rate = 0.9;
    double mutation_rate = 0.08;  // per gene
  };

  explicit GeneticScheduler(std::uint64_t seed = 0x6a5eedULL) : seed_(seed) {}
  GeneticScheduler(std::uint64_t seed, const Params& params)
      : seed_(seed), params_(params) {}

  [[nodiscard]] std::string_view name() const override { return "GA"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;

 private:
  std::uint64_t seed_;
  Params params_;
};

}  // namespace saga
