#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// CPoP — Critical Path on Processor (Topcuoglu, Hariri & Wu 1999).
///
/// List scheduler, O(|T|^2 |V|): task priority is rank_u + rank_d (distance
/// from the start plus distance to the end of the task graph). All tasks on
/// the critical path (those attaining the maximal priority) are committed to
/// the single node minimising the total execution time of the critical path
/// — under the related machines model, the fastest node. Remaining tasks are
/// placed on the node minimising their earliest finish time (insertion
/// policy), and tasks are dequeued from the ready set by priority.
class CpopScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "CPoP"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;
};

}  // namespace saga
