#include "schedulers/genetic.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "sched/arena.hpp"
#include "sched/decoder.hpp"
#include "sched/ranks.hpp"
#include "schedulers/heft.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

namespace {

struct Individual {
  ScheduleEncoding encoding;
  double makespan = std::numeric_limits<double>::infinity();
};

}  // namespace

Schedule GeneticScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  const std::size_t n = inst.graph.task_count();
  if (n == 0) return Schedule{};
  const std::size_t nodes = inst.network.node_count();
  Rng rng(seed_);

  const auto evaluate = [&](Individual& ind) {
    ind.makespan = decoded_makespan(inst, ind.encoding, arena);
  };

  // Initial population: the HEFT solution's encoding (assignment from the
  // HEFT schedule, priority = upward rank) plus random individuals.
  std::vector<Individual> population(params_.population);
  {
    const Schedule heft = HeftScheduler{}.schedule(inst, arena);
    Individual& elite = population[0];
    elite.encoding.assignment.resize(n);
    for (TaskId t = 0; t < n; ++t) elite.encoding.assignment[t] = heft.of_task(t).node;
    if (arena != nullptr) {
      upward_ranks(arena->view_for(inst), elite.encoding.priority);
    } else {
      elite.encoding.priority = upward_ranks(inst);
    }
    evaluate(elite);
  }
  for (std::size_t i = 1; i < population.size(); ++i) {
    Individual& ind = population[i];
    ind.encoding.assignment.resize(n);
    ind.encoding.priority.resize(n);
    for (TaskId t = 0; t < n; ++t) {
      ind.encoding.assignment[t] = static_cast<NodeId>(rng.index(nodes));
      ind.encoding.priority[t] = rng.uniform();
    }
    evaluate(ind);
  }

  const auto better = [](const Individual& a, const Individual& b) {
    return a.makespan < b.makespan;
  };
  const auto tournament_pick = [&]() -> const Individual& {
    std::size_t best = rng.index(population.size());
    for (std::size_t i = 1; i < params_.tournament; ++i) {
      const std::size_t challenger = rng.index(population.size());
      if (better(population[challenger], population[best])) best = challenger;
    }
    return population[best];
  };

  for (std::size_t gen = 0; gen < params_.generations; ++gen) {
    std::vector<Individual> next;
    next.reserve(population.size());
    // Elitism: carry the best individual unchanged.
    next.push_back(*std::min_element(population.begin(), population.end(), better));

    while (next.size() < population.size()) {
      Individual child = tournament_pick();
      if (rng.bernoulli(params_.crossover_rate)) {
        const Individual& other = tournament_pick();
        for (TaskId t = 0; t < n; ++t) {
          if (rng.bernoulli(0.5)) {
            child.encoding.assignment[t] = other.encoding.assignment[t];
          }
          if (rng.bernoulli(0.5)) {
            child.encoding.priority[t] = other.encoding.priority[t];
          }
        }
      }
      for (TaskId t = 0; t < n; ++t) {
        if (rng.bernoulli(params_.mutation_rate)) {
          child.encoding.assignment[t] = static_cast<NodeId>(rng.index(nodes));
        }
        if (rng.bernoulli(params_.mutation_rate)) {
          child.encoding.priority[t] = rng.uniform();
        }
      }
      evaluate(child);
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }

  const Individual& best = *std::min_element(population.begin(), population.end(), better);
  return decode_schedule(inst, best.encoding, arena);
}


void register_genetic_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "GA";
  desc.aliases = {"Genetic"};
  desc.summary = "Genetic algorithm over (assignment, priority) chromosomes, HEFT-seeded";
  desc.tags = {"extension"};
  desc.randomized = true;
  desc.params = {
      {"pop", "population size (default 24)"},
      {"gens", "generations (default 60)"},
      {"tournament", "tournament size (default 3)"},
      {"crossover", "crossover rate in [0,1] (default 0.9)"},
      {"mutation", "per-gene mutation rate (default 0.08)"},
  };
  desc.factory = [](const SchedulerParams& params, std::uint64_t seed) -> SchedulerPtr {
    GeneticScheduler::Params p;
    p.population = params.get_size("pop", p.population);
    p.generations = params.get_size("gens", p.generations);
    p.tournament = params.get_size("tournament", p.tournament);
    p.crossover_rate = params.get_double("crossover", p.crossover_rate);
    p.mutation_rate = params.get_double("mutation", p.mutation_rate);
    return std::make_unique<GeneticScheduler>(seed, p);
  };
  registry.add(std::move(desc));
}

}  // namespace saga
