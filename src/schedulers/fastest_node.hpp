#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// FastestNode: serialises the whole task graph on the single fastest
/// compute node, in topological order. A deliberately naive baseline — yet
/// the paper's PISA results show popular heuristics losing to it by large
/// factors on instances where parallelisation backfires (Section VI-A).
class FastestNodeScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "FastestNode"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;
};

}  // namespace saga
