#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// PEFT — Predict Earliest Finish Time (Arabnejad & Barbosa 2014), the
/// best-known successor to HEFT and a natural candidate for the paper's
/// "more algorithms" extension list.
///
/// Precomputes the Optimistic Cost Table
///   OCT(t, v) = max over successors s of
///               min over nodes v' of ( OCT(s, v') + w(s, v')
///                                      + (v' != v ? c̄(t, s) : 0) )
/// — the best possible remaining path cost if t ran on v and everything
/// downstream chose optimally. Tasks are prioritised by the average OCT
/// row (rank_oct) and placed on the node minimising the *optimistic* EFT,
/// O_EFT(t, v) = EFT(t, v) + OCT(t, v), with insertion. Same O(|T|^2 |V|)
/// complexity class as HEFT.
class PeftScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "PEFT"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
};

}  // namespace saga
