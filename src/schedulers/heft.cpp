#include "schedulers/heft.hpp"

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "sched/ranks.hpp"
#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

namespace {

/// Upward ranks with a configurable per-node execution-time statistic
/// (mean reproduces sched/ranks.hpp's upward_ranks exactly).
void variant_upward_ranks(const InstanceView& view, HeftScheduler::RankStatistic statistic,
                          std::vector<double>& rank) {
  const double inv_strength = view.mean_inverse_strength();

  // Per-task execution-time statistic over nodes.
  double stat_factor = 0.0;  // multiplier on task cost
  switch (statistic) {
    case HeftScheduler::RankStatistic::kMean:
      stat_factor = view.mean_inverse_speed();
      break;
    case HeftScheduler::RankStatistic::kBest: {
      double best = std::numeric_limits<double>::infinity();
      for (NodeId v = 0; v < view.node_count(); ++v) {
        best = std::min(best, 1.0 / view.node_speed(v));
      }
      stat_factor = best;
      break;
    }
    case HeftScheduler::RankStatistic::kWorst: {
      double worst = 0.0;
      for (NodeId v = 0; v < view.node_count(); ++v) {
        worst = std::max(worst, 1.0 / view.node_speed(v));
      }
      stat_factor = worst;
      break;
    }
  }

  rank.assign(view.task_count(), 0.0);
  const auto order = view.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    double tail = 0.0;
    for (const auto& edge : view.successors(t)) {
      tail = std::max(tail, edge.cost * inv_strength + rank[edge.task]);
    }
    rank[t] = view.task_cost(t) * stat_factor + tail;
  }
}

void build_heft(TimelineBuilder& builder, const HeftScheduler::Variant& variant) {
  auto& ws = builder.workspace();
  std::vector<double>& rank = ws.d0;
  variant_upward_ranks(builder.view(), variant.rank, rank);

  // Process tasks by decreasing upward rank. With strictly positive task
  // costs this order is topological on its own; zero-cost tasks (which PISA
  // can produce) may tie with their neighbours, so we select from the ready
  // set instead of a pre-sorted list — identical behaviour when ranks are
  // strict, and always precedence-safe.
  while (!builder.complete()) {
    TaskId next = 0;
    double best_rank = -1.0;
    bool found = false;
    for (TaskId t : builder.ready_tasks()) {
      if (!found || rank[t] > best_rank) {
        next = t;
        best_rank = rank[t];
        found = true;
      }
    }
    const auto choice = builder.best_eft(next, variant.insertion);
    builder.place(next, choice.node, choice.start);
  }
}

}  // namespace

Schedule HeftScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_heft(builder, variant_);
  return builder.to_schedule();
}

double HeftScheduler::plan_makespan(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_heft(builder, variant_);
  return builder.current_makespan();
}


void register_heft_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "HEFT";
  desc.summary = "Heterogeneous Earliest Finish Time (Topcuoglu et al. 1999): upward-rank priority, insertion-based EFT placement";
  desc.tags = {"table1", "benchmark", "app-specific"};
  desc.params = {
      {"rank", "upward-rank statistic: mean|best|worst (default mean)"},
      {"insertion", "insertion-based placement: true|false (default true)"},
  };
  desc.factory = [](const SchedulerParams& params, std::uint64_t) -> SchedulerPtr {
    HeftScheduler::Variant variant;
    const std::string rank = params.get_string("rank", "mean");
    if (rank == "best") {
      variant.rank = HeftScheduler::RankStatistic::kBest;
    } else if (rank == "worst") {
      variant.rank = HeftScheduler::RankStatistic::kWorst;
    } else if (rank != "mean") {
      throw std::invalid_argument(
          "scheduler 'HEFT' parameter 'rank': expected mean|best|worst, got '" + rank +
          "'");
    }
    variant.insertion = params.get_bool("insertion", true);
    return std::make_unique<HeftScheduler>(variant);
  };
  registry.add(std::move(desc));
}

}  // namespace saga
