#include "schedulers/mh.hpp"

#include <limits>
#include <vector>

#include "sched/ranks.hpp"
#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule MhScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  const InstanceView& view = builder.view();
  std::vector<double> level;
  static_levels(view, level);
  while (!builder.complete()) {
    TaskId next = 0;
    double best_level = -1.0;
    bool found = false;
    for (TaskId t = 0; t < view.task_count(); ++t) {
      if (!builder.ready(t)) continue;
      if (!found || level[t] > best_level) {
        best_level = level[t];
        next = t;
        found = true;
      }
    }
    NodeId best_node = 0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < view.node_count(); ++v) {
      const double finish = builder.earliest_finish(next, v, /*insertion=*/false);
      if (finish < best_finish) {
        best_finish = finish;
        best_node = v;
      }
    }
    builder.place_earliest(next, best_node, /*insertion=*/false);
  }
  return builder.to_schedule();
}


void register_mh_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "MH";
  desc.aliases = {"MappingHeuristic"};
  desc.summary = "Mapping Heuristic (El-Rewini & Lewis 1990): static-level priority, contention-aware placement";
  desc.tags = {"extension"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<MhScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
