#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// MinMin (Braun et al. 2001).
///
/// Repeatedly computes, for every ready task, the minimum completion time
/// across all nodes, then schedules the task whose minimum completion time
/// is smallest on its corresponding node. O(|T|^2 |V|). Originally defined
/// for independent tasks; the ready-set formulation extends it to DAGs
/// (data-ready times are included in the completion time).
class MinMinScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "MinMin"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;
};

}  // namespace saga
