#include "schedulers/linear_clustering.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "sched/arena.hpp"
#include "sched/decoder.hpp"
#include "sched/ranks.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule LinearClusteringScheduler::schedule(const ProblemInstance& inst,
                                             TimelineArena* arena) const {
  const auto& g = inst.graph;
  const auto& net = inst.network;
  const std::size_t n = g.task_count();
  if (n == 0) return Schedule{};

  // Rank inputs through the arena's cached view when available (one-shot
  // callers pay for a local view, as the inst-based overloads would).
  InstanceView local_view;
  if (arena == nullptr) local_view.sync(inst);
  const InstanceView& view = arena != nullptr ? arena->view_for(inst) : local_view;
  std::vector<double> mean_exec;
  mean_exec_times(view, mean_exec);
  const double inv_strength = net.mean_inverse_strength();

  // Phase 1: peel longest paths off the graph. `in_cluster[t]` marks tasks
  // already clustered; path lengths count mean execution plus mean
  // communication of edges internal to the remaining graph.
  std::vector<int> cluster_of(n, -1);
  std::vector<std::vector<TaskId>> clusters;
  const auto order = g.topological_order();
  int remaining = static_cast<int>(n);
  while (remaining > 0) {
    // Longest path over unclustered tasks via DP in topological order.
    std::vector<double> dist(n, 0.0);
    std::vector<int> parent(n, -1);
    double best_len = -1.0;
    TaskId best_end = 0;
    for (TaskId t : order) {
      if (cluster_of[t] != -1) continue;
      dist[t] += mean_exec[t];
      if (dist[t] > best_len) {
        best_len = dist[t];
        best_end = t;
      }
      for (TaskId s : g.successors(t)) {
        if (cluster_of[s] != -1) continue;
        const double via = dist[t] + g.dependency_cost(t, s) * inv_strength;
        if (via > dist[s]) {
          dist[s] = via;
          parent[s] = static_cast<int>(t);
        }
      }
    }
    // Extract the path ending at best_end.
    std::vector<TaskId> path;
    for (int cur = static_cast<int>(best_end); cur != -1; cur = parent[cur]) {
      path.push_back(static_cast<TaskId>(cur));
    }
    std::reverse(path.begin(), path.end());
    const int id = static_cast<int>(clusters.size());
    for (TaskId t : path) cluster_of[t] = id;
    remaining -= static_cast<int>(path.size());
    clusters.push_back(std::move(path));
  }

  // Phase 2: map clusters to nodes — heaviest cluster to the fastest node.
  std::vector<std::size_t> cluster_order(clusters.size());
  std::iota(cluster_order.begin(), cluster_order.end(), std::size_t{0});
  const auto cluster_work = [&](std::size_t c) {
    double total = 0.0;
    for (TaskId t : clusters[c]) total += g.cost(t);
    return total;
  };
  std::stable_sort(cluster_order.begin(), cluster_order.end(),
                   [&](std::size_t a, std::size_t b) { return cluster_work(a) > cluster_work(b); });
  std::vector<NodeId> nodes_by_speed(net.node_count());
  std::iota(nodes_by_speed.begin(), nodes_by_speed.end(), NodeId{0});
  std::stable_sort(nodes_by_speed.begin(), nodes_by_speed.end(),
                   [&](NodeId a, NodeId b) { return net.speed(a) > net.speed(b); });

  ScheduleEncoding encoding;
  encoding.assignment.resize(n);
  upward_ranks(view, encoding.priority);  // Phase 3 dispatch order
  for (std::size_t rank = 0; rank < cluster_order.size(); ++rank) {
    const NodeId node = nodes_by_speed[rank % nodes_by_speed.size()];
    for (TaskId t : clusters[cluster_order[rank]]) encoding.assignment[t] = node;
  }
  return decode_schedule(inst, encoding, arena);
}


void register_linear_clustering_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "LC";
  desc.aliases = {"LinearClustering"};
  desc.summary = "Linear Clustering (Kim & Browne 1988): cluster longest paths, map clusters to nodes";
  desc.tags = {"extension"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<LinearClusteringScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
