#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// BruteForce: exact minimum-makespan scheduler by exhaustive search over
/// eager schedules (see exact_search.hpp). Exponential time — like the
/// paper, it is excluded from benchmarking and PISA grids and serves as an
/// optimality oracle in tests and small-instance studies.
class BruteForceScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "BruteForce"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
};

}  // namespace saga
