#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// LMT — Levelized Min Time.
///
/// The third comparison baseline in the HEFT/CPoP paper (whose original
/// source the paper notes it could not locate; we follow the standard
/// description). The task graph is levelised by dependency depth — level 0
/// holds the sources, level k the tasks all of whose predecessors sit in
/// levels < k with at least one in k-1. Levels are processed in order;
/// within a level, tasks are considered by decreasing mean execution time
/// (big tasks claim fast nodes first) and placed on the node minimising
/// their completion time. Extension scheduler (paper future work), not in
/// the 15-scheduler benchmark roster.
class LmtScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "LMT"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
};

}  // namespace saga
