#include "schedulers/peft.hpp"

#include <limits>
#include <vector>

#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule PeftScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  const InstanceView& view = builder.view();
  const std::size_t tasks = view.task_count();
  const std::size_t n_nodes = view.node_count();
  const double inv_strength = view.mean_inverse_strength();

  // Optimistic cost table, bottom-up.
  std::vector<std::vector<double>> oct(tasks, std::vector<double>(n_nodes, 0.0));
  const auto order = view.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    for (NodeId v = 0; v < n_nodes; ++v) {
      double worst = 0.0;
      for (const auto& edge : view.successors(t)) {
        const double comm = edge.cost * inv_strength;
        double best = std::numeric_limits<double>::infinity();
        for (NodeId v2 = 0; v2 < n_nodes; ++v2) {
          const double value =
              oct[edge.task][v2] + view.exec_time(edge.task, v2) + (v2 != v ? comm : 0.0);
          best = std::min(best, value);
        }
        worst = std::max(worst, best);
      }
      oct[t][v] = worst;
    }
  }

  // rank_oct: mean OCT row.
  std::vector<double> rank(tasks, 0.0);
  for (TaskId t = 0; t < tasks; ++t) {
    double total = 0.0;
    for (NodeId v = 0; v < n_nodes; ++v) total += oct[t][v];
    rank[t] = total / static_cast<double>(n_nodes);
  }

  while (!builder.complete()) {
    TaskId next = 0;
    double best_rank = -1.0;
    bool found = false;
    for (TaskId t = 0; t < tasks; ++t) {
      if (!builder.ready(t)) continue;
      if (!found || rank[t] > best_rank) {
        next = t;
        best_rank = rank[t];
        found = true;
      }
    }
    NodeId best_node = 0;
    double best_oeft = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < n_nodes; ++v) {
      const double oeft = builder.earliest_finish(next, v, /*insertion=*/true) + oct[next][v];
      if (oeft < best_oeft) {
        best_oeft = oeft;
        best_node = v;
      }
    }
    builder.place_earliest(next, best_node, /*insertion=*/true);
  }
  return builder.to_schedule();
}


void register_peft_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "PEFT";
  desc.summary = "Predict EFT (Arabnejad & Barbosa 2014): EFT placement with Optimistic Cost Table lookahead";
  desc.tags = {"extension"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<PeftScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
