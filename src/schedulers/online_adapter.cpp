#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "online/online.hpp"
#include "sched/registry.hpp"
#include "sched/scheduler.hpp"
#include "schedulers/register.hpp"

/// \file online_adapter.cpp
/// Registry adapter over the reveal-on-ready online policies (src/online).
/// `Online?policy=eft` behaves like any other roster scheduler — it returns
/// a valid offline schedule — but plans each task knowing nothing about
/// unrevealed successors, so it measures the price of not knowing the
/// future. Tagged "online" (not "extension": it is a protocol restriction,
/// not another offline heuristic) so it can join simulate-mode rosters via
/// `@online` without disturbing the historical extension roster.

namespace saga {
namespace {

constexpr std::string_view kPolicyHelp =
    "eft (default), rr, fastest, locality, or random";

class OnlineAdapterScheduler final : public Scheduler {
 public:
  OnlineAdapterScheduler(std::string policy, double tolerance, std::uint64_t seed)
      : policy_(std::move(policy)), tolerance_(tolerance), seed_(seed) {
    (void)make_policy();  // reject unknown policies at construction time
  }

  [[nodiscard]] std::string_view name() const override { return "Online"; }

  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* /*arena*/) const override {
    // A fresh policy per call keeps schedule() stateless and deterministic
    // (round-robin cursors and random streams restart every instance).
    const online::OnlinePolicyPtr policy = make_policy();
    return online::simulate_online(inst, *policy);
  }

 private:
  [[nodiscard]] online::OnlinePolicyPtr make_policy() const {
    if (policy_ == "eft") return online::make_online_eft();
    if (policy_ == "rr") return online::make_online_round_robin();
    if (policy_ == "fastest") return online::make_online_fastest();
    if (policy_ == "locality") return online::make_online_locality(tolerance_);
    if (policy_ == "random") return online::make_online_random(seed_);
    throw std::invalid_argument("scheduler 'Online': unknown policy '" + policy_ +
                                "' (expected " + std::string(kPolicyHelp) + ")");
  }

  std::string policy_;
  double tolerance_;
  std::uint64_t seed_;
};

}  // namespace

void register_online_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "Online";
  desc.summary =
      "Reveal-on-ready online scheduling adapter: tasks are placed the moment "
      "they become ready, with no knowledge of unrevealed successors";
  desc.tags = {"online"};
  desc.randomized = true;  // policy=random consumes the seed
  desc.params = {{"policy", std::string("online placement policy: ") + std::string(kPolicyHelp)},
                 {"tolerance", "locality policy's relative EFT tolerance >= 0 (default 0.25)"}};
  desc.factory = [](const SchedulerParams& params, std::uint64_t seed) -> SchedulerPtr {
    std::string policy = params.get_string("policy", "eft");
    const double tolerance = params.get_double("tolerance", 0.25);
    return std::make_unique<OnlineAdapterScheduler>(std::move(policy), tolerance, seed);
  };
  registry.add(std::move(desc));
}

}  // namespace saga
