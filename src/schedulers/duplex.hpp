#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// Duplex (Braun et al. 2001): runs both MinMin and MaxMin and returns the
/// schedule with the smaller makespan.
class DuplexScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "Duplex"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;
};

}  // namespace saga
