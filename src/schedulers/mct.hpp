#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// MCT — Minimum Completion Time (Armstrong, Hensgen & Kidd 1998).
///
/// Assigns tasks in arbitrary (here: topological id) order to the node with
/// the smallest completion time given previous decisions — essentially HEFT
/// without its priority function or insertion policy. O(|T|^2 |V|).
class MctScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "MCT"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;
};

}  // namespace saga
