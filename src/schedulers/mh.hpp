#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// MH — Mapping Heuristic (El-Rewini & Lewis 1990).
///
/// The comparison baseline from the HEFT/CPoP paper, which describes it as
/// "similar to HEFT without insertion": tasks are prioritised by static
/// level (longest mean-execution chain to a sink, no communication) and
/// greedily placed on the node minimising their completion time with
/// append-only placement. Extension scheduler (paper future work), not in
/// the 15-scheduler benchmark roster.
class MhScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "MH"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
};

}  // namespace saga
