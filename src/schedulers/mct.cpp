#include "schedulers/mct.hpp"

#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

namespace {

void build_mct(TimelineBuilder& builder) {
  for (TaskId t : builder.view().topological_order()) {
    const auto choice = builder.best_eft(t, /*insertion=*/false);
    builder.place(t, choice.node, choice.start);
  }
}

}  // namespace

Schedule MctScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_mct(builder);
  return builder.to_schedule();
}

double MctScheduler::plan_makespan(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_mct(builder);
  return builder.current_makespan();
}


void register_mct_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "MCT";
  desc.summary = "Minimum Completion Time (Armstrong et al. 1998): tasks in id order to the earliest-completing node";
  desc.tags = {"table1", "benchmark"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<MctScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
