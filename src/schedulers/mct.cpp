#include "schedulers/mct.hpp"

#include <limits>

#include "sched/timeline.hpp"

namespace saga {

Schedule MctScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  const InstanceView& view = builder.view();
  for (TaskId t : view.topological_order()) {
    NodeId best_node = 0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < view.node_count(); ++v) {
      const double finish = builder.earliest_finish(t, v, /*insertion=*/false);
      if (finish < best_finish) {
        best_finish = finish;
        best_node = v;
      }
    }
    builder.place_earliest(t, best_node, /*insertion=*/false);
  }
  return builder.to_schedule();
}

}  // namespace saga
