#include "schedulers/mct.hpp"

#include <limits>

#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule MctScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  const InstanceView& view = builder.view();
  for (TaskId t : view.topological_order()) {
    NodeId best_node = 0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < view.node_count(); ++v) {
      const double finish = builder.earliest_finish(t, v, /*insertion=*/false);
      if (finish < best_finish) {
        best_finish = finish;
        best_node = v;
      }
    }
    builder.place_earliest(t, best_node, /*insertion=*/false);
  }
  return builder.to_schedule();
}


void register_mct_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "MCT";
  desc.summary = "Minimum Completion Time (Armstrong et al. 1998): tasks in id order to the earliest-completing node";
  desc.tags = {"table1", "benchmark"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<MctScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
