#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// LC — Linear Clustering (Kim & Browne 1988), representing the
/// cluster-scheduling paradigm the paper's related-work section contrasts
/// with list scheduling (Wang & Sinnen 2018).
///
/// Phase 1 (clustering): repeatedly extract the longest remaining path
/// (by mean execution + communication time) from the task graph; each
/// extracted path becomes a cluster, forcing its tasks to run on one node
/// and zeroing their mutual communication.
/// Phase 2 (mapping): clusters are mapped to nodes by decreasing total
/// work, each to the fastest node not yet claimed (wrapping around when
/// clusters outnumber nodes).
/// Phase 3 (ordering): tasks dispatch in upward-rank order via the shared
/// encoding decoder.
///
/// Extension scheduler (paper future work), not in the benchmark roster.
class LinearClusteringScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "LC"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
};

}  // namespace saga
