#pragma once

#include <cstdint>
#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// HEFT — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri & Wu 1999).
///
/// List scheduler, O(|T|^2 |V|): tasks are prioritised by upward rank
/// (mean execution time plus the longest mean-cost chain to a sink) and
/// greedily placed on the node minimising the task's earliest finish time,
/// using insertion-based policy (a task may fill an idle gap between
/// already-scheduled tasks).
///
/// `Variant` exposes the two knobs the follow-up literature studies (Zhao
/// & Sakellariou 2003 show the rank statistic alone changes makespans by
/// up to ~50% on some graphs): which per-node execution-time statistic
/// feeds the upward rank, and whether placement may use insertion. The
/// default variant is the published algorithm; `bench_heft_variants`
/// compares the alternatives.
class HeftScheduler final : public Scheduler {
 public:
  enum class RankStatistic : std::uint8_t {
    kMean,   // the published rank: average execution time over nodes
    kBest,   // fastest-node execution time
    kWorst,  // slowest-node execution time
  };

  struct Variant {
    RankStatistic rank = RankStatistic::kMean;
    bool insertion = true;
  };

  HeftScheduler() = default;
  explicit HeftScheduler(const Variant& variant) : variant_(variant) {}

  [[nodiscard]] std::string_view name() const override { return "HEFT"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;

  [[nodiscard]] const Variant& variant() const noexcept { return variant_; }

 private:
  Variant variant_;
};

}  // namespace saga
