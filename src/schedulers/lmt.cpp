#include "schedulers/lmt.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "sched/ranks.hpp"
#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule LmtScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  const InstanceView& view = builder.view();
  const std::size_t tasks = view.task_count();

  // Levelise: level(t) = longest hop-distance from any source.
  std::vector<std::size_t> level(tasks, 0);
  std::size_t max_level = 0;
  for (TaskId t : view.topological_order()) {
    for (const auto& edge : view.predecessors(t)) {
      level[t] = std::max(level[t], level[edge.task] + 1);
    }
    max_level = std::max(max_level, level[t]);
  }

  std::vector<double> mean_exec;
  mean_exec_times(view, mean_exec);
  std::vector<TaskId> layer;  // hoisted scratch: reuses capacity across levels
  for (std::size_t current = 0; current <= max_level; ++current) {
    layer.clear();
    for (TaskId t = 0; t < tasks; ++t) {
      if (level[t] == current) layer.push_back(t);
    }
    // Biggest tasks first within the level.
    std::stable_sort(layer.begin(), layer.end(), [&](TaskId a, TaskId b) {
      return mean_exec[a] > mean_exec[b];
    });
    for (TaskId t : layer) {
      NodeId best_node = 0;
      double best_finish = std::numeric_limits<double>::infinity();
      for (NodeId v = 0; v < view.node_count(); ++v) {
        const double finish = builder.earliest_finish(t, v, /*insertion=*/false);
        if (finish < best_finish) {
          best_finish = finish;
          best_node = v;
        }
      }
      builder.place_earliest(t, best_node, /*insertion=*/false);
    }
  }
  return builder.to_schedule();
}


void register_lmt_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "LMT";
  desc.aliases = {"LevelizedMinTime"};
  desc.summary = "Levelized Min Time: levelise by dependency depth, min-time assignment per level";
  desc.tags = {"extension"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<LmtScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
