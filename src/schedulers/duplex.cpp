#include "schedulers/duplex.hpp"

#include "schedulers/maxmin.hpp"
#include "schedulers/minmin.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule DuplexScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  Schedule a = MinMinScheduler{}.schedule(inst, arena);
  Schedule b = MaxMinScheduler{}.schedule(inst, arena);
  return a.makespan() <= b.makespan() ? a : b;
}


void register_duplex_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "Duplex";
  desc.summary = "Duplex (Braun et al. 2001): runs MinMin and MaxMin, keeps the better schedule";
  desc.tags = {"table1", "benchmark"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<DuplexScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
