#include "schedulers/duplex.hpp"

#include "schedulers/maxmin.hpp"
#include "schedulers/minmin.hpp"

namespace saga {

Schedule DuplexScheduler::schedule(const ProblemInstance& inst) const {
  Schedule a = MinMinScheduler{}.schedule(inst);
  Schedule b = MaxMinScheduler{}.schedule(inst);
  return a.makespan() <= b.makespan() ? a : b;
}

}  // namespace saga
