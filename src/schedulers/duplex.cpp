#include "schedulers/duplex.hpp"

#include "schedulers/maxmin.hpp"
#include "schedulers/minmin.hpp"

namespace saga {

Schedule DuplexScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  Schedule a = MinMinScheduler{}.schedule(inst, arena);
  Schedule b = MaxMinScheduler{}.schedule(inst, arena);
  return a.makespan() <= b.makespan() ? a : b;
}

}  // namespace saga
