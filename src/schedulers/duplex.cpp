#include "schedulers/duplex.hpp"

#include <algorithm>
#include <utility>

#include "schedulers/maxmin.hpp"
#include "schedulers/minmin.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule DuplexScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  Schedule a = MinMinScheduler{}.schedule(inst, arena);
  Schedule b = MaxMinScheduler{}.schedule(inst, arena);
  // Move the winner out: the ternary used to copy the whole assignment
  // vector, which showed up as Duplex losing its arena speedup.
  return a.makespan() <= b.makespan() ? std::move(a) : std::move(b);
}

double DuplexScheduler::plan_makespan(const ProblemInstance& inst,
                                      TimelineArena* arena) const {
  // a <= b picks a, so the result is exactly min(a, b).
  return std::min(MinMinScheduler{}.plan_makespan(inst, arena),
                  MaxMinScheduler{}.plan_makespan(inst, arena));
}


void register_duplex_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "Duplex";
  desc.summary = "Duplex (Braun et al. 2001): runs MinMin and MaxMin, keeps the better schedule";
  desc.tags = {"table1", "benchmark"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<DuplexScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
