#pragma once

#include <cstdint>
#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// WBA — Workflow-Based Application scheduler (Blythe et al. 2005).
///
/// A randomized greedy scheduler from the scientific-workflow community:
/// at each step it evaluates, for every (ready task, node) pair, how much
/// the assignment would increase the current schedule makespan, then picks
/// uniformly at random among the pairs whose increase is within a tolerance
/// band [I_min, I_min + tolerance · (I_max − I_min)] of the best option —
/// "a distribution that favors choices that least increase the schedule
/// makespan" (paper Section IV-A). O(|T| |D| |V|) worst case.
///
/// Deterministic for a fixed seed; the seed is a constructor parameter so
/// experiment drivers can derive independent streams.
class WbaScheduler final : public Scheduler {
 public:
  explicit WbaScheduler(std::uint64_t seed = 0x5a6a0001ULL, double tolerance = 0.5)
      : seed_(seed), tolerance_(tolerance) {}

  [[nodiscard]] std::string_view name() const override { return "WBA"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;

 private:
  std::uint64_t seed_;
  double tolerance_;
};

}  // namespace saga
