#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// FLB — Fast Load Balancing (Radulescu & van Gemund 2000).
///
/// Companion to FCP with the opposite emphasis: instead of following a
/// static critical-path priority, FLB repeatedly schedules the ready task
/// that can *finish earliest* right now, keeping all processors as busy as
/// possible. As in FCP, only two candidate nodes are examined per task (the
/// earliest-idle node and the task's enabling node). Designed for
/// homogeneous node speeds and link strengths.
class FlbScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "FLB"; }
  [[nodiscard]] NetworkRequirements requirements() const override {
    return {.homogeneous_node_speeds = true, .homogeneous_link_strengths = true};
  }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;
};

}  // namespace saga
