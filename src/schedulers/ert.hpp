#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// ERT — Earliest Ready Task (Lee, Hwang, Chow & Anger 1988).
///
/// The comparison baseline used in the FCP/FLB paper: among ready tasks,
/// repeatedly dispatch the one whose *data* becomes available earliest
/// (minimised over nodes, ignoring node availability), and place it on the
/// node minimising its finish time. Designed for homogeneous processors;
/// like ETF it predates fully heterogeneous models, so PISA pins node
/// speeds to 1 for it. Extension scheduler: part of the paper's "more
/// algorithms" future work, not of the 15-scheduler benchmark roster.
class ErtScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "ERT"; }
  [[nodiscard]] NetworkRequirements requirements() const override {
    return {.homogeneous_node_speeds = true, .homogeneous_link_strengths = false};
  }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;
};

}  // namespace saga
