#include "schedulers/brute_force.hpp"

#include <stdexcept>

#include "schedulers/exact_search.hpp"

namespace saga {

Schedule BruteForceScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  const auto result = exact_search(inst, {}, arena);
  if (!result.schedule.has_value()) {
    throw std::logic_error("exact search found no schedule (unbounded search always does)");
  }
  return *result.schedule;
}

}  // namespace saga
