#include "schedulers/brute_force.hpp"

#include <stdexcept>

#include "schedulers/exact_search.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

Schedule BruteForceScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  const auto result = exact_search(inst, {}, arena);
  if (!result.schedule.has_value()) {
    throw std::logic_error("exact search found no schedule (unbounded search always does)");
  }
  return *result.schedule;
}


void register_brute_force_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "BruteForce";
  desc.aliases = {"brute-force"};
  desc.summary = "Exhaustive search over eager schedules; exact-minimum makespan oracle";
  desc.tags = {"table1"};
  desc.exponential_time = true;
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<BruteForceScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
