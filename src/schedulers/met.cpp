#include "schedulers/met.hpp"

#include "sched/timeline.hpp"
#include "sched/registry.hpp"
#include "schedulers/register.hpp"

namespace saga {

namespace {

void build_met(TimelineBuilder& builder) {
  const InstanceView& view = builder.view();
  for (TaskId t : view.topological_order()) {
    // Smallest execution time; first (lowest-id) node wins ties.
    NodeId best_node = 0;
    double best_exec = builder.exec_time(t, 0);
    for (NodeId v = 1; v < view.node_count(); ++v) {
      const double exec = builder.exec_time(t, v);
      if (exec < best_exec) {
        best_exec = exec;
        best_node = v;
      }
    }
    builder.place_earliest(t, best_node, /*insertion=*/false);
  }
}

}  // namespace

Schedule MetScheduler::schedule(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_met(builder);
  return builder.to_schedule();
}

double MetScheduler::plan_makespan(const ProblemInstance& inst, TimelineArena* arena) const {
  TimelineBuilder builder(inst, arena);
  build_met(builder);
  return builder.current_makespan();
}


void register_met_scheduler(SchedulerRegistry& registry) {
  SchedulerDesc desc;
  desc.name = "MET";
  desc.summary = "Minimum Execution Time (Armstrong et al. 1998): each task to its fastest node, availability ignored";
  desc.tags = {"table1", "benchmark"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) -> SchedulerPtr {
    return std::make_unique<MetScheduler>();
  };
  registry.add(std::move(desc));
}

}  // namespace saga
