#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// OLB — Opportunistic Load Balancing (Armstrong, Hensgen & Kidd 1998).
///
/// Assigns tasks in arbitrary (topological id) order to the node that
/// becomes available earliest, ignoring execution and communication times
/// entirely. O(|T| |V|). Useful mainly as a baseline.
class OlbScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "OLB"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;
};

}  // namespace saga
