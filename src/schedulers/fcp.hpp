#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// FCP — Fast Critical Path (Radulescu & van Gemund 2000).
///
/// A low-complexity list scheduler: ready tasks are kept in a priority
/// queue ordered by static upward rank, and — the key cost-saving idea —
/// only *two* candidate nodes are evaluated per task instead of all |V|:
///   1. the node that becomes idle earliest, and
///   2. the "enabling" node: where the predecessor sending the task's
///      last-arriving message ran (placing the task there voids that
///      message's communication delay).
/// The task goes to whichever of the two finishes it earlier.
/// O(|T| log |V| + |D|) in the original; ours is a faithful but simpler
/// O(|T| (log |T| + |V|)). Designed for homogeneous node speeds and link
/// strengths (the paper pins both to 1 for FCP in PISA runs).
class FcpScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "FCP"; }
  [[nodiscard]] NetworkRequirements requirements() const override {
    return {.homogeneous_node_speeds = true, .homogeneous_link_strengths = true};
  }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;
};

}  // namespace saga
