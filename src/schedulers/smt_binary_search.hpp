#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// SMT-driven binary search, (1+ε)-OPT.
///
/// The paper's SAGA drives an SMT solver with binary search on the makespan
/// bound B: "is there a schedule with makespan ≤ B?". Lacking an offline
/// SMT solver, we substitute an exact branch-and-bound decision procedure
/// with the same contract (see DESIGN.md): binary search between a
/// critical-path lower bound and the FastestNode upper bound, shrinking the
/// bracket until hi/lo ≤ 1+ε; the last satisfying schedule is returned.
/// Exponential time; excluded from benchmarking and PISA, used as a
/// near-optimality oracle in tests.
class SmtBinarySearchScheduler final : public Scheduler {
 public:
  explicit SmtBinarySearchScheduler(double epsilon = 0.01) : epsilon_(epsilon) {}

  [[nodiscard]] std::string_view name() const override { return "SMT"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;

 private:
  double epsilon_;
};

}  // namespace saga
