#pragma once

#include <string_view>

#include "sched/scheduler.hpp"

namespace saga {

/// MaxMin (Braun et al. 2001).
///
/// Like MinMin, but schedules the ready task whose *minimum* completion time
/// is *largest* (on the node attaining that minimum): big tasks go first so
/// they don't serialise at the end. O(|T|^2 |V|).
class MaxMinScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "MaxMin"; }
  using Scheduler::schedule;
  [[nodiscard]] Schedule schedule(const ProblemInstance& inst,
                                  TimelineArena* arena) const override;
  [[nodiscard]] double plan_makespan(const ProblemInstance& inst,
                                     TimelineArena* arena) const override;
};

}  // namespace saga
