#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace saga::metrics {

using saga::NodeId;
using saga::ProblemInstance;
using saga::Schedule;
using saga::TaskId;

double total_energy(const ProblemInstance& inst, const Schedule& schedule,
                    const EnergyModel& model) {
  const double makespan = schedule.makespan();
  double energy = 0.0;
  for (NodeId v = 0; v < inst.network.node_count(); ++v) {
    const auto lane = schedule.on_node(v);
    if (lane.empty()) continue;  // unused nodes are powered off
    double busy = 0.0;
    for (const auto& a : lane) busy += a.finish - a.start;
    energy += model.idle_power * makespan + model.busy_factor * inst.network.speed(v) * busy;
  }
  for (const auto& [from, to] : inst.graph.dependencies()) {
    const auto& producer = schedule.of_task(from);
    const auto& consumer = schedule.of_task(to);
    if (producer.node != consumer.node) {
      energy += model.comm_energy_per_unit * inst.graph.dependency_cost(from, to);
    }
  }
  return energy;
}

double pipeline_throughput(const ProblemInstance& inst, const Schedule& schedule) {
  double bottleneck = 0.0;
  for (NodeId v = 0; v < inst.network.node_count(); ++v) {
    double busy = 0.0;
    for (const auto& a : schedule.on_node(v)) busy += a.finish - a.start;
    bottleneck = std::max(bottleneck, busy);
  }
  if (bottleneck <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / bottleneck;
}

double rental_cost(const ProblemInstance& inst, const Schedule& schedule) {
  // Each used node is rented from time 0 until its last task finishes, at
  // a rate proportional to its speed.
  double cost = 0.0;
  for (NodeId v = 0; v < inst.network.node_count(); ++v) {
    const auto lane = schedule.on_node(v);
    if (lane.empty()) continue;
    cost += inst.network.speed(v) * lane.back().finish;
  }
  return cost;
}

std::string to_string(Metric metric) {
  switch (metric) {
    case Metric::kMakespan: return "makespan";
    case Metric::kEnergy: return "energy";
    case Metric::kInverseThroughput: return "1/throughput";
    case Metric::kCost: return "cost";
  }
  return "?";
}

double evaluate(Metric metric, const ProblemInstance& inst, const Schedule& schedule) {
  switch (metric) {
    case Metric::kMakespan: return schedule.makespan();
    case Metric::kEnergy: return total_energy(inst, schedule);
    case Metric::kInverseThroughput: {
      const double throughput = pipeline_throughput(inst, schedule);
      return throughput > 0.0 ? 1.0 / throughput : std::numeric_limits<double>::infinity();
    }
    case Metric::kCost: return rental_cost(inst, schedule);
  }
  return 0.0;
}

double metric_ratio(Metric metric, const saga::Scheduler& target,
                    const saga::Scheduler& baseline, const ProblemInstance& inst) {
  const double m_target = evaluate(metric, inst, target.schedule(inst));
  const double m_baseline = evaluate(metric, inst, baseline.schedule(inst));
  if (m_baseline == 0.0) {
    return m_target == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  if (std::isinf(m_baseline)) {
    return std::isinf(m_target) ? 1.0 : 0.0;
  }
  return m_target / m_baseline;
}

}  // namespace saga::metrics
