#pragma once

#include <string>

#include "graph/problem_instance.hpp"
#include "sched/schedule.hpp"
#include "sched/scheduler.hpp"

/// \file metrics.hpp
/// Alternative schedule-quality metrics — the paper's conclusion proposes
/// extending PISA beyond makespan to "other performance metrics (e.g.,
/// throughput, energy consumption, cost, etc.)". This module implements
/// three and generalises the PISA objective to any of them (see
/// pisa_metric_ratio below and core/annealer.hpp for the makespan
/// original).

namespace saga::metrics {

/// Simple linear power model: a node consumes `idle_power + busy_factor *
/// s(v)` watts while executing (faster nodes burn more), `idle_power`
/// while idle but owning scheduled work, and each link transfer costs
/// `comm_energy_per_unit` per unit of data sent. Units are arbitrary but
/// consistent, which is all ratio-based comparison needs.
struct EnergyModel {
  double idle_power = 0.1;
  double busy_factor = 1.0;
  double comm_energy_per_unit = 0.05;
};

/// Total energy of a schedule under the model: for every node that runs at
/// least one task, idle power over the whole makespan plus busy power over
/// its executing intervals; plus transfer energy for every inter-node
/// dependency.
[[nodiscard]] double total_energy(const saga::ProblemInstance& inst,
                                  const saga::Schedule& schedule,
                                  const EnergyModel& model = {});

/// Steady-state throughput of the schedule interpreted as a software
/// pipeline (instances of the task graph streaming through the same
/// placements): the reciprocal of the busiest node's total busy time — the
/// pipeline's bottleneck stage.
[[nodiscard]] double pipeline_throughput(const saga::ProblemInstance& inst,
                                         const saga::Schedule& schedule);

/// Cost metric: total node-seconds weighted by speed (renting fast nodes
/// is proportionally pricier), the usual cloud-billing abstraction.
[[nodiscard]] double rental_cost(const saga::ProblemInstance& inst,
                                 const saga::Schedule& schedule);

/// Metric selector for generalised PISA objectives. kMakespan reproduces
/// the paper; the others are the future-work extensions.
enum class Metric { kMakespan, kEnergy, kInverseThroughput, kCost };

[[nodiscard]] std::string to_string(Metric metric);

/// Evaluates a schedule under the chosen metric (lower is better for every
/// metric; throughput is inverted to preserve that orientation).
[[nodiscard]] double evaluate(Metric metric, const saga::ProblemInstance& inst,
                              const saga::Schedule& schedule);

/// Generalised PISA objective: metric(S_target) / metric(S_baseline) on an
/// instance. Plugs directly into the annealer via a lambda; see
/// bench_metric_pisa.
[[nodiscard]] double metric_ratio(Metric metric, const saga::Scheduler& target,
                                  const saga::Scheduler& baseline,
                                  const saga::ProblemInstance& inst);

}  // namespace saga::metrics
