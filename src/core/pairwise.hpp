#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/annealer.hpp"

/// \file pairwise.hpp
/// The pairwise PISA comparison grid behind the paper's Fig. 4 (and the
/// per-workflow grids of Figs. 10-19): for every ordered pair of schedulers
/// (target, baseline), the worst-case makespan ratio PISA can find.

namespace saga {
class ThreadPool;
}

namespace saga::pisa {

/// Result grid: ratio[i][j] is the best ratio found for *target* j against
/// *baseline* i — matching the paper's figure layout, where the cell in row
/// i (base scheduler) and column j (scheduler) reports scheduler j's worst
/// case against baseline i. Diagonal cells are skipped (NaN).
struct PairwiseResult {
  std::vector<std::string> scheduler_names;
  std::vector<std::vector<double>> ratio;
  /// best_instance[i][j]: the adversarial instance achieving ratio[i][j]
  /// (default-constructed on the diagonal), so drivers can publish the
  /// discovered instances as atlas entries.
  std::vector<std::vector<ProblemInstance>> best_instance;

  [[nodiscard]] double cell(std::size_t baseline_row, std::size_t target_col) const {
    return ratio[baseline_row][target_col];
  }

  /// Per-target worst case across all baselines (the paper's "Worst" row).
  [[nodiscard]] std::vector<double> worst_per_target() const;
};

struct PairwiseOptions {
  PisaOptions pisa;
  /// Run cells in parallel. Each (pair, restart) cell derives an
  /// independent RNG stream, so parallel runs are reproducible.
  bool parallel = true;
  /// Worker pool for parallel runs; null uses the global pool.
  ThreadPool* pool = nullptr;
};

/// The per-cell RNG stream derivation pairwise_compare uses: target and
/// baseline scheduler construction seeds plus the annealer seed for the
/// (baseline_row, target_col) cell. Exposed so drivers can reconstruct a
/// cell's schedulers exactly (e.g. `saga pisa` annotating atlas entries
/// with the effective seed of a randomized scheduler).
struct CellSeeds {
  std::uint64_t target = 0;
  std::uint64_t baseline = 0;
  std::uint64_t anneal = 0;
};
[[nodiscard]] CellSeeds pairwise_cell_seeds(std::uint64_t seed, std::size_t baseline_row,
                                            std::size_t target_col);

/// Runs PISA for every ordered pair of the named schedulers (names or spec
/// strings). Randomized schedulers are constructed with per-cell derived
/// seeds (see pairwise_cell_seeds).
[[nodiscard]] PairwiseResult pairwise_compare(const std::vector<std::string>& scheduler_names,
                                              const PairwiseOptions& options,
                                              std::uint64_t seed);

}  // namespace saga::pisa
