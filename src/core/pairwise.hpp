#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/annealer.hpp"

/// \file pairwise.hpp
/// The pairwise PISA comparison grid behind the paper's Fig. 4 (and the
/// per-workflow grids of Figs. 10-19): for every ordered pair of schedulers
/// (target, baseline), the worst-case makespan ratio PISA can find.

namespace saga::pisa {

/// Result grid: ratio[i][j] is the best ratio found for *target* j against
/// *baseline* i — matching the paper's figure layout, where the cell in row
/// i (base scheduler) and column j (scheduler) reports scheduler j's worst
/// case against baseline i. Diagonal cells are skipped (NaN).
struct PairwiseResult {
  std::vector<std::string> scheduler_names;
  std::vector<std::vector<double>> ratio;

  [[nodiscard]] double cell(std::size_t baseline_row, std::size_t target_col) const {
    return ratio[baseline_row][target_col];
  }

  /// Per-target worst case across all baselines (the paper's "Worst" row).
  [[nodiscard]] std::vector<double> worst_per_target() const;
};

struct PairwiseOptions {
  PisaOptions pisa;
  /// Worker threads (0 = use the global pool). Each (pair, restart) cell
  /// derives an independent RNG stream, so parallel runs are reproducible.
  bool parallel = true;
};

/// Runs PISA for every ordered pair of the named schedulers. WBA instances
/// are constructed with per-pair derived seeds.
[[nodiscard]] PairwiseResult pairwise_compare(const std::vector<std::string>& scheduler_names,
                                              const PairwiseOptions& options,
                                              std::uint64_t seed);

}  // namespace saga::pisa
