#include "core/app_specific.hpp"

#include <stdexcept>

#include "datasets/workflows/blast.hpp"
#include "datasets/workflows/bwa.hpp"
#include "datasets/workflows/cycles.hpp"
#include "datasets/workflows/epigenomics.hpp"
#include "datasets/workflows/genome.hpp"
#include "datasets/workflows/montage.hpp"
#include "datasets/workflows/seismology.hpp"
#include "datasets/workflows/soykb.hpp"
#include "datasets/workflows/srasearch.hpp"

namespace saga::pisa {

namespace {

workflows::WorkflowRecipe recipe_for(const std::string& workflow) {
  using namespace workflows;
  if (workflow == "blast") return {"blast", blast_stats(), blast_instance};
  if (workflow == "bwa") return {"bwa", bwa_stats(), bwa_instance};
  if (workflow == "cycles") return {"cycles", cycles_stats(), cycles_instance};
  if (workflow == "epigenomics") {
    return {"epigenomics", epigenomics_stats(), epigenomics_instance};
  }
  if (workflow == "genome") return {"genome", genome_stats(), genome_instance};
  if (workflow == "montage") return {"montage", montage_stats(), montage_instance};
  if (workflow == "seismology") return {"seismology", seismology_stats(), seismology_instance};
  if (workflow == "soykb") return {"soykb", soykb_stats(), soykb_instance};
  if (workflow == "srasearch") return {"srasearch", srasearch_stats(), srasearch_instance};
  throw std::invalid_argument("unknown workflow: " + workflow);
}

}  // namespace

PerturbationConfig app_specific_config(const workflows::TraceStats& stats) {
  PerturbationConfig config;
  // Weight ops scale into the trace envelope (Section VII-A).
  config.node_speed = {stats.min_speed, stats.max_speed};
  config.task_cost = {stats.min_runtime, stats.max_runtime};
  config.dependency_cost = {stats.min_io, stats.max_io};
  // Network edge weights are homogeneous and fixed to enforce the CCR;
  // structure is frozen so instances stay representative of the app.
  config.set_enabled(PerturbationOp::kChangeNetworkEdgeWeight, false);
  config.set_enabled(PerturbationOp::kAddDependency, false);
  config.set_enabled(PerturbationOp::kRemoveDependency, false);
  return config;
}

PisaOptions app_specific_options(const std::string& workflow, double ccr, std::uint64_t seed) {
  const auto recipe = recipe_for(workflow);
  PisaOptions options;
  options.config = app_specific_config(recipe.stats);
  options.make_initial = [recipe, ccr, seed](std::uint64_t run_seed) {
    ProblemInstance inst = recipe.make_instance(derive_seed(seed, {0xa99ULL, run_seed}));
    workflows::set_homogeneous_ccr(inst, ccr);
    return inst;
  };
  return options;
}

}  // namespace saga::pisa
