#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/perturbation.hpp"
#include "graph/problem_instance.hpp"
#include "sched/scheduler.hpp"

/// \file annealer.hpp
/// PISA — Problem-instance Identification using Simulated Annealing
/// (paper Algorithm 1). For a target scheduler A and baseline B, searches
/// for the instance maximising the makespan ratio m(S_A) / m(S_B).

namespace saga {
class ThreadPool;
}  // namespace saga

namespace saga::pisa {

/// Annealing schedule; defaults are the paper's Section VI settings
/// (Tmax = 10, Tmin = 0.1, alpha = 0.99, Imax = 1000).
struct AnnealingParams {
  double t_max = 10.0;
  double t_min = 0.1;
  double alpha = 0.99;
  std::size_t max_iterations = 1000;

  /// Acceptance rule. The paper's Algorithm 1 accepts a non-improving
  /// candidate with probability exp(-(M'/M_best)/T); the ablation bench
  /// also exercises the textbook Metropolis rule
  /// exp(-(M_cur - M')/(M_cur · T)) for comparison (DESIGN.md choice #1).
  enum class AcceptanceRule { kPaper, kMetropolis } acceptance = AcceptanceRule::kPaper;

  /// Record the per-iteration trajectory into AnnealResult::trace (one
  /// point per iteration; bounded by max_iterations).
  bool record_trace = false;

  /// Candidates evaluated per annealing step. `batch == 1` (the default)
  /// is the sequential Algorithm 1, byte-identical to the pre-batch
  /// annealer: one RNG stream `Rng(seed)` drives perturbation and
  /// acceptance interleaved.
  ///
  /// `batch == K > 1` proposes K independent candidates per step against
  /// the shared immutable current state and anneals on the best of them.
  /// Seed-derivation contract (documented so results are reproducible
  /// across machines and thread counts):
  ///   - slot k of step i perturbs with `Rng(derive_seed(seed,
  ///     {0xba7c, i, k}))` — one fresh stream per (step, slot);
  ///   - acceptance decisions draw from the dedicated stream
  ///     `Rng(derive_seed(seed, {0xacc9}))`, one draw at most per step;
  ///   - the winning slot is the highest ratio, lowest slot index on ties;
  ///   - temperature advances once per *step* (so a batch run explores
  ///     K x max_iterations candidates over the same schedule).
  /// Slot k always evaluates on the k-th of `batch` dedicated arenas, so
  /// the result for a fixed (seed, K) is bit-identical whether evaluated
  /// serially or on a pool of any size.
  std::size_t batch = 1;

  /// Evaluates batch slots in parallel when set (and batch > 1). Results
  /// are identical with or without a pool; null means serial evaluation.
  ThreadPool* pool = nullptr;
};

/// One annealing step, for convergence analysis.
struct TracePoint {
  std::size_t iteration = 0;
  double temperature = 0.0;
  double candidate_ratio = 0.0;
  double current_ratio = 0.0;
  double best_ratio = 0.0;
  bool accepted = false;  // candidate became the current state
};

/// One simulated-annealing trajectory.
struct AnnealResult {
  ProblemInstance best_instance;
  double best_ratio = 0.0;
  double initial_ratio = 0.0;
  std::size_t iterations = 0;
  std::size_t accepted = 0;   // non-improving candidates accepted
  std::size_t improved = 0;   // new-best updates
  /// Objective evaluations actually performed (including the initial one).
  /// Lower than iterations + 1 when perturbations provably left the
  /// instance unchanged (clamped nudges) and re-evaluation was skipped;
  /// up to batch * iterations + 1 in batch mode.
  std::size_t evaluations = 0;
  std::vector<TracePoint> trace;  // filled iff params.record_trace
};

/// Makespan ratio m(S_A)/m(S_B) of the two schedulers on an instance.
/// Degenerate combinations follow IEEE semantics (0/0 -> NaN is mapped to
/// ratio 1, x/0 -> +inf), so an instance on which the baseline's makespan
/// is zero but the target's is not yields an infinite ratio (rendered
/// ">1000" as in the paper's figures).
///
/// `arena` (optional, here and below) supplies the shared evaluation
/// kernel's per-thread state — a cached InstanceView refreshed in place as
/// the annealer mutates weights, plus recycled timeline scratch — so the
/// two `schedule()` calls per step are allocation-free once warm.
[[nodiscard]] double makespan_ratio(const Scheduler& target, const Scheduler& baseline,
                                    const ProblemInstance& inst,
                                    TimelineArena* arena = nullptr);

/// An instance objective to maximise. The paper's objective is the
/// makespan ratio of a scheduler pair; the metric extensions (energy,
/// throughput, cost — see metrics/metrics.hpp) plug in here too.
using InstanceObjective = std::function<double(const ProblemInstance&)>;

/// Arena-aware objective: receives the annealer's evaluation arena so
/// scheduler-based objectives can run on the shared kernel.
using ArenaObjective = std::function<double(const ProblemInstance&, TimelineArena&)>;

/// Runs Algorithm 1 on an arbitrary objective. Uses `arena` for the
/// per-step evaluations (a run-local arena when null).
[[nodiscard]] AnnealResult anneal_objective(const ArenaObjective& objective,
                                            const ProblemInstance& initial,
                                            const PerturbationConfig& config,
                                            const AnnealingParams& params, std::uint64_t seed,
                                            TimelineArena* arena = nullptr);
[[nodiscard]] AnnealResult anneal_objective(const InstanceObjective& objective,
                                            const ProblemInstance& initial,
                                            const PerturbationConfig& config,
                                            const AnnealingParams& params, std::uint64_t seed,
                                            TimelineArena* arena = nullptr);

/// Runs Algorithm 1 from the given initial instance with the paper's
/// makespan-ratio objective. The perturbation config should already
/// reflect the pair's homogeneity constraints (see constraints.hpp); the
/// initial instance should be normalised likewise.
[[nodiscard]] AnnealResult anneal(const Scheduler& target, const Scheduler& baseline,
                                  const ProblemInstance& initial,
                                  const PerturbationConfig& config,
                                  const AnnealingParams& params, std::uint64_t seed,
                                  TimelineArena* arena = nullptr);

/// The paper's Section VI initial instance: a complete network with 3-5
/// nodes, uniform weights in (0, 1] (self-links infinite), and a chain task
/// graph with 3-5 tasks, uniform weights in [0, 1].
[[nodiscard]] ProblemInstance random_chain_instance(std::uint64_t seed);

/// Convenience driver: `restarts` independent annealing runs (the paper
/// uses 5) from random chain initial instances (or `make_initial` when
/// provided), returning the best result.
struct PisaOptions {
  AnnealingParams params;
  PerturbationConfig config = PerturbationConfig::generic();
  std::size_t restarts = 5;
  /// Custom initial-instance factory (application-specific PISA); defaults
  /// to random_chain_instance.
  std::function<ProblemInstance(std::uint64_t seed)> make_initial;
};

[[nodiscard]] AnnealResult run_pisa(const Scheduler& target, const Scheduler& baseline,
                                    const PisaOptions& options, std::uint64_t seed,
                                    TimelineArena* arena = nullptr);

}  // namespace saga::pisa
