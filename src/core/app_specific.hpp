#pragma once

#include <cstdint>
#include <string>

#include "core/annealer.hpp"
#include "datasets/workflows/workflow.hpp"

/// \file app_specific.hpp
/// Application-specific PISA (paper Section VII): the search is restricted
/// to well-structured, in-family problem instances of a scientific
/// workflow:
///   - the task-graph structure is frozen (no Add/Remove Dependency);
///   - network link strengths are homogeneous and pinned to enforce a
///     target CCR (no Change Network Edge Weight);
///   - node speeds, task costs, and dependency weights remain perturbable,
///     scaled into the ranges observed in the application's traces.

namespace saga::pisa {

/// Builds the restricted PERTURB configuration for a workflow's trace
/// envelope (Section VII-A's adjusted implementation).
[[nodiscard]] PerturbationConfig app_specific_config(const workflows::TraceStats& stats);

/// PISA options for a workflow at a fixed CCR: initial instances are
/// sampled from the workflow's own generator (like the benchmarking
/// dataset) and re-pinned to the CCR after every generation. `restarts`
/// and annealing parameters can be adjusted afterwards.
[[nodiscard]] PisaOptions app_specific_options(const std::string& workflow, double ccr,
                                               std::uint64_t seed);

}  // namespace saga::pisa
