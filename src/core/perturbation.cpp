#include "core/perturbation.hpp"

#include <vector>

namespace saga::pisa {

std::string_view to_string(PerturbationOp op) {
  switch (op) {
    case PerturbationOp::kChangeNetworkNodeWeight: return "ChangeNetworkNodeWeight";
    case PerturbationOp::kChangeNetworkEdgeWeight: return "ChangeNetworkEdgeWeight";
    case PerturbationOp::kChangeTaskWeight: return "ChangeTaskWeight";
    case PerturbationOp::kChangeDependencyWeight: return "ChangeDependencyWeight";
    case PerturbationOp::kAddDependency: return "AddDependency";
    case PerturbationOp::kRemoveDependency: return "RemoveDependency";
  }
  return "?";
}

PerturbationConfig PerturbationConfig::generic() { return {}; }

namespace {

/// Nudges `value` by a uniform delta in ±range.step(), clamped into range.
double nudge(double value, const WeightRange& range, Rng& rng) {
  const double delta = rng.uniform(-range.step(), range.step());
  return range.clamp(value + delta);
}

bool apply_op(ProblemInstance& inst, PerturbationOp op, const PerturbationConfig& config,
              Rng& rng) {
  auto& g = inst.graph;
  auto& net = inst.network;
  switch (op) {
    case PerturbationOp::kChangeNetworkNodeWeight: {
      if (net.node_count() == 0) return false;
      const auto v = static_cast<NodeId>(rng.index(net.node_count()));
      net.set_speed(v, nudge(net.speed(v), config.node_speed, rng));
      return true;
    }
    case PerturbationOp::kChangeNetworkEdgeWeight: {
      if (net.node_count() < 2) return false;
      // Uniform non-self unordered pair.
      const auto a = static_cast<NodeId>(rng.index(net.node_count()));
      auto b = static_cast<NodeId>(rng.index(net.node_count() - 1));
      if (b >= a) ++b;
      net.set_strength(a, b, nudge(net.strength(a, b), config.link_strength, rng));
      return true;
    }
    case PerturbationOp::kChangeTaskWeight: {
      if (g.task_count() == 0) return false;
      const auto t = static_cast<TaskId>(rng.index(g.task_count()));
      g.set_cost(t, nudge(g.cost(t), config.task_cost, rng));
      return true;
    }
    case PerturbationOp::kChangeDependencyWeight: {
      if (g.dependency_count() == 0) return false;
      const auto [from, to] = g.dependency_at(rng.index(g.dependency_count()));
      g.set_dependency_cost(from, to,
                            nudge(g.dependency_cost(from, to), config.dependency_cost, rng));
      return true;
    }
    case PerturbationOp::kAddDependency: {
      if (g.task_count() < 2) return false;
      // "Select a task t uniformly at random and add a dependency from t to
      // a uniformly random task t' such that (t, t') is absent and acyclic."
      const auto from = static_cast<TaskId>(rng.index(g.task_count()));
      std::vector<TaskId> candidates;
      for (TaskId to = 0; to < g.task_count(); ++to) {
        if (to == from || g.has_dependency(from, to) || g.would_create_cycle(from, to)) {
          continue;
        }
        candidates.push_back(to);
      }
      if (candidates.empty()) return false;
      const TaskId to = candidates[rng.index(candidates.size())];
      const double cost = rng.uniform(config.dependency_cost.lo, config.dependency_cost.hi);
      return g.add_dependency(from, to, cost);
    }
    case PerturbationOp::kRemoveDependency: {
      if (g.dependency_count() == 0) return false;
      const auto [from, to] = g.dependency_at(rng.index(g.dependency_count()));
      return g.remove_dependency(from, to);
    }
  }
  return false;
}

}  // namespace

std::optional<PerturbationOp> perturb_in_place(ProblemInstance& inst,
                                               const PerturbationConfig& config, Rng& rng) {
  // Small fixed-capacity op list: no allocation on the annealing hot path.
  std::array<PerturbationOp, kPerturbationOpCount> enabled{};
  std::size_t enabled_count = 0;
  for (std::size_t i = 0; i < kPerturbationOpCount; ++i) {
    if (config.enabled[i]) enabled[enabled_count++] = static_cast<PerturbationOp>(i);
  }
  // Pick uniformly among enabled ops; if the chosen op is inapplicable
  // (e.g. RemoveDependency on an edgeless graph), retry among the rest.
  while (enabled_count > 0) {
    const std::size_t pick = rng.index(enabled_count);
    const PerturbationOp op = enabled[pick];
    if (apply_op(inst, op, config, rng)) return op;
    for (std::size_t i = pick + 1; i < enabled_count; ++i) enabled[i - 1] = enabled[i];
    --enabled_count;
  }
  return std::nullopt;
}

PerturbationResult perturb(const ProblemInstance& inst, const PerturbationConfig& config,
                           Rng& rng) {
  PerturbationResult result{inst, std::nullopt};
  result.applied = perturb_in_place(result.instance, config, rng);
  return result;
}

}  // namespace saga::pisa
