#include "core/perturbation.hpp"

#include <vector>

namespace saga::pisa {

std::string_view to_string(PerturbationOp op) {
  switch (op) {
    case PerturbationOp::kChangeNetworkNodeWeight: return "ChangeNetworkNodeWeight";
    case PerturbationOp::kChangeNetworkEdgeWeight: return "ChangeNetworkEdgeWeight";
    case PerturbationOp::kChangeTaskWeight: return "ChangeTaskWeight";
    case PerturbationOp::kChangeDependencyWeight: return "ChangeDependencyWeight";
    case PerturbationOp::kAddDependency: return "AddDependency";
    case PerturbationOp::kRemoveDependency: return "RemoveDependency";
  }
  return "?";
}

PerturbationConfig PerturbationConfig::generic() { return {}; }

namespace {

/// Nudges `value` by a uniform delta in ±range.step(), clamped into range.
double nudge(double value, const WeightRange& range, Rng& rng) {
  const double delta = rng.uniform(-range.step(), range.step());
  return range.clamp(value + delta);
}

bool apply_op(ProblemInstance& inst, PerturbationOp op, const PerturbationConfig& config,
              Rng& rng) {
  auto& g = inst.graph;
  auto& net = inst.network;
  switch (op) {
    case PerturbationOp::kChangeNetworkNodeWeight: {
      if (net.node_count() == 0) return false;
      const auto v = static_cast<NodeId>(rng.index(net.node_count()));
      net.set_speed(v, nudge(net.speed(v), config.node_speed, rng));
      return true;
    }
    case PerturbationOp::kChangeNetworkEdgeWeight: {
      if (net.node_count() < 2) return false;
      // Uniform non-self unordered pair.
      const auto a = static_cast<NodeId>(rng.index(net.node_count()));
      auto b = static_cast<NodeId>(rng.index(net.node_count() - 1));
      if (b >= a) ++b;
      net.set_strength(a, b, nudge(net.strength(a, b), config.link_strength, rng));
      return true;
    }
    case PerturbationOp::kChangeTaskWeight: {
      if (g.task_count() == 0) return false;
      const auto t = static_cast<TaskId>(rng.index(g.task_count()));
      g.set_cost(t, nudge(g.cost(t), config.task_cost, rng));
      return true;
    }
    case PerturbationOp::kChangeDependencyWeight: {
      const auto deps = g.dependencies();
      if (deps.empty()) return false;
      const auto& [from, to] = deps[rng.index(deps.size())];
      g.set_dependency_cost(from, to,
                            nudge(g.dependency_cost(from, to), config.dependency_cost, rng));
      return true;
    }
    case PerturbationOp::kAddDependency: {
      if (g.task_count() < 2) return false;
      // "Select a task t uniformly at random and add a dependency from t to
      // a uniformly random task t' such that (t, t') is absent and acyclic."
      const auto from = static_cast<TaskId>(rng.index(g.task_count()));
      std::vector<TaskId> candidates;
      for (TaskId to = 0; to < g.task_count(); ++to) {
        if (to == from || g.has_dependency(from, to) || g.would_create_cycle(from, to)) {
          continue;
        }
        candidates.push_back(to);
      }
      if (candidates.empty()) return false;
      const TaskId to = candidates[rng.index(candidates.size())];
      const double cost = rng.uniform(config.dependency_cost.lo, config.dependency_cost.hi);
      return g.add_dependency(from, to, cost);
    }
    case PerturbationOp::kRemoveDependency: {
      const auto deps = g.dependencies();
      if (deps.empty()) return false;
      const auto& [from, to] = deps[rng.index(deps.size())];
      return g.remove_dependency(from, to);
    }
  }
  return false;
}

}  // namespace

PerturbationResult perturb(const ProblemInstance& inst, const PerturbationConfig& config,
                           Rng& rng) {
  PerturbationResult result{inst, std::nullopt};

  std::vector<PerturbationOp> enabled;
  for (std::size_t i = 0; i < kPerturbationOpCount; ++i) {
    if (config.enabled[i]) enabled.push_back(static_cast<PerturbationOp>(i));
  }
  // Pick uniformly among enabled ops; if the chosen op is inapplicable
  // (e.g. RemoveDependency on an edgeless graph), retry among the rest.
  while (!enabled.empty()) {
    const std::size_t pick = rng.index(enabled.size());
    const PerturbationOp op = enabled[pick];
    if (apply_op(result.instance, op, config, rng)) {
      result.applied = op;
      return result;
    }
    enabled.erase(enabled.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return result;
}

}  // namespace saga::pisa
