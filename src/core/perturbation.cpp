#include "core/perturbation.hpp"

#include <vector>

namespace saga::pisa {

std::string_view to_string(PerturbationOp op) {
  switch (op) {
    case PerturbationOp::kChangeNetworkNodeWeight: return "ChangeNetworkNodeWeight";
    case PerturbationOp::kChangeNetworkEdgeWeight: return "ChangeNetworkEdgeWeight";
    case PerturbationOp::kChangeTaskWeight: return "ChangeTaskWeight";
    case PerturbationOp::kChangeDependencyWeight: return "ChangeDependencyWeight";
    case PerturbationOp::kAddDependency: return "AddDependency";
    case PerturbationOp::kRemoveDependency: return "RemoveDependency";
  }
  return "?";
}

PerturbationConfig PerturbationConfig::generic() { return {}; }

namespace {

/// Nudges `value` by a uniform delta in ±range.step(), clamped into range.
double nudge(double value, const WeightRange& range, Rng& rng) {
  const double delta = rng.uniform(-range.step(), range.step());
  return range.clamp(value + delta);
}

bool apply_op(ProblemInstance& inst, PerturbationOp op, const PerturbationConfig& config,
              Rng& rng, AppliedPerturbation& record) {
  auto& g = inst.graph;
  auto& net = inst.network;
  record.op = op;
  switch (op) {
    case PerturbationOp::kChangeNetworkNodeWeight: {
      if (net.node_count() == 0) return false;
      const auto v = static_cast<NodeId>(rng.index(net.node_count()));
      record.a = v;
      record.before = net.speed(v);
      record.after = nudge(record.before, config.node_speed, rng);
      net.set_speed(v, record.after);
      return true;
    }
    case PerturbationOp::kChangeNetworkEdgeWeight: {
      if (net.node_count() < 2) return false;
      // Uniform non-self unordered pair.
      const auto a = static_cast<NodeId>(rng.index(net.node_count()));
      auto b = static_cast<NodeId>(rng.index(net.node_count() - 1));
      if (b >= a) ++b;
      record.a = a;
      record.b = b;
      record.before = net.strength(a, b);
      record.after = nudge(record.before, config.link_strength, rng);
      net.set_strength(a, b, record.after);
      return true;
    }
    case PerturbationOp::kChangeTaskWeight: {
      if (g.task_count() == 0) return false;
      const auto t = static_cast<TaskId>(rng.index(g.task_count()));
      record.a = t;
      record.before = g.cost(t);
      record.after = nudge(record.before, config.task_cost, rng);
      g.set_cost(t, record.after);
      return true;
    }
    case PerturbationOp::kChangeDependencyWeight: {
      if (g.dependency_count() == 0) return false;
      const auto [from, to] = g.dependency_at(rng.index(g.dependency_count()));
      record.a = from;
      record.b = to;
      record.before = g.dependency_cost(from, to);
      record.after = nudge(record.before, config.dependency_cost, rng);
      g.set_dependency_cost(from, to, record.after);
      return true;
    }
    case PerturbationOp::kAddDependency: {
      if (g.task_count() < 2) return false;
      // "Select a task t uniformly at random and add a dependency from t to
      // a uniformly random task t' such that (t, t') is absent and acyclic."
      const auto from = static_cast<TaskId>(rng.index(g.task_count()));
      // (from, to) closes a cycle iff `from` is reachable from `to`, i.e.
      // iff `to` is an ancestor of `from` (or `from` itself). One
      // predecessor-side DFS from `from` marks every such target at once —
      // the same exclusion set `would_create_cycle(from, to)` computes one
      // probe at a time. Thread-local scratch keeps this allocation-free.
      static thread_local std::vector<char> blocked;
      static thread_local std::vector<TaskId> stack;
      static thread_local std::vector<TaskId> candidates;
      blocked.assign(g.task_count(), 0);
      stack.clear();
      blocked[from] = 1;
      stack.push_back(from);
      while (!stack.empty()) {
        const TaskId cur = stack.back();
        stack.pop_back();
        for (TaskId p : g.predecessors(cur)) {
          if (blocked[p] == 0) {
            blocked[p] = 1;
            stack.push_back(p);
          }
        }
      }
      candidates.clear();
      for (TaskId to = 0; to < g.task_count(); ++to) {
        if (blocked[to] != 0 || g.has_dependency(from, to)) continue;
        candidates.push_back(to);
      }
      if (candidates.empty()) return false;
      const TaskId to = candidates[rng.index(candidates.size())];
      const double cost = rng.uniform(config.dependency_cost.lo, config.dependency_cost.hi);
      record.a = from;
      record.b = to;
      record.after = cost;
      // The candidate sweep above already established absence + acyclicity.
      g.add_dependency_unchecked(from, to, cost);
      return true;
    }
    case PerturbationOp::kRemoveDependency: {
      if (g.dependency_count() == 0) return false;
      const auto [from, to] = g.dependency_at(rng.index(g.dependency_count()));
      record.a = from;
      record.b = to;
      record.before = g.dependency_cost(from, to);
      return g.remove_dependency(from, to);
    }
  }
  return false;
}

std::optional<AppliedPerturbation> pick_and_apply(ProblemInstance& inst,
                                                  const PerturbationConfig& config, Rng& rng) {
  // Small fixed-capacity op list: no allocation on the annealing hot path.
  std::array<PerturbationOp, kPerturbationOpCount> enabled{};
  std::size_t enabled_count = 0;
  for (std::size_t i = 0; i < kPerturbationOpCount; ++i) {
    if (config.enabled[i]) enabled[enabled_count++] = static_cast<PerturbationOp>(i);
  }
  // Pick uniformly among enabled ops; if the chosen op is inapplicable
  // (e.g. RemoveDependency on an edgeless graph), retry among the rest.
  AppliedPerturbation record;
  while (enabled_count > 0) {
    const std::size_t pick = rng.index(enabled_count);
    const PerturbationOp op = enabled[pick];
    if (apply_op(inst, op, config, rng, record)) return record;
    for (std::size_t i = pick + 1; i < enabled_count; ++i) enabled[i - 1] = enabled[i];
    --enabled_count;
  }
  return std::nullopt;
}

}  // namespace

std::optional<PerturbationOp> perturb_in_place(ProblemInstance& inst,
                                               const PerturbationConfig& config, Rng& rng) {
  const auto applied = pick_and_apply(inst, config, rng);
  if (!applied.has_value()) return std::nullopt;
  return applied->op;
}

std::optional<AppliedPerturbation> perturb_in_place_recorded(ProblemInstance& inst,
                                                             const PerturbationConfig& config,
                                                             Rng& rng) {
  return pick_and_apply(inst, config, rng);
}

void undo_perturbation(ProblemInstance& inst, const AppliedPerturbation& p) {
  switch (p.op) {
    case PerturbationOp::kChangeNetworkNodeWeight:
      inst.network.set_speed(p.a, p.before);
      break;
    case PerturbationOp::kChangeNetworkEdgeWeight:
      inst.network.set_strength(p.a, p.b, p.before);
      break;
    case PerturbationOp::kChangeTaskWeight:
      inst.graph.set_cost(p.a, p.before);
      break;
    case PerturbationOp::kChangeDependencyWeight:
      inst.graph.set_dependency_cost(p.a, p.b, p.before);
      break;
    case PerturbationOp::kAddDependency:
      inst.graph.remove_dependency(p.a, p.b);
      break;
    case PerturbationOp::kRemoveDependency:
      // Sorted adjacency makes re-adding exact: the lists come back
      // identical to their pre-removal state, not appended-at-the-end.
      // Unchecked is safe — re-adding restores the original acyclic graph.
      inst.graph.add_dependency_unchecked(p.a, p.b, p.before);
      break;
  }
}

void redo_perturbation(ProblemInstance& inst, const AppliedPerturbation& p) {
  switch (p.op) {
    case PerturbationOp::kChangeNetworkNodeWeight:
      inst.network.set_speed(p.a, p.after);
      break;
    case PerturbationOp::kChangeNetworkEdgeWeight:
      inst.network.set_strength(p.a, p.b, p.after);
      break;
    case PerturbationOp::kChangeTaskWeight:
      inst.graph.set_cost(p.a, p.after);
      break;
    case PerturbationOp::kChangeDependencyWeight:
      inst.graph.set_dependency_cost(p.a, p.b, p.after);
      break;
    case PerturbationOp::kAddDependency:
      // Replays an edge that was validated when first applied to this state.
      inst.graph.add_dependency_unchecked(p.a, p.b, p.after);
      break;
    case PerturbationOp::kRemoveDependency:
      inst.graph.remove_dependency(p.a, p.b);
      break;
  }
}

PerturbationResult perturb(const ProblemInstance& inst, const PerturbationConfig& config,
                           Rng& rng) {
  PerturbationResult result{inst, std::nullopt};
  result.applied = perturb_in_place(result.instance, config, rng);
  return result;
}

}  // namespace saga::pisa
