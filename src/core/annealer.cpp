#include "core/annealer.hpp"

#include <cmath>
#include <utility>

#include "core/constraints.hpp"
#include "sched/arena.hpp"

namespace saga::pisa {

double makespan_ratio(const Scheduler& target, const Scheduler& baseline,
                      const ProblemInstance& inst, TimelineArena* arena) {
  const double m_target = target.schedule(inst, arena).makespan();
  const double m_baseline = baseline.schedule(inst, arena).makespan();
  if (m_baseline == 0.0) {
    return m_target == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return m_target / m_baseline;
}

AnnealResult anneal_objective(const ArenaObjective& objective, const ProblemInstance& initial,
                              const PerturbationConfig& config, const AnnealingParams& params,
                              std::uint64_t seed, TimelineArena* arena) {
  Rng rng(seed);
  TimelineArena run_arena;
  TimelineArena& eval_arena = arena != nullptr ? *arena : run_arena;

  AnnealResult result;
  // Two persistent instance buffers ping-pong across the whole run via
  // pointer swap (no container moves, so no re-stamping): each step
  // copy-assigns current into the candidate buffer — reusing its vectors'
  // capacity — and perturbs it in place. A step only allocates when the
  // graph grows.
  ProblemInstance buffer_a = initial;
  ProblemInstance buffer_b;
  ProblemInstance* current = &buffer_a;
  ProblemInstance* candidate = &buffer_b;

  double current_ratio = objective(*current, eval_arena);
  result.best_instance = *current;
  result.best_ratio = current_ratio;
  result.initial_ratio = current_ratio;

  if (params.record_trace) result.trace.reserve(params.max_iterations);

  double temperature = params.t_max;
  std::size_t iteration = 0;
  while (temperature > params.t_min && iteration < params.max_iterations) {
    *candidate = *current;
    const auto applied = perturb_in_place(*candidate, config, rng);
    const double candidate_ratio =
        applied.has_value() ? objective(*candidate, eval_arena) : current_ratio;
    const double ratio_before = current_ratio;

    if (candidate_ratio > result.best_ratio) {
      // Algorithm 1 line 6-7: improving candidates update the best solution
      // (and become the current state).
      result.best_instance = *candidate;
      result.best_ratio = candidate_ratio;
      std::swap(current, candidate);
      current_ratio = candidate_ratio;
      ++result.improved;
    } else if (candidate_ratio >= current_ratio) {
      // Better than (or equal to) the current state, though not a new best:
      // always accept, as in standard simulated annealing (Algorithm 1
      // leaves this case implicit).
      std::swap(current, candidate);
      current_ratio = candidate_ratio;
    } else {
      double accept_probability = 0.0;
      switch (params.acceptance) {
        case AnnealingParams::AcceptanceRule::kPaper: {
          // Algorithm 1 line 9: exp(-(M'/M_best)/T). With an infinite best
          // ratio the exponent underflows to exp(0) = 1; guard explicitly.
          const double rel = std::isinf(result.best_ratio) || result.best_ratio == 0.0
                                 ? 1.0
                                 : candidate_ratio / result.best_ratio;
          accept_probability = std::exp(-rel / temperature);
          break;
        }
        case AnnealingParams::AcceptanceRule::kMetropolis: {
          // Classic rule on the relative decrease from the *current* state.
          if (current_ratio > 0.0 && std::isfinite(current_ratio)) {
            const double decrease = (current_ratio - candidate_ratio) / current_ratio;
            accept_probability = std::exp(-decrease / temperature);
          }
          break;
        }
      }
      if (rng.bernoulli(accept_probability)) {
        std::swap(current, candidate);
        current_ratio = candidate_ratio;
        ++result.accepted;
      }
    }

    if (params.record_trace) {
      result.trace.push_back({iteration, temperature, candidate_ratio, current_ratio,
                              result.best_ratio, current_ratio != ratio_before});
    }
    temperature *= params.alpha;
    ++iteration;
  }
  result.iterations = iteration;
  return result;
}

AnnealResult anneal_objective(const InstanceObjective& objective, const ProblemInstance& initial,
                              const PerturbationConfig& config, const AnnealingParams& params,
                              std::uint64_t seed, TimelineArena* arena) {
  return anneal_objective(
      [&](const ProblemInstance& inst, TimelineArena&) { return objective(inst); }, initial,
      config, params, seed, arena);
}

AnnealResult anneal(const Scheduler& target, const Scheduler& baseline,
                    const ProblemInstance& initial, const PerturbationConfig& config,
                    const AnnealingParams& params, std::uint64_t seed, TimelineArena* arena) {
  return anneal_objective(
      [&](const ProblemInstance& inst, TimelineArena& eval) {
        return makespan_ratio(target, baseline, inst, &eval);
      },
      initial, config, params, seed, arena);
}

ProblemInstance random_chain_instance(std::uint64_t seed) {
  Rng rng(seed);
  ProblemInstance inst;

  const auto n_nodes = static_cast<std::size_t>(rng.uniform_int(3, 5));
  inst.network = Network(n_nodes);
  // Uniform weights in (0, 1]: floor at the division-safety epsilon.
  const auto net_weight = [&] { return std::max(rng.uniform(), 1e-3); };
  for (NodeId v = 0; v < n_nodes; ++v) inst.network.set_speed(v, net_weight());
  for (NodeId a = 0; a < n_nodes; ++a) {
    for (NodeId b = a + 1; b < n_nodes; ++b) inst.network.set_strength(a, b, net_weight());
  }

  const auto n_tasks = rng.uniform_int(3, 5);
  TaskId prev = inst.graph.add_task(rng.uniform());
  for (std::int64_t i = 1; i < n_tasks; ++i) {
    const TaskId cur = inst.graph.add_task(rng.uniform());
    inst.graph.add_dependency(prev, cur, rng.uniform());
    prev = cur;
  }
  return inst;
}

AnnealResult run_pisa(const Scheduler& target, const Scheduler& baseline,
                      const PisaOptions& options, std::uint64_t seed, TimelineArena* arena) {
  // Honour the pair's combined homogeneity constraints.
  const auto reqs = combine(target.requirements(), baseline.requirements());
  PerturbationConfig config = options.config;
  apply_requirements(config, reqs);

  // One arena serves every restart of this call (per-thread when driven by
  // pairwise_compare).
  TimelineArena run_arena;
  TimelineArena* eval_arena = arena != nullptr ? arena : &run_arena;

  AnnealResult best;
  best.best_ratio = -std::numeric_limits<double>::infinity();
  for (std::size_t run = 0; run < options.restarts; ++run) {
    const std::uint64_t run_seed = derive_seed(seed, {0x9155aULL, run});
    ProblemInstance initial = options.make_initial
                                  ? options.make_initial(derive_seed(run_seed, {0x1417ULL}))
                                  : random_chain_instance(derive_seed(run_seed, {0x1417ULL}));
    normalize_instance(initial, reqs);
    AnnealResult result = anneal(target, baseline, initial, config, options.params,
                                 derive_seed(run_seed, {0xa22eaULL}), eval_arena);
    if (result.best_ratio > best.best_ratio) best = std::move(result);
  }
  return best;
}

}  // namespace saga::pisa
