#include "core/annealer.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/constraints.hpp"
#include "sched/arena.hpp"

namespace saga::pisa {

double makespan_ratio(const Scheduler& target, const Scheduler& baseline,
                      const ProblemInstance& inst, TimelineArena* arena) {
  // plan_makespan is bit-identical to schedule(...).makespan() but skips
  // materializing the Schedule — two fewer allocations per PISA step.
  const double m_target = target.plan_makespan(inst, arena);
  const double m_baseline = baseline.plan_makespan(inst, arena);
  if (m_baseline == 0.0) {
    return m_target == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return m_target / m_baseline;
}

namespace {

/// Acceptance probability for a strictly worse candidate (Algorithm 1 line
/// 9, or the Metropolis ablation).
double acceptance_probability(const AnnealingParams& params, double candidate_ratio,
                              double current_ratio, double best_ratio, double temperature) {
  switch (params.acceptance) {
    case AnnealingParams::AcceptanceRule::kPaper: {
      // Algorithm 1 line 9: exp(-(M'/M_best)/T). With an infinite best
      // ratio the exponent underflows to exp(0) = 1; guard explicitly.
      const double rel = std::isinf(best_ratio) || best_ratio == 0.0
                             ? 1.0
                             : candidate_ratio / best_ratio;
      return std::exp(-rel / temperature);
    }
    case AnnealingParams::AcceptanceRule::kMetropolis: {
      // Classic rule on the relative decrease from the *current* state.
      if (current_ratio > 0.0 && std::isfinite(current_ratio)) {
        const double decrease = (current_ratio - candidate_ratio) / current_ratio;
        return std::exp(-decrease / temperature);
      }
      return 0.0;
    }
  }
  return 0.0;
}

/// Propagates a recorded perturbation into the arena's cached view without
/// a table refresh: weight operators overwrite the one changed weight in
/// the packed tables, structural operators splice the one edge in or out of
/// the CSR arrays, and the new stamps are adopted — so the next
/// evaluation's sync is a no-op. The patched view is bit-identical to a
/// freshly synced one (see InstanceView::patch_*).
void patch_view_apply(InstanceView& view, const ProblemInstance& inst,
                      const AppliedPerturbation& p) {
  switch (p.op) {
    case PerturbationOp::kChangeNetworkNodeWeight:
      view.patch_node_speed(inst, p.a, p.after);
      break;
    case PerturbationOp::kChangeNetworkEdgeWeight:
      view.patch_link_strength(inst, p.a, p.b, p.after);
      break;
    case PerturbationOp::kChangeTaskWeight:
      view.patch_task_cost(inst, p.a, p.after);
      break;
    case PerturbationOp::kChangeDependencyWeight:
      view.patch_dependency_cost(inst, p.a, p.b, p.after);
      break;
    case PerturbationOp::kAddDependency:
      view.patch_add_dependency(inst, p.a, p.b, p.after);
      break;
    case PerturbationOp::kRemoveDependency:
      view.patch_remove_dependency(inst, p.a, p.b);
      break;
  }
}

/// The inverse: propagates `undo_perturbation(inst, p)` into the view.
void patch_view_undo(InstanceView& view, const ProblemInstance& inst,
                     const AppliedPerturbation& p) {
  switch (p.op) {
    case PerturbationOp::kChangeNetworkNodeWeight:
      view.patch_node_speed(inst, p.a, p.before);
      break;
    case PerturbationOp::kChangeNetworkEdgeWeight:
      view.patch_link_strength(inst, p.a, p.b, p.before);
      break;
    case PerturbationOp::kChangeTaskWeight:
      view.patch_task_cost(inst, p.a, p.before);
      break;
    case PerturbationOp::kChangeDependencyWeight:
      view.patch_dependency_cost(inst, p.a, p.b, p.before);
      break;
    case PerturbationOp::kAddDependency:
      view.patch_remove_dependency(inst, p.a, p.b);
      break;
    case PerturbationOp::kRemoveDependency:
      view.patch_add_dependency(inst, p.a, p.b, p.before);
      break;
  }
}

/// The sequential (batch == 1) path: Algorithm 1 with one interleaved RNG
/// stream, byte-identical to the pre-batch annealer. Templated on the
/// objective so the scheduler-pair entry point (`anneal`) runs without a
/// std::function indirection per step.
template <class Objective>
AnnealResult anneal_sequential(const Objective& objective, const ProblemInstance& initial,
                               const PerturbationConfig& config, const AnnealingParams& params,
                               std::uint64_t seed, TimelineArena* arena) {
  Rng rng(seed);
  TimelineArena run_arena;
  TimelineArena& eval_arena = arena != nullptr ? *arena : run_arena;

  AnnealResult result;
  // One persistent working instance holds the current state. Each step
  // perturbs it in place and records the change; a rejected candidate is
  // rolled back by inverting the record instead of restoring from a copy,
  // so the loop never copy-assigns the instance. Both shortcuts are
  // bit-exact: undo restores weights and adjacency byte for byte (see
  // AppliedPerturbation), and when a perturbation provably left the
  // instance unchanged (a clamped nudge landing back on the old value) the
  // skipped re-evaluation would have returned exactly current_ratio.
  ProblemInstance state = initial;

  double current_ratio = objective(state, eval_arena);
  result.evaluations = 1;
  result.best_instance = state;
  result.best_ratio = current_ratio;
  result.initial_ratio = current_ratio;

  if (params.record_trace) result.trace.reserve(params.max_iterations);

  double temperature = params.t_max;
  std::size_t iteration = 0;
  while (temperature > params.t_min && iteration < params.max_iterations) {
    // When the arena's view tracks the current state, the perturbation is
    // propagated into it directly (patch_view_apply) instead of letting the
    // next sync re-derive whole tables from the instance — the two are
    // bit-identical, and the patch touches only what changed.
    const bool view_synced = eval_arena.view().in_sync_with(state);
    const auto applied = perturb_in_place_recorded(state, config, rng);
    if (applied.has_value() && view_synced) {
      patch_view_apply(eval_arena.view(), state, *applied);
    }
    double candidate_ratio = current_ratio;
    if (applied.has_value() && applied->changed()) {
      candidate_ratio = objective(state, eval_arena);
      ++result.evaluations;
    }
    const double ratio_before = current_ratio;

    if (candidate_ratio > result.best_ratio) {
      // Algorithm 1 line 6-7: improving candidates update the best solution
      // (and become the current state).
      result.best_instance = state;
      result.best_ratio = candidate_ratio;
      current_ratio = candidate_ratio;
      ++result.improved;
    } else if (candidate_ratio >= current_ratio) {
      // Better than (or equal to) the current state, though not a new best:
      // always accept, as in standard simulated annealing (Algorithm 1
      // leaves this case implicit).
      current_ratio = candidate_ratio;
    } else {
      const double accept_probability = acceptance_probability(
          params, candidate_ratio, current_ratio, result.best_ratio, temperature);
      if (rng.bernoulli(accept_probability)) {
        current_ratio = candidate_ratio;
        ++result.accepted;
      } else if (applied.has_value()) {
        const bool synced = eval_arena.view().in_sync_with(state);
        undo_perturbation(state, *applied);
        if (synced) patch_view_undo(eval_arena.view(), state, *applied);
      }
    }

    if (params.record_trace) {
      result.trace.push_back({iteration, temperature, candidate_ratio, current_ratio,
                              result.best_ratio, current_ratio != ratio_before});
    }
    temperature *= params.alpha;
    ++iteration;
  }
  result.iterations = iteration;
  return result;
}

/// The batched (batch == K > 1) path: K candidates per step against the
/// shared immutable current state, annealing on the best of them. See
/// AnnealingParams::batch for the seed-derivation contract.
template <class Objective>
AnnealResult anneal_batch(const Objective& objective, const ProblemInstance& initial,
                          const PerturbationConfig& config, const AnnealingParams& params,
                          std::uint64_t seed) {
  const std::size_t k_slots = params.batch;
  Rng accept_rng(derive_seed(seed, {0xacc9ULL}));

  // Slot k always evaluates buffer k on arena k, whether the slots run
  // serially or on a pool: the result depends only on (seed, K), never on
  // the thread count or scheduling order.
  std::vector<TimelineArena> arenas(k_slots);
  std::vector<ProblemInstance> buffers(k_slots);
  std::vector<double> ratios(k_slots, 0.0);
  std::vector<char> evaluated(k_slots, 0);

  AnnealResult result;
  ProblemInstance current = initial;
  double current_ratio = objective(current, arenas[0]);
  result.evaluations = 1;
  result.best_instance = current;
  result.best_ratio = current_ratio;
  result.initial_ratio = current_ratio;

  if (params.record_trace) result.trace.reserve(params.max_iterations);

  double temperature = params.t_max;
  std::size_t iteration = 0;
  while (temperature > params.t_min && iteration < params.max_iterations) {
    const std::size_t step = iteration;
    const auto eval_slot = [&](std::size_t k) {
      // Copy-assign reuses the buffer's capacity; `current` is only read
      // concurrently.
      buffers[k] = current;
      Rng slot_rng(derive_seed(seed, {0xba7cULL, step, k}));
      const auto applied = perturb_in_place_recorded(buffers[k], config, slot_rng);
      if (applied.has_value() && applied->changed()) {
        ratios[k] = objective(buffers[k], arenas[k]);
        evaluated[k] = 1;
      } else {
        ratios[k] = current_ratio;
        evaluated[k] = 0;
      }
    };
    if (params.pool != nullptr) {
      params.pool->parallel_for(k_slots, eval_slot);
    } else {
      for (std::size_t k = 0; k < k_slots; ++k) eval_slot(k);
    }
    for (std::size_t k = 0; k < k_slots; ++k) {
      if (evaluated[k] != 0) ++result.evaluations;
    }

    // Winner: highest ratio, lowest slot index on ties.
    std::size_t winner = 0;
    for (std::size_t k = 1; k < k_slots; ++k) {
      if (ratios[k] > ratios[winner]) winner = k;
    }
    const double candidate_ratio = ratios[winner];
    const double ratio_before = current_ratio;

    if (candidate_ratio > result.best_ratio) {
      result.best_instance = buffers[winner];
      result.best_ratio = candidate_ratio;
      current = buffers[winner];
      current_ratio = candidate_ratio;
      ++result.improved;
    } else if (candidate_ratio >= current_ratio) {
      current = buffers[winner];
      current_ratio = candidate_ratio;
    } else {
      const double accept_probability = acceptance_probability(
          params, candidate_ratio, current_ratio, result.best_ratio, temperature);
      if (accept_rng.bernoulli(accept_probability)) {
        current = buffers[winner];
        current_ratio = candidate_ratio;
        ++result.accepted;
      }
    }

    if (params.record_trace) {
      result.trace.push_back({iteration, temperature, candidate_ratio, current_ratio,
                              result.best_ratio, current_ratio != ratio_before});
    }
    temperature *= params.alpha;
    ++iteration;
  }
  result.iterations = iteration;
  return result;
}

/// Dispatches on params.batch; templated so concrete objectives (the
/// scheduler pair in `anneal`) skip std::function entirely.
template <class Objective>
AnnealResult anneal_impl(const Objective& objective, const ProblemInstance& initial,
                         const PerturbationConfig& config, const AnnealingParams& params,
                         std::uint64_t seed, TimelineArena* arena) {
  if (params.batch > 1) {
    // Batch slots evaluate on their own dedicated arenas (a caller-provided
    // arena cannot be shared across concurrent slots).
    return anneal_batch(objective, initial, config, params, seed);
  }
  return anneal_sequential(objective, initial, config, params, seed, arena);
}

}  // namespace

AnnealResult anneal_objective(const ArenaObjective& objective, const ProblemInstance& initial,
                              const PerturbationConfig& config, const AnnealingParams& params,
                              std::uint64_t seed, TimelineArena* arena) {
  return anneal_impl(objective, initial, config, params, seed, arena);
}

AnnealResult anneal_objective(const InstanceObjective& objective, const ProblemInstance& initial,
                              const PerturbationConfig& config, const AnnealingParams& params,
                              std::uint64_t seed, TimelineArena* arena) {
  return anneal_objective(
      [&](const ProblemInstance& inst, TimelineArena&) { return objective(inst); }, initial,
      config, params, seed, arena);
}

AnnealResult anneal(const Scheduler& target, const Scheduler& baseline,
                    const ProblemInstance& initial, const PerturbationConfig& config,
                    const AnnealingParams& params, std::uint64_t seed, TimelineArena* arena) {
  // Concrete lambda straight into the template: the per-step objective call
  // is direct (two virtual plan_makespan calls), not a std::function hop.
  const auto objective = [&](const ProblemInstance& inst, TimelineArena& eval) {
    return makespan_ratio(target, baseline, inst, &eval);
  };
  return anneal_impl(objective, initial, config, params, seed, arena);
}

ProblemInstance random_chain_instance(std::uint64_t seed) {
  Rng rng(seed);
  ProblemInstance inst;

  const auto n_nodes = static_cast<std::size_t>(rng.uniform_int(3, 5));
  inst.network = Network(n_nodes);
  // Uniform weights in (0, 1]: floor at the division-safety epsilon.
  const auto net_weight = [&] { return std::max(rng.uniform(), 1e-3); };
  for (NodeId v = 0; v < n_nodes; ++v) inst.network.set_speed(v, net_weight());
  for (NodeId a = 0; a < n_nodes; ++a) {
    for (NodeId b = a + 1; b < n_nodes; ++b) inst.network.set_strength(a, b, net_weight());
  }

  const auto n_tasks = rng.uniform_int(3, 5);
  TaskId prev = inst.graph.add_task(rng.uniform());
  for (std::int64_t i = 1; i < n_tasks; ++i) {
    const TaskId cur = inst.graph.add_task(rng.uniform());
    inst.graph.add_dependency(prev, cur, rng.uniform());
    prev = cur;
  }
  return inst;
}

AnnealResult run_pisa(const Scheduler& target, const Scheduler& baseline,
                      const PisaOptions& options, std::uint64_t seed, TimelineArena* arena) {
  // Honour the pair's combined homogeneity constraints.
  const auto reqs = combine(target.requirements(), baseline.requirements());
  PerturbationConfig config = options.config;
  apply_requirements(config, reqs);

  // One arena serves every restart of this call (per-thread when driven by
  // pairwise_compare).
  TimelineArena run_arena;
  TimelineArena* eval_arena = arena != nullptr ? arena : &run_arena;

  AnnealResult best;
  best.best_ratio = -std::numeric_limits<double>::infinity();
  for (std::size_t run = 0; run < options.restarts; ++run) {
    const std::uint64_t run_seed = derive_seed(seed, {0x9155aULL, run});
    ProblemInstance initial = options.make_initial
                                  ? options.make_initial(derive_seed(run_seed, {0x1417ULL}))
                                  : random_chain_instance(derive_seed(run_seed, {0x1417ULL}));
    normalize_instance(initial, reqs);
    AnnealResult result = anneal(target, baseline, initial, config, options.params,
                                 derive_seed(run_seed, {0xa22eaULL}), eval_arena);
    if (result.best_ratio > best.best_ratio) best = std::move(result);
  }
  return best;
}

}  // namespace saga::pisa
