#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "common/rng.hpp"
#include "graph/problem_instance.hpp"

/// \file perturbation.hpp
/// The PERTURB step of PISA (paper Section VI): one of six operators chosen
/// uniformly at random among those enabled, each nudging a weight by a
/// uniform delta or toggling a dependency. The application-specific variant
/// (Section VII) reuses the same machinery with different weight ranges and
/// with the structural operators disabled.

namespace saga::pisa {

enum class PerturbationOp : std::uint8_t {
  kChangeNetworkNodeWeight = 0,
  kChangeNetworkEdgeWeight,
  kChangeTaskWeight,
  kChangeDependencyWeight,
  kAddDependency,
  kRemoveDependency,
};

inline constexpr std::size_t kPerturbationOpCount = 6;

[[nodiscard]] std::string_view to_string(PerturbationOp op);

/// Closed weight range [lo, hi] a perturbed weight is clamped into.
struct WeightRange {
  double lo = 0.0;
  double hi = 1.0;

  [[nodiscard]] double clamp(double x) const { return x < lo ? lo : (x > hi ? hi : x); }
  /// Step size: the paper perturbs by a uniform delta in ±1/10 of the unit
  /// range; for scaled ranges the delta scales with the span.
  [[nodiscard]] double step() const { return (hi - lo) / 10.0; }
};

/// Configuration of the PERTURB function.
struct PerturbationConfig {
  /// Which of the six operators may fire. Section VI enables all six;
  /// Section VII disables network-edge and structural changes.
  std::array<bool, kPerturbationOpCount> enabled = {true, true, true, true, true, true};

  /// Weight ranges. Section VI uses [0, 1] everywhere (network weights with
  /// a small positive floor to keep makespans finite); Section VII scales
  /// these to the ranges observed in execution traces.
  WeightRange node_speed{1e-3, 1.0};
  WeightRange link_strength{1e-3, 1.0};
  WeightRange task_cost{0.0, 1.0};
  WeightRange dependency_cost{0.0, 1.0};

  /// Enables/disables an operator.
  void set_enabled(PerturbationOp op, bool value) {
    enabled[static_cast<std::size_t>(op)] = value;
  }
  [[nodiscard]] bool is_enabled(PerturbationOp op) const {
    return enabled[static_cast<std::size_t>(op)];
  }

  /// The paper's Section VI defaults.
  [[nodiscard]] static PerturbationConfig generic();
};

/// Applies one random perturbation (drawn uniformly among the enabled,
/// currently applicable operators) to a copy of the instance. Returns the
/// operator applied alongside the new instance; returns std::nullopt for
/// the op if no operator was applicable (the instance copy is unchanged).
struct PerturbationResult {
  ProblemInstance instance;
  std::optional<PerturbationOp> applied;
};

[[nodiscard]] PerturbationResult perturb(const ProblemInstance& inst,
                                         const PerturbationConfig& config, Rng& rng);

/// Same operator selection and RNG stream as `perturb`, but mutates `inst`
/// directly instead of copying — the annealer's hot path reuses one
/// candidate buffer across steps this way. Returns the operator applied, or
/// std::nullopt if none was applicable (the instance is then unchanged).
std::optional<PerturbationOp> perturb_in_place(ProblemInstance& inst,
                                               const PerturbationConfig& config, Rng& rng);

/// A fully-applied perturbation, recorded with enough detail to invert or
/// replay it exactly. Every operator is bit-exactly reversible: weight ops
/// restore the previous value, and the graph keeps its adjacency lists
/// sorted at all times (add re-sorts, remove erases in place), so the
/// adjacency state is a pure function of the edge set — removing an added
/// edge, or re-adding a removed one with its old cost, reproduces the
/// original lists byte for byte.
struct AppliedPerturbation {
  PerturbationOp op{};
  /// Endpoints: the node (weight ops on nodes), the task (task weight), or
  /// the (from, to) pair (dependency ops). NodeId and TaskId share the
  /// representation.
  TaskId a = 0;
  TaskId b = 0;
  double before = 0.0;  ///< weight before the change (weight ops, removed-edge cost)
  double after = 0.0;   ///< weight after the change (weight ops, added-edge cost)

  /// True when applying the perturbation altered the instance. A weight
  /// nudge whose clamp lands back on the old value applies successfully but
  /// leaves the instance — and therefore any objective of it — unchanged;
  /// the annealer uses this to skip re-evaluation entirely.
  [[nodiscard]] bool changed() const {
    return op == PerturbationOp::kAddDependency ||
           op == PerturbationOp::kRemoveDependency || before != after;
  }
};

/// Exactly `perturb_in_place` — same operator selection, same RNG stream,
/// same mutations — but returns the record needed for undo/redo.
std::optional<AppliedPerturbation> perturb_in_place_recorded(ProblemInstance& inst,
                                                             const PerturbationConfig& config,
                                                             Rng& rng);

/// Inverts a recorded perturbation. `inst` must be in the exact state the
/// perturbation left it in; afterwards it is bit-identical to the state
/// before the perturbation was applied.
void undo_perturbation(ProblemInstance& inst, const AppliedPerturbation& p);

/// Re-applies a recorded perturbation (no RNG). `inst` must be in the exact
/// pre-perturbation state; afterwards it is bit-identical to the state the
/// original application produced.
void redo_perturbation(ProblemInstance& inst, const AppliedPerturbation& p);

}  // namespace saga::pisa
