#pragma once

#include "core/perturbation.hpp"
#include "sched/scheduler.hpp"

/// \file constraints.hpp
/// Homogeneity constraints PISA honours for schedulers that were designed
/// for restricted network models (paper Section VI): "For ETF, FCP, and FLB,
/// we set all node weights to be 1 initially and do not allow them to be
/// changed. For BIL, GDL, FCP, and FLB we set all communication link
/// weights to be 1 initially and do not allow them to be changed." When
/// comparing a pair of schedulers, the union of both schedulers'
/// requirements applies.

namespace saga::pisa {

/// Removes the disallowed perturbation ops from `config` for a comparison
/// between schedulers with the given (combined) requirements.
void apply_requirements(PerturbationConfig& config, const NetworkRequirements& reqs);

/// Union of two requirement sets.
[[nodiscard]] NetworkRequirements combine(const NetworkRequirements& a,
                                          const NetworkRequirements& b);

/// Normalises an initial instance for the given requirements: sets all node
/// speeds and/or link strengths to 1 where homogeneity is required.
void normalize_instance(ProblemInstance& inst, const NetworkRequirements& reqs);

}  // namespace saga::pisa
