#include "core/constraints.hpp"

namespace saga::pisa {

void apply_requirements(PerturbationConfig& config, const NetworkRequirements& reqs) {
  if (reqs.homogeneous_node_speeds) {
    config.set_enabled(PerturbationOp::kChangeNetworkNodeWeight, false);
  }
  if (reqs.homogeneous_link_strengths) {
    config.set_enabled(PerturbationOp::kChangeNetworkEdgeWeight, false);
  }
}

NetworkRequirements combine(const NetworkRequirements& a, const NetworkRequirements& b) {
  return {
      .homogeneous_node_speeds = a.homogeneous_node_speeds || b.homogeneous_node_speeds,
      .homogeneous_link_strengths =
          a.homogeneous_link_strengths || b.homogeneous_link_strengths,
  };
}

void normalize_instance(ProblemInstance& inst, const NetworkRequirements& reqs) {
  if (reqs.homogeneous_node_speeds) {
    for (NodeId v = 0; v < inst.network.node_count(); ++v) inst.network.set_speed(v, 1.0);
  }
  if (reqs.homogeneous_link_strengths) {
    for (NodeId a = 0; a < inst.network.node_count(); ++a) {
      for (NodeId b = a + 1; b < inst.network.node_count(); ++b) {
        inst.network.set_strength(a, b, 1.0);
      }
    }
  }
}

}  // namespace saga::pisa
