#include "core/pairwise.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sched/arena.hpp"
#include "sched/registry.hpp"

namespace saga::pisa {

std::vector<double> PairwiseResult::worst_per_target() const {
  const std::size_t n = scheduler_names.size();
  std::vector<double> worst(n, -std::numeric_limits<double>::infinity());
  for (std::size_t col = 0; col < n; ++col) {
    for (std::size_t row = 0; row < n; ++row) {
      const double r = ratio[row][col];
      if (!std::isnan(r) && r > worst[col]) worst[col] = r;
    }
  }
  return worst;
}

CellSeeds pairwise_cell_seeds(std::uint64_t seed, std::size_t baseline_row,
                              std::size_t target_col) {
  return {derive_seed(seed, {0x7a26e7ULL, baseline_row, target_col}),
          derive_seed(seed, {0xba5eULL, baseline_row, target_col}),
          derive_seed(seed, {0xce11ULL, baseline_row, target_col})};
}

PairwiseResult pairwise_compare(const std::vector<std::string>& scheduler_names,
                                const PairwiseOptions& options, std::uint64_t seed) {
  const std::size_t n = scheduler_names.size();
  PairwiseResult result;
  result.scheduler_names = scheduler_names;
  result.ratio.assign(n, std::vector<double>(n, std::numeric_limits<double>::quiet_NaN()));
  result.best_instance.assign(n, std::vector<ProblemInstance>(n));

  // Flatten the off-diagonal cells into a work list.
  struct Cell {
    std::size_t row;  // baseline
    std::size_t col;  // target
  };
  std::vector<Cell> cells;
  cells.reserve(n * (n - 1));
  for (std::size_t row = 0; row < n; ++row) {
    for (std::size_t col = 0; col < n; ++col) {
      if (row != col) cells.push_back({row, col});
    }
  }

  const auto run_cell = [&](std::size_t i) {
    // Each worker thread owns one evaluation arena: its InstanceView is
    // refreshed in place as PISA perturbs weights and its timeline scratch
    // is recycled across every schedule() call the thread makes.
    static thread_local TimelineArena arena;
    const auto [row, col] = cells[i];
    // Fresh scheduler objects per cell: schedulers are stateless apart from
    // the randomized ones' seeds, which we derive per cell for independence.
    const CellSeeds seeds = pairwise_cell_seeds(seed, row, col);
    const auto baseline = make_scheduler(scheduler_names[row], seeds.baseline);
    const auto target = make_scheduler(scheduler_names[col], seeds.target);
    auto cell_result = run_pisa(*target, *baseline, options.pisa, seeds.anneal, &arena);
    result.ratio[row][col] = cell_result.best_ratio;
    result.best_instance[row][col] = std::move(cell_result.best_instance);
  };

  if (options.parallel) {
    (options.pool != nullptr ? *options.pool : global_pool())
        .parallel_for(cells.size(), run_cell);
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) run_cell(i);
  }
  return result;
}

}  // namespace saga::pisa
