#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sched/scheduler.hpp"
#include "stochastic/stochastic_instance.hpp"

/// \file robustness.hpp
/// Monte-Carlo robustness evaluation of schedulers on stochastic instances
/// (cf. Canon et al. 2008, "Comparative evaluation of the robustness of
/// DAG scheduling heuristics", cited by the paper as related work).
///
/// Protocol: the scheduler plans a static schedule on the *mean* instance
/// (what it would see at compile time). For each realisation of the
/// stochastic weights, the planned (assignment, dispatch-order) decisions
/// are re-executed eagerly under the realised costs — placements hold,
/// start/finish times shift. The realised makespan distribution, and the
/// regret against re-planning on the realisation itself, quantify
/// robustness.

namespace saga::stochastic {

struct RobustnessReport {
  std::string scheduler;
  double planned_makespan = 0.0;   // on the mean instance
  Summary realized;                // realised makespans across samples
  Summary regret;                  // realised / re-planned, >= ~1
};

/// Evaluates one scheduler with `samples` Monte-Carlo realisations.
[[nodiscard]] RobustnessReport evaluate_robustness(const Scheduler& scheduler,
                                                   const StochasticInstance& stochastic,
                                                   std::size_t samples, std::uint64_t seed);

/// Re-executes a planned schedule's decisions under realised weights:
/// node assignments are kept, tasks dispatch in planned (start, finish,
/// task-id) rank order — distinct ranks, so zero-cost tasks and tied
/// planned starts replay exactly as planned — and start times are
/// recomputed eagerly. An empty planned schedule replays an empty instance;
/// a planned schedule missing a task of the realised instance throws
/// std::invalid_argument. Returns the realised schedule. This is the same
/// plan-then-execute protocol the discrete-event simulator (src/sim) uses
/// per job.
[[nodiscard]] Schedule reexecute(const Schedule& planned, const ProblemInstance& realized);

}  // namespace saga::stochastic
