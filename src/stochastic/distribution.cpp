#include "stochastic/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <stdexcept>

namespace saga::stochastic {

namespace {

double standard_normal_cdf(double x) { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }

double standard_normal_pdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

/// Exact mean of a Gaussian(mu, sigma) clamped (not truncated: out-of-range
/// mass collapses onto the bounds) into [lo, hi]:
///   E = lo·Phi(a) + hi·(1-Phi(b)) + mu·(Phi(b)-Phi(a)) - sigma·(phi(b)-phi(a))
/// with a = (lo-mu)/sigma, b = (hi-mu)/sigma.
double clipped_gaussian_mean(double mu, double sigma, double lo, double hi) {
  if (sigma <= 0.0) return std::clamp(mu, lo, hi);
  const double a = (lo - mu) / sigma;
  const double b = (hi - mu) / sigma;
  const double phi_a = standard_normal_cdf(a);
  const double phi_b = standard_normal_cdf(b);
  return lo * phi_a + hi * (1.0 - phi_b) + mu * (phi_b - phi_a) -
         sigma * (standard_normal_pdf(b) - standard_normal_pdf(a));
}

}  // namespace

WeightDistribution WeightDistribution::deterministic(double value) {
  WeightDistribution d;
  d.kind_ = Kind::kDeterministic;
  d.a_ = value;
  d.min_ = d.max_ = d.mean_ = value;
  return d;
}

WeightDistribution WeightDistribution::uniform(double lo, double hi) {
  if (!(lo <= hi)) throw std::invalid_argument("uniform: lo must not exceed hi");
  WeightDistribution d;
  d.kind_ = Kind::kUniform;
  d.a_ = lo;
  d.b_ = hi;
  d.min_ = lo;
  d.max_ = hi;
  d.mean_ = 0.5 * (lo + hi);
  return d;
}

WeightDistribution WeightDistribution::clipped_gaussian(double mean, double stddev, double lo,
                                                        double hi) {
  if (!(lo <= hi)) throw std::invalid_argument("clipped_gaussian: lo must not exceed hi");
  if (!(stddev >= 0.0)) throw std::invalid_argument("clipped_gaussian: negative stddev");
  WeightDistribution d;
  d.kind_ = Kind::kClippedGaussian;
  d.a_ = mean;
  d.b_ = stddev;
  d.min_ = lo;
  d.max_ = hi;
  d.mean_ = clipped_gaussian_mean(mean, stddev, lo, hi);
  return d;
}

double WeightDistribution::sample(Rng& rng) const {
  switch (kind_) {
    case Kind::kDeterministic: return a_;
    case Kind::kUniform: return rng.uniform(a_, b_);
    case Kind::kClippedGaussian: return rng.clipped_gaussian(a_, b_, min_, max_);
  }
  return a_;
}

std::string WeightDistribution::to_string() const {
  char buf[96];
  switch (kind_) {
    case Kind::kDeterministic:
      std::snprintf(buf, sizeof(buf), "det(%g)", a_);
      break;
    case Kind::kUniform:
      std::snprintf(buf, sizeof(buf), "uniform(%g, %g)", a_, b_);
      break;
    case Kind::kClippedGaussian:
      std::snprintf(buf, sizeof(buf), "clipgauss(mean=%g, std=%g, [%g, %g])", a_, b_, min_,
                    max_);
      break;
  }
  return buf;
}

}  // namespace saga::stochastic
