#include "stochastic/stochastic_instance.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace saga::stochastic {

StochasticInstance::StochasticInstance(const ProblemInstance& base) : base_(base) {
  task_costs_.reserve(base.graph.task_count());
  for (TaskId t = 0; t < base.graph.task_count(); ++t) {
    task_costs_.push_back(WeightDistribution::deterministic(base.graph.cost(t)));
  }
  node_speeds_.reserve(base.network.node_count());
  for (NodeId v = 0; v < base.network.node_count(); ++v) {
    node_speeds_.push_back(WeightDistribution::deterministic(base.network.speed(v)));
  }
  for (const auto& [from, to] : base.graph.dependencies()) {
    dependency_costs_.emplace(
        edge_key(from, to),
        WeightDistribution::deterministic(base.graph.dependency_cost(from, to)));
  }
  for (NodeId a = 0; a < base.network.node_count(); ++a) {
    for (NodeId b = a + 1; b < base.network.node_count(); ++b) {
      link_strengths_.emplace(edge_key(a, b),
                              WeightDistribution::deterministic(base.network.strength(a, b)));
    }
  }
}

void StochasticInstance::set_task_cost(TaskId t, WeightDistribution d) {
  task_costs_.at(t) = d;
}

void StochasticInstance::set_dependency_cost(TaskId from, TaskId to, WeightDistribution d) {
  const auto it = dependency_costs_.find(edge_key(from, to));
  if (it == dependency_costs_.end()) throw std::out_of_range("no such dependency");
  it->second = d;
}

void StochasticInstance::set_node_speed(NodeId v, WeightDistribution d) {
  node_speeds_.at(v) = d;
}

void StochasticInstance::set_link_strength(NodeId a, NodeId b, WeightDistribution d) {
  if (a > b) std::swap(a, b);
  const auto it = link_strengths_.find(edge_key(a, b));
  if (it == link_strengths_.end()) throw std::out_of_range("no such link");
  it->second = d;
}

const WeightDistribution& StochasticInstance::task_cost(TaskId t) const {
  return task_costs_.at(t);
}

const WeightDistribution& StochasticInstance::dependency_cost(TaskId from, TaskId to) const {
  const auto it = dependency_costs_.find(edge_key(from, to));
  if (it == dependency_costs_.end()) throw std::out_of_range("no such dependency");
  return it->second;
}

const WeightDistribution& StochasticInstance::node_speed(NodeId v) const {
  return node_speeds_.at(v);
}

const WeightDistribution& StochasticInstance::link_strength(NodeId a, NodeId b) const {
  if (a > b) std::swap(a, b);
  const auto it = link_strengths_.find(edge_key(a, b));
  if (it == link_strengths_.end()) throw std::out_of_range("no such link");
  return it->second;
}

void StochasticInstance::apply_relative_noise(double cv) {
  if (!(cv >= 0.0)) throw std::invalid_argument("coefficient of variation must be >= 0");
  const auto noisy = [cv](double value, double floor_fraction) {
    if (value == 0.0 || std::isinf(value)) return WeightDistribution::deterministic(value);
    const double sigma = cv * value;
    const double lo = std::max(floor_fraction * value, value - 3.0 * sigma);
    return WeightDistribution::clipped_gaussian(value, sigma, lo, value + 3.0 * sigma);
  };
  for (TaskId t = 0; t < base_.graph.task_count(); ++t) {
    task_costs_[t] = noisy(base_.graph.cost(t), 0.0);
  }
  for (auto& [key, d] : dependency_costs_) {
    (void)key;
    d = noisy(d.mean(), 0.0);
  }
  // Network weights keep at least 10% of their nominal value: a machine or
  // link may degrade, but a near-zero divisor would turn one unlucky draw
  // into an astronomically long makespan and swamp every statistic.
  for (NodeId v = 0; v < base_.network.node_count(); ++v) {
    node_speeds_[v] = noisy(base_.network.speed(v), 0.1);
  }
  for (auto& [key, d] : link_strengths_) {
    (void)key;
    d = noisy(d.mean(), 0.1);
  }
}

bool StochasticInstance::is_deterministic() const {
  const auto all_det = [](const auto& range) {
    return std::all_of(range.begin(), range.end(),
                       [](const auto& d) { return d.is_deterministic(); });
  };
  if (!all_det(task_costs_) || !all_det(node_speeds_)) return false;
  for (const auto& [key, d] : dependency_costs_) {
    (void)key;
    if (!d.is_deterministic()) return false;
  }
  for (const auto& [key, d] : link_strengths_) {
    (void)key;
    if (!d.is_deterministic()) return false;
  }
  return true;
}

ProblemInstance StochasticInstance::realize(std::uint64_t seed) const {
  Rng rng(derive_seed(seed, {0x4ea112eULL}));
  ProblemInstance inst = base_;
  for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
    inst.graph.set_cost(t, task_costs_[t].sample(rng));
  }
  for (const auto& [from, to] : inst.graph.dependencies()) {
    inst.graph.set_dependency_cost(from, to,
                                   dependency_costs_.at(edge_key(from, to)).sample(rng));
  }
  for (NodeId v = 0; v < inst.network.node_count(); ++v) {
    inst.network.set_speed(v, std::max(node_speeds_[v].sample(rng), 1e-9));
  }
  for (NodeId a = 0; a < inst.network.node_count(); ++a) {
    for (NodeId b = a + 1; b < inst.network.node_count(); ++b) {
      inst.network.set_strength(a, b,
                                std::max(link_strengths_.at(edge_key(a, b)).sample(rng), 1e-9));
    }
  }
  return inst;
}

ProblemInstance StochasticInstance::mean_instance() const {
  ProblemInstance inst = base_;
  for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
    inst.graph.set_cost(t, task_costs_[t].mean());
  }
  for (const auto& [from, to] : inst.graph.dependencies()) {
    inst.graph.set_dependency_cost(from, to, dependency_costs_.at(edge_key(from, to)).mean());
  }
  for (NodeId v = 0; v < inst.network.node_count(); ++v) {
    inst.network.set_speed(v, std::max(node_speeds_[v].mean(), 1e-9));
  }
  for (NodeId a = 0; a < inst.network.node_count(); ++a) {
    for (NodeId b = a + 1; b < inst.network.node_count(); ++b) {
      inst.network.set_strength(a, b, std::max(link_strengths_.at(edge_key(a, b)).mean(), 1e-9));
    }
  }
  return inst;
}

}  // namespace saga::stochastic
