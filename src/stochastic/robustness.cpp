#include "stochastic/robustness.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "sched/decoder.hpp"

namespace saga::stochastic {

Schedule reexecute(const Schedule& planned, const ProblemInstance& realized) {
  const std::size_t n = realized.graph.task_count();
  ScheduleEncoding encoding;
  encoding.assignment.resize(n);
  encoding.priority.resize(n);
  if (n == 0) return decode_schedule(realized, encoding);

  // Dispatch priority is the task's *rank* in planned (start, finish, id)
  // order, not the raw start time: raw starts tie for zero-cost tasks
  // sharing an instant with a positive-cost task on the same node, and the
  // decoder's smaller-id tie-break can then invert the planned order.
  // Distinct ranks leave no ties to break.
  std::vector<TaskId> order(n);
  std::iota(order.begin(), order.end(), TaskId{0});
  for (TaskId t = 0; t < n; ++t) {
    if (!planned.contains(t)) {
      throw std::invalid_argument("reexecute: planned schedule does not cover task " +
                                  std::to_string(t) + " of the realized instance");
    }
    encoding.assignment[t] = planned.of_task(t).node;
  }
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const Assignment& pa = planned.of_task(a);
    const Assignment& pb = planned.of_task(b);
    if (pa.start != pb.start) return pa.start < pb.start;
    if (pa.finish != pb.finish) return pa.finish < pb.finish;
    return a < b;
  });
  for (std::size_t rank = 0; rank < n; ++rank) {
    encoding.priority[order[rank]] = -static_cast<double>(rank);
  }
  return decode_schedule(realized, encoding);
}

RobustnessReport evaluate_robustness(const Scheduler& scheduler,
                                     const StochasticInstance& stochastic,
                                     std::size_t samples, std::uint64_t seed) {
  RobustnessReport report;
  report.scheduler = std::string(scheduler.name());

  const ProblemInstance mean = stochastic.mean_instance();
  const Schedule planned = scheduler.schedule(mean);
  report.planned_makespan = planned.makespan();

  std::vector<double> realized_makespans;
  std::vector<double> regrets;
  realized_makespans.reserve(samples);
  regrets.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const ProblemInstance realization = stochastic.realize(derive_seed(seed, {i}));
    const double realized = reexecute(planned, realization).makespan();
    realized_makespans.push_back(realized);
    // Clairvoyant re-planning on the realisation.
    const double replanned = scheduler.schedule(realization).makespan();
    regrets.push_back(replanned > 0.0 ? realized / replanned : 1.0);
  }
  report.realized = summarize(realized_makespans);
  report.regret = summarize(regrets);
  return report;
}

}  // namespace saga::stochastic
