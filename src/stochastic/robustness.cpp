#include "stochastic/robustness.hpp"

#include <algorithm>

#include "sched/decoder.hpp"

namespace saga::stochastic {

Schedule reexecute(const Schedule& planned, const ProblemInstance& realized) {
  const std::size_t n = realized.graph.task_count();
  ScheduleEncoding encoding;
  encoding.assignment.resize(n);
  encoding.priority.resize(n);
  for (TaskId t = 0; t < n; ++t) {
    const auto& a = planned.of_task(t);
    encoding.assignment[t] = a.node;
    // Earlier planned start = higher dispatch priority.
    encoding.priority[t] = -a.start;
  }
  return decode_schedule(realized, encoding);
}

RobustnessReport evaluate_robustness(const Scheduler& scheduler,
                                     const StochasticInstance& stochastic,
                                     std::size_t samples, std::uint64_t seed) {
  RobustnessReport report;
  report.scheduler = std::string(scheduler.name());

  const ProblemInstance mean = stochastic.mean_instance();
  const Schedule planned = scheduler.schedule(mean);
  report.planned_makespan = planned.makespan();

  std::vector<double> realized_makespans;
  std::vector<double> regrets;
  realized_makespans.reserve(samples);
  regrets.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const ProblemInstance realization = stochastic.realize(derive_seed(seed, {i}));
    const double realized = reexecute(planned, realization).makespan();
    realized_makespans.push_back(realized);
    // Clairvoyant re-planning on the realisation.
    const double replanned = scheduler.schedule(realization).makespan();
    regrets.push_back(replanned > 0.0 ? realized / replanned : 1.0);
  }
  report.realized = summarize(realized_makespans);
  report.regret = summarize(regrets);
  return report;
}

}  // namespace saga::stochastic
