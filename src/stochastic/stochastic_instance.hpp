#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/problem_instance.hpp"
#include "stochastic/distribution.hpp"

/// \file stochastic_instance.hpp
/// A stochastic problem instance: the same topology as a ProblemInstance,
/// but with every weight (task cost, data size, node speed, link strength)
/// given by a distribution rather than a point value. Realisations are
/// ordinary ProblemInstances, so the whole deterministic machinery
/// (schedulers, validation, PISA) applies to each sample.

namespace saga::stochastic {

class StochasticInstance {
 public:
  /// Lifts a deterministic instance: every weight becomes a point mass.
  explicit StochasticInstance(const ProblemInstance& base);

  [[nodiscard]] const ProblemInstance& base() const noexcept { return base_; }

  /// Override individual weight distributions (topology is fixed by the
  /// base instance; ids must exist there).
  void set_task_cost(TaskId t, WeightDistribution d);
  void set_dependency_cost(TaskId from, TaskId to, WeightDistribution d);
  void set_node_speed(NodeId v, WeightDistribution d);
  void set_link_strength(NodeId a, NodeId b, WeightDistribution d);

  [[nodiscard]] const WeightDistribution& task_cost(TaskId t) const;
  [[nodiscard]] const WeightDistribution& dependency_cost(TaskId from, TaskId to) const;
  [[nodiscard]] const WeightDistribution& node_speed(NodeId v) const;
  [[nodiscard]] const WeightDistribution& link_strength(NodeId a, NodeId b) const;

  /// Convenience: make every weight a clipped Gaussian centred on its
  /// deterministic value with relative spread `cv` (coefficient of
  /// variation), clamped to ±3 sigma and away from zero for network
  /// weights. This is the "uncertainty envelope" used by the robustness
  /// bench.
  void apply_relative_noise(double cv);

  /// True if every weight is deterministic.
  [[nodiscard]] bool is_deterministic() const;

  /// Draws a full realisation (deterministic in `seed`).
  [[nodiscard]] ProblemInstance realize(std::uint64_t seed) const;

  /// The instance whose weights are the distribution means — the natural
  /// input for a scheduler that plans on expectations.
  [[nodiscard]] ProblemInstance mean_instance() const;

 private:
  [[nodiscard]] static std::uint64_t edge_key(std::uint32_t a, std::uint32_t b) noexcept {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  ProblemInstance base_;
  std::vector<WeightDistribution> task_costs_;
  std::vector<WeightDistribution> node_speeds_;
  std::unordered_map<std::uint64_t, WeightDistribution> dependency_costs_;  // (from,to)
  std::unordered_map<std::uint64_t, WeightDistribution> link_strengths_;    // (min,max)
};

}  // namespace saga::stochastic
