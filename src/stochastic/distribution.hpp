#pragma once

#include <string>

#include "common/rng.hpp"

/// \file distribution.hpp
/// Weight distributions for stochastic problem instances — the paper's
/// conclusion lists "support for stochastic problem instances (with
/// stochastic task costs, data sizes, computation speeds, and
/// communication costs)" as planned work; this module implements it.
///
/// A `WeightDistribution` is a small value type describing how a single
/// weight varies across executions. Deterministic weights are the
/// degenerate case, so a stochastic instance with all-deterministic
/// weights behaves exactly like a plain ProblemInstance.

namespace saga::stochastic {

class WeightDistribution {
 public:
  enum class Kind { kDeterministic, kUniform, kClippedGaussian };

  /// Point mass at `value`.
  static WeightDistribution deterministic(double value);

  /// Uniform on [lo, hi].
  static WeightDistribution uniform(double lo, double hi);

  /// Gaussian(mean, stddev) clamped into [lo, hi] (the paper's favourite
  /// sampling shape).
  static WeightDistribution clipped_gaussian(double mean, double stddev, double lo, double hi);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  /// Draws one realisation.
  [[nodiscard]] double sample(Rng& rng) const;

  /// Exact mean of the distribution (clipped-Gaussian mean is computed
  /// numerically at construction).
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Smallest / largest possible realisation.
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  [[nodiscard]] bool is_deterministic() const noexcept {
    return kind_ == Kind::kDeterministic;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  WeightDistribution() = default;

  Kind kind_ = Kind::kDeterministic;
  double a_ = 0.0;  // value | lo | mean
  double b_ = 0.0;  // unused | hi | stddev
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
};

}  // namespace saga::stochastic
