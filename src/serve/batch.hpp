#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "serve/http.hpp"

/// \file batch.hpp
/// Cross-request batching for the `saga serve` daemon. Tiny `/v1/schedule`
/// requests (same dataset family, instances under a size threshold) that
/// arrive within a short gather window are coalesced onto one worker pass:
/// the first member of a group becomes the *leader*, waits up to
/// `window_us` for followers to join (closing early at `max_batch`), then
/// executes every member's work sequentially on its own thread — i.e. over
/// one shared warm TimelineArena — while followers block on their response
/// future. Members whose request bytes are identical share a single
/// execution (legal because the service contract makes responses a pure
/// function of the request bytes).
///
/// Determinism: batching changes *where* a request executes, never *what*
/// it computes — each member runs the exact same code path as the
/// unbatched service, so responses stay byte-identical to the unbatched
/// path regardless of batch composition, window, or thread count (pinned
/// by the serve determinism suite).
///
/// Latency trade-off: under light load a leader pays up to `window_us`
/// extra latency waiting for followers that never come, which is why the
/// window defaults to 0 (disabled) and is sized in microseconds.
///
/// Thread-safety: `run` is safe to call concurrently from every worker; a
/// follower's exception-free completion is guaranteed because a leader
/// always fulfils every member promise. A failed execution surfaces on
/// every affected member as its own `std::runtime_error` carrying the
/// original exception's what() — never a shared exception object, which
/// concurrent members would race to read and release.

namespace saga::serve {

struct BatchOptions {
  /// Gather window in microseconds; 0 disables batching entirely.
  std::uint32_t window_us = 0;
  /// Close the window early once this many members gathered (>= 1).
  std::size_t max_batch = 8;
  /// Only instances with at most this many tasks are batch-eligible —
  /// batching exists to amortize per-request overhead on *tiny* requests;
  /// serializing large schedules behind one leader would cost throughput.
  std::size_t max_tasks = 64;

  [[nodiscard]] bool enabled() const noexcept { return window_us > 0 && max_batch > 0; }
};

class BatchGatherer {
 public:
  using Work = std::function<HttpResponse()>;

  explicit BatchGatherer(const BatchOptions& options) : options_(options) {}

  BatchGatherer(const BatchGatherer&) = delete;
  BatchGatherer& operator=(const BatchGatherer&) = delete;

  /// Executes `work` and returns its response — possibly on another
  /// member's thread. Requests sharing `group` (dataset family, or
  /// "@inline") gather onto one pass; members whose `dedup` bytes match a
  /// batch-mate reuse its execution. Blocks the caller until its response
  /// exists; rethrows whatever `work` threw.
  [[nodiscard]] HttpResponse run(const std::string& group, const std::string& dedup,
                                 const Work& work);

  /// Requests that went through run(). Relaxed loads/RMWs throughout the
  /// counters: monotone tallies, individually exact, never used for
  /// cross-thread ordering (the promise/future pair carries the real
  /// happens-before between leader and followers).
  [[nodiscard]] std::uint64_t requests_total() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Gather passes executed (each pass = one leader sweep).
  [[nodiscard]] std::uint64_t passes_total() const noexcept {
    return passes_.load(std::memory_order_relaxed);
  }
  /// Members answered from a byte-identical batch-mate's execution.
  [[nodiscard]] std::uint64_t coalesced_total() const noexcept {
    return coalesced_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const BatchOptions& options() const noexcept { return options_; }

 private:
  struct Batch;

  BatchOptions options_;
  std::mutex mutex_;  // guards open_ and every Batch's membership/closed state
  std::unordered_map<std::string, std::shared_ptr<Batch>> open_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> passes_{0};
  std::atomic<std::uint64_t> coalesced_{0};
};

}  // namespace saga::serve
