#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace saga::serve {

namespace {

constexpr std::size_t kMaxHeaderBytes = 64u << 10;
constexpr int kPollSliceMs = 100;     // stop()-responsiveness of idle waits
constexpr int kRequestReadMs = 30000; // budget for a request that has started arriving
constexpr int kClientReadMs = 60000;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Appends whatever is readable within `timeout_ms`. Returns the byte count
/// (> 0), 0 on timeout/EINTR, -1 on EOF or a hard error.
int read_chunk(int fd, std::string& buffer) {
  char tmp[16384];
  const ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
  if (n > 0) {
    buffer.append(tmp, static_cast<std::size_t>(n));
    return static_cast<int>(n);
  }
  if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) return 0;
  return -1;
}

/// poll for readability; 1 readable, 0 timeout, -1 error.
int wait_readable(int fd, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  const int r = ::poll(&p, 1, timeout_ms);
  if (r < 0) return errno == EINTR ? 0 : -1;
  return r;
}

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    // MSG_NOSIGNAL: a peer that vanished mid-response must not SIGPIPE the
    // whole daemon.
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

/// Parses the head (request line + headers) in buffer[0, header_end).
/// Returns false on malformed input.
bool parse_head(const std::string& buffer, std::size_t header_end, HttpRequest& req) {
  std::size_t pos = 0;
  const auto next_line = [&](std::string& line) {
    const auto eol = buffer.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) return false;
    line = buffer.substr(pos, eol - pos);
    pos = eol + 2;
    return true;
  };

  std::string line;
  if (!next_line(line)) return false;
  const auto sp1 = line.find(' ');
  const auto sp2 = line.find(' ', sp1 == std::string::npos ? sp1 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  req.version = line.substr(sp2 + 1);
  if (req.method.empty() || req.target.empty() || req.version.rfind("HTTP/", 0) != 0) {
    return false;
  }

  while (pos < header_end) {
    if (!next_line(line)) break;
    if (line.empty()) break;
    const auto colon = line.find(':');
    if (colon == std::string::npos) return false;
    req.headers.emplace_back(lower(line.substr(0, colon)), trim(line.substr(colon + 1)));
  }
  return true;
}

std::string render_response(const HttpResponse& resp, bool close) {
  std::string out;
  out.reserve(256 + resp.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(resp.status);
  out += ' ';
  out += status_reason(resp.status);
  out += "\r\nContent-Type: ";
  out += resp.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(resp.body.size());
  out += close ? "\r\nConnection: close" : "\r\nConnection: keep-alive";
  for (const auto& [name, value] : resp.headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  out += "\r\n\r\n";
  out += resp.body;
  return out;
}

HttpResponse error_response(int status, const std::string& message) {
  HttpResponse resp;
  resp.status = status;
  resp.body = "{\"error\": \"" + message + "\"}\n";
  return resp;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name_lower) const {
  for (const auto& [name, value] : headers) {
    if (name == name_lower) return &value;
  }
  return nullptr;
}

std::string_view status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

HttpServer::HttpServer(const Options& options, HttpHandler handler)
    : options_(options), handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  // Loopback only: the daemon is meant to sit behind a terminating proxy;
  // binding wildcard by default would silently expose it.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("bind 127.0.0.1:" + std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  pool_ = std::make_unique<ThreadPool>(options_.threads);
  acceptor_ = std::thread([this] { accept_loop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  std::lock_guard lock(stop_mutex_);
  stopping_.store(true, std::memory_order_relaxed);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Quiesce, then destroy — in that order. shutdown() drains the queue
  // (connections accepted but not yet picked up still get their buffered
  // requests served — serve_one sees stopping() and closes after at most
  // one exchange) and joins all workers while pool_ itself stays intact:
  // in-flight handlers may read the pool through pool() right up to their
  // last instruction (the CLI's /metrics gauge sampler does), so writing
  // the owning pointer before the join — which is what a bare
  // pool_.reset() does — is a data race on the pointer (caught by TSan,
  // pinned by ConcurrencyStress.GaugeSamplerReadsPoolDuringStopDrain).
  // Once shutdown() returns no worker exists and the reset is unobserved.
  if (pool_) pool_->shutdown();
  pool_.reset();
}

void HttpServer::accept_loop() {
  for (;;) {
    if (stopping()) return;
    const int r = wait_readable(listen_fd_, kPollSliceMs);
    if (r <= 0) continue;  // timeout or transient error; re-check stopping
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_.fetch_add(1, std::memory_order_relaxed);
    pool_->submit([this, fd] { serve_connection(fd); });
  }
}

void HttpServer::serve_connection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  std::string buffer;
  try {
    while (serve_one(fd, buffer)) {
    }
  } catch (...) {
    // Handler exceptions are converted to 500s inside serve_one; anything
    // reaching here is a framing bug — drop the connection, keep the daemon.
  }
  ::close(fd);
}

bool HttpServer::serve_one(int fd, std::string& buffer) {
  // Phase 1: wait for a complete request head. While the connection is
  // idle (no bytes of a new request yet) the wait is bounded by
  // keep_alive_ms and aborted by a drain; once bytes arrive the request is
  // considered in flight and gets the full read budget even while
  // draining.
  std::size_t header_end;
  int idle_left_ms = options_.keep_alive_ms;
  int read_left_ms = kRequestReadMs;
  bool in_flight = !buffer.empty();
  for (;;) {
    header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (buffer.size() > kMaxHeaderBytes) {
      write_all(fd, render_response(error_response(431, "request head too large"), true));
      return false;
    }
    if (!in_flight) {
      if (stopping() || idle_left_ms <= 0) return false;
    } else if (read_left_ms <= 0) {
      write_all(fd, render_response(error_response(408, "timed out reading request"), true));
      return false;
    }
    const int r = wait_readable(fd, kPollSliceMs);
    if (r < 0) return false;
    if (r == 0) {
      (in_flight ? read_left_ms : idle_left_ms) -= kPollSliceMs;
      continue;
    }
    const int got = read_chunk(fd, buffer);
    if (got < 0) return false;
    if (got > 0) in_flight = true;
  }

  HttpRequest req;
  if (!parse_head(buffer, header_end, req)) {
    write_all(fd, render_response(error_response(400, "malformed HTTP request"), true));
    return false;
  }

  std::size_t content_length = 0;
  if (const std::string* cl = req.header("content-length")) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
    if (end == cl->c_str() || *end != '\0' || errno == ERANGE) {
      write_all(fd, render_response(error_response(400, "bad Content-Length"), true));
      return false;
    }
    content_length = static_cast<std::size_t>(v);
  }
  if (content_length > options_.max_body) {
    // Close instead of resyncing: skipping an oversized body would stall
    // the worker for as long as the client cares to stream. But absorb the
    // bytes already in flight first — closing with unread data pending
    // RSTs the connection, which can discard the 413 before the client
    // reads it.
    write_all(fd,
              render_response(error_response(413, "request body exceeds " +
                                                      std::to_string(options_.max_body) +
                                                      " bytes"),
                              true));
    const std::size_t already = buffer.size() - (header_end + 4);
    std::size_t remaining = content_length > already ? content_length - already : 0;
    remaining = std::min<std::size_t>(remaining, 1u << 20);  // bounded: no infinite streams
    int grace_ms = 1000;
    std::string sink;
    while (remaining > 0 && grace_ms > 0) {
      if (wait_readable(fd, kPollSliceMs) <= 0) {
        grace_ms -= kPollSliceMs;
        continue;
      }
      sink.clear();
      const int got = read_chunk(fd, sink);
      if (got < 0) break;
      remaining -= std::min<std::size_t>(remaining, static_cast<std::size_t>(got));
    }
    return false;
  }

  const std::size_t total = header_end + 4 + content_length;
  while (buffer.size() < total) {
    if (read_left_ms <= 0) {
      write_all(fd, render_response(error_response(408, "timed out reading request body"), true));
      return false;
    }
    const int r = wait_readable(fd, kPollSliceMs);
    if (r < 0) return false;
    if (r == 0) {
      read_left_ms -= kPollSliceMs;
      continue;
    }
    if (read_chunk(fd, buffer) < 0) return false;
  }
  req.body = buffer.substr(header_end + 4, content_length);
  buffer.erase(0, total);  // keep pipelined follow-up bytes

  inflight_.fetch_add(1, std::memory_order_relaxed);
  HttpResponse resp;
  try {
    resp = handler_(req);
  } catch (const std::exception& e) {
    resp = error_response(500, std::string("unhandled exception: ") + e.what());
  } catch (...) {
    resp = error_response(500, "unhandled exception");
  }
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  requests_.fetch_add(1, std::memory_order_relaxed);

  const std::string* connection = req.header("connection");
  const bool close = stopping() || (connection != nullptr && lower(*connection) == "close") ||
                     req.version == "HTTP/1.0";
  if (!write_all(fd, render_response(resp, close))) return false;
  return !close;
}

HttpClient::HttpClient(std::uint16_t port) : port_(port) { connect_(); }

HttpClient::~HttpClient() {
  if (fd_ >= 0) ::close(fd_);
}

void HttpClient::connect_() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("connect 127.0.0.1:" + std::to_string(port_));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

HttpResponse HttpClient::request(const std::string& method, const std::string& target,
                                 const std::string& body, const std::string& content_type) {
  for (int attempt = 0; ; ++attempt) {
    const bool fresh = fd_ < 0;
    if (fresh) connect_();

    std::string req;
    req.reserve(256 + body.size());
    req += method + " " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
    if (!body.empty()) req += "Content-Type: " + content_type + "\r\n";
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    req += body;

    const auto retry_or_throw = [&](const char* what) {
      ::close(fd_);
      fd_ = -1;
      // A reused keep-alive connection may have been idle-closed by the
      // server between requests; retry exactly once on a fresh one.
      if (fresh || attempt > 0) throw std::runtime_error(what);
    };

    if (!write_all(fd_, req)) {
      retry_or_throw("http client: send failed");
      continue;
    }

    std::string buffer;
    std::size_t header_end;
    int budget_ms = kClientReadMs;
    bool saw_bytes = false;
    bool reset = false;
    for (;;) {
      header_end = buffer.find("\r\n\r\n");
      if (header_end != std::string::npos) break;
      if (budget_ms <= 0) throw std::runtime_error("http client: response timeout");
      const int r = wait_readable(fd_, kPollSliceMs);
      if (r < 0) { reset = true; break; }
      if (r == 0) {
        budget_ms -= kPollSliceMs;
        continue;
      }
      const int got = read_chunk(fd_, buffer);
      if (got < 0) { reset = true; break; }
      saw_bytes = saw_bytes || got > 0;
    }
    if (reset) {
      if (!saw_bytes) {
        retry_or_throw("http client: connection closed before response");
        continue;
      }
      throw std::runtime_error("http client: connection closed mid-response");
    }

    HttpRequest head;  // reuse the server-side head parser shape
    std::string status_line;
    {
      const auto eol = buffer.find("\r\n");
      status_line = buffer.substr(0, eol);
      std::size_t pos = eol + 2;
      while (pos < header_end) {
        const auto line_end = buffer.find("\r\n", pos);
        const std::string line = buffer.substr(pos, line_end - pos);
        pos = line_end + 2;
        if (line.empty()) break;
        const auto colon = line.find(':');
        if (colon == std::string::npos) throw std::runtime_error("http client: bad header");
        head.headers.emplace_back(lower(line.substr(0, colon)), trim(line.substr(colon + 1)));
      }
    }
    if (status_line.rfind("HTTP/", 0) != 0 || status_line.size() < 12) {
      throw std::runtime_error("http client: bad status line '" + status_line + "'");
    }
    HttpResponse resp;
    {
      // Checked parse (cert-err34-c): atoi cannot report failure, so a garbled
      // status line would silently become status 0.
      const char* first = status_line.c_str() + 9;
      const char* last = status_line.c_str() + status_line.size();
      const auto [ptr, ec] = std::from_chars(first, last, resp.status);
      if (ec != std::errc{} || ptr == first) {
        throw std::runtime_error("http client: bad status code in '" + status_line + "'");
      }
    }
    const std::string* ct = head.header("content-type");
    if (ct != nullptr) resp.content_type = *ct;
    resp.headers = head.headers;

    std::size_t content_length = 0;
    if (const std::string* cl = head.header("content-length")) {
      const char* first = cl->c_str();
      const char* last = first + cl->size();
      const auto [ptr, ec] = std::from_chars(first, last, content_length);
      if (ec != std::errc{} || ptr == first) {
        throw std::runtime_error("http client: bad content-length '" + *cl + "'");
      }
    }
    const std::size_t total = header_end + 4 + content_length;
    while (buffer.size() < total) {
      if (budget_ms <= 0) throw std::runtime_error("http client: response body timeout");
      const int r = wait_readable(fd_, kPollSliceMs);
      if (r < 0) throw std::runtime_error("http client: connection closed mid-body");
      if (r == 0) {
        budget_ms -= kPollSliceMs;
        continue;
      }
      if (read_chunk(fd_, buffer) < 0) {
        throw std::runtime_error("http client: connection closed mid-body");
      }
    }
    resp.body = buffer.substr(header_end + 4, content_length);

    const std::string* connection = head.header("connection");
    if (connection != nullptr && lower(*connection) == "close") {
      ::close(fd_);
      fd_ = -1;
    }
    return resp;
  }
}

HttpResponse HttpClient::fetch(std::uint16_t port, const std::string& method,
                               const std::string& target, const std::string& body) {
  HttpClient client(port);
  return client.request(method, target, body);
}

}  // namespace saga::serve
