#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "exp/json.hpp"
#include "serve/admission.hpp"

namespace saga::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

constexpr std::size_t kMaxHeaderBytes = 64u << 10;
constexpr int kPollSliceMs = 100;     // stop()-responsiveness of idle waits
constexpr int kRequestReadMs = 30000; // budget for a request that has started arriving
constexpr int kClientReadMs = 60000;

/// Wall-clock deadline `ms` from now. Read budgets are tracked against
/// steady_clock deadlines, never by decrementing a per-poll-slice budget:
/// poll() can return early on EINTR (wait_readable maps it to 0, the same
/// as a timeout), and charging a full slice for an interrupted wait would
/// silently shorten the real budget under signal load.
SteadyClock::time_point deadline_in(int ms) {
  return SteadyClock::now() + std::chrono::milliseconds(ms);
}

bool expired(SteadyClock::time_point deadline) { return SteadyClock::now() >= deadline; }

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Appends whatever is readable within `timeout_ms`. Returns the byte count
/// (> 0), 0 on timeout/EINTR, -1 on EOF or a hard error.
int read_chunk(int fd, std::string& buffer) {
  char tmp[16384];
  const ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
  if (n > 0) {
    buffer.append(tmp, static_cast<std::size_t>(n));
    return static_cast<int>(n);
  }
  if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) return 0;
  return -1;
}

/// poll for readability; 1 readable, 0 timeout, -1 error.
int wait_readable(int fd, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  const int r = ::poll(&p, 1, timeout_ms);
  if (r < 0) return errno == EINTR ? 0 : -1;
  return r;
}

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    // MSG_NOSIGNAL: a peer that vanished mid-response must not SIGPIPE the
    // whole daemon.
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

/// Parses the head (request line + headers) in buffer[0, header_end).
/// Returns false on malformed input.
bool parse_head(const std::string& buffer, std::size_t header_end, HttpRequest& req) {
  std::size_t pos = 0;
  const auto next_line = [&](std::string& line) {
    const auto eol = buffer.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) return false;
    line = buffer.substr(pos, eol - pos);
    pos = eol + 2;
    return true;
  };

  std::string line;
  if (!next_line(line)) return false;
  const auto sp1 = line.find(' ');
  const auto sp2 = line.find(' ', sp1 == std::string::npos ? sp1 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  req.version = line.substr(sp2 + 1);
  if (req.method.empty() || req.target.empty() || req.version.rfind("HTTP/", 0) != 0) {
    return false;
  }

  while (pos < header_end) {
    if (!next_line(line)) break;
    if (line.empty()) break;
    const auto colon = line.find(':');
    if (colon == std::string::npos) return false;
    req.headers.emplace_back(lower(line.substr(0, colon)), trim(line.substr(colon + 1)));
  }
  return true;
}

/// Response head shared by the buffered and chunked paths; `framing` is
/// the Content-Length or Transfer-Encoding header line (without CRLF).
std::string render_head(const HttpResponse& resp, const std::string& framing, bool close) {
  std::string out;
  out.reserve(256);
  out += "HTTP/1.1 ";
  out += std::to_string(resp.status);
  out += ' ';
  out += status_reason(resp.status);
  out += "\r\nContent-Type: ";
  out += resp.content_type;
  out += "\r\n";
  out += framing;
  out += close ? "\r\nConnection: close" : "\r\nConnection: keep-alive";
  for (const auto& [name, value] : resp.headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  out += "\r\n\r\n";
  return out;
}

std::string render_response(const HttpResponse& resp, bool close) {
  std::string out = render_head(resp, "Content-Length: " + std::to_string(resp.body.size()), close);
  out += resp.body;
  return out;
}

/// Writes a streaming response as Transfer-Encoding: chunked. Returns
/// false when the connection must close (write failure, or the source
/// threw mid-stream — the head is already on the wire, so the only honest
/// signal left is truncating the chunked framing).
bool write_chunked(int fd, const HttpResponse& resp, bool close) {
  if (!write_all(fd, render_head(resp, "Transfer-Encoding: chunked", close))) return false;
  std::string frame;
  for (;;) {
    std::string chunk;
    try {
      chunk = resp.chunk_source();
    } catch (...) {
      return false;  // truncate: the client sees a missing final chunk
    }
    if (chunk.empty()) break;
    frame.clear();
    char size_hex[32];
    std::snprintf(size_hex, sizeof size_hex, "%zx", chunk.size());
    frame += size_hex;
    frame += "\r\n";
    frame += chunk;
    frame += "\r\n";
    if (!write_all(fd, frame)) return false;
  }
  return write_all(fd, "0\r\n\r\n");
}

HttpResponse error_response(int status, const std::string& message) {
  HttpResponse resp;
  resp.status = status;
  // Escape through the JSON writer: exception messages routinely carry
  // quotes and backslashes (file paths, quoted spec strings), and raw
  // concatenation would emit invalid JSON for exactly those bodies.
  resp.body = exp::Json::object({{"error", exp::Json::string(message)}}).dump() + "\n";
  return resp;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name_lower) const {
  for (const auto& [name, value] : headers) {
    if (name == name_lower) return &value;
  }
  return nullptr;
}

std::string_view status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

HttpServer::HttpServer(const Options& options, HttpHandler handler)
    : options_(options), handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  // Loopback only: the daemon is meant to sit behind a terminating proxy;
  // binding wildcard by default would silently expose it.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("bind 127.0.0.1:" + std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  pool_ = std::make_unique<ThreadPool>(options_.threads);
  acceptor_ = std::thread([this] { accept_loop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  std::lock_guard lock(stop_mutex_);
  stopping_.store(true, std::memory_order_relaxed);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Quiesce, then destroy — in that order. shutdown() drains the queue
  // (connections accepted but not yet picked up still get their buffered
  // requests served — serve_one sees stopping() and closes after at most
  // one exchange) and joins all workers while pool_ itself stays intact:
  // in-flight handlers may read the pool through pool() right up to their
  // last instruction (the CLI's /metrics gauge sampler does), so writing
  // the owning pointer before the join — which is what a bare
  // pool_.reset() does — is a data race on the pointer (caught by TSan,
  // pinned by ConcurrencyStress.GaugeSamplerReadsPoolDuringStopDrain).
  // Once shutdown() returns no worker exists and the reset is unobserved.
  if (pool_) pool_->shutdown();
  pool_.reset();
}

void HttpServer::accept_loop() {
  for (;;) {
    if (stopping()) return;
    const int r = wait_readable(listen_fd_, kPollSliceMs);
    if (r <= 0) continue;  // timeout or transient error; re-check stopping
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_.fetch_add(1, std::memory_order_relaxed);
    if (options_.max_pending == 0) {
      pool_->submit([this, fd] { serve_connection(fd); });
    } else if (!pool_->try_submit([this, fd] { serve_connection(fd); }, options_.max_pending)) {
      shed_connection(fd);
    }
  }
}

void HttpServer::shed_connection(int fd) {
  // Best-effort canned 429: this connection's request was never read (it
  // never reached a worker), so drain whatever already sits in the socket
  // once — closing with unread bytes pending makes the kernel RST, which
  // can destroy the response before the client sees it — then answer and
  // close. Under a real flood even the write may fail; connections_shed()
  // is the authoritative tally either way.
  accept_sheds_.fetch_add(1, std::memory_order_relaxed);
  std::string sink;
  if (wait_readable(fd, kPollSliceMs) > 0) read_chunk(fd, sink);
  HttpResponse resp;
  if (options_.admission != nullptr) {
    resp = options_.admission->shed_response(pool_->queue_depth(), inflight());
  } else {
    resp.status = 429;
    resp.body = AdmissionController::shed_body();
    resp.headers.emplace_back("Retry-After", "1");
  }
  write_all(fd, render_response(resp, true));
  ::close(fd);
}

void HttpServer::serve_connection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  std::string buffer;
  try {
    while (serve_one(fd, buffer)) {
    }
  } catch (...) {
    // Handler exceptions are converted to 500s inside serve_one; anything
    // reaching here is a framing bug — drop the connection, keep the daemon.
  }
  ::close(fd);
}

bool HttpServer::serve_one(int fd, std::string& buffer) {
  // Phase 1: wait for a complete request head. While the connection is
  // idle (no bytes of a new request yet) the wait is bounded by
  // keep_alive_ms and aborted by a drain; once bytes arrive the request is
  // considered in flight and gets the full read budget even while
  // draining.
  std::size_t header_end;
  bool in_flight = !buffer.empty();
  const auto idle_deadline = deadline_in(options_.keep_alive_ms);
  auto read_deadline = in_flight ? deadline_in(kRequestReadMs) : SteadyClock::time_point{};
  for (;;) {
    header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (buffer.size() > kMaxHeaderBytes) {
      write_all(fd, render_response(error_response(431, "request head too large"), true));
      return false;
    }
    if (!in_flight) {
      if (stopping() || expired(idle_deadline)) return false;
    } else if (expired(read_deadline)) {
      write_all(fd, render_response(error_response(408, "timed out reading request"), true));
      return false;
    }
    const int r = wait_readable(fd, kPollSliceMs);
    if (r < 0) return false;
    if (r == 0) continue;  // poll timeout or EINTR: deadlines charge real elapsed time only
    const int got = read_chunk(fd, buffer);
    if (got < 0) return false;
    if (got > 0 && !in_flight) {
      in_flight = true;
      read_deadline = deadline_in(kRequestReadMs);
    }
  }

  HttpRequest req;
  if (!parse_head(buffer, header_end, req)) {
    write_all(fd, render_response(error_response(400, "malformed HTTP request"), true));
    return false;
  }

  // Content-Length: digits only, every occurrence must agree. from_chars
  // into an unsigned type rejects sign characters and whitespace outright
  // and ptr != last rejects trailers — strtoull accepted " +1" and wrapped
  // "-1" to ~2^64, which turned a malformed request into a spurious 413.
  // Duplicate headers with differing values are request smuggling bait;
  // reject rather than pick one.
  std::size_t content_length = 0;
  bool have_length = false;
  for (const auto& [name, value] : req.headers) {
    if (name != "content-length") continue;
    std::size_t parsed = 0;
    const char* first = value.c_str();
    const char* last = first + value.size();
    const auto [ptr, ec] = std::from_chars(first, last, parsed);
    if (ec != std::errc{} || ptr != last) {
      write_all(fd, render_response(error_response(400, "bad Content-Length"), true));
      return false;
    }
    if (have_length && parsed != content_length) {
      write_all(fd,
                render_response(error_response(400, "conflicting Content-Length headers"), true));
      return false;
    }
    content_length = parsed;
    have_length = true;
  }
  if (content_length > options_.max_body) {
    // Close instead of resyncing: skipping an oversized body would stall
    // the worker for as long as the client cares to stream. But absorb the
    // bytes already in flight first — closing with unread data pending
    // RSTs the connection, which can discard the 413 before the client
    // reads it.
    write_all(fd,
              render_response(error_response(413, "request body exceeds " +
                                                      std::to_string(options_.max_body) +
                                                      " bytes"),
                              true));
    const std::size_t already = buffer.size() - (header_end + 4);
    std::size_t remaining = content_length > already ? content_length - already : 0;
    remaining = std::min<std::size_t>(remaining, 1u << 20);  // bounded: no infinite streams
    const auto grace_deadline = deadline_in(1000);
    std::string sink;
    while (remaining > 0 && !expired(grace_deadline)) {
      if (wait_readable(fd, kPollSliceMs) <= 0) continue;
      sink.clear();
      const int got = read_chunk(fd, sink);
      if (got < 0) break;
      remaining -= std::min<std::size_t>(remaining, static_cast<std::size_t>(got));
    }
    return false;
  }

  const std::size_t total = header_end + 4 + content_length;
  while (buffer.size() < total) {
    if (expired(read_deadline)) {
      write_all(fd, render_response(error_response(408, "timed out reading request body"), true));
      return false;
    }
    const int r = wait_readable(fd, kPollSliceMs);
    if (r < 0) return false;
    if (r == 0) continue;
    if (read_chunk(fd, buffer) < 0) return false;
  }
  req.body = buffer.substr(header_end + 4, content_length);
  buffer.erase(0, total);  // keep pipelined follow-up bytes

  inflight_.fetch_add(1, std::memory_order_relaxed);
  HttpResponse resp;
  try {
    resp = handler_(req);
  } catch (const std::exception& e) {
    resp = error_response(500, std::string("unhandled exception: ") + e.what());
  } catch (...) {
    resp = error_response(500, "unhandled exception");
  }
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  requests_.fetch_add(1, std::memory_order_relaxed);

  const std::string* connection = req.header("connection");
  const bool close = stopping() || (connection != nullptr && lower(*connection) == "close") ||
                     req.version == "HTTP/1.0";
  if (resp.chunk_source) {
    if (req.version == "HTTP/1.0") {
      // HTTP/1.0 requesters cannot parse chunked framing: drain the stream
      // into a buffered body (byte-identical per the streaming contract).
      // The head has not been sent yet, so a mid-drain throw can still
      // become an honest 500 here.
      std::string drained;
      try {
        for (std::string c; !(c = resp.chunk_source()).empty();) drained += c;
        resp.body = std::move(drained);
      } catch (const std::exception& e) {
        resp = error_response(500, std::string("unhandled exception: ") + e.what());
      } catch (...) {
        resp = error_response(500, "unhandled exception");
      }
      resp.chunk_source = nullptr;
    } else {
      if (!write_chunked(fd, resp, close)) return false;
      return !close;
    }
  }
  if (!write_all(fd, render_response(resp, close))) return false;
  return !close;
}

HttpClient::HttpClient(std::uint16_t port) : port_(port) { connect_(); }

HttpClient::~HttpClient() {
  if (fd_ >= 0) ::close(fd_);
}

void HttpClient::connect_() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("connect 127.0.0.1:" + std::to_string(port_));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

HttpResponse HttpClient::request(const std::string& method, const std::string& target,
                                 const std::string& body, const std::string& content_type) {
  for (int attempt = 0; ; ++attempt) {
    const bool fresh = fd_ < 0;
    if (fresh) connect_();

    std::string req;
    req.reserve(256 + body.size());
    req += method + " " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
    if (!body.empty()) req += "Content-Type: " + content_type + "\r\n";
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    req += body;

    const auto retry_or_throw = [&](const char* what) {
      ::close(fd_);
      fd_ = -1;
      // A reused keep-alive connection may have been idle-closed by the
      // server between requests; retry exactly once on a fresh one.
      if (fresh || attempt > 0) throw std::runtime_error(what);
    };

    if (!write_all(fd_, req)) {
      retry_or_throw("http client: send failed");
      continue;
    }

    std::string buffer;
    std::size_t header_end;
    const auto read_deadline = deadline_in(kClientReadMs);
    bool saw_bytes = false;
    bool reset = false;
    for (;;) {
      header_end = buffer.find("\r\n\r\n");
      if (header_end != std::string::npos) break;
      if (expired(read_deadline)) throw std::runtime_error("http client: response timeout");
      const int r = wait_readable(fd_, kPollSliceMs);
      if (r < 0) { reset = true; break; }
      if (r == 0) continue;
      const int got = read_chunk(fd_, buffer);
      if (got < 0) { reset = true; break; }
      saw_bytes = saw_bytes || got > 0;
    }
    if (reset) {
      if (!saw_bytes) {
        retry_or_throw("http client: connection closed before response");
        continue;
      }
      throw std::runtime_error("http client: connection closed mid-response");
    }

    HttpRequest head;  // reuse the server-side head parser shape
    std::string status_line;
    {
      const auto eol = buffer.find("\r\n");
      status_line = buffer.substr(0, eol);
      std::size_t pos = eol + 2;
      while (pos < header_end) {
        const auto line_end = buffer.find("\r\n", pos);
        const std::string line = buffer.substr(pos, line_end - pos);
        pos = line_end + 2;
        if (line.empty()) break;
        const auto colon = line.find(':');
        if (colon == std::string::npos) throw std::runtime_error("http client: bad header");
        head.headers.emplace_back(lower(line.substr(0, colon)), trim(line.substr(colon + 1)));
      }
    }
    if (status_line.rfind("HTTP/", 0) != 0 || status_line.size() < 12) {
      throw std::runtime_error("http client: bad status line '" + status_line + "'");
    }
    HttpResponse resp;
    {
      // Checked parse (cert-err34-c): atoi cannot report failure, so a garbled
      // status line would silently become status 0.
      const char* first = status_line.c_str() + 9;
      const char* last = status_line.c_str() + status_line.size();
      const auto [ptr, ec] = std::from_chars(first, last, resp.status);
      if (ec != std::errc{} || ptr == first) {
        throw std::runtime_error("http client: bad status code in '" + status_line + "'");
      }
    }
    const std::string* ct = head.header("content-type");
    if (ct != nullptr) resp.content_type = *ct;
    resp.headers = head.headers;

    // Pull at least one more byte into `buffer` (or fail) until it holds
    // `bytes`; shared by the Content-Length and chunked body readers.
    const auto need = [&](std::size_t bytes) {
      while (buffer.size() < bytes) {
        if (expired(read_deadline)) {
          throw std::runtime_error("http client: response body timeout");
        }
        const int r = wait_readable(fd_, kPollSliceMs);
        if (r < 0) throw std::runtime_error("http client: connection closed mid-body");
        if (r == 0) continue;
        if (read_chunk(fd_, buffer) < 0) {
          throw std::runtime_error("http client: connection closed mid-body");
        }
      }
    };

    const std::string* te = head.header("transfer-encoding");
    if (te != nullptr && lower(*te) == "chunked") {
      // De-chunk: hex size line, that many bytes, CRLF; a zero-size chunk
      // ends the body. The server never emits extensions or trailers.
      std::string decoded;
      std::size_t pos = header_end + 4;
      for (;;) {
        std::size_t eol;
        while ((eol = buffer.find("\r\n", pos)) == std::string::npos) {
          need(buffer.size() + 1);
        }
        std::size_t chunk_size = 0;
        const char* first = buffer.c_str() + pos;
        const char* last = buffer.c_str() + eol;
        const auto [ptr, ec] = std::from_chars(first, last, chunk_size, 16);
        if (ec != std::errc{} || ptr != last) {
          throw std::runtime_error("http client: bad chunk size '" +
                                   buffer.substr(pos, eol - pos) + "'");
        }
        pos = eol + 2;
        if (chunk_size == 0) {
          need(pos + 2);  // CRLF closing the zero-size chunk
          pos += 2;
          break;
        }
        need(pos + chunk_size + 2);
        decoded.append(buffer, pos, chunk_size);
        pos += chunk_size + 2;
      }
      resp.body = std::move(decoded);
    } else {
      std::size_t content_length = 0;
      if (const std::string* cl = head.header("content-length")) {
        const char* first = cl->c_str();
        const char* last = first + cl->size();
        const auto [ptr, ec] = std::from_chars(first, last, content_length);
        if (ec != std::errc{} || ptr == first) {
          throw std::runtime_error("http client: bad content-length '" + *cl + "'");
        }
      }
      need(header_end + 4 + content_length);
      resp.body = buffer.substr(header_end + 4, content_length);
    }

    const std::string* connection = head.header("connection");
    if (connection != nullptr && lower(*connection) == "close") {
      ::close(fd_);
      fd_ = -1;
    }
    return resp;
  }
}

HttpResponse HttpClient::fetch(std::uint16_t port, const std::string& method,
                               const std::string& target, const std::string& body) {
  HttpClient client(port);
  return client.request(method, target, body);
}

}  // namespace saga::serve
