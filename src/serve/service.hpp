#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "serve/batch.hpp"
#include "serve/http.hpp"
#include "serve/telemetry.hpp"

/// \file service.hpp
/// Request routing and handlers for the `saga serve` daemon. A
/// ScheduleService turns HttpRequests into HttpResponses:
///
///   POST /v1/schedule   run one scheduler on one instance
///   POST /v1/compare    run several schedulers on one instance
///   GET  /metrics       Prometheus text exposition (serve/telemetry)
///   GET  /healthz       liveness probe
///
/// Request body for the POST endpoints (application/json):
///
///   {"scheduler": "heft",            // /v1/schedule: one spec string
///    "schedulers": ["heft", "cpop"], // /v1/compare: spec strings, in order
///    "instance": { ... },            // wire-codec instance (serve/codec), OR
///    "dataset": "chains?n=10",       // dataset spec string...
///    "index": 3,                     // ...with a stream index (default 0)
///    "seed": 42,                     // master seed for dataset generation
///                                    // and randomized schedulers (default 0)
///    "timings": true}                // opt in to a timing_us field (below)
///
/// Exactly one of "instance" and "dataset" must be present. Responses are
/// deterministic: identical request bodies produce byte-identical response
/// bodies regardless of which worker served them or what ran before —
/// wall-clock timings therefore travel in the `X-Saga-Timing-Us` response
/// header, not the body. `"timings": true` additionally embeds a
/// `timing_us` object in the body for clients that want machine-readable
/// timings and accept that it breaks byte-identity.
///
/// Error contract: malformed JSON, schema violations, and unknown
/// scheduler/dataset names return 400 with the underlying diagnostic
/// (including the registries' did-you-mean suggestions); unknown paths
/// return 404 with a nearest-path suggestion; wrong methods return 405
/// with an Allow header. All error bodies are `{"error": "..."}`. The
/// daemon stays up in every case.
///
/// Each worker thread holds its own warm TimelineArena (thread-local,
/// reused across requests), so steady-state scheduling is allocation-free;
/// reuse is visible as saga_arena_reuse_total in /metrics.

namespace saga {

class TimelineArena;

namespace serve {

class ScheduleService {
 public:
  struct Options {
    /// Shared admission controller; null admits everything. Not owned and
    /// must outlive the service. Only /v1/schedule and /v1/compare are
    /// subject to shedding — /metrics, /healthz, and error paths are
    /// structurally exempt (they never reach the admission check).
    AdmissionController* admission = nullptr;
    /// Cross-request batching for tiny /v1/schedule requests; disabled by
    /// default (window_us == 0). See serve/batch.hpp for the contract.
    BatchOptions batch;
    /// /v1/compare rosters with at least this many schedulers stream their
    /// response as Transfer-Encoding: chunked, one row per chunk (the
    /// de-chunked bytes equal the buffered body exactly). Smaller rosters
    /// — and any `"timings": true` request — stay buffered. 0 disables.
    std::size_t stream_rows_threshold = 8;
  };

  ScheduleService();
  explicit ScheduleService(const Options& options);

  /// Handles one request; never throws. Records endpoint, status class, and
  /// handler latency in telemetry(). Thread-safe: called concurrently from
  /// every worker.
  [[nodiscard]] HttpResponse handle(const HttpRequest& req);

  [[nodiscard]] const Telemetry& telemetry() const noexcept { return telemetry_; }

  /// The batch gatherer; null when batching is disabled.
  [[nodiscard]] const BatchGatherer* batcher() const noexcept { return batcher_.get(); }

  /// Supplies the point-in-time gauges /metrics reports (queue depth,
  /// in-flight requests, pool jobs, connections). The daemon wires this to
  /// its HttpServer; unset, those gauges read zero. The service fills
  /// uptime itself.
  ///
  /// Concurrency contract: gauge_sampler_ is a plain (non-atomic) member,
  /// so this must be called before the HttpServer that dispatches into
  /// handle() starts — i.e. during daemon setup, single-threaded. The
  /// HttpServer constructor's thread creation then publishes the value to
  /// every worker. Calling it while requests are in flight is a data race.
  using GaugeSampler = std::function<Telemetry::Gauges()>;
  void set_gauge_sampler(GaugeSampler sampler) { gauge_sampler_ = std::move(sampler); }

  [[nodiscard]] double uptime_seconds() const;

 private:
  [[nodiscard]] HttpResponse route(const HttpRequest& req, Endpoint endpoint);
  [[nodiscard]] HttpResponse handle_schedule(const HttpRequest& req);
  [[nodiscard]] HttpResponse handle_compare(const HttpRequest& req);
  [[nodiscard]] HttpResponse handle_metrics();

  /// This thread's warm arena for this service; `warm` reports whether it
  /// already existed (telemetry's arena-reuse hit).
  [[nodiscard]] TimelineArena& thread_arena(bool& warm);

  Options options_;
  Telemetry telemetry_;
  GaugeSampler gauge_sampler_;
  std::unique_ptr<BatchGatherer> batcher_;  // non-null iff options_.batch.enabled()
  std::chrono::steady_clock::time_point start_;
  std::uint64_t serial_;  // distinguishes services sharing one thread's cache
};

}  // namespace serve
}  // namespace saga
