#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"

/// \file http.hpp
/// Minimal HTTP/1.1 plumbing for the `saga serve` daemon: a loopback TCP
/// server that parses requests, dispatches them to a handler on a worker
/// pool, and writes Content-Length framed responses (keep-alive supported),
/// plus the small blocking client the tests, the smoke probe, and
/// bench_serve drive it with. Dependency-free (POSIX sockets); HTTPS,
/// chunked encoding, and proxies are explicitly out of scope — production
/// deployments put this behind a terminating proxy.
///
/// Concurrency model: one acceptor thread hands each connection to the
/// ThreadPool; a connection occupies its worker for its whole lifetime
/// (requests on one connection are served in order), so keep at most
/// `threads` concurrent connections for full throughput — additional
/// connections queue (visible as saga_queue_depth). stop() drains
/// gracefully: accepting stops, requests already in flight (or already
/// buffered on an accepted connection) complete and their responses are
/// written, then workers join.

namespace saga::serve {

class AdmissionController;

struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // origin-form, e.g. "/v1/schedule"
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;  // names lower-cased
  std::string body;

  /// First header with the given lower-case name; nullptr when absent.
  [[nodiscard]] const std::string* header(std::string_view name_lower) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers (Content-Type/Length/Connection are emitted
  /// automatically).
  std::vector<std::pair<std::string, std::string>> headers;
  /// Streaming body: when set, the response is sent with
  /// `Transfer-Encoding: chunked` — the head goes out first, then the
  /// source is pulled repeatedly on the serving worker's thread; each
  /// non-empty return is one chunk, an empty return ends the body. `body`
  /// must be empty. The de-chunked byte stream must equal what the
  /// buffered path would have produced (the serve determinism pins compare
  /// exactly that). If the source throws mid-stream the connection is
  /// closed without the final chunk, which clients see as truncation (the
  /// status line has already been sent, so no error response is possible).
  /// HTTP/1.0 requesters cannot parse chunked framing; for them the stream
  /// is drained into a buffered Content-Length response instead.
  std::function<std::string()> chunk_source;
};

[[nodiscard]] std::string_view status_reason(int status);

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  struct Options {
    std::uint16_t port = 0;        // 0 = kernel-assigned ephemeral port
    std::size_t threads = 0;       // worker pool size; 0 = hardware concurrency
    std::size_t max_body = 8u << 20;  // bytes; larger requests get 413
    int keep_alive_ms = 5000;      // idle wait for the next request on a connection
    /// Accept-level backstop (0 = unlimited): connections are handed to the
    /// pool through ThreadPool::try_submit with this queue bound; when even
    /// that many connections are already waiting, the acceptor answers a
    /// best-effort canned 429 and closes instead of queueing. This layer is
    /// path-blind (the request was never read), so it is memory protection
    /// against pathological floods, not admission control — size it well
    /// above the AdmissionController's max_queue so scrapes are never
    /// caught by it in practice.
    std::size_t max_pending = 0;
    /// Shared admission controller; only consulted for the max_pending
    /// backstop's canned 429 (shed counting + Retry-After). May be null.
    /// Not owned; must outlive the server.
    AdmissionController* admission = nullptr;
  };

  /// Binds 127.0.0.1:port, starts listening and accepting. Throws
  /// std::runtime_error (with errno text) when the socket cannot be set up.
  HttpServer(const Options& options, HttpHandler handler);

  /// Calls stop().
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The actually bound port (the kernel's choice under port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Graceful drain: stop accepting, let handlers in flight (and requests
  /// already buffered on accepted connections) finish, join all workers.
  /// Idempotent; safe to call from any thread except a handler.
  void stop();

  /// Memory order: relaxed is correct for this flag because it carries no
  /// payload — nothing is published "along with" it. The actual shutdown
  /// synchronization is structural: stop() joins the acceptor thread and
  /// quiesces the worker pool via ThreadPool::shutdown() (which locks the
  /// queue mutex and joins every worker) before touching any shared state
  /// — including the pool_ pointer itself, which in-flight handlers read
  /// through pool() until their last instruction — so every
  /// cross-thread edge the drain relies on comes from those joins. The
  /// relaxed flag only bounds *when* idle loops notice the drain, and every
  /// loop that polls it re-checks at least once per poll slice (100 ms) or
  /// keep-alive window, so visibility latency is already bounded by design.
  [[nodiscard]] bool stopping() const noexcept {
    return stopping_.load(std::memory_order_relaxed);
  }

  /// Requests currently inside the handler (a point-in-time gauge).
  [[nodiscard]] std::size_t inflight() const noexcept {
    return inflight_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }
  /// Connections rejected by the accept-level max_pending backstop.
  [[nodiscard]] std::uint64_t connections_shed() const noexcept {
    return accept_sheds_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

  /// The worker pool (for queue-depth / jobs-completed gauges).
  [[nodiscard]] const ThreadPool& pool() const noexcept { return *pool_; }

 private:
  void accept_loop();
  /// Answers a best-effort canned 429 and closes; max_pending backstop.
  void shed_connection(int fd);
  void serve_connection(int fd);
  /// One request-response exchange; returns false when the connection
  /// should close (EOF, error, Connection: close, or draining).
  bool serve_one(int fd, std::string& buffer);

  Options options_;
  HttpHandler handler_;
  std::mutex stop_mutex_;  // serializes concurrent stop() calls
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  // All five atomics below use relaxed ordering throughout: stopping_ is a
  // pure flag (see stopping() for why that is sufficient), and the other
  // four are monotonic gauges/counters written by atomic RMWs — exact
  // individually, never used to prove ordering between threads.
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> accept_sheds_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::unique_ptr<ThreadPool> pool_;
  std::thread acceptor_;
};

/// Blocking test/bench client: one TCP connection, sequential requests,
/// transparent reconnect when the server closed the previous exchange.
class HttpClient {
 public:
  /// Connects to 127.0.0.1:port; throws std::runtime_error on failure.
  explicit HttpClient(std::uint16_t port);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Issues one request and reads the full response. Throws
  /// std::runtime_error on connection or protocol errors.
  [[nodiscard]] HttpResponse request(const std::string& method, const std::string& target,
                                     const std::string& body = {},
                                     const std::string& content_type = "application/json");

  /// One-shot convenience: connect, request, disconnect.
  [[nodiscard]] static HttpResponse fetch(std::uint16_t port, const std::string& method,
                                          const std::string& target,
                                          const std::string& body = {});

 private:
  void connect_();
  std::uint16_t port_;
  int fd_ = -1;
};

}  // namespace saga::serve
