#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>

namespace saga::serve {

int AdmissionController::retry_after_seconds(std::size_t queued,
                                             std::size_t inflight) const noexcept {
  // p50 of observed service time; the histogram reports the bucket upper
  // bound (0 when empty, +inf when everything overflowed the ladder).
  double p50_us = service_us_.count() == 0 ? 0.0 : service_us_.percentile(0.5);
  if (!std::isfinite(p50_us)) p50_us = 60e6;
  // Work ahead of a retrying client: everything queued, everything in
  // flight, plus its own request.
  const double backlog = static_cast<double>(queued) + static_cast<double>(inflight) + 1.0;
  const double seconds = std::ceil(p50_us * backlog / 1e6);
  return static_cast<int>(std::clamp(seconds, 1.0, 60.0));
}

HttpResponse AdmissionController::shed_response(std::size_t queued, std::size_t inflight) {
  shed_total_.fetch_add(1, std::memory_order_relaxed);  // exact monotone tally
  HttpResponse resp;
  resp.status = 429;
  resp.body = shed_body();
  resp.headers.emplace_back("Retry-After", std::to_string(retry_after_seconds(queued, inflight)));
  return resp;
}

const std::string& AdmissionController::shed_body() {
  // Fixed bytes on purpose: overload answers must be byte-identical so the
  // shed path is as pinnable as the success path. Load-derived advice
  // travels in the Retry-After header only.
  static const std::string body =
      "{\"error\": \"too many requests: the scheduling queue is full; "
      "retry after the number of seconds in the Retry-After header\"}\n";
  return body;
}

}  // namespace saga::serve
