#include "serve/service.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/nearest.hpp"
#include "datasets/registry.hpp"
#include "exp/json.hpp"
#include "sched/arena.hpp"
#include "sched/registry.hpp"
#include "serve/admission.hpp"
#include "serve/codec.hpp"

namespace saga::serve {

namespace {

using exp::Json;
using exp::JsonArray;

/// A request the client got wrong (vs. a bug in us): decoding failures are
/// wrapped in this so the router can map them to 400 instead of 500.
struct BadRequest : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Runs the decode phase of a handler; any exception it throws (JSON parse
/// errors, schema violations, unknown registry names) becomes a 400.
template <typename F>
auto decode(F&& f) -> decltype(f()) {
  try {
    return f();
  } catch (const BadRequest&) {
    throw;
  } catch (const std::exception& e) {
    throw BadRequest(e.what());
  }
}

HttpResponse error_response(int status, const std::string& message) {
  HttpResponse resp;
  resp.status = status;
  resp.body = Json::object({{"error", Json::string(message)}}).dump() + "\n";
  return resp;
}

const std::vector<std::string>& known_paths() {
  static const std::vector<std::string> paths = {"/v1/schedule", "/v1/compare", "/metrics",
                                                 "/healthz"};
  return paths;
}

Endpoint classify(const std::string& target) {
  if (target == "/v1/schedule") return Endpoint::kSchedule;
  if (target == "/v1/compare") return Endpoint::kCompare;
  if (target == "/metrics") return Endpoint::kMetrics;
  if (target == "/healthz") return Endpoint::kHealthz;
  return Endpoint::kOther;
}

void check_keys(const Json& object, const std::vector<std::string>& allowed,
                const std::string& context) {
  for (const auto& [key, value] : object.as_object()) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      throw std::invalid_argument("unknown key '" + key + "' in " + context +
                                  did_you_mean(key, allowed) +
                                  "; valid keys: " + join(allowed, ", ") +
                                  object.position_suffix());
    }
  }
}

Json parse_body(const HttpRequest& req, const std::vector<std::string>& allowed,
                const std::string& context) {
  if (req.body.empty()) {
    throw BadRequest(context + " needs a JSON request body");
  }
  Json body = decode([&] { return Json::parse(req.body); });
  if (!body.is_object()) {
    throw BadRequest(context + " body must be a JSON object");
  }
  decode([&] { check_keys(body, allowed, context); return 0; });
  return body;
}

std::uint64_t seed_of(const Json& body) {
  const Json* seed = body.find("seed");
  return seed == nullptr ? 0 : decode([&] { return seed->as_u64("'seed'"); });
}

bool timings_of(const Json& body) {
  const Json* timings = body.find("timings");
  return timings != nullptr && decode([&] { return timings->as_bool(); });
}

/// Materializes the request's instance: an inline wire-codec object, or a
/// dataset spec plus stream index through the registry.
ProblemInstance resolve_instance(const Json& body, std::uint64_t seed) {
  const Json* inline_instance = body.find("instance");
  const Json* dataset = body.find("dataset");
  if ((inline_instance != nullptr) == (dataset != nullptr)) {
    throw BadRequest("request needs exactly one of 'instance' and 'dataset'");
  }
  return decode([&] {
    if (inline_instance != nullptr) return instance_from_json(*inline_instance);
    const Json* index = body.find("index");
    const std::size_t i =
        index == nullptr ? 0 : static_cast<std::size_t>(index->as_u64("'index'"));
    return datasets::generate_instance(dataset->as_string(), seed, i);
  });
}

/// Microseconds elapsed since `from`, as a decimal string with 1ns
/// resolution (for the X-Saga-Timing-Us header).
std::string elapsed_us(std::chrono::steady_clock::time_point from) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() - from)
          .count();
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%03lld", static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

/// Batch group key: requests may only gather with batch-mates from the
/// same dataset family (the spec up to '?'), so one pass touches related
/// generator state; inline-instance requests form their own group.
std::string batch_group(const Json& body) {
  const Json* dataset = body.find("dataset");
  if (dataset == nullptr || !dataset->is_string()) return "@inline";
  const std::string& spec = dataset->as_string();
  return spec.substr(0, spec.find('?'));
}

// Unique-id generator: the relaxed fetch_add is enough because uniqueness
// needs only the atomicity of the RMW, not any cross-thread ordering.
std::atomic<std::uint64_t> next_service_serial{1};

}  // namespace

ScheduleService::ScheduleService() : ScheduleService(Options{}) {}

ScheduleService::ScheduleService(const Options& options)
    : options_(options),
      start_(std::chrono::steady_clock::now()),
      serial_(next_service_serial.fetch_add(1, std::memory_order_relaxed)) {
  if (options_.batch.enabled()) batcher_ = std::make_unique<BatchGatherer>(options_.batch);
}

double ScheduleService::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

TimelineArena& ScheduleService::thread_arena(bool& warm) {
  // Keyed by the service's serial, not `this`: a later service reusing a
  // dead one's address must not inherit its arenas.
  //
  // Concurrency: the cache is thread_local, so the map and every arena in
  // it are owned by exactly one worker thread — no atomics or locks needed,
  // and TSan agrees. The only shared state this function touches is the
  // telemetry counter, which is an atomic RMW. (Iteration order of the map
  // never matters: it is looked up by key only, never serialized.)
  thread_local std::unordered_map<std::uint64_t, std::unique_ptr<TimelineArena>> arenas;
  std::unique_ptr<TimelineArena>& slot = arenas[serial_];
  warm = slot != nullptr;
  if (!warm) slot = std::make_unique<TimelineArena>();
  telemetry_.record_arena(warm);
  return *slot;
}

HttpResponse ScheduleService::handle(const HttpRequest& req) {
  const auto started = std::chrono::steady_clock::now();
  const Endpoint endpoint = classify(req.target);
  const bool workload = endpoint == Endpoint::kSchedule || endpoint == Endpoint::kCompare;

  // Admission control: only the scheduling workload is subject to
  // shedding — /metrics and /healthz classify as their own endpoints and
  // never reach this check, so scrapes and liveness probes survive
  // overload by construction (AdmissionController::exempt_target states
  // the same contract for the accept-level backstop).
  if (workload && options_.admission != nullptr) {
    Telemetry::Gauges load;
    if (gauge_sampler_) load = gauge_sampler_();
    if (!options_.admission->admit(load.queue_depth, load.inflight)) {
      HttpResponse shed = options_.admission->shed_response(load.queue_depth, load.inflight);
      // No timing header on the shed fast path: apart from Retry-After the
      // whole answer is deterministic.
      const double latency_us =
          std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - started)
              .count();
      telemetry_.record_request(endpoint, shed.status, latency_us);
      return shed;
    }
  }

  HttpResponse resp;
  try {
    resp = route(req, endpoint);
  } catch (const BadRequest& e) {
    resp = error_response(400, e.what());
  } catch (const std::exception& e) {
    resp = error_response(500, e.what());
  } catch (...) {
    resp = error_response(500, "unknown internal error");
  }
  if (workload) {
    // Wall-clock timing travels as a header so identical request bodies
    // keep byte-identical response bodies.
    resp.headers.emplace_back("X-Saga-Timing-Us", elapsed_us(started));
  }
  const double latency_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - started)
          .count();
  telemetry_.record_request(endpoint, resp.status, latency_us);
  if (workload && resp.status == 200 && options_.admission != nullptr) {
    // Successful workload requests only: feeding shed fast-paths or error
    // turnarounds into the estimate would drag Retry-After toward zero.
    options_.admission->record_service_us(latency_us);
  }
  return resp;
}

HttpResponse ScheduleService::route(const HttpRequest& req, Endpoint endpoint) {
  const auto method_guard = [&](const char* allow) -> bool {
    return req.method != allow;
  };
  switch (endpoint) {
    case Endpoint::kSchedule:
    case Endpoint::kCompare: {
      if (method_guard("POST")) {
        HttpResponse resp = error_response(405, req.method + " is not supported on " +
                                                    req.target + "; use POST");
        resp.headers.emplace_back("Allow", "POST");
        return resp;
      }
      return endpoint == Endpoint::kSchedule ? handle_schedule(req) : handle_compare(req);
    }
    case Endpoint::kMetrics:
    case Endpoint::kHealthz: {
      if (method_guard("GET")) {
        HttpResponse resp = error_response(405, req.method + " is not supported on " +
                                                    req.target + "; use GET");
        resp.headers.emplace_back("Allow", "GET");
        return resp;
      }
      if (endpoint == Endpoint::kMetrics) return handle_metrics();
      HttpResponse resp;
      resp.body = "{\"status\": \"ok\"}\n";
      return resp;
    }
    case Endpoint::kOther:
      return error_response(404, "unknown path '" + req.target + "'" +
                                     did_you_mean(req.target, known_paths()) +
                                     "; known paths: " + join(known_paths(), ", "));
  }
  return error_response(500, "unroutable request");  // unreachable
}

HttpResponse ScheduleService::handle_schedule(const HttpRequest& req) {
  static const std::vector<std::string> kKeys = {"scheduler", "instance", "dataset",
                                                 "index",     "seed",     "timings"};
  const Json body = parse_body(req, kKeys, "/v1/schedule");
  const std::uint64_t seed = seed_of(body);
  const bool timings = timings_of(body);

  const Json* scheduler_spec = body.find("scheduler");
  if (scheduler_spec == nullptr) {
    throw BadRequest("/v1/schedule needs a 'scheduler' key (a scheduler spec string)");
  }
  const std::string spec = decode([&] { return scheduler_spec->as_string(); });
  const SchedulerPtr scheduler = decode([&] { return SchedulerRegistry::instance().make(spec, seed); });
  const ProblemInstance inst = resolve_instance(body, seed);

  const auto run = [&]() -> HttpResponse {
    bool warm = false;
    TimelineArena& arena = thread_arena(warm);
    const auto run_started = std::chrono::steady_clock::now();
    const Schedule schedule = scheduler->schedule(inst, &arena);
    const std::string schedule_us = elapsed_us(run_started);

    Json out = Json::object({{"scheduler", Json::string(spec)},
                             {"tasks", Json::number(static_cast<double>(inst.graph.task_count()))},
                             {"nodes", Json::number(static_cast<double>(inst.network.node_count()))},
                             {"makespan", Json::number(schedule.makespan())},
                             {"schedule", schedule_to_json(schedule)}});
    if (timings) {
      // Opt-in and documented as nondeterministic: embedding wall-clock time
      // forfeits byte-identical responses.
      out.set("timing_us", Json::object({{"schedule", Json::string(schedule_us)}}));
    }
    HttpResponse resp;
    resp.body = out.dump() + "\n";
    return resp;
  };

  // Tiny deterministic requests gather onto one warm pass; `timings`
  // bodies are excluded because their responses are not pure functions of
  // the request bytes (dedup would hand one member another's wall-clock).
  if (batcher_ != nullptr && !timings && inst.graph.task_count() <= options_.batch.max_tasks) {
    // Captured locals stay valid across threads: every batch member blocks
    // inside run() until its response exists.
    return batcher_->run(batch_group(body), req.body, run);
  }
  return run();
}

HttpResponse ScheduleService::handle_compare(const HttpRequest& req) {
  static const std::vector<std::string> kKeys = {"schedulers", "instance", "dataset",
                                                 "index",      "seed",     "timings"};
  const Json body = parse_body(req, kKeys, "/v1/compare");
  const std::uint64_t seed = seed_of(body);
  const bool timings = timings_of(body);

  const Json* specs = body.find("schedulers");
  if (specs == nullptr) {
    throw BadRequest("/v1/compare needs a 'schedulers' key (an array of scheduler spec strings)");
  }
  const JsonArray& spec_array = decode([&]() -> const JsonArray& { return specs->as_array(); });
  if (spec_array.empty()) {
    throw BadRequest("/v1/compare 'schedulers' must name at least one scheduler");
  }
  std::vector<std::string> names;
  std::vector<SchedulerPtr> schedulers;
  names.reserve(spec_array.size());
  schedulers.reserve(spec_array.size());
  for (std::size_t i = 0; i < spec_array.size(); ++i) {
    const std::string spec =
        decode([&] { return spec_array[i].as_string(); });
    schedulers.push_back(decode([&] { return SchedulerRegistry::instance().make(spec, seed); }));
    names.push_back(spec);
  }
  ProblemInstance inst = resolve_instance(body, seed);

  // Large rosters stream row-by-row as chunks instead of buffering the
  // whole body; each row is computed when its chunk is pulled (on the
  // serving worker's thread, so the warm arena still applies) and the
  // spliced chunks are byte-identical to the buffered body — pinned by the
  // determinism suite. `timings` bodies stay buffered: timing_us trails
  // the document and would force buffering anyway.
  if (options_.stream_rows_threshold != 0 && !timings &&
      spec_array.size() >= options_.stream_rows_threshold) {
    struct StreamState {
      ProblemInstance inst;
      std::vector<std::string> names;
      std::vector<SchedulerPtr> schedulers;
      TimelineArena* arena = nullptr;
      std::vector<double> makespans;
      std::size_t best = 0;
      std::size_t stage = 0;  // 0 = prefix, 1..n = rows, n+1 = suffix, then end
    };
    auto state = std::make_shared<StreamState>();
    state->inst = std::move(inst);
    state->names = std::move(names);
    state->schedulers = std::move(schedulers);
    state->makespans.reserve(state->schedulers.size());

    HttpResponse resp;
    resp.chunk_source = [this, state]() -> std::string {
      const std::size_t n = state->schedulers.size();
      if (state->stage == 0) {
        ++state->stage;
        return "{\"tasks\": " +
               Json::number(static_cast<double>(state->inst.graph.task_count())).dump() +
               ", \"nodes\": " +
               Json::number(static_cast<double>(state->inst.network.node_count())).dump() +
               ", \"rows\": [";
      }
      if (state->stage <= n) {
        const std::size_t i = state->stage - 1;
        ++state->stage;
        if (state->arena == nullptr) {
          // One arena acquisition per request, exactly like the buffered
          // path — keeps the arena-reuse telemetry identical.
          bool warm = false;
          state->arena = &thread_arena(warm);
        }
        const double makespan = state->schedulers[i]->plan_makespan(state->inst, state->arena);
        state->makespans.push_back(makespan);
        if (makespan < state->makespans[state->best]) state->best = i;
        const Json row = Json::object({{"scheduler", Json::string(state->names[i])},
                                       {"makespan", Json::number(makespan)}});
        return (i == 0 ? "" : ", ") + row.dump();
      }
      if (state->stage == n + 1) {
        ++state->stage;
        return "], \"best\": " +
               Json::object({{"scheduler", Json::string(state->names[state->best])},
                             {"makespan", Json::number(state->makespans[state->best])}})
                   .dump() +
               "}\n";
      }
      return {};
    };
    return resp;
  }

  bool warm = false;
  TimelineArena& arena = thread_arena(warm);
  const auto run_started = std::chrono::steady_clock::now();
  JsonArray rows;
  rows.reserve(schedulers.size());
  std::size_t best = 0;
  std::vector<double> makespans;
  makespans.reserve(schedulers.size());
  for (std::size_t i = 0; i < schedulers.size(); ++i) {
    const double makespan = schedulers[i]->plan_makespan(inst, &arena);
    makespans.push_back(makespan);
    if (makespan < makespans[best]) best = i;
    rows.push_back(Json::object(
        {{"scheduler", Json::string(names[i])}, {"makespan", Json::number(makespan)}}));
  }
  const std::string compare_us = elapsed_us(run_started);

  Json out = Json::object({{"tasks", Json::number(static_cast<double>(inst.graph.task_count()))},
                           {"nodes", Json::number(static_cast<double>(inst.network.node_count()))},
                           {"rows", Json::array(std::move(rows))},
                           {"best", Json::object({{"scheduler", Json::string(names[best])},
                                                  {"makespan", Json::number(makespans[best])}})}});
  if (timings) {
    out.set("timing_us", Json::object({{"compare", Json::string(compare_us)}}));
  }
  HttpResponse resp;
  resp.body = out.dump() + "\n";
  return resp;
}

HttpResponse ScheduleService::handle_metrics() {
  Telemetry::Gauges gauges;
  if (gauge_sampler_) gauges = gauge_sampler_();
  gauges.uptime_seconds = uptime_seconds();
  if (options_.admission != nullptr) gauges.admission_shed = options_.admission->shed_total();
  if (batcher_ != nullptr) {
    gauges.batch_requests = batcher_->requests_total();
    gauges.batch_passes = batcher_->passes_total();
    gauges.batch_coalesced = batcher_->coalesced_total();
  }
  HttpResponse resp;
  resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  resp.body = telemetry_.render_prometheus(gauges);
  return resp;
}

}  // namespace saga::serve
