#include "serve/telemetry.hpp"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <utility>

namespace saga::serve {

namespace {

constexpr std::array<std::string_view, kEndpointCount> kEndpointNames = {
    "schedule", "compare", "metrics", "healthz", "other"};

constexpr std::array<std::string_view, 3> kStatusClasses = {"2xx", "4xx", "5xx"};

/// 2xx -> 0, 4xx -> 1, everything else (including 5xx) -> 2. 3xx/1xx never
/// leave the handlers, so the collapse loses nothing in practice.
std::size_t status_class_index(int status) {
  if (status >= 200 && status < 300) return 0;
  if (status >= 400 && status < 500) return 1;
  return 2;
}

#if defined(__GNUC__)
void append(std::string& out, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
#endif
void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

std::string_view to_string(Endpoint endpoint) {
  return kEndpointNames[static_cast<std::size_t>(endpoint)];
}

void Telemetry::record_request(Endpoint endpoint, int status, double latency_us) {
  by_endpoint_status_[static_cast<std::size_t>(endpoint)][status_class_index(status)].fetch_add(
      1, std::memory_order_relaxed);
  latency_us_.record(latency_us);
}

void Telemetry::record_arena(bool warm) {
  (warm ? arena_hits_ : arena_misses_).fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Telemetry::requests_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& row : by_endpoint_status_) {
    for (const auto& cell : row) total += cell.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Telemetry::requests(Endpoint endpoint) const noexcept {
  std::uint64_t total = 0;
  for (const auto& cell : by_endpoint_status_[static_cast<std::size_t>(endpoint)]) {
    total += cell.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Telemetry::requests(Endpoint endpoint, int status_class) const noexcept {
  return by_endpoint_status_[static_cast<std::size_t>(endpoint)]
                            [status_class_index(status_class * 100)]
                                .load(std::memory_order_relaxed);
}

std::uint64_t Telemetry::arena_hits() const noexcept {
  return arena_hits_.load(std::memory_order_relaxed);
}

std::uint64_t Telemetry::arena_misses() const noexcept {
  return arena_misses_.load(std::memory_order_relaxed);
}

std::string Telemetry::render_prometheus(const Gauges& gauges) const {
  std::string out;
  out.reserve(4096);

  out += "# HELP saga_requests_total Requests handled, by endpoint and status class.\n";
  out += "# TYPE saga_requests_total counter\n";
  append(out, "saga_requests_total %llu\n",
         static_cast<unsigned long long>(requests_total()));
  for (std::size_t e = 0; e < kEndpointCount; ++e) {
    for (std::size_t s = 0; s < kStatusClasses.size(); ++s) {
      const std::uint64_t n = by_endpoint_status_[e][s].load(std::memory_order_relaxed);
      if (n == 0) continue;  // Prometheus treats absent series as zero
      append(out, "saga_requests_total{endpoint=\"%.*s\",status=\"%.*s\"} %llu\n",
             static_cast<int>(kEndpointNames[e].size()), kEndpointNames[e].data(),
             static_cast<int>(kStatusClasses[s].size()), kStatusClasses[s].data(),
             static_cast<unsigned long long>(n));
    }
  }

  out += "# HELP saga_request_latency_us Handler latency in microseconds.\n";
  out += "# TYPE saga_request_latency_us histogram\n";
  const auto counts = latency_us_.counts();
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < latency_us_.bounds().size(); ++i) {
    cumulative += counts[i];
    append(out, "saga_request_latency_us_bucket{le=\"%s\"} %llu\n",
           format_value(latency_us_.bounds()[i]).c_str(),
           static_cast<unsigned long long>(cumulative));
  }
  cumulative += counts.back();
  append(out, "saga_request_latency_us_bucket{le=\"+Inf\"} %llu\n",
         static_cast<unsigned long long>(cumulative));
  append(out, "saga_request_latency_us_sum %s\n", format_value(latency_us_.sum()).c_str());
  append(out, "saga_request_latency_us_count %llu\n",
         static_cast<unsigned long long>(cumulative));

  out += "# HELP saga_request_latency_p_us Latency percentiles (bucket upper bounds).\n";
  out += "# TYPE saga_request_latency_p_us gauge\n";
  for (const auto& [label, p] :
       {std::pair<const char*, double>{"50", 0.5}, {"90", 0.9}, {"99", 0.99}}) {
    append(out, "saga_request_latency_p_us{p=\"%s\"} %s\n", label,
           format_value(latency_us_.percentile(p)).c_str());
  }

  out += "# HELP saga_arena_reuse_total Warm TimelineArena reuse on the request path.\n";
  out += "# TYPE saga_arena_reuse_total counter\n";
  append(out, "saga_arena_reuse_total{kind=\"hit\"} %llu\n",
         static_cast<unsigned long long>(arena_hits()));
  append(out, "saga_arena_reuse_total{kind=\"miss\"} %llu\n",
         static_cast<unsigned long long>(arena_misses()));

  out += "# HELP saga_queue_depth Connections queued for a worker thread.\n";
  out += "# TYPE saga_queue_depth gauge\n";
  append(out, "saga_queue_depth %zu\n", gauges.queue_depth);
  out += "# HELP saga_inflight_requests Requests currently being handled.\n";
  out += "# TYPE saga_inflight_requests gauge\n";
  append(out, "saga_inflight_requests %zu\n", gauges.inflight);
  out += "# HELP saga_pool_jobs_completed_total Worker-pool jobs picked up since start.\n";
  out += "# TYPE saga_pool_jobs_completed_total counter\n";
  append(out, "saga_pool_jobs_completed_total %llu\n",
         static_cast<unsigned long long>(gauges.jobs_completed));
  out += "# HELP saga_connections_total TCP connections accepted since start.\n";
  out += "# TYPE saga_connections_total counter\n";
  append(out, "saga_connections_total %llu\n",
         static_cast<unsigned long long>(gauges.connections));
  out += "# HELP saga_uptime_seconds Seconds since the daemon started.\n";
  out += "# TYPE saga_uptime_seconds gauge\n";
  append(out, "saga_uptime_seconds %.3f\n", gauges.uptime_seconds);

  out += "# HELP saga_admission_shed_total Requests shed with 429 by admission control.\n";
  out += "# TYPE saga_admission_shed_total counter\n";
  append(out, "saga_admission_shed_total %llu\n",
         static_cast<unsigned long long>(gauges.admission_shed));
  out += "# HELP saga_batch_requests_total Requests routed through the batch gatherer.\n";
  out += "# TYPE saga_batch_requests_total counter\n";
  append(out, "saga_batch_requests_total %llu\n",
         static_cast<unsigned long long>(gauges.batch_requests));
  out += "# HELP saga_batch_passes_total Gather passes (leader sweeps) executed.\n";
  out += "# TYPE saga_batch_passes_total counter\n";
  append(out, "saga_batch_passes_total %llu\n",
         static_cast<unsigned long long>(gauges.batch_passes));
  out += "# HELP saga_batch_coalesced_total Batch members answered from a byte-identical mate.\n";
  out += "# TYPE saga_batch_coalesced_total counter\n";
  append(out, "saga_batch_coalesced_total %llu\n",
         static_cast<unsigned long long>(gauges.batch_coalesced));

  return out;
}

}  // namespace saga::serve
