#pragma once

#include <iosfwd>
#include <string>

#include "exp/json.hpp"
#include "graph/problem_instance.hpp"
#include "sched/schedule.hpp"

/// \file codec.hpp
/// JSON wire codec for problem instances and schedules — the canonical
/// request/response serialization of the `saga serve` daemon, and the format
/// the future distributed experiment fabric and plugin ABI will reuse. The
/// codec is exact: every double renders in shortest round-trip form (via
/// exp::Json), infinite link strengths as the string "inf", so
/// encode -> decode -> encode is byte-identical (pinned by
/// tests/test_serve_codec.cpp).
///
/// Instance schema (all fields required; task/node ids are array indices):
///
///   {
///     "format": "saga-instance",
///     "version": 1,
///     "tasks": [{"name": "t0", "cost": 1.5}, ...],
///     "deps":  [{"from": 0, "to": 1, "size": 2.0}, ...]   (from,to) sorted
///     "nodes": [{"speed": 1.0}, ...],
///     "links": [{"a": 0, "b": 1, "strength": 2.0}, ...]   every unordered
///   }                                                     pair exactly once,
///                                                         (a,b) sorted, a<b
///
/// Schedule schema ("makespan" is derived and re-derived on decode):
///
///   {
///     "format": "saga-schedule",
///     "version": 1,
///     "makespan": 12.5,
///     "assignments": [{"task": 0, "node": 1, "start": 0, "finish": 2.5}, ...]
///   }

namespace saga::serve {

[[nodiscard]] exp::Json instance_to_json(const ProblemInstance& inst);

/// Decodes and validates an instance document; throws std::invalid_argument
/// (with JSON position context where available) on schema violations:
/// missing/unknown keys, non-dense ids, duplicate or cycle-closing
/// dependencies, missing or repeated links.
[[nodiscard]] ProblemInstance instance_from_json(const exp::Json& json);

[[nodiscard]] exp::Json schedule_to_json(const Schedule& schedule);
[[nodiscard]] Schedule schedule_from_json(const exp::Json& json);

/// Reads an instance in either interchange format, sniffing the first
/// non-whitespace byte: '{' selects this JSON codec, anything else the
/// line-oriented text format of graph/serialization.hpp. Used by the CLI
/// (`saga schedule`/`validate`/`compare`) and spec instance files, so wire
/// fixtures produced by `saga generate --json` are consumable everywhere a
/// text instance is.
[[nodiscard]] ProblemInstance load_instance_auto(std::istream& in);
[[nodiscard]] ProblemInstance instance_from_any_string(const std::string& text);

}  // namespace saga::serve
