#include "serve/batch.hpp"

#include <chrono>
#include <exception>
#include <future>
#include <stdexcept>
#include <utility>
#include <vector>

namespace saga::serve {

/// One gather window's membership. members[0] is the leader; followers
/// append under mutex_ while the batch is open. Pointers into member
/// stacks (dedup bytes, work) stay valid because every member blocks until
/// the leader fulfils its promise.
struct BatchGatherer::Batch {
  struct Member {
    const std::string* dedup;
    const Work* work;
    std::promise<HttpResponse> promise;  // unused for the leader (slot 0)
  };
  std::vector<Member> members;
  bool closed = false;
  std::condition_variable full;  // signals the leader when max_batch is reached
};

HttpResponse BatchGatherer::run(const std::string& group, const std::string& dedup,
                                const Work& work) {
  requests_.fetch_add(1, std::memory_order_relaxed);

  std::shared_ptr<Batch> batch;
  std::future<HttpResponse> ticket;
  {
    std::unique_lock lock(mutex_);
    auto it = open_.find(group);
    if (it != open_.end() && !it->second->closed &&
        it->second->members.size() < options_.max_batch) {
      // Join the open batch as a follower.
      batch = it->second;
      batch->members.push_back(Batch::Member{&dedup, &work, {}});
      ticket = batch->members.back().promise.get_future();
      if (batch->members.size() >= options_.max_batch) {
        batch->closed = true;
        open_.erase(it);
        batch->full.notify_one();
      }
      batch.reset();
    } else {
      // Open a new batch and lead it. A closed-but-still-present entry
      // cannot be joined, so replace it.
      batch = std::make_shared<Batch>();
      batch->members.push_back(Batch::Member{&dedup, &work, {}});
      open_[group] = batch;
    }
  }

  if (!batch) return ticket.get();  // follower: rethrows the work's exception

  // Leader: give followers up to window_us to join, then close the batch
  // so late arrivals start their own.
  {
    std::unique_lock lock(mutex_);
    batch->full.wait_for(lock, std::chrono::microseconds(options_.window_us),
                         [&] { return batch->closed; });
    if (!batch->closed) {
      batch->closed = true;
      auto it = open_.find(group);
      if (it != open_.end() && it->second == batch) open_.erase(it);
    }
  }

  // Execute the pass on this thread (one shared warm arena). Members with
  // byte-identical requests reuse the first execution — the service's
  // determinism contract makes responses a pure function of the bytes.
  passes_.fetch_add(1, std::memory_order_relaxed);
  struct Outcome {
    HttpResponse response;
    bool failed = false;
    std::string error;  // what() of the work's exception
  };
  std::vector<Outcome> outcomes(batch->members.size());
  std::vector<std::size_t> source(batch->members.size());
  for (std::size_t i = 0; i < batch->members.size(); ++i) {
    source[i] = i;
    for (std::size_t j = 0; j < i; ++j) {
      if (*batch->members[j].dedup == *batch->members[i].dedup) {
        source[i] = j;
        break;
      }
    }
    if (source[i] != i) {
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    try {
      outcomes[i].response = (*batch->members[i].work)();
    } catch (const std::exception& e) {
      outcomes[i].failed = true;
      outcomes[i].error = e.what();
    } catch (...) {
      outcomes[i].failed = true;
      outcomes[i].error = "batched request failed with a non-standard exception";
    }
  }
  // Failures are materialized into the message once and every member gets
  // its OWN freshly-allocated runtime_error (c_str() defeats COW string
  // sharing): handing one exception_ptr to several members would have them
  // concurrently read and release a single shared exception object. The
  // service maps anything thrown inside batched work to a 500 with the
  // message, so the type narrowing is not observable through HTTP.
  for (std::size_t i = 1; i < batch->members.size(); ++i) {
    const Outcome& out = outcomes[source[i]];
    if (out.failed) {
      batch->members[i].promise.set_exception(
          std::make_exception_ptr(std::runtime_error(out.error.c_str())));
    } else {
      batch->members[i].promise.set_value(out.response);
    }
  }
  const Outcome& mine = outcomes[source[0]];
  if (mine.failed) throw std::runtime_error(mine.error.c_str());
  return mine.response;
}

}  // namespace saga::serve
