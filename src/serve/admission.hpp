#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/stats.hpp"
#include "serve/http.hpp"

/// \file admission.hpp
/// Admission control / backpressure for the `saga serve` daemon. Without
/// it the daemon accepts unbounded work: a burst of connections simply
/// piles onto the worker pool's queue while `saga_queue_depth` climbs and
/// every queued client waits the full backlog out. The AdmissionController
/// caps that backlog: schedule/compare requests arriving while the queue
/// (or the in-flight count) is over its limit are shed with a
/// deterministic `429 Too Many Requests` body plus a `Retry-After` header
/// derived from the observed p50 service time and the current backlog —
/// clients learn to back off instead of timing out.
///
/// Contract:
///   - The 429 *body* is a fixed string (`shed_body()`), so overload
///     responses are byte-identical and pinnable; everything load-derived
///     travels in the `Retry-After` header.
///   - `/healthz` and `/metrics` are never shed (`exempt_target`), so
///     liveness probes and Prometheus scrapes survive overload.
///   - A limit of 0 means unlimited (that axis never sheds).
///
/// Two layers consult one controller:
///   - ScheduleService::handle sheds per request (path-aware, telemetry
///     recorded) using the daemon's sampled queue-depth/in-flight gauges.
///   - HttpServer's accept loop uses the ThreadPool::try_submit seam as a
///     coarse connection-count backstop (`Options::max_pending`) and
///     answers the same canned 429 best-effort before closing. That layer
///     is path-blind memory protection; it is sized well above max_queue
///     so the path-aware layer always engages first.
///
/// Thread-safety: all members are atomics or the lock-free FixedHistogram;
/// every method is safe to call concurrently from request handlers.

namespace saga::serve {

class AdmissionController {
 public:
  struct Limits {
    /// Shed when the sampled worker-queue depth exceeds this (0 = unlimited).
    std::size_t max_queue = 0;
    /// Shed when the sampled in-flight request count exceeds this
    /// (0 = unlimited). The sample includes the request being decided, so
    /// `max_inflight = M` admits at most M concurrent handlers.
    std::size_t max_inflight = 0;
  };

  explicit AdmissionController(const Limits& limits) : limits_(limits) {}

  [[nodiscard]] const Limits& limits() const noexcept { return limits_; }

  /// Endpoints that must never be shed: scrapes and liveness probes have
  /// to succeed precisely when the daemon is overloaded.
  [[nodiscard]] static bool exempt_target(std::string_view target) noexcept {
    return target == "/healthz" || target == "/metrics";
  }

  /// Pure admission decision against a load snapshot.
  [[nodiscard]] bool admit(std::size_t queued, std::size_t inflight) const noexcept {
    if (limits_.max_queue != 0 && queued > limits_.max_queue) return false;
    if (limits_.max_inflight != 0 && inflight > limits_.max_inflight) return false;
    return true;
  }

  /// Feeds the Retry-After estimate with one observed handler service time
  /// (successful schedule/compare requests only, so shed fast-paths never
  /// drag the estimate toward zero).
  void record_service_us(double us) noexcept { service_us_.record(us); }

  /// Whole seconds a shed client should wait: the observed p50 service
  /// time times the work ahead of it (backlog + itself), clamped to
  /// [1, 60]. Before any observation exists the estimate is 1 second.
  [[nodiscard]] int retry_after_seconds(std::size_t queued, std::size_t inflight) const noexcept;

  /// The deterministic shed payload: status 429, `shed_body()`, and a
  /// `Retry-After` header for the given load snapshot. Counts the shed.
  [[nodiscard]] HttpResponse shed_response(std::size_t queued, std::size_t inflight);

  /// The fixed 429 body every shed answer carries, newline-terminated
  /// valid JSON. Deterministic by design: tests and clients may pin it.
  [[nodiscard]] static const std::string& shed_body();

  /// Requests (and backstop connections) shed so far.
  [[nodiscard]] std::uint64_t shed_total() const noexcept {
    // Relaxed: a monotonic counter written by atomic RMWs — individually
    // exact, never used to prove cross-thread ordering.
    return shed_total_.load(std::memory_order_relaxed);
  }

  /// Observed service-time distribution (the Retry-After input).
  [[nodiscard]] const FixedHistogram& service_time() const noexcept { return service_us_; }

 private:
  Limits limits_;
  FixedHistogram service_us_{FixedHistogram::latency_us()};
  std::atomic<std::uint64_t> shed_total_{0};
};

}  // namespace saga::serve
