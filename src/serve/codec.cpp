#include "serve/codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <istream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/nearest.hpp"
#include "graph/serialization.hpp"

namespace saga::serve {

namespace {

using exp::Json;
using exp::JsonArray;
using exp::JsonObject;

/// Strengths can be infinite (zero-cost links); JSON has no inf literal, so
/// they cross the wire as the string "inf" (the same spelling the text
/// format and the result sink use).
Json number_or_inf(double v) {
  if (std::isinf(v)) return Json::string(format_exact(v));
  return Json::number(v);
}

double to_double(const Json& json, const std::string& what) {
  if (json.is_string()) return parse_exact(json.as_string(), what);
  if (!json.is_number()) {
    throw std::invalid_argument(what + " must be a number or \"inf\"" + json.position_suffix());
  }
  return json.as_number();
}

/// Positive, finite weight (task cost, node speed).
double to_weight(const Json& json, const std::string& what) {
  const double v = to_double(json, what);
  if (!(v > 0.0) || std::isinf(v)) {
    throw std::invalid_argument(what + " must be positive and finite" + json.position_suffix());
  }
  return v;
}

void check_keys(const Json& object, const std::vector<std::string>& allowed,
                const std::string& context) {
  for (const auto& [key, value] : object.as_object()) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      throw std::invalid_argument("unknown key '" + key + "' in " + context +
                                  did_you_mean(key, allowed) +
                                  "; valid keys: " + join(allowed, ", ") +
                                  object.position_suffix());
    }
  }
}

const Json& require(const Json& object, const char* key, const std::string& context) {
  const Json* value = object.find(key);
  if (value == nullptr) {
    throw std::invalid_argument(context + " needs a '" + key + "' key" +
                                object.position_suffix());
  }
  return *value;
}

void check_header(const Json& json, const char* format, const std::string& context) {
  if (!json.is_object()) {
    throw std::invalid_argument(context + " must be a JSON object" + json.position_suffix());
  }
  const Json& fmt = require(json, "format", context);
  if (fmt.as_string() != format) {
    throw std::invalid_argument(context + " 'format' must be \"" + format + "\" (got " +
                                fmt.dump() + ")" + fmt.position_suffix());
  }
  const Json& version = require(json, "version", context);
  if (version.as_u64(context + " 'version'") != 1) {
    throw std::invalid_argument(context + " version " + version.dump() +
                                " is not supported (this build speaks version 1)" +
                                version.position_suffix());
  }
}

}  // namespace

Json instance_to_json(const ProblemInstance& inst) {
  const auto& g = inst.graph;
  const auto& n = inst.network;

  JsonArray tasks;
  tasks.reserve(g.task_count());
  for (TaskId t = 0; t < g.task_count(); ++t) {
    tasks.push_back(Json::object({{"name", Json::string(g.name(t))},
                                  {"cost", Json::number(g.cost(t))}}));
  }

  JsonArray deps;
  deps.reserve(g.dependency_count());
  for (const auto& [from, to] : g.dependencies()) {
    deps.push_back(Json::object({{"from", Json::number(from)},
                                 {"to", Json::number(to)},
                                 {"size", Json::number(g.dependency_cost(from, to))}}));
  }

  JsonArray nodes;
  nodes.reserve(n.node_count());
  for (NodeId v = 0; v < n.node_count(); ++v) {
    nodes.push_back(Json::object({{"speed", Json::number(n.speed(v))}}));
  }

  JsonArray links;
  links.reserve(n.node_count() * (n.node_count() - 1) / 2);
  for (NodeId a = 0; a < n.node_count(); ++a) {
    for (NodeId b = a + 1; b < n.node_count(); ++b) {
      links.push_back(Json::object({{"a", Json::number(a)},
                                    {"b", Json::number(b)},
                                    {"strength", number_or_inf(n.strength(a, b))}}));
    }
  }

  return Json::object({{"format", Json::string("saga-instance")},
                       {"version", Json::number(1)},
                       {"tasks", Json::array(std::move(tasks))},
                       {"deps", Json::array(std::move(deps))},
                       {"nodes", Json::array(std::move(nodes))},
                       {"links", Json::array(std::move(links))}});
}

ProblemInstance instance_from_json(const Json& json) {
  const std::string context = "instance";
  check_header(json, "saga-instance", context);
  check_keys(json, {"format", "version", "tasks", "deps", "nodes", "links"}, context);

  ProblemInstance inst;

  const JsonArray& tasks = require(json, "tasks", context).as_array();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const std::string what = "task " + std::to_string(i);
    check_keys(tasks[i], {"name", "cost"}, what);
    const Json* name = tasks[i].find("name");
    const double cost = to_weight(require(tasks[i], "cost", what), what + " 'cost'");
    if (name != nullptr) {
      inst.graph.add_task(name->as_string(), cost);
    } else {
      inst.graph.add_task(cost);
    }
  }

  const JsonArray& deps = require(json, "deps", context).as_array();
  for (std::size_t i = 0; i < deps.size(); ++i) {
    const std::string what = "dep " + std::to_string(i);
    check_keys(deps[i], {"from", "to", "size"}, what);
    const std::uint64_t from = require(deps[i], "from", what).as_u64(what + " 'from'");
    const std::uint64_t to = require(deps[i], "to", what).as_u64(what + " 'to'");
    if (from >= tasks.size() || to >= tasks.size()) {
      throw std::invalid_argument(what + " references task " +
                                  std::to_string(std::max(from, to)) + " but there are only " +
                                  std::to_string(tasks.size()) + " tasks" +
                                  deps[i].position_suffix());
    }
    const double size = to_double(require(deps[i], "size", what), what + " 'size'");
    if (!(size >= 0.0) || std::isinf(size)) {
      throw std::invalid_argument(what + " 'size' must be non-negative and finite" +
                                  deps[i].position_suffix());
    }
    if (!inst.graph.add_dependency(static_cast<TaskId>(from), static_cast<TaskId>(to), size)) {
      throw std::invalid_argument(what + " (" + std::to_string(from) + " -> " +
                                  std::to_string(to) +
                                  ") is a duplicate, self-loop, or would create a cycle" +
                                  deps[i].position_suffix());
    }
  }

  const JsonArray& nodes = require(json, "nodes", context).as_array();
  if (nodes.empty()) {
    throw std::invalid_argument("instance needs at least one node" + json.position_suffix());
  }
  inst.network = Network(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::string what = "node " + std::to_string(i);
    check_keys(nodes[i], {"speed"}, what);
    inst.network.set_speed(static_cast<NodeId>(i),
                           to_weight(require(nodes[i], "speed", what), what + " 'speed'"));
  }

  const JsonArray& links = require(json, "links", context).as_array();
  const std::size_t expected = nodes.size() * (nodes.size() - 1) / 2;
  if (links.size() != expected) {
    throw std::invalid_argument("expected " + std::to_string(expected) +
                                " links (one per unordered node pair), got " +
                                std::to_string(links.size()) + json.position_suffix());
  }
  std::vector<char> seen(expected, 0);
  for (std::size_t i = 0; i < links.size(); ++i) {
    const std::string what = "link " + std::to_string(i);
    check_keys(links[i], {"a", "b", "strength"}, what);
    const std::uint64_t a = require(links[i], "a", what).as_u64(what + " 'a'");
    const std::uint64_t b = require(links[i], "b", what).as_u64(what + " 'b'");
    if (a >= nodes.size() || b >= nodes.size() || a == b) {
      throw std::invalid_argument(what + " (" + std::to_string(a) + ", " + std::to_string(b) +
                                  ") is not a pair of distinct nodes < " +
                                  std::to_string(nodes.size()) + links[i].position_suffix());
    }
    const std::uint64_t lo = std::min(a, b), hi = std::max(a, b);
    // Same packed upper-triangle indexing as Network.
    const std::size_t slot = lo * (2 * nodes.size() - lo - 1) / 2 + (hi - lo - 1);
    if (seen[slot] != 0) {
      throw std::invalid_argument(what + " repeats pair (" + std::to_string(lo) + ", " +
                                  std::to_string(hi) + ")" + links[i].position_suffix());
    }
    seen[slot] = 1;
    const double strength = to_double(require(links[i], "strength", what), what + " 'strength'");
    if (!(strength > 0.0)) {
      throw std::invalid_argument(what + " 'strength' must be positive" +
                                  links[i].position_suffix());
    }
    inst.network.set_strength(static_cast<NodeId>(a), static_cast<NodeId>(b), strength);
  }

  return inst;
}

Json schedule_to_json(const Schedule& schedule) {
  JsonArray assignments;
  assignments.reserve(schedule.size());
  for (const Assignment& a : schedule.assignments()) {
    assignments.push_back(Json::object({{"task", Json::number(a.task)},
                                        {"node", Json::number(a.node)},
                                        {"start", Json::number(a.start)},
                                        {"finish", Json::number(a.finish)}}));
  }
  return Json::object({{"format", Json::string("saga-schedule")},
                       {"version", Json::number(1)},
                       {"makespan", Json::number(schedule.makespan())},
                       {"assignments", Json::array(std::move(assignments))}});
}

Schedule schedule_from_json(const Json& json) {
  const std::string context = "schedule";
  check_header(json, "saga-schedule", context);
  check_keys(json, {"format", "version", "makespan", "assignments"}, context);

  Schedule schedule;
  const JsonArray& assignments = require(json, "assignments", context).as_array();
  schedule.reserve(assignments.size());
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    const std::string what = "assignment " + std::to_string(i);
    check_keys(assignments[i], {"task", "node", "start", "finish"}, what);
    Assignment a;
    a.task = static_cast<TaskId>(require(assignments[i], "task", what).as_u64(what + " 'task'"));
    a.node = static_cast<NodeId>(require(assignments[i], "node", what).as_u64(what + " 'node'"));
    a.start = to_double(require(assignments[i], "start", what), what + " 'start'");
    a.finish = to_double(require(assignments[i], "finish", what), what + " 'finish'");
    schedule.add(a);
  }
  return schedule;
}

ProblemInstance load_instance_auto(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return instance_from_any_string(buffer.str());
}

ProblemInstance instance_from_any_string(const std::string& text) {
  const auto first = text.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && text[first] == '{') {
    return instance_from_json(Json::parse(text));
  }
  return instance_from_string(text);
}

}  // namespace saga::serve
