#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/stats.hpp"

/// \file telemetry.hpp
/// Lock-free service counters for the `saga serve` daemon, rendered as
/// Prometheus text exposition format at GET /metrics. Everything on the
/// request path is a relaxed atomic increment (counters) or a FixedHistogram
/// record (latency) — no locks, no allocation — so instrumentation costs
/// nanoseconds against a ~microseconds schedule call. Gauges that live
/// outside the service (queue depth, in-flight requests, uptime) are
/// sampled at render time and passed in by the daemon.
///
/// Memory-ordering audit (TSan-verified): every counter is written with an
/// atomic read-modify-write (fetch_add) and read with plain loads, all
/// relaxed — the weakest correct order here, because
///   (a) each counter is individually exact: fetch_add never loses an
///       increment regardless of ordering, and
///   (b) no reader derives a cross-counter invariant that would need
///       happens-before: a /metrics render racing a handler may observe
///       saga_requests_total already bumped while the latency histogram is
///       not yet (or vice versa) — the exposition is documented as a
///       statistical snapshot, and Prometheus scrapes tolerate exactly this
///       kind of skew.
/// Upgrading these to acquire/release would not tighten any observable
/// guarantee; it would only tax the request hot path.

namespace saga::serve {

/// Request endpoints the daemon distinguishes in its counters. kOther
/// covers unknown paths and protocol-level rejections.
enum class Endpoint : std::size_t {
  kSchedule = 0,  // POST /v1/schedule
  kCompare,       // POST /v1/compare
  kMetrics,       // GET /metrics
  kHealthz,       // GET /healthz
  kOther,
};
inline constexpr std::size_t kEndpointCount = 5;

[[nodiscard]] std::string_view to_string(Endpoint endpoint);

class Telemetry {
 public:
  Telemetry() : latency_us_(FixedHistogram::latency_us()) {}

  /// Stamps one completed request: endpoint, response status, handler
  /// latency. Thread-safe, lock-free.
  void record_request(Endpoint endpoint, int status, double latency_us);

  /// Stamps one schedule/compare request's arena acquisition: `warm` when
  /// the thread-local TimelineArena already existed (no warm-up paid).
  void record_arena(bool warm);

  [[nodiscard]] std::uint64_t requests_total() const noexcept;
  /// Requests by endpoint (all statuses).
  [[nodiscard]] std::uint64_t requests(Endpoint endpoint) const noexcept;
  /// Requests by endpoint and status class (2, 4, or 5).
  [[nodiscard]] std::uint64_t requests(Endpoint endpoint, int status_class) const noexcept;
  [[nodiscard]] std::uint64_t arena_hits() const noexcept;
  [[nodiscard]] std::uint64_t arena_misses() const noexcept;
  [[nodiscard]] const FixedHistogram& latency() const noexcept { return latency_us_; }

  /// Point-in-time values sampled by the daemon at scrape time.
  struct Gauges {
    std::size_t queue_depth = 0;        // connections waiting for a worker
    std::size_t inflight = 0;           // requests currently being handled
    std::uint64_t jobs_completed = 0;   // pool jobs picked up since start
    std::uint64_t connections = 0;      // TCP connections accepted
    double uptime_seconds = 0.0;
    std::uint64_t admission_shed = 0;   // requests/connections shed with 429
    std::uint64_t batch_requests = 0;   // requests routed through the gatherer
    std::uint64_t batch_passes = 0;     // gather passes (leader sweeps) executed
    std::uint64_t batch_coalesced = 0;  // members answered from a batch-mate
  };

  /// Prometheus text exposition (version 0.0.4): HELP/TYPE headers,
  /// saga_requests_total by endpoint and status class, latency histogram
  /// buckets plus p50/p90/p99 gauges, arena reuse counters, and the sampled
  /// gauges.
  [[nodiscard]] std::string render_prometheus(const Gauges& gauges) const;

 private:
  // [endpoint][status class index: 0=2xx, 1=4xx, 2=5xx]
  std::array<std::array<std::atomic<std::uint64_t>, 3>, kEndpointCount> by_endpoint_status_{};
  std::atomic<std::uint64_t> arena_hits_{0};
  std::atomic<std::uint64_t> arena_misses_{0};
  FixedHistogram latency_us_;
};

}  // namespace saga::serve
