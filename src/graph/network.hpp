#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/version.hpp"

/// \file network.hpp
/// The compute network N = (V, E) of the paper's Section II: a complete
/// undirected graph where s(v) is the compute speed of node v and s(v, v')
/// is the communication strength of the link between v and v'. Under the
/// related machines model the execution time of task t on node v is
/// c(t)/s(v) and the communication time of dependency (t, t') from v to v'
/// is c(t, t')/s(v, v'). Self-links have infinite strength: co-located
/// tasks communicate for free.

namespace saga {

using NodeId = std::uint32_t;

class Network {
 public:
  static constexpr double kInfiniteStrength = std::numeric_limits<double>::infinity();

  /// Creates a complete network with `node_count` nodes, all speeds and link
  /// strengths initialised to 1 (self-links are infinite).
  explicit Network(std::size_t node_count);

  Network(const Network&) = default;
  Network& operator=(const Network&) = default;
  // Moves re-stamp the gutted source so stamp-keyed caches (InstanceView)
  // can never mistake it for the content it used to hold.
  Network(Network&& other) noexcept;
  Network& operator=(Network&& other) noexcept;

  [[nodiscard]] std::size_t node_count() const noexcept { return speeds_.size(); }

  [[nodiscard]] double speed(NodeId v) const { return speeds_[v]; }
  void set_speed(NodeId v, double speed);

  /// Symmetric link strength; s(v, v) is always infinite.
  [[nodiscard]] double strength(NodeId a, NodeId b) const {
    return a == b ? kInfiniteStrength : strengths_[index(a, b)];
  }
  void set_strength(NodeId a, NodeId b, double strength);

  /// Execution time of a computation of size `cost` on node v: cost / s(v).
  [[nodiscard]] double exec_time(double cost, NodeId v) const {
    return cost / speeds_[v];
  }

  /// Transfer time of `data_size` bytes from node a to node b; zero when
  /// a == b (shared memory) or when data_size is zero.
  [[nodiscard]] double comm_time(double data_size, NodeId a, NodeId b) const {
    if (a == b || data_size == 0.0) return 0.0;
    return data_size / strengths_[index(a, b)];
  }

  /// Node with the highest speed (smallest id wins ties).
  [[nodiscard]] NodeId fastest_node() const;

  /// True if all node speeds (resp. all link strengths) are equal.
  [[nodiscard]] bool homogeneous_speeds(double tol = 0.0) const;
  [[nodiscard]] bool homogeneous_strengths(double tol = 0.0) const;

  /// Mean of 1/s(v) over nodes: the factor turning a task cost into its
  /// network-average execution time (used by rank computations).
  [[nodiscard]] double mean_inverse_speed() const;

  /// Mean of 1/s(a, b) over unordered node pairs a != b; zero for a 1-node
  /// network. Infinite-strength links contribute zero.
  [[nodiscard]] double mean_inverse_strength() const;

  /// Version stamp for cache invalidation (see common/version.hpp): changes
  /// whenever any speed or strength is set, and moving re-stamps the
  /// moved-from source. Node count is fixed after construction, so one
  /// stamp covers both weights and shape.
  [[nodiscard]] VersionStamp weights_stamp() const noexcept { return weights_stamp_; }

 private:
  /// Index into the packed upper-triangular strength array for a != b.
  [[nodiscard]] std::size_t index(NodeId a, NodeId b) const noexcept {
    if (a > b) std::swap(a, b);
    // Row-major upper triangle without the diagonal.
    const std::size_t n = speeds_.size();
    return static_cast<std::size_t>(a) * (2 * n - a - 1) / 2 + (b - a - 1);
  }

  std::vector<double> speeds_;
  std::vector<double> strengths_;  // packed upper triangle, no diagonal
  VersionStamp weights_stamp_ = next_version_stamp();
};

}  // namespace saga
