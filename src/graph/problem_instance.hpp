#pragma once

#include <string>

#include "graph/network.hpp"
#include "graph/task_graph.hpp"

/// \file problem_instance.hpp
/// A problem instance (N, G): the unit that schedulers consume and PISA
/// perturbs.

namespace saga {

struct ProblemInstance {
  Network network{1};
  TaskGraph graph;

  /// Average communication-to-computation ratio of the instance:
  /// (mean dependency transfer time over links) / (mean task execution time
  /// over nodes). Zero if the graph has no dependencies or the network's
  /// links are all infinite.
  [[nodiscard]] double ccr() const;
};

/// Builds the worked example of the paper's Fig. 1 (4-task diamond, 3-node
/// network) — used by the quickstart example and as a known-answer fixture.
[[nodiscard]] ProblemInstance fig1_instance();

}  // namespace saga
