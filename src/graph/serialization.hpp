#pragma once

#include <iosfwd>
#include <string>

#include "graph/problem_instance.hpp"

/// \file serialization.hpp
/// Plain-text (de)serialization of problem instances, so that adversarial
/// instances found by PISA can be saved, shared, and replayed — the paper's
/// conclusion calls out publishing discovered instances as future work; this
/// is the interchange format for it.
///
/// Format (line oriented, '#' comments allowed):
///
///   saga-instance v1
///   tasks <n>
///   task <id> <name> <cost>            (n lines)
///   deps <m>
///   dep <from> <to> <data_size>        (m lines)
///   nodes <k>
///   node <id> <speed>                  (k lines)
///   links <k*(k-1)/2>
///   link <a> <b> <strength|inf>        (one line per unordered pair)
///
/// All floats are printed with enough digits to round-trip exactly.

namespace saga {

/// Formats a double with enough digits to round-trip exactly; infinities
/// render as "inf". Shared by the text format below and the JSON wire codec
/// (serve/codec.hpp), so both interchange formats agree on number text.
[[nodiscard]] std::string format_exact(double v);

/// Inverse of format_exact: parses "inf" (and "-inf") or a decimal double.
/// Throws std::runtime_error naming `what` on malformed input.
[[nodiscard]] double parse_exact(const std::string& token, const std::string& what);

void save_instance(std::ostream& out, const ProblemInstance& inst);
[[nodiscard]] std::string instance_to_string(const ProblemInstance& inst);

/// Parses an instance; throws std::runtime_error with a line-numbered
/// message on malformed input.
[[nodiscard]] ProblemInstance load_instance(std::istream& in);
[[nodiscard]] ProblemInstance instance_from_string(const std::string& text);

}  // namespace saga
