#pragma once

#include <cstddef>
#include <string>

#include "graph/problem_instance.hpp"

/// \file graph_stats.hpp
/// Structural characterisation of task graphs — the quantities that
/// explain *why* schedulers behave differently across the paper's 16
/// datasets (Fig. 2) and which PISA perturbs implicitly: depth, width,
/// available parallelism, and communication intensity.

namespace saga {

struct GraphStats {
  std::size_t tasks = 0;
  std::size_t dependencies = 0;

  /// Number of precedence levels (longest chain, in hops).
  std::size_t depth = 0;

  /// Maximum number of tasks sharing a level — an easy upper bound on the
  /// width (maximum antichain) that is exact for the level-structured
  /// graphs all our generators produce.
  std::size_t level_width = 0;

  /// Sum of task costs divided by the largest cost chain (in cost units):
  /// the classic "available parallelism" — 1 for a chain, |T| for fully
  /// independent equal tasks.
  double parallelism = 1.0;

  /// Edge density: dependencies / (tasks choose 2); 0 for edgeless graphs.
  double density = 0.0;

  /// Mean in-degree over non-source tasks (fan-in pressure on joins).
  double mean_fan_in = 0.0;

  std::size_t sources = 0;
  std::size_t sinks = 0;
};

/// Computes all statistics in one pass over the graph.
[[nodiscard]] GraphStats compute_graph_stats(const TaskGraph& graph);

/// One-line rendering for tables/logs.
[[nodiscard]] std::string to_string(const GraphStats& stats);

}  // namespace saga
