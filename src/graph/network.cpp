#include "graph/network.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace saga {

Network::Network(std::size_t node_count)
    : speeds_(node_count, 1.0),
      strengths_(node_count < 2 ? 0 : node_count * (node_count - 1) / 2, 1.0) {
  if (node_count == 0) throw std::invalid_argument("network needs at least one node");
}

Network::Network(Network&& other) noexcept
    : speeds_(std::move(other.speeds_)),
      strengths_(std::move(other.strengths_)),
      weights_stamp_(other.weights_stamp_) {
  other.weights_stamp_ = next_version_stamp();
}

Network& Network::operator=(Network&& other) noexcept {
  if (this != &other) {
    speeds_ = std::move(other.speeds_);
    strengths_ = std::move(other.strengths_);
    weights_stamp_ = other.weights_stamp_;
    other.weights_stamp_ = next_version_stamp();
  }
  return *this;
}

void Network::set_speed(NodeId v, double speed) {
  if (!(speed > 0.0)) throw std::invalid_argument("node speed must be positive");
  speeds_.at(v) = speed;
  weights_stamp_ = next_version_stamp();
}

void Network::set_strength(NodeId a, NodeId b, double strength) {
  if (a == b) throw std::invalid_argument("self-link strength is fixed at infinity");
  if (a >= node_count() || b >= node_count()) throw std::out_of_range("node id out of range");
  if (!(strength > 0.0)) throw std::invalid_argument("link strength must be positive");
  strengths_[index(a, b)] = strength;
  weights_stamp_ = next_version_stamp();
}

NodeId Network::fastest_node() const {
  NodeId best = 0;
  for (NodeId v = 1; v < node_count(); ++v) {
    if (speeds_[v] > speeds_[best]) best = v;
  }
  return best;
}

bool Network::homogeneous_speeds(double tol) const {
  for (double s : speeds_) {
    if (std::abs(s - speeds_.front()) > tol) return false;
  }
  return true;
}

bool Network::homogeneous_strengths(double tol) const {
  for (double s : strengths_) {
    if (std::abs(s - strengths_.front()) > tol) return false;
  }
  return true;
}

double Network::mean_inverse_speed() const {
  double total = 0.0;
  for (double s : speeds_) total += 1.0 / s;
  return total / static_cast<double>(speeds_.size());
}

double Network::mean_inverse_strength() const {
  if (strengths_.empty()) return 0.0;
  double total = 0.0;
  for (double s : strengths_) {
    if (!std::isinf(s)) total += 1.0 / s;
  }
  return total / static_cast<double>(strengths_.size());
}

}  // namespace saga
