#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/version.hpp"

/// \file task_graph.hpp
/// The task graph G = (T, D) of the paper's Section II: a weighted DAG where
/// c(t) is the compute cost of task t and c(t, t') is the size of the data
/// exchanged along the dependency (t, t').

namespace saga {

using TaskId = std::uint32_t;

/// Directed acyclic task graph with positive task costs and dependency data
/// sizes. Edge insertion is cycle-safe: `add_dependency` refuses edges that
/// would close a cycle (the caller can probe with `would_create_cycle`,
/// which is what the PISA "Add Dependency" perturbation does).
class TaskGraph {
 public:
  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = default;
  TaskGraph& operator=(const TaskGraph&) = default;
  // Moves re-stamp the gutted source so stamp-keyed caches (InstanceView)
  // can never mistake it for the content it used to hold.
  TaskGraph(TaskGraph&& other) noexcept;
  TaskGraph& operator=(TaskGraph&& other) noexcept;

  /// Adds a task and returns its id. Ids are dense, starting at 0.
  TaskId add_task(std::string name, double cost);

  /// Adds task with an auto-generated name ("t<id>").
  TaskId add_task(double cost);

  [[nodiscard]] std::size_t task_count() const noexcept { return costs_.size(); }
  [[nodiscard]] std::size_t dependency_count() const noexcept { return edge_costs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return costs_.empty(); }

  [[nodiscard]] const std::string& name(TaskId t) const { return names_[t]; }
  [[nodiscard]] double cost(TaskId t) const { return costs_[t]; }
  void set_cost(TaskId t, double cost);

  /// True if the dependency (from -> to) exists.
  [[nodiscard]] bool has_dependency(TaskId from, TaskId to) const;

  /// Data size c(from, to); the dependency must exist.
  [[nodiscard]] double dependency_cost(TaskId from, TaskId to) const;
  void set_dependency_cost(TaskId from, TaskId to, double cost);

  /// Adds (from -> to) with the given data size. Returns false (and leaves
  /// the graph unchanged) if the edge already exists, is a self-loop, or
  /// would create a cycle.
  bool add_dependency(TaskId from, TaskId to, double data_size);

  /// add_dependency without the duplicate-edge and cycle probes, for
  /// callers that already know the edge is safe: re-adding an edge that was
  /// just removed (undo/redo restores the original acyclic graph) or an
  /// edge pre-validated against the current structure (PISA's AddDependency
  /// operator filters its candidates with one ancestor sweep). Inserting an
  /// unsafe edge corrupts the graph, so the precondition is the caller's.
  void add_dependency_unchecked(TaskId from, TaskId to, double data_size);

  /// Removes (from -> to); returns false if it does not exist.
  bool remove_dependency(TaskId from, TaskId to);

  /// True if adding (from -> to) would close a cycle (i.e. `to` reaches
  /// `from`). Self-loops count as cycles.
  [[nodiscard]] bool would_create_cycle(TaskId from, TaskId to) const;

  [[nodiscard]] std::span<const TaskId> successors(TaskId t) const {
    return succs_[t];
  }
  [[nodiscard]] std::span<const TaskId> predecessors(TaskId t) const {
    return preds_[t];
  }

  /// Tasks with no predecessors / successors, in id order.
  [[nodiscard]] std::vector<TaskId> sources() const;
  [[nodiscard]] std::vector<TaskId> sinks() const;

  /// Deterministic topological order (Kahn's algorithm, smallest id first).
  [[nodiscard]] std::vector<TaskId> topological_order() const;

  /// All dependencies as (from, to) pairs in insertion-independent
  /// (from, to) lexicographic order.
  [[nodiscard]] std::vector<std::pair<TaskId, TaskId>> dependencies() const;

  /// The k-th dependency in the same lexicographic order, without
  /// materialising the list (k < dependency_count()). Used by uniform
  /// edge sampling on hot paths (PISA perturbation).
  [[nodiscard]] std::pair<TaskId, TaskId> dependency_at(std::size_t k) const;

  /// Sum of all task costs (used by schedule-length-ratio style metrics).
  [[nodiscard]] double total_cost() const;

  /// Structural + weight equality (names ignored).
  [[nodiscard]] bool structurally_equal(const TaskGraph& other, double tol = 0.0) const;

  /// Version stamps for cache invalidation (see common/version.hpp).
  /// `structure_stamp` changes whenever tasks or dependencies are added or
  /// removed; `weights_stamp` additionally changes when any task cost or
  /// dependency cost is updated. Copies share the source's stamps (their
  /// contents are equal); any mutation re-stamps with a globally fresh
  /// value, and moving re-stamps the moved-from source.
  [[nodiscard]] VersionStamp structure_stamp() const noexcept { return structure_stamp_; }
  [[nodiscard]] VersionStamp weights_stamp() const noexcept { return weights_stamp_; }

 private:
  [[nodiscard]] static std::uint64_t key(TaskId from, TaskId to) noexcept {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  void bump_structure() noexcept { structure_stamp_ = weights_stamp_ = next_version_stamp(); }
  void bump_weights() noexcept { weights_stamp_ = next_version_stamp(); }

  std::vector<std::string> names_;
  std::vector<double> costs_;
  std::vector<std::vector<TaskId>> succs_;
  std::vector<std::vector<TaskId>> preds_;
  std::unordered_map<std::uint64_t, double> edge_costs_;
  VersionStamp structure_stamp_ = next_version_stamp();
  VersionStamp weights_stamp_ = structure_stamp_;
};

}  // namespace saga
