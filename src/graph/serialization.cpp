#include "graph/serialization.hpp"

#include <cmath>
#include <cstdio>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace saga {

std::string format_exact(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

double parse_exact(const std::string& token, const std::string& what) {
  if (token == "inf") return std::numeric_limits<double>::infinity();
  if (token == "-inf") return -std::numeric_limits<double>::infinity();
  try {
    std::size_t consumed = 0;
    const double v = std::stod(token, &consumed);
    if (consumed != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(what + ": bad number '" + token + "'");
  }
}

namespace {

std::string fmt(double v) { return format_exact(v); }

double parse_double(const std::string& token, int line_no) {
  return parse_exact(token, "line " + std::to_string(line_no));
}

/// Reads the next non-empty, non-comment line; throws on EOF.
std::string next_line(std::istream& in, int& line_no) {
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    const auto last = line.find_last_not_of(" \t\r");
    return line.substr(first, last - first + 1);
  }
  throw std::runtime_error("unexpected end of input at line " + std::to_string(line_no));
}

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss(line);
  std::string tok;
  while (ss >> tok) out.push_back(tok);
  return out;
}

}  // namespace

void save_instance(std::ostream& out, const ProblemInstance& inst) {
  const auto& g = inst.graph;
  const auto& n = inst.network;
  out << "saga-instance v1\n";
  out << "tasks " << g.task_count() << "\n";
  for (TaskId t = 0; t < g.task_count(); ++t) {
    out << "task " << t << " " << g.name(t) << " " << fmt(g.cost(t)) << "\n";
  }
  const auto deps = g.dependencies();
  out << "deps " << deps.size() << "\n";
  for (const auto& [from, to] : deps) {
    out << "dep " << from << " " << to << " " << fmt(g.dependency_cost(from, to)) << "\n";
  }
  out << "nodes " << n.node_count() << "\n";
  for (NodeId v = 0; v < n.node_count(); ++v) {
    out << "node " << v << " " << fmt(n.speed(v)) << "\n";
  }
  const std::size_t links = n.node_count() * (n.node_count() - 1) / 2;
  out << "links " << links << "\n";
  for (NodeId a = 0; a < n.node_count(); ++a) {
    for (NodeId b = a + 1; b < n.node_count(); ++b) {
      out << "link " << a << " " << b << " " << fmt(n.strength(a, b)) << "\n";
    }
  }
}

std::string instance_to_string(const ProblemInstance& inst) {
  std::ostringstream out;
  save_instance(out, inst);
  return out.str();
}

ProblemInstance load_instance(std::istream& in) {
  int line_no = 0;
  const auto expect = [&](const std::string& line, const std::string& head,
                          std::size_t tokens) -> std::vector<std::string> {
    auto parts = split(line);
    if (parts.empty() || parts[0] != head || parts.size() != tokens) {
      throw std::runtime_error("line " + std::to_string(line_no) + ": expected '" + head +
                               "' record, got '" + line + "'");
    }
    return parts;
  };

  if (next_line(in, line_no) != "saga-instance v1") {
    throw std::runtime_error("not a saga-instance v1 file");
  }

  ProblemInstance inst;
  auto counts = expect(next_line(in, line_no), "tasks", 2);
  const auto n_tasks = static_cast<std::size_t>(std::stoull(counts[1]));
  for (std::size_t i = 0; i < n_tasks; ++i) {
    auto parts = expect(next_line(in, line_no), "task", 4);
    const auto id = static_cast<TaskId>(std::stoul(parts[1]));
    if (id != i) throw std::runtime_error("line " + std::to_string(line_no) + ": task ids must be dense");
    inst.graph.add_task(parts[2], parse_double(parts[3], line_no));
  }

  counts = expect(next_line(in, line_no), "deps", 2);
  const auto n_deps = static_cast<std::size_t>(std::stoull(counts[1]));
  for (std::size_t i = 0; i < n_deps; ++i) {
    auto parts = expect(next_line(in, line_no), "dep", 4);
    const auto from = static_cast<TaskId>(std::stoul(parts[1]));
    const auto to = static_cast<TaskId>(std::stoul(parts[2]));
    if (!inst.graph.add_dependency(from, to, parse_double(parts[3], line_no))) {
      throw std::runtime_error("line " + std::to_string(line_no) + ": invalid dependency");
    }
  }

  counts = expect(next_line(in, line_no), "nodes", 2);
  const auto n_nodes = static_cast<std::size_t>(std::stoull(counts[1]));
  inst.network = Network(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    auto parts = expect(next_line(in, line_no), "node", 3);
    inst.network.set_speed(static_cast<NodeId>(std::stoul(parts[1])),
                           parse_double(parts[2], line_no));
  }

  counts = expect(next_line(in, line_no), "links", 2);
  const auto n_links = static_cast<std::size_t>(std::stoull(counts[1]));
  if (n_links != n_nodes * (n_nodes - 1) / 2) {
    throw std::runtime_error("line " + std::to_string(line_no) + ": wrong link count");
  }
  for (std::size_t i = 0; i < n_links; ++i) {
    auto parts = expect(next_line(in, line_no), "link", 4);
    inst.network.set_strength(static_cast<NodeId>(std::stoul(parts[1])),
                              static_cast<NodeId>(std::stoul(parts[2])),
                              parse_double(parts[3], line_no));
  }
  return inst;
}

ProblemInstance instance_from_string(const std::string& text) {
  std::istringstream in(text);
  return load_instance(in);
}

}  // namespace saga
