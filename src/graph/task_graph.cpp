#include "graph/task_graph.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace saga {

TaskGraph::TaskGraph(TaskGraph&& other) noexcept
    : names_(std::move(other.names_)),
      costs_(std::move(other.costs_)),
      succs_(std::move(other.succs_)),
      preds_(std::move(other.preds_)),
      edge_costs_(std::move(other.edge_costs_)),
      structure_stamp_(other.structure_stamp_),
      weights_stamp_(other.weights_stamp_) {
  other.bump_structure();
}

TaskGraph& TaskGraph::operator=(TaskGraph&& other) noexcept {
  if (this != &other) {
    names_ = std::move(other.names_);
    costs_ = std::move(other.costs_);
    succs_ = std::move(other.succs_);
    preds_ = std::move(other.preds_);
    edge_costs_ = std::move(other.edge_costs_);
    structure_stamp_ = other.structure_stamp_;
    weights_stamp_ = other.weights_stamp_;
    other.bump_structure();
  }
  return *this;
}

TaskId TaskGraph::add_task(std::string name, double cost) {
  if (!(cost >= 0.0)) throw std::invalid_argument("task cost must be non-negative");
  const auto id = static_cast<TaskId>(costs_.size());
  names_.push_back(std::move(name));
  costs_.push_back(cost);
  succs_.emplace_back();
  preds_.emplace_back();
  bump_structure();
  return id;
}

TaskId TaskGraph::add_task(double cost) {
  const auto id = static_cast<TaskId>(costs_.size());
  std::string name = "t";
  name += std::to_string(id);
  return add_task(std::move(name), cost);
}

void TaskGraph::set_cost(TaskId t, double cost) {
  if (!(cost >= 0.0)) throw std::invalid_argument("task cost must be non-negative");
  costs_.at(t) = cost;
  bump_weights();
}

bool TaskGraph::has_dependency(TaskId from, TaskId to) const {
  return edge_costs_.contains(key(from, to));
}

double TaskGraph::dependency_cost(TaskId from, TaskId to) const {
  const auto it = edge_costs_.find(key(from, to));
  if (it == edge_costs_.end()) throw std::out_of_range("no such dependency");
  return it->second;
}

void TaskGraph::set_dependency_cost(TaskId from, TaskId to, double cost) {
  if (!(cost >= 0.0)) throw std::invalid_argument("dependency cost must be non-negative");
  const auto it = edge_costs_.find(key(from, to));
  if (it == edge_costs_.end()) throw std::out_of_range("no such dependency");
  it->second = cost;
  bump_weights();
}

bool TaskGraph::would_create_cycle(TaskId from, TaskId to) const {
  if (from == to) return true;
  // DFS from `to`: a cycle forms iff `from` is reachable from `to`.
  // Thread-local scratch keeps the probe allocation-free once warm — PISA's
  // AddDependency operator calls this for every candidate target.
  static thread_local std::vector<char> seen;
  static thread_local std::vector<TaskId> stack;
  seen.assign(task_count(), 0);
  stack.clear();
  stack.push_back(to);
  seen[to] = 1;
  while (!stack.empty()) {
    const TaskId cur = stack.back();
    stack.pop_back();
    if (cur == from) return true;
    for (TaskId next : succs_[cur]) {
      if (seen[next] == 0) {
        seen[next] = 1;
        stack.push_back(next);
      }
    }
  }
  return false;
}

bool TaskGraph::add_dependency(TaskId from, TaskId to, double data_size) {
  if (from >= task_count() || to >= task_count()) {
    throw std::out_of_range("task id out of range");
  }
  if (!(data_size >= 0.0)) throw std::invalid_argument("data size must be non-negative");
  if (has_dependency(from, to) || would_create_cycle(from, to)) return false;
  add_dependency_unchecked(from, to, data_size);
  return true;
}

void TaskGraph::add_dependency_unchecked(TaskId from, TaskId to, double data_size) {
  edge_costs_.emplace(key(from, to), data_size);
  // Keep adjacency sorted so iteration order is deterministic and
  // independent of insertion history (PISA mutates structure heavily).
  auto& succs = succs_[from];
  succs.insert(std::lower_bound(succs.begin(), succs.end(), to), to);
  auto& preds = preds_[to];
  preds.insert(std::lower_bound(preds.begin(), preds.end(), from), from);
  bump_structure();
}

bool TaskGraph::remove_dependency(TaskId from, TaskId to) {
  const auto it = edge_costs_.find(key(from, to));
  if (it == edge_costs_.end()) return false;
  edge_costs_.erase(it);
  std::erase(succs_[from], to);
  std::erase(preds_[to], from);
  bump_structure();
  return true;
}

std::vector<TaskId> TaskGraph::sources() const {
  std::vector<TaskId> out;
  out.reserve(task_count());
  for (TaskId t = 0; t < task_count(); ++t) {
    if (preds_[t].empty()) out.push_back(t);
  }
  return out;
}

std::vector<TaskId> TaskGraph::sinks() const {
  std::vector<TaskId> out;
  out.reserve(task_count());
  for (TaskId t = 0; t < task_count(); ++t) {
    if (succs_[t].empty()) out.push_back(t);
  }
  return out;
}

std::vector<TaskId> TaskGraph::topological_order() const {
  std::vector<std::size_t> indegree(task_count());
  for (TaskId t = 0; t < task_count(); ++t) indegree[t] = preds_[t].size();
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (TaskId t = 0; t < task_count(); ++t) {
    if (indegree[t] == 0) ready.push(t);
  }
  std::vector<TaskId> order;
  order.reserve(task_count());
  while (!ready.empty()) {
    const TaskId t = ready.top();
    ready.pop();
    order.push_back(t);
    for (TaskId s : succs_[t]) {
      if (--indegree[s] == 0) ready.push(s);
    }
  }
  assert(order.size() == task_count() && "graph must be acyclic by construction");
  return order;
}

std::vector<std::pair<TaskId, TaskId>> TaskGraph::dependencies() const {
  std::vector<std::pair<TaskId, TaskId>> out;
  out.reserve(edge_costs_.size());
  for (TaskId from = 0; from < task_count(); ++from) {
    for (TaskId to : succs_[from]) out.emplace_back(from, to);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::pair<TaskId, TaskId> TaskGraph::dependency_at(std::size_t k) const {
  // Successor lists are kept sorted, so walking tasks in id order yields
  // exactly the lexicographic order of dependencies().
  for (TaskId from = 0; from < task_count(); ++from) {
    if (k < succs_[from].size()) return {from, succs_[from][k]};
    k -= succs_[from].size();
  }
  throw std::out_of_range("dependency index out of range");
}

double TaskGraph::total_cost() const {
  double total = 0.0;
  for (double c : costs_) total += c;
  return total;
}

bool TaskGraph::structurally_equal(const TaskGraph& other, double tol) const {
  if (task_count() != other.task_count()) return false;
  if (dependency_count() != other.dependency_count()) return false;
  for (TaskId t = 0; t < task_count(); ++t) {
    if (std::abs(costs_[t] - other.costs_[t]) > tol) return false;
  }
  for (const auto& [from, to] : dependencies()) {
    if (!other.has_dependency(from, to)) return false;
    if (std::abs(dependency_cost(from, to) - other.dependency_cost(from, to)) > tol) {
      return false;
    }
  }
  return true;
}

}  // namespace saga
