#include "graph/instance_view.hpp"

namespace saga {

bool InstanceView::in_sync_with(const ProblemInstance& inst) const noexcept {
  return inst_ == &inst && graph_structure_stamp_ == inst.graph.structure_stamp() &&
         graph_weights_stamp_ == inst.graph.weights_stamp() &&
         network_stamp_ == inst.network.weights_stamp() &&
         node_speed_.size() == inst.network.node_count();
}

void InstanceView::sync(const ProblemInstance& inst) {
  // A graph whose structure stamp matches has identical tasks and edges
  // (stamps are globally unique and re-issued on every structural change).
  // The network's node count is part of the "shape" too: a replaced network
  // of a different size forces the dense tables to be resized.
  const bool same_shape = inst_ != nullptr &&
                          graph_structure_stamp_ == inst.graph.structure_stamp() &&
                          node_speed_.size() == inst.network.node_count();
  inst_ = &inst;
  if (!same_shape) {
    rebuild_structure(inst.graph);
    refresh_graph_weights(inst.graph);
    refresh_network(inst.network);
  } else {
    if (graph_weights_stamp_ != inst.graph.weights_stamp()) {
      refresh_graph_weights(inst.graph);
    }
    if (network_stamp_ != inst.network.weights_stamp()) {
      refresh_network(inst.network);
    }
  }
  graph_structure_stamp_ = inst.graph.structure_stamp();
  graph_weights_stamp_ = inst.graph.weights_stamp();
  network_stamp_ = inst.network.weights_stamp();
}

void InstanceView::rebuild_structure(const TaskGraph& graph) {
  const std::size_t tasks = graph.task_count();
  task_cost_.resize(tasks);
  pred_offset_.resize(tasks + 1);
  succ_offset_.resize(tasks + 1);
  pred_.clear();
  succ_.clear();
  pred_.reserve(graph.dependency_count());
  succ_.reserve(graph.dependency_count());
  for (TaskId t = 0; t < tasks; ++t) {
    pred_offset_[t] = pred_.size();
    for (TaskId p : graph.predecessors(t)) pred_.push_back({p, 0.0});
    succ_offset_[t] = succ_.size();
    for (TaskId s : graph.successors(t)) succ_.push_back({s, 0.0});
  }
  pred_offset_[tasks] = pred_.size();
  succ_offset_[tasks] = succ_.size();
  topo_ = graph.topological_order();
}

void InstanceView::refresh_graph_weights(const TaskGraph& graph) {
  const std::size_t tasks = graph.task_count();
  for (TaskId t = 0; t < tasks; ++t) {
    task_cost_[t] = graph.cost(t);
    for (std::size_t i = pred_offset_[t]; i < pred_offset_[t + 1]; ++i) {
      pred_[i].cost = graph.dependency_cost(pred_[i].task, t);
    }
    for (std::size_t i = succ_offset_[t]; i < succ_offset_[t + 1]; ++i) {
      succ_[i].cost = graph.dependency_cost(t, succ_[i].task);
    }
  }
}

void InstanceView::refresh_network(const Network& network) {
  const std::size_t nodes = network.node_count();
  node_speed_.resize(nodes);
  strength_.resize(nodes * nodes);
  for (NodeId a = 0; a < nodes; ++a) {
    node_speed_[a] = network.speed(a);
    for (NodeId b = 0; b < nodes; ++b) {
      strength_[a * nodes + b] = network.strength(a, b);
    }
  }
  mean_inv_speed_ = network.mean_inverse_speed();
  mean_inv_strength_ = network.mean_inverse_strength();
}

}  // namespace saga
