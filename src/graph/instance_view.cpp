#include "graph/instance_view.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace saga {

bool InstanceView::in_sync_with(const ProblemInstance& inst) const noexcept {
  return inst_ == &inst && graph_structure_stamp_ == inst.graph.structure_stamp() &&
         graph_weights_stamp_ == inst.graph.weights_stamp() &&
         network_stamp_ == inst.network.weights_stamp() &&
         node_speed_.size() == inst.network.node_count();
}

void InstanceView::sync(const ProblemInstance& inst) {
  // A graph whose structure stamp matches has identical tasks and edges
  // (stamps are globally unique and re-issued on every structural change).
  // The network's node count is part of the "shape" too: a replaced network
  // of a different size forces the dense tables to be resized.
  const bool same_shape = inst_ != nullptr &&
                          graph_structure_stamp_ == inst.graph.structure_stamp() &&
                          node_speed_.size() == inst.network.node_count();
  // Re-syncing the instance we already track means it is being mutated and
  // re-evaluated in place — the reuse pattern the derived quotient tables
  // pay off for. A switch to a different instance resets that signal (it
  // may well be a one-shot evaluation).
  if (inst_ == &inst) {
    derived_wanted_ = true;
  } else {
    derived_wanted_ = false;
  }
  inst_ = &inst;
  bool refreshed = false;
  if (!same_shape) {
    rebuild_structure(inst.graph);
    refresh_graph_weights(inst.graph);
    refresh_network(inst.network);
    refreshed = true;
  } else {
    if (graph_weights_stamp_ != inst.graph.weights_stamp()) {
      refresh_graph_weights(inst.graph);
      refreshed = true;
    }
    if (network_stamp_ != inst.network.weights_stamp()) {
      refresh_network(inst.network);
      refreshed = true;
    }
  }
  if (refreshed) {
    if (derived_wanted_) {
      refresh_derived();
    } else {
      exec_.clear();
      comm_.clear();
    }
  }
  graph_structure_stamp_ = inst.graph.structure_stamp();
  graph_weights_stamp_ = inst.graph.weights_stamp();
  network_stamp_ = inst.network.weights_stamp();
}

void InstanceView::rebuild_structure(const TaskGraph& graph) {
  const std::size_t tasks = graph.task_count();
  task_cost_.resize(tasks);
  pred_offset_.resize(tasks + 1);
  succ_offset_.resize(tasks + 1);
  pred_.clear();
  succ_.clear();
  pred_.reserve(graph.dependency_count());
  succ_.reserve(graph.dependency_count());
  for (TaskId t = 0; t < tasks; ++t) {
    pred_offset_[t] = pred_.size();
    for (TaskId p : graph.predecessors(t)) pred_.push_back({p, 0.0});
    succ_offset_[t] = succ_.size();
    for (TaskId s : graph.successors(t)) succ_.push_back({s, 0.0});
  }
  pred_offset_[tasks] = pred_.size();
  succ_offset_[tasks] = succ_.size();
  rebuild_topo();
}

void InstanceView::rebuild_topo() {
  // Kahn's algorithm, smallest id first — the same pop sequence as
  // TaskGraph::topological_order (a priority_queue is exactly these heap
  // operations on a vector), but into capacity-reusing buffers: PISA's
  // structural perturbation steps land here, so the rebuild allocates
  // nothing once the view is warm. Works purely off the CSR arrays so the
  // single-edge structural patches can reuse it without touching the graph.
  const std::size_t tasks = task_cost_.size();
  topo_.clear();
  topo_.reserve(tasks);
  topo_indegree_.resize(tasks);
  topo_heap_.clear();
  const auto heap_greater = [](TaskId a, TaskId b) { return a > b; };
  for (TaskId t = 0; t < tasks; ++t) {
    topo_indegree_[t] = static_cast<std::uint32_t>(pred_offset_[t + 1] - pred_offset_[t]);
    if (topo_indegree_[t] == 0) {
      topo_heap_.push_back(t);
      std::push_heap(topo_heap_.begin(), topo_heap_.end(), heap_greater);
    }
  }
  while (!topo_heap_.empty()) {
    std::pop_heap(topo_heap_.begin(), topo_heap_.end(), heap_greater);
    const TaskId t = topo_heap_.back();
    topo_heap_.pop_back();
    topo_.push_back(t);
    for (std::size_t i = succ_offset_[t]; i < succ_offset_[t + 1]; ++i) {
      if (--topo_indegree_[succ_[i].task] == 0) {
        topo_heap_.push_back(succ_[i].task);
        std::push_heap(topo_heap_.begin(), topo_heap_.end(), heap_greater);
      }
    }
  }
}

void InstanceView::refresh_graph_weights(const TaskGraph& graph) {
  const std::size_t tasks = graph.task_count();
  for (TaskId t = 0; t < tasks; ++t) {
    task_cost_[t] = graph.cost(t);
    for (std::size_t i = pred_offset_[t]; i < pred_offset_[t + 1]; ++i) {
      pred_[i].cost = graph.dependency_cost(pred_[i].task, t);
    }
    for (std::size_t i = succ_offset_[t]; i < succ_offset_[t + 1]; ++i) {
      succ_[i].cost = graph.dependency_cost(t, succ_[i].task);
    }
  }
}

void InstanceView::patch_task_cost(const ProblemInstance& inst, TaskId t, double cost) {
  assert(inst_ == &inst && graph_structure_stamp_ == inst.graph.structure_stamp());
  task_cost_[t] = cost;
  if (!ensure_derived() && !exec_.empty()) {
    const std::size_t n = node_speed_.size();
    for (std::size_t v = 0; v < n; ++v) exec_[t * n + v] = cost / node_speed_[v];
  }
  graph_weights_stamp_ = inst.graph.weights_stamp();
}

void InstanceView::patch_dependency_cost(const ProblemInstance& inst, TaskId from, TaskId to,
                                         double cost) {
  assert(inst_ == &inst && graph_structure_stamp_ == inst.graph.structure_stamp());
  std::size_t entry = succ_.size();
  for (std::size_t i = succ_offset_[from]; i < succ_offset_[from + 1]; ++i) {
    if (succ_[i].task == to) {
      succ_[i].cost = cost;
      entry = i;
      break;
    }
  }
  for (std::size_t i = pred_offset_[to]; i < pred_offset_[to + 1]; ++i) {
    if (pred_[i].task == from) {
      pred_[i].cost = cost;
      break;
    }
  }
  if (!ensure_derived() && !comm_.empty() && entry < succ_.size()) refresh_comm_entry(entry);
  graph_weights_stamp_ = inst.graph.weights_stamp();
}

void InstanceView::patch_node_speed(const ProblemInstance& inst, NodeId v, double speed) {
  assert(inst_ == &inst && node_speed_.size() == inst.network.node_count());
  node_speed_[v] = speed;
  if (!ensure_derived() && !exec_.empty()) {
    const std::size_t n = node_speed_.size();
    for (std::size_t t = 0; t < task_cost_.size(); ++t) {
      exec_[t * n + v] = task_cost_[t] / speed;
    }
  }
  // Same fold as Network::mean_inverse_speed over identical values.
  double total = 0.0;
  for (double s : node_speed_) total += 1.0 / s;
  mean_inv_speed_ = total / static_cast<double>(node_speed_.size());
  network_stamp_ = inst.network.weights_stamp();
}

void InstanceView::patch_link_strength(const ProblemInstance& inst, NodeId a, NodeId b,
                                       double strength) {
  assert(inst_ == &inst && node_speed_.size() == inst.network.node_count());
  const std::size_t n = node_speed_.size();
  strength_[a * n + b] = strength;
  strength_[b * n + a] = strength;
  if (!ensure_derived() && !comm_.empty()) {
    for (std::size_t e = 0; e < succ_.size(); ++e) {
      double* block = comm_.data() + e * n * n;
      block[a * n + b] = succ_[e].cost / strength;
      block[b * n + a] = succ_[e].cost / strength;
    }
  }
  // Same fold as Network::mean_inverse_strength: the packed upper triangle
  // in row-major order, infinite links contributing zero.
  const std::size_t pairs = n < 2 ? 0 : n * (n - 1) / 2;
  if (pairs == 0) {
    mean_inv_strength_ = 0.0;
  } else {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double s = strength_[i * n + j];
        if (!std::isinf(s)) total += 1.0 / s;
      }
    }
    mean_inv_strength_ = total / static_cast<double>(pairs);
  }
  network_stamp_ = inst.network.weights_stamp();
}

void InstanceView::patch_add_dependency(const ProblemInstance& inst, TaskId from, TaskId to,
                                        double cost) {
  assert(inst_ == &inst && task_cost_.size() == inst.graph.task_count());
  // Insert into the sorted CSR segments (adjacency is kept id-sorted, like
  // TaskGraph's lists) and shift the offsets after the insertion point.
  const auto succ_begin = succ_.begin() + static_cast<std::ptrdiff_t>(succ_offset_[from]);
  const auto succ_end = succ_.begin() + static_cast<std::ptrdiff_t>(succ_offset_[from + 1]);
  const auto succ_pos = std::lower_bound(
      succ_begin, succ_end, to, [](const Edge& e, TaskId id) { return e.task < id; });
  const std::size_t entry = static_cast<std::size_t>(succ_pos - succ_.begin());
  succ_.insert(succ_pos, Edge{to, cost});
  for (std::size_t t = from + 1; t < succ_offset_.size(); ++t) ++succ_offset_[t];
  if (!ensure_derived() && (!comm_.empty() || succ_.size() == 1)) {
    const std::size_t n = node_speed_.size();
    if (succ_.size() * n * n <= kMaxCachedCommEntries) {
      // Splice a block for the new entry into the cached comm table; the
      // other entries' values are index-independent, so a shift suffices.
      comm_.insert(comm_.begin() + static_cast<std::ptrdiff_t>(entry * n * n), n * n, 0.0);
      refresh_comm_entry(entry);
    } else {
      comm_.clear();  // crossed the gate; the next full sync may rebuild it
    }
  }

  const auto pred_begin = pred_.begin() + static_cast<std::ptrdiff_t>(pred_offset_[to]);
  const auto pred_end = pred_.begin() + static_cast<std::ptrdiff_t>(pred_offset_[to + 1]);
  const auto pred_pos = std::lower_bound(
      pred_begin, pred_end, from, [](const Edge& e, TaskId id) { return e.task < id; });
  pred_.insert(pred_pos, Edge{from, cost});
  for (std::size_t t = to + 1; t < pred_offset_.size(); ++t) ++pred_offset_[t];

  rebuild_topo();
  graph_structure_stamp_ = inst.graph.structure_stamp();
  graph_weights_stamp_ = inst.graph.weights_stamp();
}

void InstanceView::patch_remove_dependency(const ProblemInstance& inst, TaskId from, TaskId to) {
  assert(inst_ == &inst && task_cost_.size() == inst.graph.task_count());
  const auto succ_begin = succ_.begin() + static_cast<std::ptrdiff_t>(succ_offset_[from]);
  const auto succ_end = succ_.begin() + static_cast<std::ptrdiff_t>(succ_offset_[from + 1]);
  const auto succ_pos = std::lower_bound(
      succ_begin, succ_end, to, [](const Edge& e, TaskId id) { return e.task < id; });
  assert(succ_pos != succ_end && succ_pos->task == to);
  const std::size_t entry = static_cast<std::size_t>(succ_pos - succ_.begin());
  succ_.erase(succ_pos);
  for (std::size_t t = from + 1; t < succ_offset_.size(); ++t) --succ_offset_[t];
  if (!ensure_derived() && !comm_.empty()) {
    const std::size_t n = node_speed_.size();
    const auto block = comm_.begin() + static_cast<std::ptrdiff_t>(entry * n * n);
    comm_.erase(block, block + static_cast<std::ptrdiff_t>(n * n));
  }

  const auto pred_begin = pred_.begin() + static_cast<std::ptrdiff_t>(pred_offset_[to]);
  const auto pred_end = pred_.begin() + static_cast<std::ptrdiff_t>(pred_offset_[to + 1]);
  const auto pred_pos = std::lower_bound(
      pred_begin, pred_end, from, [](const Edge& e, TaskId id) { return e.task < id; });
  assert(pred_pos != pred_end && pred_pos->task == from);
  pred_.erase(pred_pos);
  for (std::size_t t = to + 1; t < pred_offset_.size(); ++t) --pred_offset_[t];

  rebuild_topo();
  graph_structure_stamp_ = inst.graph.structure_stamp();
  graph_weights_stamp_ = inst.graph.weights_stamp();
}

void InstanceView::refresh_network(const Network& network) {
  const std::size_t nodes = network.node_count();
  node_speed_.resize(nodes);
  strength_.resize(nodes * nodes);
  for (NodeId a = 0; a < nodes; ++a) {
    node_speed_[a] = network.speed(a);
    for (NodeId b = 0; b < nodes; ++b) {
      strength_[a * nodes + b] = network.strength(a, b);
    }
  }
  mean_inv_speed_ = network.mean_inverse_speed();
  mean_inv_strength_ = network.mean_inverse_strength();
}

void InstanceView::refresh_comm_entry(std::size_t e) {
  const std::size_t n = node_speed_.size();
  const double cost = succ_[e].cost;
  double* block = comm_.data() + e * n * n;
  for (std::size_t i = 0; i < n * n; ++i) block[i] = cost / strength_[i];
}

/// Lazily builds the derived tables on the first patch: a patch means the
/// instance is being mutated in place and re-evaluated — exactly the reuse
/// the cached quotients pay off for; one-shot evaluations never build
/// them. Returns true when the tables were just (re)built whole from the
/// current arrays, making the caller's targeted update unnecessary.
bool InstanceView::ensure_derived() {
  if (derived_wanted_) return false;
  derived_wanted_ = true;
  refresh_derived();
  return true;
}

void InstanceView::refresh_derived() {
  // Cached quotient tables — only for instances small enough that keeping
  // them hot beats recomputing the divisions per schedule. An empty table
  // is always valid (callers divide on the fly instead).
  const std::size_t n = node_speed_.size();
  const std::size_t tasks = task_cost_.size();
  if (tasks * n <= kMaxCachedExecEntries) {
    exec_.resize(tasks * n);
    for (std::size_t t = 0; t < tasks; ++t) {
      for (std::size_t v = 0; v < n; ++v) exec_[t * n + v] = task_cost_[t] / node_speed_[v];
    }
  } else {
    exec_.clear();
  }
  if (succ_.size() * n * n <= kMaxCachedCommEntries) {
    comm_.resize(succ_.size() * n * n);
    for (std::size_t e = 0; e < succ_.size(); ++e) refresh_comm_entry(e);
  } else {
    comm_.clear();
  }
}

}  // namespace saga
