#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/version.hpp"
#include "graph/problem_instance.hpp"

/// \file instance_view.hpp
/// Flat, cache-friendly snapshot of a ProblemInstance: the read side of the
/// shared evaluation kernel every scheduler runs on. Adjacency is stored as
/// CSR arrays whose entries carry the dependency cost inline (no hash-map
/// lookup per edge), node speeds and the full link-strength matrix are
/// packed into contiguous tables (no triangular index math per query), and
/// the topological order plus the network means used by rank computations
/// are precomputed once.
///
/// A view tracks the version stamps of the graph and network it was built
/// from (see common/version.hpp). `sync` is incremental: weight-only
/// mutations — the common case in PISA's annealing loop — refresh the
/// weight tables in place without allocating; structural mutations rebuild
/// the CSR arrays, reusing capacity. Views are not thread-safe; give each
/// worker thread its own (normally via its TimelineArena).
///
/// All time computations use the exact arithmetic of Network::exec_time and
/// Network::comm_time on the copied weights, so schedules produced through a
/// view are bit-identical to those produced against the instance directly.

namespace saga {

class InstanceView {
 public:
  /// One CSR adjacency entry: the neighbouring task and the data size
  /// c(from, to) of the dependency it represents.
  struct Edge {
    TaskId task;
    double cost;
  };

  InstanceView() = default;
  explicit InstanceView(const ProblemInstance& inst) { sync(inst); }

  /// Brings the view up to date with `inst`: no-op when stamps match,
  /// in-place weight refresh when only weights changed, full structural
  /// rebuild otherwise.
  void sync(const ProblemInstance& inst);

  /// True if the view reflects exactly this instance object at its current
  /// stamps (sync would be a no-op).
  [[nodiscard]] bool in_sync_with(const ProblemInstance& inst) const noexcept;

  /// The instance this view was last synced to. Undefined before the first
  /// sync.
  [[nodiscard]] const ProblemInstance& instance() const noexcept { return *inst_; }

  [[nodiscard]] std::size_t task_count() const noexcept { return task_cost_.size(); }
  [[nodiscard]] std::size_t node_count() const noexcept { return node_speed_.size(); }

  [[nodiscard]] double task_cost(TaskId t) const { return task_cost_[t]; }
  [[nodiscard]] double node_speed(NodeId v) const { return node_speed_[v]; }

  /// Execution time of t on v — same arithmetic as Network::exec_time.
  /// Served from the cached table when the instance is small enough (see
  /// exec_row_or_null); the table holds exactly these quotients, so the two
  /// paths are bit-identical.
  [[nodiscard]] double exec_time(TaskId t, NodeId v) const {
    return exec_.empty() ? task_cost_[t] / node_speed_[v]
                         : exec_[t * node_speed_.size() + v];
  }

  /// Transfer time of `data_size` from a to b — same arithmetic as
  /// Network::comm_time, against the dense strength table.
  [[nodiscard]] double comm_time(double data_size, NodeId a, NodeId b) const {
    if (a == b || data_size == 0.0) return 0.0;
    return data_size / strength_[a * node_speed_.size() + b];
  }

  /// SoA access for row-wise kernel sweeps (see TimelineBuilder::eft_row):
  /// contiguous per-task cost and per-node speed tables, and one row of the
  /// dense strength table (s(a, b) for every b; the diagonal is +inf, so
  /// `cost / strength_row(a)[a]` is exactly comm_time's co-located 0 for
  /// positive costs — zero-cost edges still need comm_time's early-out).
  [[nodiscard]] std::span<const double> task_costs() const noexcept { return task_cost_; }
  [[nodiscard]] std::span<const double> node_speeds() const noexcept { return node_speed_; }
  [[nodiscard]] std::span<const double> strength_row(NodeId a) const {
    return {strength_.data() + a * node_speed_.size(), node_speed_.size()};
  }

  [[nodiscard]] std::span<const Edge> predecessors(TaskId t) const {
    return {pred_.data() + pred_offset_[t], pred_offset_[t + 1] - pred_offset_[t]};
  }
  [[nodiscard]] std::span<const Edge> successors(TaskId t) const {
    return {succ_.data() + succ_offset_[t], succ_offset_[t + 1] - succ_offset_[t]};
  }

  /// Index of t's first successor entry in the flat CSR array; entry i of
  /// successors(t) is global entry successors_base(t) + i. Keys the cached
  /// comm-time table below.
  [[nodiscard]] std::size_t successors_base(TaskId t) const { return succ_offset_[t]; }

  /// Cached derived tables, populated lazily on the first sign of reuse —
  /// a patch_* call or a re-sync of the same instance object — and only
  /// for instances small enough that keeping them hot pays off (thresholds
  /// kMaxCachedExecEntries / kMaxCachedCommEntries). Null for one-shot
  /// evaluations and larger instances — callers fall back to dividing on
  /// the fly, which yields bit-identical values since the tables hold
  /// exactly those quotients.
  ///
  /// exec_row_or_null(t)[v]      == task_cost(t) / node_speed(v)
  /// comm_row_or_null(e, v)[u]   == successors(...)[...].cost / s(v, u)
  ///   (edge e = global successor-entry index; the +inf diagonal makes the
  ///   co-located entry +0.0, and a zero-cost edge's whole row is +0.0, so
  ///   `finish + row[u]` is exactly comm_time's semantics for every case).
  [[nodiscard]] const double* exec_row_or_null(TaskId t) const noexcept {
    return exec_.empty() ? nullptr : exec_.data() + t * node_speed_.size();
  }
  [[nodiscard]] const double* comm_row_or_null(std::size_t succ_index, NodeId v) const noexcept {
    const std::size_t n = node_speed_.size();
    return comm_.empty() ? nullptr : comm_.data() + (succ_index * n + v) * n;
  }

  /// Cached-table size gates, in table entries (doubles).
  static constexpr std::size_t kMaxCachedExecEntries = 4096;
  static constexpr std::size_t kMaxCachedCommEntries = 16384;

  /// Deterministic topological order (same order as
  /// TaskGraph::topological_order), precomputed at (re)build time.
  [[nodiscard]] std::span<const TaskId> topological_order() const noexcept { return topo_; }

  /// Cached Network::mean_inverse_speed / mean_inverse_strength.
  [[nodiscard]] double mean_inverse_speed() const noexcept { return mean_inv_speed_; }
  [[nodiscard]] double mean_inverse_strength() const noexcept { return mean_inv_strength_; }

  /// O(1) weight patches for the annealer's hot path. Each overwrites one
  /// weight in the packed tables (plus the derived means it feeds) and
  /// adopts the instance's current weight stamps, so the next sync is a
  /// no-op — no per-edge hash lookups, no dense-table rewrite. Only valid
  /// when the view is otherwise in sync with `inst`: same instance object,
  /// same structure, and the sole divergence is the one weight being
  /// patched. The values written are exactly those a full refresh would
  /// copy (and the means are recomputed with the same folds Network uses),
  /// so a patched view is bit-identical to a freshly synced one.
  void patch_task_cost(const ProblemInstance& inst, TaskId t, double cost);
  void patch_dependency_cost(const ProblemInstance& inst, TaskId from, TaskId to, double cost);
  void patch_node_speed(const ProblemInstance& inst, NodeId v, double speed);
  void patch_link_strength(const ProblemInstance& inst, NodeId a, NodeId b, double strength);

  /// Single-edge structural patches, same contract as the weight patches:
  /// the view must have been in sync with `inst` just before the edge was
  /// added to (removed from) the graph, and that edge must be the sole
  /// divergence. The CSR entry is inserted into (erased from) its sorted
  /// segment in place and the topological order re-derived from the patched
  /// CSR — byte-identical to a full rebuild, without re-walking the graph.
  void patch_add_dependency(const ProblemInstance& inst, TaskId from, TaskId to, double cost);
  void patch_remove_dependency(const ProblemInstance& inst, TaskId from, TaskId to);

 private:
  void rebuild_structure(const TaskGraph& graph);
  void rebuild_topo();
  void refresh_graph_weights(const TaskGraph& graph);
  void refresh_network(const Network& network);
  void refresh_derived();
  void refresh_comm_entry(std::size_t e);
  bool ensure_derived();

  const ProblemInstance* inst_ = nullptr;
  VersionStamp graph_structure_stamp_ = 0;
  VersionStamp graph_weights_stamp_ = 0;
  VersionStamp network_stamp_ = 0;

  std::vector<double> task_cost_;                       // per task
  std::vector<double> node_speed_;                      // per node
  std::vector<double> strength_;                        // dense n*n, diagonal = +inf
  std::vector<std::size_t> pred_offset_, succ_offset_;  // CSR offsets, size T+1
  std::vector<Edge> pred_, succ_;                       // CSR entries, size E each
  std::vector<TaskId> topo_;
  std::vector<std::uint32_t> topo_indegree_;            // Kahn scratch, capacity reused
  std::vector<TaskId> topo_heap_;                       // Kahn scratch, capacity reused
  std::vector<double> exec_;  // T*N cached exec times; empty until reuse, or over gate
  std::vector<double> comm_;  // E*N*N cached comm times (succ entries); likewise
  bool derived_wanted_ = false;  // reuse detected: keep the tables refreshed
  double mean_inv_speed_ = 0.0;
  double mean_inv_strength_ = 0.0;
};

}  // namespace saga
