#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/version.hpp"
#include "graph/problem_instance.hpp"

/// \file instance_view.hpp
/// Flat, cache-friendly snapshot of a ProblemInstance: the read side of the
/// shared evaluation kernel every scheduler runs on. Adjacency is stored as
/// CSR arrays whose entries carry the dependency cost inline (no hash-map
/// lookup per edge), node speeds and the full link-strength matrix are
/// packed into contiguous tables (no triangular index math per query), and
/// the topological order plus the network means used by rank computations
/// are precomputed once.
///
/// A view tracks the version stamps of the graph and network it was built
/// from (see common/version.hpp). `sync` is incremental: weight-only
/// mutations — the common case in PISA's annealing loop — refresh the
/// weight tables in place without allocating; structural mutations rebuild
/// the CSR arrays, reusing capacity. Views are not thread-safe; give each
/// worker thread its own (normally via its TimelineArena).
///
/// All time computations use the exact arithmetic of Network::exec_time and
/// Network::comm_time on the copied weights, so schedules produced through a
/// view are bit-identical to those produced against the instance directly.

namespace saga {

class InstanceView {
 public:
  /// One CSR adjacency entry: the neighbouring task and the data size
  /// c(from, to) of the dependency it represents.
  struct Edge {
    TaskId task;
    double cost;
  };

  InstanceView() = default;
  explicit InstanceView(const ProblemInstance& inst) { sync(inst); }

  /// Brings the view up to date with `inst`: no-op when stamps match,
  /// in-place weight refresh when only weights changed, full structural
  /// rebuild otherwise.
  void sync(const ProblemInstance& inst);

  /// True if the view reflects exactly this instance object at its current
  /// stamps (sync would be a no-op).
  [[nodiscard]] bool in_sync_with(const ProblemInstance& inst) const noexcept;

  /// The instance this view was last synced to. Undefined before the first
  /// sync.
  [[nodiscard]] const ProblemInstance& instance() const noexcept { return *inst_; }

  [[nodiscard]] std::size_t task_count() const noexcept { return task_cost_.size(); }
  [[nodiscard]] std::size_t node_count() const noexcept { return node_speed_.size(); }

  [[nodiscard]] double task_cost(TaskId t) const { return task_cost_[t]; }
  [[nodiscard]] double node_speed(NodeId v) const { return node_speed_[v]; }

  /// Execution time of t on v — same arithmetic as Network::exec_time.
  [[nodiscard]] double exec_time(TaskId t, NodeId v) const {
    return task_cost_[t] / node_speed_[v];
  }

  /// Transfer time of `data_size` from a to b — same arithmetic as
  /// Network::comm_time, against the dense strength table.
  [[nodiscard]] double comm_time(double data_size, NodeId a, NodeId b) const {
    if (a == b || data_size == 0.0) return 0.0;
    return data_size / strength_[a * node_speed_.size() + b];
  }

  [[nodiscard]] std::span<const Edge> predecessors(TaskId t) const {
    return {pred_.data() + pred_offset_[t], pred_offset_[t + 1] - pred_offset_[t]};
  }
  [[nodiscard]] std::span<const Edge> successors(TaskId t) const {
    return {succ_.data() + succ_offset_[t], succ_offset_[t + 1] - succ_offset_[t]};
  }

  /// Deterministic topological order (same order as
  /// TaskGraph::topological_order), precomputed at (re)build time.
  [[nodiscard]] std::span<const TaskId> topological_order() const noexcept { return topo_; }

  /// Cached Network::mean_inverse_speed / mean_inverse_strength.
  [[nodiscard]] double mean_inverse_speed() const noexcept { return mean_inv_speed_; }
  [[nodiscard]] double mean_inverse_strength() const noexcept { return mean_inv_strength_; }

 private:
  void rebuild_structure(const TaskGraph& graph);
  void refresh_graph_weights(const TaskGraph& graph);
  void refresh_network(const Network& network);

  const ProblemInstance* inst_ = nullptr;
  VersionStamp graph_structure_stamp_ = 0;
  VersionStamp graph_weights_stamp_ = 0;
  VersionStamp network_stamp_ = 0;

  std::vector<double> task_cost_;                       // per task
  std::vector<double> node_speed_;                      // per node
  std::vector<double> strength_;                        // dense n*n, diagonal = +inf
  std::vector<std::size_t> pred_offset_, succ_offset_;  // CSR offsets, size T+1
  std::vector<Edge> pred_, succ_;                       // CSR entries, size E each
  std::vector<TaskId> topo_;
  double mean_inv_speed_ = 0.0;
  double mean_inv_strength_ = 0.0;
};

}  // namespace saga
