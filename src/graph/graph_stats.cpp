#include "graph/graph_stats.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace saga {

GraphStats compute_graph_stats(const TaskGraph& graph) {
  GraphStats stats;
  stats.tasks = graph.task_count();
  stats.dependencies = graph.dependency_count();
  if (graph.empty()) return stats;

  // Levels by longest hop-distance from a source; cost chains alongside.
  std::vector<std::size_t> level(graph.task_count(), 0);
  std::vector<double> chain_cost(graph.task_count(), 0.0);
  std::size_t max_level = 0;
  double longest_chain = 0.0;
  for (TaskId t : graph.topological_order()) {
    for (TaskId p : graph.predecessors(t)) {
      level[t] = std::max(level[t], level[p] + 1);
      chain_cost[t] = std::max(chain_cost[t], chain_cost[p]);
    }
    chain_cost[t] += graph.cost(t);
    max_level = std::max(max_level, level[t]);
    longest_chain = std::max(longest_chain, chain_cost[t]);
  }
  stats.depth = max_level + 1;

  std::vector<std::size_t> level_population(max_level + 1, 0);
  for (TaskId t = 0; t < graph.task_count(); ++t) ++level_population[level[t]];
  stats.level_width = *std::max_element(level_population.begin(), level_population.end());

  const double total = graph.total_cost();
  stats.parallelism = longest_chain > 0.0 ? total / longest_chain : 1.0;

  if (graph.task_count() > 1) {
    const double possible =
        static_cast<double>(graph.task_count()) * (static_cast<double>(graph.task_count()) - 1.0) /
        2.0;
    stats.density = static_cast<double>(graph.dependency_count()) / possible;
  }

  std::size_t non_sources = 0;
  std::size_t in_edges = 0;
  for (TaskId t = 0; t < graph.task_count(); ++t) {
    const auto preds = graph.predecessors(t).size();
    if (preds == 0) {
      ++stats.sources;
    } else {
      ++non_sources;
      in_edges += preds;
    }
    if (graph.successors(t).empty()) ++stats.sinks;
  }
  stats.mean_fan_in =
      non_sources > 0 ? static_cast<double>(in_edges) / static_cast<double>(non_sources) : 0.0;
  return stats;
}

std::string to_string(const GraphStats& stats) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "tasks=%zu deps=%zu depth=%zu width=%zu parallelism=%.2f density=%.3f "
                "fan_in=%.2f sources=%zu sinks=%zu",
                stats.tasks, stats.dependencies, stats.depth, stats.level_width,
                stats.parallelism, stats.density, stats.mean_fan_in, stats.sources,
                stats.sinks);
  return buf;
}

}  // namespace saga
