#include "graph/problem_instance.hpp"

namespace saga {

double ProblemInstance::ccr() const {
  const auto deps = graph.dependencies();
  if (deps.empty() || graph.task_count() == 0) return 0.0;
  const double inv_strength = network.mean_inverse_strength();
  const double inv_speed = network.mean_inverse_speed();
  double mean_data = 0.0;
  for (const auto& [from, to] : deps) mean_data += graph.dependency_cost(from, to);
  mean_data /= static_cast<double>(deps.size());
  double mean_cost = 0.0;
  for (TaskId t = 0; t < graph.task_count(); ++t) mean_cost += graph.cost(t);
  mean_cost /= static_cast<double>(graph.task_count());
  const double mean_comm = mean_data * inv_strength;
  const double mean_exec = mean_cost * inv_speed;
  return mean_exec > 0.0 ? mean_comm / mean_exec : 0.0;
}

ProblemInstance fig1_instance() {
  ProblemInstance inst;
  auto& g = inst.graph;
  const TaskId t1 = g.add_task("t1", 1.7);
  const TaskId t2 = g.add_task("t2", 1.2);
  const TaskId t3 = g.add_task("t3", 2.2);
  const TaskId t4 = g.add_task("t4", 0.8);
  g.add_dependency(t1, t2, 0.6);
  g.add_dependency(t1, t3, 0.5);
  g.add_dependency(t2, t4, 1.3);
  g.add_dependency(t3, t4, 1.6);

  inst.network = Network(3);
  inst.network.set_speed(0, 1.0);   // v1
  inst.network.set_speed(1, 1.2);   // v2
  inst.network.set_speed(2, 1.5);   // v3
  inst.network.set_strength(0, 1, 0.5);
  inst.network.set_strength(0, 2, 1.0);
  inst.network.set_strength(1, 2, 1.2);
  return inst;
}

}  // namespace saga
