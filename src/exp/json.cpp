#include "exp/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace saga::exp {

namespace {

const char* type_name(Json::Type type) {
  switch (type) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "a boolean";
    case Json::Type::kNumber: return "a number";
    case Json::Type::kString: return "a string";
    case Json::Type::kArray: return "an array";
    case Json::Type::kObject: return "an object";
  }
  return "unknown";
}

[[noreturn]] void type_error(const char* expected, Json::Type actual) {
  throw std::runtime_error(std::string("expected ") + expected + ", found " +
                           type_name(actual));
}

/// Recursive-descent parser with line/column error reporting.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after the document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  std::size_t pos_ = 0;

  [[nodiscard]] std::pair<std::size_t, std::size_t> location() const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    return {line, column};
  }

  [[noreturn]] void fail(const std::string& what) const {
    const auto [line, column] = location();
    throw std::runtime_error("json parse error at line " + std::to_string(line) +
                             ", column " + std::to_string(column) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    const auto [line, column] = location();
    Json value = parse_value_at(depth);
    value.set_position(line, column);
    return value;
  }

  Json parse_value_at(int depth) {
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json::string(parse_string());
      case 't':
        if (consume_literal("true")) return Json::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    JsonObject members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json::object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected a quoted object key");
      std::string key = parse_string();
      for (const auto& [existing, unused] : members) {
        (void)unused;
        if (existing == key) fail("duplicate key '" + key + "' in object");
      }
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char next = peek();
      ++pos_;
      if (next == '}') break;
      if (next != ',') fail("expected ',' or '}' in object");
    }
    return Json::object(std::move(members));
  }

  Json parse_array(int depth) {
    expect('[');
    JsonArray items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json::array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char next = peek();
      ++pos_;
      if (next == ']') break;
      if (next != ',') fail("expected ',' or ']' in array");
    }
    return Json::array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape digit");
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate: pair required
      if (!consume_literal("\\u")) fail("unpaired UTF-16 surrogate");
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid UTF-16 surrogate pair");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired UTF-16 surrogate");
    }
    // Encode the code point as UTF-8.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty()) fail("expected a value");
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      fail("invalid number '" + token + "'");
    }
    return Json::number(value);
  }
};

void write_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double value) {
  // Integral values print without an exponent or fraction; everything else
  // uses the shortest round-trip form.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
    out += buffer;
    return;
  }
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  out.append(buffer, result.ptr);
}

}  // namespace

Json Json::boolean(bool value) {
  Json json;
  json.value_ = value;
  return json;
}

Json Json::number(double value) {
  Json json;
  json.value_ = value;
  return json;
}

Json Json::string(std::string value) {
  Json json;
  json.value_ = std::move(value);
  return json;
}

Json Json::array(JsonArray items) {
  Json json;
  json.value_ = std::move(items);
  return json;
}

Json Json::object(JsonObject members) {
  Json json;
  json.value_ = std::move(members);
  return json;
}

bool Json::as_bool() const {
  if (!is_bool()) type_error("a boolean", type());
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) type_error("a number", type());
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("a string", type());
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  if (!is_array()) type_error("an array", type());
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  if (!is_object()) type_error("an object", type());
  return std::get<JsonObject>(value_);
}

std::uint64_t Json::as_u64(const std::string& what) const {
  const double value = as_number();
  if (value < 0.0 || value != std::floor(value) || value > 9.0e15) {
    throw std::invalid_argument(what + " must be a non-negative integer (got " + dump() + ")" +
                                position_suffix());
  }
  return static_cast<std::uint64_t>(value);
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<JsonObject>(value_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json* Json::find(std::string_view key) {
  if (!is_object()) return nullptr;
  for (auto& [k, v] : std::get<JsonObject>(value_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::set(std::string key, Json value) {
  if (is_null()) value_ = JsonObject{};
  if (!is_object()) type_error("an object", type());
  for (auto& [k, v] : std::get<JsonObject>(value_)) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  std::get<JsonObject>(value_).emplace_back(std::move(key), std::move(value));
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

std::string Json::position_suffix() const {
  if (line_ == 0) return "";
  return " at line " + std::to_string(line_) + ", column " + std::to_string(column_);
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline_indent = [&](int level) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += std::get<bool>(value_) ? "true" : "false"; break;
    case Type::kNumber: write_number(out, std::get<double>(value_)); break;
    case Type::kString: write_escaped(out, std::get<std::string>(value_)); break;
    case Type::kArray: {
      const auto& items = std::get<JsonArray>(value_);
      if (items.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        newline_indent(depth + 1);
        items[i].write(out, indent, depth + 1);
      }
      newline_indent(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const auto& members = std::get<JsonObject>(value_);
      if (members.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        newline_indent(depth + 1);
        write_escaped(out, members[i].first);
        out += ": ";
        members[i].second.write(out, indent, depth + 1);
      }
      newline_indent(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

}  // namespace saga::exp
