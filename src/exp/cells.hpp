#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "datasets/source.hpp"
#include "exp/experiment.hpp"

/// \file cells.hpp
/// Deterministic decomposition of an ExperimentSpec into **work cells** —
/// the unit of sharding, persistence, and resume. Every mode flattens into
/// a stably-ordered list:
///
///   benchmark      one cell per (dataset selection, instance index): all
///                  schedulers on that instance (the ratio baseline needs
///                  the whole roster's makespans, so the roster stays
///                  inside the cell)
///   pisa-pairwise  one cell per ordered off-diagonal (baseline, target)
///                  pair, row-major — the pairwise_compare work list
///   schedule       one cell per roster entry
///   simulate       one cell per roster entry (each replays the scenario)
///
/// A cell's global index is its position in this enumeration and never
/// depends on the shard decomposition; per-cell RNG streams derive from the
/// same global coordinates the monolithic drivers use, so any shard split
/// recombines bit-identically. `plan_hash_hex` fingerprints everything
/// result-affecting (mode, seed, roster, dataset selections with their
/// effective counts, instance ref, PISA settings, experiment name) so the
/// result store can refuse to mix records from different experiments.

namespace saga::exp {

/// One unit of schedulable work. Only the coordinates for the spec's mode
/// are meaningful (dataset/instance for benchmark, row/col for pisa,
/// scheduler for schedule).
struct WorkCell {
  std::size_t index = 0;      // global index, stable across shard counts
  std::string key;            // human-readable stable key (store messages)
  std::size_t dataset = 0;    // benchmark: index into spec.datasets
  std::size_t instance = 0;   // benchmark: instance index within the dataset
  std::size_t row = 0;        // pisa: baseline scheduler (roster index)
  std::size_t col = 0;        // pisa: target scheduler (roster index)
  std::size_t scheduler = 0;  // schedule/simulate: roster index
};

/// The full decomposition of a spec: resolved roster, effective per-dataset
/// counts (count 0 pinned via the SAGA_SCALE convention), the streaming
/// sources (benchmark mode; generate() is pure and thread-safe, so workers
/// share them), and the cell list.
struct CellPlan {
  std::vector<std::string> roster;
  std::vector<std::size_t> dataset_counts;       // benchmark: one per selection
  std::vector<datasets::InstanceSourcePtr> sources;  // benchmark: one per selection
  std::vector<WorkCell> cells;
};

/// Enumerates the spec's cells. Deterministic: same spec (and SAGA_SCALE,
/// for count-0 selections) yields the same plan, cell for cell.
[[nodiscard]] CellPlan enumerate_cells(const ExperimentSpec& spec);

/// Copy of `spec` with every dataset count pinned to its effective value,
/// so the stored spec re-enumerates identically regardless of the
/// SAGA_SCALE in effect at merge/resume time.
[[nodiscard]] ExperimentSpec frozen_spec(const ExperimentSpec& spec, const CellPlan& plan);

/// FNV-1a fingerprint (16 hex chars) of the plan's result-affecting fields.
/// Execution knobs (parallel, threads) and output sinks (csv, json, atlas)
/// are deliberately excluded: shards run with different thread counts or
/// sink paths still merge.
[[nodiscard]] std::string plan_hash_hex(const ExperimentSpec& spec, const CellPlan& plan);

/// 1-based shard selector ("--shard i/N"). Shard i owns the cells with
/// index ≡ i-1 (mod N), a round-robin partition: disjoint, covering, and
/// balanced even when cell costs correlate with enumeration order.
struct Shard {
  std::size_t index = 1;
  std::size_t count = 1;

  [[nodiscard]] bool owns(std::size_t cell_index) const noexcept {
    return cell_index % count == index - 1;
  }
};

/// Parses "i/N" (1 <= i <= N). Throws std::invalid_argument on anything
/// else, including zero, reversed, or trailing garbage.
[[nodiscard]] Shard parse_shard(std::string_view text);

}  // namespace saga::exp
