#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

/// \file json.hpp
/// Minimal JSON document model for the experiment layer: enough of RFC 8259
/// to (de)serialize ExperimentSpec files without external dependencies.
/// Objects preserve insertion order (specs render back in the order they
/// were written) and reject duplicate keys at parse time; parse errors
/// carry line/column positions.

namespace saga::exp {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null

  [[nodiscard]] static Json boolean(bool value);
  [[nodiscard]] static Json number(double value);
  [[nodiscard]] static Json string(std::string value);
  [[nodiscard]] static Json array(JsonArray items = {});
  [[nodiscard]] static Json object(JsonObject members = {});

  [[nodiscard]] Type type() const noexcept { return static_cast<Type>(value_.index()); }
  [[nodiscard]] bool is_null() const noexcept { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return type() == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type() == Type::kObject; }

  /// Typed accessors; throw std::runtime_error naming the actual type on a
  /// mismatch ("expected a string, found a number").
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Non-negative integer-valued number; throws std::invalid_argument
  /// naming `what` (with position context) on negative, fractional, or
  /// overflowing values. Shared by the spec loader and the wire codec so
  /// every count/index field rejects the same malformed inputs the same
  /// way.
  [[nodiscard]] std::uint64_t as_u64(const std::string& what) const;

  /// Object member lookup; null pointer when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Mutable lookup; null pointer when absent (or not an object).
  [[nodiscard]] Json* find(std::string_view key);

  /// Appends or replaces an object member (converts a null document to an
  /// object first; throws on other types).
  void set(std::string key, Json value);

  /// Parses a complete JSON document; throws std::runtime_error with
  /// "line L, column C" context on malformed input or duplicate keys.
  [[nodiscard]] static Json parse(std::string_view text);

  /// Source position of a parsed value (1-based; 0 when the value was built
  /// programmatically rather than parsed). Lets schema validation report
  /// "at line L, column C" for well-formed-but-invalid values.
  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }
  void set_position(std::size_t line, std::size_t column) noexcept {
    line_ = line;
    column_ = column;
  }
  /// " at line L, column C" when the position is known, else "".
  [[nodiscard]] std::string position_suffix() const;

  /// Serializes. indent 0 renders compactly; indent > 0 pretty-prints.
  /// Numbers round-trip exactly (shortest form via std::to_chars).
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  std::variant<std::monostate, bool, double, std::string, JsonArray, JsonObject> value_;
  std::size_t line_ = 0;    // 0 = not from the parser
  std::size_t column_ = 0;

  void write(std::string& out, int indent, int depth) const;
};

}  // namespace saga::exp
