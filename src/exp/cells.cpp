#include "exp/cells.hpp"

#include <cctype>
#include <stdexcept>

#include "common/env.hpp"
#include "common/hash.hpp"
#include "datasets/registry.hpp"

namespace saga::exp {

namespace {

/// The Fig. 2 convention shared with the monolithic driver: a selection
/// without a pinned count runs the source's natural count scaled by
/// SAGA_SCALE, with a floor of 8.
std::size_t effective_count(const DatasetSelection& selection,
                            const datasets::InstanceSource& source) {
  if (selection.count > 0) return selection.count;
  return scaled_count(source.size(), 8);
}

}  // namespace

CellPlan enumerate_cells(const ExperimentSpec& spec) {
  CellPlan plan;
  plan.roster = spec.resolved_schedulers();
  switch (spec.mode) {
    case Mode::kBenchmark: {
      for (std::size_t d = 0; d < spec.datasets.size(); ++d) {
        const auto& selection = spec.datasets[d];
        auto source = datasets::DatasetRegistry::instance().make(selection.name, spec.seed);
        const std::size_t count = effective_count(selection, *source);
        plan.dataset_counts.push_back(count);
        plan.sources.push_back(std::move(source));
        for (std::size_t i = 0; i < count; ++i) {
          WorkCell cell;
          cell.index = plan.cells.size();
          cell.dataset = d;
          cell.instance = i;
          cell.key = "bench:" + std::to_string(d) + ":" + selection.name + "[" +
                     std::to_string(i) + "]";
          plan.cells.push_back(std::move(cell));
        }
      }
      break;
    }
    case Mode::kPisaPairwise: {
      // Row-major over off-diagonal (baseline row, target col) pairs — the
      // exact pairwise_compare work-list order.
      const std::size_t n = plan.roster.size();
      for (std::size_t row = 0; row < n; ++row) {
        for (std::size_t col = 0; col < n; ++col) {
          if (row == col) continue;
          WorkCell cell;
          cell.index = plan.cells.size();
          cell.row = row;
          cell.col = col;
          cell.key = "pisa:" + std::to_string(row) + "x" + std::to_string(col) + ":" +
                     plan.roster[col] + " vs " + plan.roster[row];
          plan.cells.push_back(std::move(cell));
        }
      }
      break;
    }
    case Mode::kSchedule: {
      for (std::size_t s = 0; s < plan.roster.size(); ++s) {
        WorkCell cell;
        cell.index = plan.cells.size();
        cell.scheduler = s;
        cell.key = "sched:" + std::to_string(s) + ":" + plan.roster[s];
        plan.cells.push_back(std::move(cell));
      }
      break;
    }
    case Mode::kSimulate: {
      // One cell per roster entry: every scheduler replays the identical
      // scenario (the workload streams derive from the master seed alone).
      for (std::size_t s = 0; s < plan.roster.size(); ++s) {
        WorkCell cell;
        cell.index = plan.cells.size();
        cell.scheduler = s;
        cell.key = "sim:" + std::to_string(s) + ":" + plan.roster[s];
        plan.cells.push_back(std::move(cell));
      }
      break;
    }
  }
  return plan;
}

ExperimentSpec frozen_spec(const ExperimentSpec& spec, const CellPlan& plan) {
  ExperimentSpec frozen = spec;
  for (std::size_t d = 0; d < plan.dataset_counts.size(); ++d) {
    frozen.datasets[d].count = plan.dataset_counts[d];
  }
  return frozen;
}

std::string plan_hash_hex(const ExperimentSpec& spec, const CellPlan& plan) {
  // Canonicalize through the JSON writer: insertion order is fixed below and
  // doubles render in shortest round-trip form, so two specs hash equal iff
  // their result-affecting fields are identical.
  Json doc = Json::object();
  doc.set("store", Json::string("saga-result-store v1"));
  doc.set("name", Json::string(spec.name));
  doc.set("mode", Json::string(std::string(to_string(spec.mode))));
  doc.set("seed", Json::number(static_cast<double>(spec.seed)));
  JsonArray roster;
  for (const auto& name : plan.roster) roster.push_back(Json::string(name));
  doc.set("schedulers", Json::array(std::move(roster)));
  switch (spec.mode) {
    case Mode::kBenchmark: {
      JsonArray selections;
      for (std::size_t d = 0; d < spec.datasets.size(); ++d) {
        Json item = Json::object();
        item.set("name", Json::string(spec.datasets[d].name));
        item.set("count", Json::number(static_cast<double>(plan.dataset_counts[d])));
        selections.push_back(std::move(item));
      }
      doc.set("datasets", Json::array(std::move(selections)));
      break;
    }
    case Mode::kPisaPairwise: {
      Json pisa = Json::object();
      pisa.set("restarts", Json::number(static_cast<double>(spec.pisa.restarts)));
      pisa.set("max_iterations", Json::number(static_cast<double>(spec.pisa.max_iterations)));
      pisa.set("t_max", Json::number(spec.pisa.t_max));
      pisa.set("t_min", Json::number(spec.pisa.t_min));
      pisa.set("alpha", Json::number(spec.pisa.alpha));
      pisa.set("acceptance", Json::string(spec.pisa.acceptance));
      doc.set("pisa", std::move(pisa));
      break;
    }
    case Mode::kSchedule: {
      Json ref = Json::object();
      if (!spec.instance.file.empty()) {
        ref.set("file", Json::string(spec.instance.file));
      } else {
        ref.set("dataset", Json::string(spec.instance.dataset));
        ref.set("index", Json::number(static_cast<double>(spec.instance.index)));
      }
      doc.set("instance", std::move(ref));
      break;
    }
    case Mode::kSimulate: {
      // Canonical scenario JSON (fixed key order, shortest round-trip
      // doubles), so equal-hash stores describe the identical simulation.
      doc.set("scenario", spec.scenario.to_json());
      break;
    }
  }
  doc.set("cells", Json::number(static_cast<double>(plan.cells.size())));
  return hash_hex(fnv1a64(doc.dump()));
}

Shard parse_shard(std::string_view text) {
  const auto parse_part = [&](std::string_view part) -> std::size_t {
    if (part.empty()) throw std::invalid_argument("invalid shard '" + std::string(text) +
                                                  "': expected i/N, e.g. 2/3");
    std::size_t value = 0;
    for (const char c : part) {
      if (!std::isdigit(static_cast<unsigned char>(c)) || value > 100000) {
        throw std::invalid_argument("invalid shard '" + std::string(text) +
                                    "': expected i/N, e.g. 2/3");
      }
      value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    return value;
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    throw std::invalid_argument("invalid shard '" + std::string(text) +
                                "': expected i/N, e.g. 2/3");
  }
  Shard shard;
  shard.index = parse_part(text.substr(0, slash));
  shard.count = parse_part(text.substr(slash + 1));
  if (shard.index == 0 || shard.count == 0 || shard.index > shard.count) {
    throw std::invalid_argument("invalid shard '" + std::string(text) +
                                "': need 1 <= i <= N");
  }
  return shard;
}

}  // namespace saga::exp
