#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "exp/cells.hpp"
#include "exp/experiment.hpp"
#include "exp/json.hpp"

/// \file resultstore.hpp
/// The structured on-disk result store behind `saga run --out/--resume` and
/// `saga merge`. Layout:
///
///   <dir>/spec.json                  the frozen experiment spec (dataset
///                                    counts pinned) — itself a runnable
///                                    `saga run` input
///   <dir>/cells/c<index>.jsonl       one self-describing JSONL record per
///                                    completed cell, e.g.
///     {"v": 1, "spec": "<16-hex hash>", "cell": 7, "key": "bench:0:blast[7]",
///      "seed": 42, "wall_ms": 3.25, "payload": {...}}
///
/// Records are written to a temp file and atomically renamed into place, so
/// a crash never leaves a half-written record under its final name; a
/// truncated (torn) record — however it got that way — fails to parse and
/// is discarded on scan, and `--resume` re-runs just that cell. Merging
/// recombines any complete shard decomposition into the exact artifacts the
/// monolithic run emits, refusing loudly on missing cells, torn records,
/// spec-hash mismatches, or conflicting duplicates.

namespace saga::exp {

/// One completed cell, as persisted in a store record.
struct CellRecord {
  std::string spec_hash;  // plan_hash_hex of the owning experiment
  std::size_t index = 0;  // global cell index
  std::string key;        // WorkCell::key (cross-checked on scan)
  std::uint64_t seed = 0; // the spec's master seed
  double wall_ms = 0.0;   // cell wall time (informational; never merged)
  Json payload;           // mode-specific result payload
};

class ResultStore {
 public:
  explicit ResultStore(std::filesystem::path dir);

  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }

  /// Creates the store layout and writes `spec.json` (atomically) if absent.
  /// If the directory already holds a spec, its plan hash must equal
  /// `spec_hash` — a mismatch throws rather than mixing experiments.
  void initialize(const ExperimentSpec& frozen, const std::string& spec_hash);

  /// Loads the stored spec; throws when `dir` is not a result store.
  [[nodiscard]] ExperimentSpec load_spec() const;

  struct Scan {
    std::map<std::size_t, CellRecord> records;  // valid records by cell index
    std::vector<std::filesystem::path> torn;    // truncated/unparsable records
  };

  /// Reads every cell record. Torn records are collected, not thrown;
  /// well-formed records from a different experiment (hash or key mismatch)
  /// throw.
  [[nodiscard]] Scan scan(const CellPlan& plan, const std::string& expected_hash) const;

  /// Persists one record via write-to-temp + atomic rename. Safe to call
  /// concurrently for distinct cells.
  void write_cell(const CellRecord& record) const;

 private:
  std::filesystem::path dir_;
  std::filesystem::path cells_dir_;
};

/// Payload-safe double encoding: finite values are JSON numbers (shortest
/// round-trip form, bit-exact through parse), non-finite values are the
/// strings "inf" / "-inf" / "nan" so records stay strict JSON.
[[nodiscard]] Json encode_double(double value);
[[nodiscard]] double decode_double(const Json& json, const std::string& context);

/// Summary codec shared by the benchmark json sink and simulate payloads:
/// fixed key order (count, min, q1, median, q3, max, mean, stddev),
/// encode_double for the values, bit-exact through a JSON round-trip.
[[nodiscard]] Json summary_to_json(const Summary& summary);
[[nodiscard]] Summary summary_from_json(const Json& json, const std::string& context);

/// SimReport codec for simulate-mode cell payloads; the trace hash is a
/// 16-hex string (hash_hex), everything else is numbers / summaries.
[[nodiscard]] Json sim_report_to_json(const sim::SimReport& report);
[[nodiscard]] sim::SimReport sim_report_from_json(const Json& json, const std::string& context);

/// Rebuilds the full ExperimentResult from a complete payload set (indexed
/// by global cell index; a null Json marks a missing payload, which throws).
/// This is the single assembly path shared by the monolithic run, resume,
/// and merge — the reason they are bit-identical.
[[nodiscard]] ExperimentResult assemble_result(const ExperimentSpec& spec, const CellPlan& plan,
                                               const std::vector<Json>& payloads);

struct MergedRun {
  ExperimentSpec spec;  // the stores' frozen spec
  ExperimentResult result;
};

/// Merges one or more result stores covering the same experiment. Throws
/// std::runtime_error naming the offender on: spec hash mismatch between
/// stores, missing cells, torn records, or duplicate cells with differing
/// payloads (identical duplicates — overlapping shards — are fine).
[[nodiscard]] MergedRun merge_stores(const std::vector<std::filesystem::path>& dirs);

}  // namespace saga::exp
