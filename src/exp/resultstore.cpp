#include "exp/resultstore.hpp"

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/benchmarking.hpp"
#include "common/hash.hpp"
#include "graph/serialization.hpp"
#include "sched/schedule_io.hpp"

namespace saga::exp {

namespace fs = std::filesystem;

namespace {

constexpr int kRecordVersion = 1;

std::string cell_file_name(std::size_t index) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "c%08zu.jsonl", index);
  return buffer;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Writes `content` to `path` via a sibling temp file + atomic rename, so
/// readers never observe a half-written file under the final name. The temp
/// name is unique per process and call: two writers racing on the same
/// target (e.g. two --resume runs sharing a store) cannot tear each other's
/// temp file — last rename wins with a complete file either way.
void write_file_atomic(const fs::path& path, const std::string& content) {
  static std::atomic<unsigned long> sequence{0};
  const fs::path tmp = path.string() + ".tmp." + std::to_string(::getpid()) + "." +
                       std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write " + tmp.string());
    out << content;
    out.flush();
    if (!out) throw std::runtime_error("short write to " + tmp.string());
  }
  fs::rename(tmp, path);
}

const Json& require_field(const Json& object, const char* key, const std::string& context) {
  const Json* field = object.find(key);
  if (field == nullptr) {
    throw std::runtime_error(context + " is missing the '" + key + "' field");
  }
  return *field;
}

std::size_t to_index(const Json& json, const std::string& context) {
  const double value = json.as_number();
  if (value < 0.0 || value != std::floor(value) || value > 9.0e15) {
    throw std::runtime_error(context + " must be a non-negative integer");
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

ResultStore::ResultStore(fs::path dir)
    : dir_(std::move(dir)), cells_dir_(dir_ / "cells") {}

void ResultStore::initialize(const ExperimentSpec& frozen, const std::string& spec_hash) {
  fs::create_directories(cells_dir_);
  const fs::path spec_path = dir_ / "spec.json";
  if (fs::exists(spec_path)) {
    const ExperimentSpec existing = load_spec();
    const std::string existing_hash = plan_hash_hex(existing, enumerate_cells(existing));
    if (existing_hash != spec_hash) {
      throw std::runtime_error("result store " + dir_.string() +
                               " already holds a different experiment (spec hash " +
                               existing_hash + ", this run is " + spec_hash +
                               "); use a fresh --out directory");
    }
    return;
  }
  write_file_atomic(spec_path, frozen.to_json().dump(2) + "\n");
}

ExperimentSpec ResultStore::load_spec() const {
  const fs::path spec_path = dir_ / "spec.json";
  if (!fs::exists(spec_path)) {
    throw std::runtime_error(dir_.string() + " is not a result store (no spec.json)");
  }
  try {
    return ExperimentSpec::from_json(Json::parse(read_file(spec_path)));
  } catch (const std::exception& e) {
    throw std::runtime_error("cannot load " + spec_path.string() + ": " + e.what());
  }
}

ResultStore::Scan ResultStore::scan(const CellPlan& plan,
                                    const std::string& expected_hash) const {
  Scan result;
  if (!fs::exists(cells_dir_)) return result;
  for (const auto& entry : fs::directory_iterator(cells_dir_)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".jsonl") continue;  // .tmp leftovers, editor junk

    const std::string content = read_file(path);
    Json record;
    // A record is exactly one newline-terminated JSON line; anything
    // truncated mid-write fails one of these checks and is torn, not fatal.
    if (content.empty() || content.back() != '\n') {
      result.torn.push_back(path);
      continue;
    }
    try {
      record = Json::parse(content);
    } catch (const std::exception&) {
      result.torn.push_back(path);
      continue;
    }

    const std::string context = "record " + path.string();
    if (to_index(require_field(record, "v", context), context + " 'v'") !=
        static_cast<std::size_t>(kRecordVersion)) {
      throw std::runtime_error(context + " has an unsupported version");
    }
    CellRecord cell;
    cell.spec_hash = require_field(record, "spec", context).as_string();
    if (cell.spec_hash != expected_hash) {
      throw std::runtime_error(context + " belongs to a different experiment (spec hash " +
                               cell.spec_hash + ", expected " + expected_hash + ")");
    }
    cell.index = to_index(require_field(record, "cell", context), context + " 'cell'");
    if (cell.index >= plan.cells.size()) {
      throw std::runtime_error(context + " names cell " + std::to_string(cell.index) +
                               " but the experiment has only " +
                               std::to_string(plan.cells.size()) + " cells");
    }
    cell.key = require_field(record, "key", context).as_string();
    if (cell.key != plan.cells[cell.index].key) {
      throw std::runtime_error(context + " key '" + cell.key + "' does not match cell " +
                               std::to_string(cell.index) + " ('" +
                               plan.cells[cell.index].key + "')");
    }
    if (const Json* seed = record.find("seed")) {
      cell.seed = static_cast<std::uint64_t>(to_index(*seed, context + " 'seed'"));
    }
    if (const Json* wall = record.find("wall_ms")) cell.wall_ms = wall->as_number();
    cell.payload = require_field(record, "payload", context);
    const std::size_t index = cell.index;
    if (!result.records.emplace(index, std::move(cell)).second) {
      throw std::runtime_error(context + " duplicates cell " + std::to_string(index) +
                               " within the same store");
    }
  }
  return result;
}

void ResultStore::write_cell(const CellRecord& record) const {
  Json line = Json::object();
  line.set("v", Json::number(kRecordVersion));
  line.set("spec", Json::string(record.spec_hash));
  line.set("cell", Json::number(static_cast<double>(record.index)));
  line.set("key", Json::string(record.key));
  line.set("seed", Json::number(static_cast<double>(record.seed)));
  line.set("wall_ms", encode_double(record.wall_ms));
  line.set("payload", record.payload);
  write_file_atomic(cells_dir_ / cell_file_name(record.index), line.dump() + "\n");
}

Json encode_double(double value) {
  if (std::isfinite(value)) return Json::number(value);
  if (std::isnan(value)) return Json::string("nan");
  return Json::string(value > 0 ? "inf" : "-inf");
}

double decode_double(const Json& json, const std::string& context) {
  if (json.is_number()) return json.as_number();
  if (json.is_string()) {
    const std::string& text = json.as_string();
    if (text == "nan") return std::numeric_limits<double>::quiet_NaN();
    if (text == "inf") return std::numeric_limits<double>::infinity();
    if (text == "-inf") return -std::numeric_limits<double>::infinity();
  }
  throw std::runtime_error(context + " is not a number");
}

Json summary_to_json(const Summary& summary) {
  Json json = Json::object();
  json.set("count", Json::number(static_cast<double>(summary.count)));
  json.set("min", encode_double(summary.min));
  json.set("q1", encode_double(summary.q1));
  json.set("median", encode_double(summary.median));
  json.set("q3", encode_double(summary.q3));
  json.set("max", encode_double(summary.max));
  json.set("mean", encode_double(summary.mean));
  json.set("stddev", encode_double(summary.stddev));
  return json;
}

Summary summary_from_json(const Json& json, const std::string& context) {
  Summary summary;
  summary.count = to_index(require_field(json, "count", context), context + " 'count'");
  summary.min = decode_double(require_field(json, "min", context), context + " 'min'");
  summary.q1 = decode_double(require_field(json, "q1", context), context + " 'q1'");
  summary.median =
      decode_double(require_field(json, "median", context), context + " 'median'");
  summary.q3 = decode_double(require_field(json, "q3", context), context + " 'q3'");
  summary.max = decode_double(require_field(json, "max", context), context + " 'max'");
  summary.mean = decode_double(require_field(json, "mean", context), context + " 'mean'");
  summary.stddev =
      decode_double(require_field(json, "stddev", context), context + " 'stddev'");
  return summary;
}

Json sim_report_to_json(const sim::SimReport& report) {
  Json json = Json::object();
  json.set("jobs", Json::number(static_cast<double>(report.jobs)));
  json.set("completed_jobs", Json::number(static_cast<double>(report.completed_jobs)));
  json.set("tasks_completed", Json::number(static_cast<double>(report.tasks_completed)));
  json.set("reexecutions", Json::number(static_cast<double>(report.reexecutions)));
  json.set("makespan", encode_double(report.makespan));
  json.set("response", summary_to_json(report.response));
  json.set("degradation", summary_to_json(report.degradation));
  JsonArray utilization;
  for (const double u : report.utilization) utilization.push_back(encode_double(u));
  json.set("utilization", Json::array(std::move(utilization)));
  json.set("trace_hash", Json::string(hash_hex(report.trace_hash)));
  json.set("trace_events", Json::number(static_cast<double>(report.trace_events)));
  return json;
}

sim::SimReport sim_report_from_json(const Json& json, const std::string& context) {
  sim::SimReport report;
  report.jobs = to_index(require_field(json, "jobs", context), context + " 'jobs'");
  report.completed_jobs = to_index(require_field(json, "completed_jobs", context),
                                   context + " 'completed_jobs'");
  report.tasks_completed = to_index(require_field(json, "tasks_completed", context),
                                    context + " 'tasks_completed'");
  report.reexecutions =
      to_index(require_field(json, "reexecutions", context), context + " 'reexecutions'");
  report.makespan =
      decode_double(require_field(json, "makespan", context), context + " 'makespan'");
  report.response = summary_from_json(require_field(json, "response", context),
                                      context + " response");
  report.degradation = summary_from_json(require_field(json, "degradation", context),
                                         context + " degradation");
  for (const Json& u : require_field(json, "utilization", context).as_array()) {
    report.utilization.push_back(decode_double(u, context + " utilization"));
  }
  const std::string& hex = require_field(json, "trace_hash", context).as_string();
  if (hex.size() != 16 || hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
    throw std::runtime_error(context + " 'trace_hash' is not a 16-hex-digit string");
  }
  report.trace_hash = std::stoull(hex, nullptr, 16);
  report.trace_events =
      to_index(require_field(json, "trace_events", context), context + " 'trace_events'");
  return report;
}

ExperimentResult assemble_result(const ExperimentSpec& spec, const CellPlan& plan,
                                 const std::vector<Json>& payloads) {
  if (payloads.size() != plan.cells.size()) {
    throw std::runtime_error("assemble_result: payload count does not match the cell plan");
  }
  const auto payload_of = [&](const WorkCell& cell) -> const Json& {
    const Json& payload = payloads[cell.index];
    if (payload.is_null()) {
      throw std::runtime_error("cell " + cell.key + " has no payload");
    }
    return payload;
  };

  ExperimentResult result;
  switch (spec.mode) {
    case Mode::kBenchmark: {
      std::size_t offset = 0;
      for (std::size_t d = 0; d < plan.dataset_counts.size(); ++d) {
        const std::size_t count = plan.dataset_counts[d];
        // makespans[s][i]: scheduler s on instance i — the matrix the
        // monolithic driver assembles in memory.
        std::vector<std::vector<double>> makespans(plan.roster.size(),
                                                   std::vector<double>(count, 0.0));
        for (std::size_t i = 0; i < count; ++i) {
          const WorkCell& cell = plan.cells[offset + i];
          const Json& payload = payload_of(cell);
          const JsonArray& values =
              require_field(payload, "makespans", "cell " + cell.key).as_array();
          if (values.size() != plan.roster.size()) {
            throw std::runtime_error("cell " + cell.key + " records " +
                                     std::to_string(values.size()) + " makespans for a " +
                                     std::to_string(plan.roster.size()) +
                                     "-scheduler roster");
          }
          for (std::size_t s = 0; s < values.size(); ++s) {
            makespans[s][i] = decode_double(values[s], "cell " + cell.key + " makespan");
          }
        }
        result.benchmarks.push_back(
            analysis::assemble_benchmark(spec.datasets[d].name, makespans, plan.roster));
        offset += count;
      }
      break;
    }
    case Mode::kPisaPairwise: {
      const std::size_t n = plan.roster.size();
      result.pairwise.scheduler_names = plan.roster;
      result.pairwise.ratio.assign(
          n, std::vector<double>(n, std::numeric_limits<double>::quiet_NaN()));
      result.pairwise.best_instance.assign(n, std::vector<ProblemInstance>(n));
      for (const WorkCell& cell : plan.cells) {
        const Json& payload = payload_of(cell);
        result.pairwise.ratio[cell.row][cell.col] =
            decode_double(require_field(payload, "ratio", "cell " + cell.key),
                          "cell " + cell.key + " ratio");
        result.pairwise.best_instance[cell.row][cell.col] = instance_from_string(
            require_field(payload, "instance", "cell " + cell.key).as_string());
      }
      break;
    }
    case Mode::kSchedule: {
      for (const WorkCell& cell : plan.cells) {
        const Json& payload = payload_of(cell);
        ScheduleOutcome outcome;
        outcome.scheduler = plan.roster[cell.scheduler];
        outcome.makespan =
            decode_double(require_field(payload, "makespan", "cell " + cell.key),
                          "cell " + cell.key + " makespan");
        outcome.schedule = schedule_from_string(
            require_field(payload, "schedule", "cell " + cell.key).as_string());
        result.schedules.push_back(std::move(outcome));
      }
      break;
    }
    case Mode::kSimulate: {
      for (const WorkCell& cell : plan.cells) {
        SimOutcome outcome;
        outcome.scheduler = plan.roster[cell.scheduler];
        outcome.report = sim_report_from_json(payload_of(cell), "cell " + cell.key);
        result.sims.push_back(std::move(outcome));
      }
      break;
    }
  }
  result.stats.total_cells = plan.cells.size();
  result.stats.complete = true;
  return result;
}

MergedRun merge_stores(const std::vector<fs::path>& dirs) {
  if (dirs.empty()) {
    throw std::invalid_argument("merge needs at least one result-store directory");
  }
  MergedRun merged;
  merged.spec = ResultStore(dirs.front()).load_spec();
  merged.spec.validate();
  const CellPlan plan = enumerate_cells(merged.spec);
  const std::string hash = plan_hash_hex(merged.spec, plan);

  std::vector<Json> payloads(plan.cells.size());
  std::vector<std::string> canonical(plan.cells.size());  // dump() for conflict checks
  std::vector<fs::path> torn;
  for (const auto& dir : dirs) {
    ResultStore store(dir);
    const ExperimentSpec other = store.load_spec();
    const std::string other_hash = plan_hash_hex(other, enumerate_cells(other));
    if (other_hash != hash) {
      throw std::runtime_error("result stores disagree: " + dir.string() +
                               " holds spec hash " + other_hash + " but " +
                               dirs.front().string() + " holds " + hash);
    }
    auto scan = store.scan(plan, hash);
    torn.insert(torn.end(), scan.torn.begin(), scan.torn.end());
    for (auto& [index, record] : scan.records) {
      std::string dump = record.payload.dump();
      if (!payloads[index].is_null()) {
        if (dump != canonical[index]) {
          throw std::runtime_error("cell " + plan.cells[index].key +
                                   " differs between stores (seen again in " + dir.string() +
                                   "); refusing to merge conflicting records");
        }
        continue;  // identical duplicate: overlapping shards are fine
      }
      payloads[index] = std::move(record.payload);
      canonical[index] = std::move(dump);
    }
  }

  std::vector<std::string> missing;
  for (const WorkCell& cell : plan.cells) {
    if (payloads[cell.index].is_null()) missing.push_back(cell.key);
  }
  // Torn records only matter when nothing else covers their cell — an
  // overlapping shard's intact duplicate makes the tear harmless.
  if (!missing.empty()) {
    std::ostringstream message;
    message << "result store is incomplete: " << missing.size() << " of "
            << plan.cells.size() << " cells missing";
    for (std::size_t i = 0; i < missing.size() && i < 5; ++i) {
      message << (i == 0 ? " (" : ", ") << missing[i];
    }
    if (!missing.empty()) message << (missing.size() > 5 ? ", ...)" : ")");
    if (!torn.empty()) {
      message << "; " << torn.size() << " torn record(s), first: " << torn.front().string();
    }
    message << "; run the missing shards or `saga run --resume`";
    throw std::runtime_error(message.str());
  }

  merged.result = assemble_result(merged.spec, plan, payloads);
  merged.result.stats.reused = plan.cells.size();
  return merged;
}

}  // namespace saga::exp
