#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/benchmarking.hpp"
#include "core/annealer.hpp"
#include "core/pairwise.hpp"
#include "exp/json.hpp"
#include "sched/schedule.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

/// \file experiment.hpp
/// The declarative experiment layer: an ExperimentSpec describes a whole
/// scenario — mode, scheduler roster (spec strings or @tag expansions),
/// dataset selection, PISA settings, seed, output sinks — and round-trips
/// to/from a JSON file, so the paper's result matrix (and any scenario
/// beyond it) is data rather than recompiled C++. `run_experiment()` is the
/// single driver behind `saga run`, `saga compare`, `saga pisa` and the
/// Fig. 2 / Fig. 4 bench binaries; it executes on the shared evaluation
/// kernel (per-worker TimelineArena) and is bit-reproducible for a given
/// spec regardless of thread count.

namespace saga::exp {

enum class Mode {
  kBenchmark,     // Fig. 2: every scheduler on every instance of each dataset
  kPisaPairwise,  // Fig. 4: worst-case ratio for every ordered scheduler pair
  kSchedule,      // one instance, makespans side by side
  kSimulate,      // discrete-event simulation of a dynamic-workload scenario
};

[[nodiscard]] std::string_view to_string(Mode mode);
/// Throws std::invalid_argument listing the valid modes for unknown input.
[[nodiscard]] Mode mode_from_string(std::string_view text);

/// One dataset to benchmark. `name` is a dataset spec string resolved by
/// the DatasetRegistry (`montage`, `montage?n=200&ccr=0.5`,
/// `perturbed?base=blast&level=0.3`, see docs/datasets.md). count 0 means
/// the source's natural instance count (the paper's Table II count for
/// registry datasets) scaled by SAGA_SCALE with a floor of 8, matching the
/// Fig. 2 driver.
struct DatasetSelection {
  std::string name;
  std::size_t count = 0;
};

/// The instance a schedule-mode experiment runs on: either (dataset spec
/// string, index) for a generated instance, or a serialized-instance file
/// ("-" = stdin).
struct InstanceRef {
  std::string dataset;
  std::size_t index = 0;
  std::string file;

  [[nodiscard]] bool empty() const { return dataset.empty() && file.empty(); }
};

/// PISA annealing settings (defaults are the paper's Section VI values).
struct PisaSettings {
  std::size_t restarts = 5;
  std::size_t max_iterations = 1000;
  double t_max = 10.0;
  double t_min = 0.1;
  double alpha = 0.99;
  std::string acceptance = "paper";  // "paper" | "metropolis"

  [[nodiscard]] pisa::PisaOptions to_options() const;
};

struct ExperimentSpec {
  std::string name;                        // experiment label (table titles)
  Mode mode = Mode::kBenchmark;
  std::vector<std::string> schedulers;     // spec strings; "@tag" expands to
                                           // the registry roster (sorted)
  std::vector<DatasetSelection> datasets;  // benchmark mode
  InstanceRef instance;                    // schedule mode
  PisaSettings pisa;                       // pisa-pairwise mode
  sim::Scenario scenario;                  // simulate mode
  std::uint64_t seed = 42;
  bool parallel = true;
  std::size_t threads = 0;                 // worker threads; 0 = global pool
  std::string csv;                         // optional CSV sink path
  std::string json;                        // optional JSON result sink path
  std::string atlas;                       // optional atlas dir (pisa mode):
                                           // adversarial instances as entries

  /// JSON round-trip. from_json rejects unknown keys at every level (with a
  /// nearest-key suggestion), duplicate keys are rejected by the parser.
  [[nodiscard]] static ExperimentSpec from_json(const Json& json);
  [[nodiscard]] Json to_json() const;

  /// Loads and parses a spec file ("-" = stdin).
  [[nodiscard]] static ExperimentSpec load(const std::string& path);

  /// Expands @tag entries against the registry (byte-wise sorted, so
  /// "@benchmark" reproduces the historical benchmarking roster order).
  [[nodiscard]] std::vector<std::string> resolved_schedulers() const;

  /// Full validation: scheduler specs construct, datasets exist, mode
  /// requirements hold. Throws std::invalid_argument describing the first
  /// problem. `saga run --dry-run` stops here.
  void validate() const;
};

/// One schedule-mode row.
struct ScheduleOutcome {
  std::string scheduler;  // the spec string as given
  Schedule schedule;
  double makespan = 0.0;
};

/// One simulate-mode row: a scheduler's full dynamic-workload report.
struct SimOutcome {
  std::string scheduler;  // the spec string as given
  sim::SimReport report;
};

/// What a (possibly sharded or resumed) run actually did, cell by cell.
struct RunStats {
  std::size_t total_cells = 0;  // full grid size for the spec
  std::size_t executed = 0;     // cells computed by this run
  std::size_t reused = 0;       // cells loaded from the result store (--resume)
  std::size_t torn = 0;         // torn store records discarded (and re-run
                                // when owned by this shard)
  bool complete = false;        // every cell present -> artifacts emitted
};

struct ExperimentResult {
  std::vector<analysis::DatasetBenchmark> benchmarks;  // benchmark mode
  pisa::PairwiseResult pairwise;                       // pisa-pairwise mode
  std::vector<ScheduleOutcome> schedules;              // schedule mode
  std::vector<SimOutcome> sims;                        // simulate mode
  ProblemInstance instance;                            // schedule-mode input
  RunStats stats;
};

/// Execution options for run_experiment: shard selection, result-store
/// persistence, crash resume. The defaults reproduce the historical
/// monolithic in-process run.
struct RunOptions {
  /// 1-based shard selector: shard i of N owns the cells whose global index
  /// is congruent to i-1 mod N (round-robin, so heterogeneous cells spread
  /// evenly). N > 1 requires `out_dir` — a partial run is useless unless its
  /// cells are persisted for `saga merge`.
  std::size_t shard_index = 1;
  std::size_t shard_count = 1;
  /// Result-store directory: every completed cell is written as a JSONL
  /// record via atomic write-then-rename. Empty = no store.
  std::string out_dir;
  /// Skip cells already completed in `out_dir`; torn (truncated) records are
  /// discarded and their cells re-run.
  bool resume = false;
  /// Worker pool override (tests / embedders). When set it wins over
  /// spec.parallel and spec.threads.
  ThreadPool* pool = nullptr;
};

/// Validates and runs the experiment, rendering result tables and progress
/// to `out` and the CSV sink when spec.csv is set.
ExperimentResult run_experiment(const ExperimentSpec& spec, std::ostream& out);

/// Sharded / persistent / resumable variant. Cells keep their global index
/// and derived seeds regardless of sharding, so any shard decomposition
/// (merged back with `saga merge` / merge_stores) is bit-identical to the
/// monolithic run. Artifacts (tables, csv/json/atlas sinks) are emitted only
/// when the run covers every cell.
ExperimentResult run_experiment(const ExperimentSpec& spec, std::ostream& out,
                                const RunOptions& options);

/// Renders result tables to `out` and writes the spec's csv/json/atlas
/// sinks. Shared by the monolithic path and `saga merge`, so merged shards
/// reproduce the monolithic artifacts byte for byte.
void emit_result(const ExperimentSpec& spec, const ExperimentResult& result, std::ostream& out);

/// Structured JSON rendering of a result (the `json` sink's content):
/// per-dataset ratio summaries, the pairwise ratio grid, or the schedule
/// makespans, plus the resolved roster. Non-finite numbers render as
/// strings ("inf", "nan") to stay within strict JSON.
[[nodiscard]] Json result_to_json(const ExperimentSpec& spec, const ExperimentResult& result);

/// Appends `seed=<derived>` to a randomized scheduler's spec string so a
/// stored artifact (atlas entry) reconstructs the exact scheduler a driver
/// ran; deterministic schedulers round-trip unchanged.
[[nodiscard]] std::string annotate_scheduler_seed(const std::string& spec_string,
                                                  std::uint64_t derived_seed);

/// Reads and parses a spec file ("-" = stdin) into its JSON document
/// without interpreting it, so callers can apply overrides before
/// ExperimentSpec::from_json.
[[nodiscard]] Json load_spec_document(const std::string& path);

/// Applies a `--set key.path=value` override to a spec document. The value
/// is parsed as JSON when possible ("3", "true", '["HEFT"]'), else taken as
/// a string; intermediate objects are created as needed.
void apply_override(Json& root, std::string_view assignment);

/// Human-readable dry-run summary of a validated spec: resolved rosters,
/// effective dataset counts, seeds and sinks.
[[nodiscard]] std::string describe(const ExperimentSpec& spec);

}  // namespace saga::exp
