#include "exp/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/atlas.hpp"
#include "analysis/csv.hpp"
#include "analysis/ratio_matrix.hpp"
#include "common/nearest.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "datasets/registry.hpp"
#include "exp/cells.hpp"
#include "exp/resultstore.hpp"
#include "graph/serialization.hpp"
#include "sched/arena.hpp"
#include "sched/registry.hpp"
#include "sched/schedule_io.hpp"

namespace saga::exp {

namespace {

std::size_t to_size(const Json& json, const std::string& context) {
  return static_cast<std::size_t>(json.as_u64(context));
}

/// Rejects keys outside `allowed`, suggesting the nearest valid one.
void check_keys(const Json& object, const std::vector<std::string>& allowed,
                const std::string& context) {
  for (const auto& [key, value] : object.as_object()) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      throw std::invalid_argument("unknown key '" + key + "' in " + context +
                                  did_you_mean(key, allowed) +
                                  "; valid keys: " + join(allowed, ", "));
    }
  }
}

/// Constructs the selection's streaming source, diagnosing unknown dataset
/// names and bad parameters (with nearest-name suggestions) on the way.
datasets::InstanceSourcePtr make_source(const std::string& spec_string, std::uint64_t seed) {
  return datasets::DatasetRegistry::instance().make(spec_string, seed);
}

ProblemInstance load_instance_ref(const InstanceRef& ref, std::uint64_t seed) {
  if (!ref.file.empty()) {
    if (ref.file == "-") return load_instance(std::cin);
    std::ifstream in(ref.file);
    if (!in) throw std::runtime_error("cannot open instance file " + ref.file);
    return load_instance(in);
  }
  return datasets::generate_instance(ref.dataset, seed, ref.index);
}

}  // namespace

std::string_view to_string(Mode mode) {
  switch (mode) {
    case Mode::kBenchmark: return "benchmark";
    case Mode::kPisaPairwise: return "pisa-pairwise";
    case Mode::kSchedule: return "schedule";
    case Mode::kSimulate: return "simulate";
  }
  return "unknown";
}

Mode mode_from_string(std::string_view text) {
  if (text == "benchmark") return Mode::kBenchmark;
  if (text == "pisa-pairwise" || text == "pisa") return Mode::kPisaPairwise;
  if (text == "schedule") return Mode::kSchedule;
  if (text == "simulate") return Mode::kSimulate;
  static const std::vector<std::string> valid = {"benchmark", "pisa-pairwise", "schedule",
                                                 "simulate"};
  throw std::invalid_argument("unknown experiment mode '" + std::string(text) + "'" +
                              did_you_mean(text, valid) +
                              "; valid modes: " + join(valid, ", "));
}

pisa::PisaOptions PisaSettings::to_options() const {
  pisa::PisaOptions options;
  options.restarts = restarts;
  options.params.max_iterations = max_iterations;
  options.params.t_max = t_max;
  options.params.t_min = t_min;
  options.params.alpha = alpha;
  if (acceptance == "metropolis") {
    options.params.acceptance = pisa::AnnealingParams::AcceptanceRule::kMetropolis;
  } else if (acceptance != "paper") {
    throw std::invalid_argument("pisa acceptance must be 'paper' or 'metropolis', got '" +
                                acceptance + "'");
  }
  return options;
}

ExperimentSpec ExperimentSpec::from_json(const Json& json) {
  ExperimentSpec spec;
  check_keys(json,
             {"name", "mode", "schedulers", "datasets", "instance", "pisa", "scenario",
              "seed", "parallel", "threads", "csv", "json", "atlas"},
             "experiment spec");
  if (const Json* v = json.find("name")) spec.name = v->as_string();
  if (const Json* v = json.find("mode")) spec.mode = mode_from_string(v->as_string());
  if (const Json* v = json.find("schedulers")) {
    if (v->is_string()) {
      spec.schedulers.push_back(v->as_string());
    } else {
      for (const auto& item : v->as_array()) spec.schedulers.push_back(item.as_string());
    }
  }
  if (const Json* v = json.find("datasets")) {
    for (const auto& item : v->as_array()) {
      DatasetSelection selection;
      if (item.is_string()) {
        selection.name = item.as_string();
      } else {
        check_keys(item, {"name", "count"}, "dataset selection");
        const Json* name = item.find("name");
        if (name == nullptr) {
          throw std::invalid_argument("dataset selection object needs a 'name'");
        }
        selection.name = name->as_string();
        if (const Json* count = item.find("count")) {
          selection.count = to_size(*count, "dataset 'count'");
        }
      }
      spec.datasets.push_back(std::move(selection));
    }
  }
  if (const Json* v = json.find("instance")) {
    check_keys(*v, {"dataset", "index", "file"}, "instance reference");
    if (const Json* d = v->find("dataset")) spec.instance.dataset = d->as_string();
    if (const Json* i = v->find("index")) spec.instance.index = to_size(*i, "instance 'index'");
    if (const Json* f = v->find("file")) spec.instance.file = f->as_string();
  }
  if (const Json* v = json.find("pisa")) {
    check_keys(*v, {"restarts", "max_iterations", "t_max", "t_min", "alpha", "acceptance"},
               "pisa settings");
    if (const Json* x = v->find("restarts")) spec.pisa.restarts = to_size(*x, "'restarts'");
    if (const Json* x = v->find("max_iterations")) {
      spec.pisa.max_iterations = to_size(*x, "'max_iterations'");
    }
    if (const Json* x = v->find("t_max")) spec.pisa.t_max = x->as_number();
    if (const Json* x = v->find("t_min")) spec.pisa.t_min = x->as_number();
    if (const Json* x = v->find("alpha")) spec.pisa.alpha = x->as_number();
    if (const Json* x = v->find("acceptance")) spec.pisa.acceptance = x->as_string();
  }
  if (const Json* v = json.find("scenario")) spec.scenario = sim::Scenario::from_json(*v);
  if (const Json* v = json.find("seed")) {
    spec.seed = static_cast<std::uint64_t>(to_size(*v, "'seed'"));
  }
  if (const Json* v = json.find("parallel")) spec.parallel = v->as_bool();
  if (const Json* v = json.find("threads")) spec.threads = to_size(*v, "'threads'");
  if (const Json* v = json.find("csv")) spec.csv = v->as_string();
  if (const Json* v = json.find("json")) spec.json = v->as_string();
  if (const Json* v = json.find("atlas")) spec.atlas = v->as_string();
  return spec;
}

Json ExperimentSpec::to_json() const {
  Json json = Json::object();
  if (!name.empty()) json.set("name", Json::string(name));
  json.set("mode", Json::string(std::string(to_string(mode))));
  JsonArray scheduler_items;
  for (const auto& entry : schedulers) scheduler_items.push_back(Json::string(entry));
  json.set("schedulers", Json::array(std::move(scheduler_items)));
  if (!datasets.empty()) {
    JsonArray dataset_items;
    for (const auto& selection : datasets) {
      if (selection.count == 0) {
        dataset_items.push_back(Json::string(selection.name));
      } else {
        Json item = Json::object();
        item.set("name", Json::string(selection.name));
        item.set("count", Json::number(static_cast<double>(selection.count)));
        dataset_items.push_back(std::move(item));
      }
    }
    json.set("datasets", Json::array(std::move(dataset_items)));
  }
  if (!instance.empty()) {
    Json ref = Json::object();
    if (!instance.file.empty()) {
      ref.set("file", Json::string(instance.file));
    } else {
      ref.set("dataset", Json::string(instance.dataset));
      ref.set("index", Json::number(static_cast<double>(instance.index)));
    }
    json.set("instance", std::move(ref));
  }
  Json pisa_json = Json::object();
  pisa_json.set("restarts", Json::number(static_cast<double>(pisa.restarts)));
  pisa_json.set("max_iterations", Json::number(static_cast<double>(pisa.max_iterations)));
  pisa_json.set("t_max", Json::number(pisa.t_max));
  pisa_json.set("t_min", Json::number(pisa.t_min));
  pisa_json.set("alpha", Json::number(pisa.alpha));
  pisa_json.set("acceptance", Json::string(pisa.acceptance));
  json.set("pisa", std::move(pisa_json));
  if (!scenario.empty()) json.set("scenario", scenario.to_json());
  json.set("seed", Json::number(static_cast<double>(seed)));
  json.set("parallel", Json::boolean(parallel));
  if (threads > 0) json.set("threads", Json::number(static_cast<double>(threads)));
  if (!csv.empty()) json.set("csv", Json::string(csv));
  if (!this->json.empty()) json.set("json", Json::string(this->json));
  if (!atlas.empty()) json.set("atlas", Json::string(atlas));
  return json;
}

Json load_spec_document(const std::string& path) {
  std::ostringstream buffer;
  if (path == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open experiment spec " + path);
    buffer << in.rdbuf();
  }
  return Json::parse(buffer.str());
}

ExperimentSpec ExperimentSpec::load(const std::string& path) {
  return from_json(load_spec_document(path));
}

std::vector<std::string> ExperimentSpec::resolved_schedulers() const {
  std::vector<std::string> out;
  for (const auto& entry : schedulers) {
    if (entry.empty() || entry.front() != '@') {
      out.push_back(entry);
      continue;
    }
    const std::string tag = entry.substr(1);
    // Byte-wise sorted so "@benchmark" reproduces the historical roster
    // order (which seeds the drivers' per-cell RNG streams).
    auto expanded =
        SchedulerRegistry::instance().names(tag, NameOrder::kLexicographic);
    if (expanded.empty()) {
      const auto valid = SchedulerRegistry::instance().tags();
      throw std::invalid_argument("unknown scheduler tag '" + entry + "'" +
                                  did_you_mean(tag, valid) +
                                  "; valid tags: " + join(valid, ", "));
    }
    out.insert(out.end(), std::make_move_iterator(expanded.begin()),
               std::make_move_iterator(expanded.end()));
  }
  return out;
}

void ExperimentSpec::validate() const {
  if (schedulers.empty()) throw std::invalid_argument("experiment spec lists no schedulers");
  const auto roster = resolved_schedulers();
  for (const auto& entry : roster) {
    (void)SchedulerRegistry::instance().make(entry, seed);  // diagnoses name/params
  }
  if (pisa.restarts == 0) throw std::invalid_argument("pisa restarts must be at least 1");
  if (pisa.max_iterations == 0) {
    throw std::invalid_argument("pisa max_iterations must be at least 1");
  }
  if (!(pisa.t_max > 0.0) || !(pisa.t_min > 0.0) || pisa.t_max < pisa.t_min) {
    throw std::invalid_argument("pisa temperatures must satisfy t_max >= t_min > 0");
  }
  if (!(pisa.alpha > 0.0) || pisa.alpha >= 1.0) {
    throw std::invalid_argument("pisa alpha must lie in (0, 1)");
  }
  (void)pisa.to_options();  // diagnoses the acceptance rule
  if (!atlas.empty() && mode != Mode::kPisaPairwise) {
    throw std::invalid_argument(
        "the 'atlas' sink publishes adversarial instances and needs pisa-pairwise mode");
  }
  switch (mode) {
    case Mode::kBenchmark:
      if (datasets.empty()) {
        throw std::invalid_argument("benchmark mode needs at least one dataset");
      }
      for (const auto& selection : datasets) (void)make_source(selection.name, seed);
      break;
    case Mode::kPisaPairwise:
      if (roster.size() < 2) {
        throw std::invalid_argument("pisa-pairwise mode needs at least two schedulers");
      }
      break;
    case Mode::kSchedule:
      if (instance.empty()) {
        throw std::invalid_argument(
            "schedule mode needs an instance (dataset+index or file)");
      }
      if (!instance.dataset.empty() && !instance.file.empty()) {
        throw std::invalid_argument("instance reference has both 'dataset' and 'file'");
      }
      if (!instance.dataset.empty()) (void)make_source(instance.dataset, seed);
      break;
    case Mode::kSimulate: {
      if (scenario.empty()) {
        throw std::invalid_argument("simulate mode needs a 'scenario'");
      }
      scenario.validate();
      // Range-check the fault/jitter node indices against the dataset's
      // actual network, so `--dry-run` catches them before any cell runs.
      const auto source = make_source(scenario.dataset, seed);
      const std::size_t nodes = source->generate(0).network.node_count();
      sim::validate_faults(scenario.faults, nodes);
      sim::validate_jitter(scenario.jitter, nodes);
      break;
    }
  }
}

namespace {

/// Computes one work cell's payload. Seeds derive from the cell's *global*
/// coordinates — exactly the streams the historical monolithic drivers used
/// — so results are bit-identical for any shard decomposition and any
/// thread count.
Json execute_cell(const ExperimentSpec& spec, const CellPlan& plan, const WorkCell& cell,
                  const pisa::PisaOptions& pisa_options,
                  const ProblemInstance& schedule_instance, TimelineArena& arena) {
  Json payload = Json::object();
  switch (spec.mode) {
    case Mode::kBenchmark: {
      // Streaming: the worker pulls its instance straight from the shared
      // source (generate() is pure and thread-safe).
      const ProblemInstance inst = plan.sources[cell.dataset]->generate(cell.instance);
      JsonArray makespans;
      for (std::size_t s = 0; s < plan.roster.size(); ++s) {
        const auto scheduler = make_scheduler(
            plan.roster[s], derive_seed(spec.seed, {0xbe5cULL, s, cell.instance}));
        makespans.push_back(encode_double(scheduler->schedule(inst, &arena).makespan()));
      }
      payload.set("makespans", Json::array(std::move(makespans)));
      break;
    }
    case Mode::kPisaPairwise: {
      const pisa::CellSeeds seeds = pisa::pairwise_cell_seeds(spec.seed, cell.row, cell.col);
      const auto baseline = make_scheduler(plan.roster[cell.row], seeds.baseline);
      const auto target = make_scheduler(plan.roster[cell.col], seeds.target);
      auto cell_result =
          pisa::run_pisa(*target, *baseline, pisa_options, seeds.anneal, &arena);
      payload.set("ratio", encode_double(cell_result.best_ratio));
      payload.set("instance", Json::string(instance_to_string(cell_result.best_instance)));
      break;
    }
    case Mode::kSchedule: {
      const auto scheduler = SchedulerRegistry::instance().make(
          plan.roster[cell.scheduler], derive_seed(spec.seed, {0x5c7ed01eULL, cell.scheduler}));
      const Schedule schedule = scheduler->schedule(schedule_instance, &arena);
      payload.set("makespan", encode_double(schedule.makespan()));
      payload.set("schedule", Json::string(schedule_to_string(schedule)));
      break;
    }
    case Mode::kSimulate: {
      // The workload (arrival times, per-job weight noise) derives from the
      // master seed alone, so every roster entry faces the identical
      // scenario; only the scheduler's own stream is per-cell.
      const auto scheduler = SchedulerRegistry::instance().make(
          plan.roster[cell.scheduler], derive_seed(spec.seed, {0x51aaULL, cell.scheduler}));
      const sim::SimReport report =
          sim::simulate_scenario(spec.scenario, *scheduler, spec.seed, &arena);
      payload = sim_report_to_json(report);
      break;
    }
  }
  return payload;
}

}  // namespace

std::string annotate_scheduler_seed(const std::string& spec_string,
                                    std::uint64_t derived_seed) {
  SchedulerSpec spec = parse_scheduler_spec(spec_string);
  const SchedulerDesc& desc = SchedulerRegistry::instance().resolve(spec.name);
  if (!desc.randomized || spec.find("seed") != nullptr) return spec_string;
  spec.params.emplace_back("seed", std::to_string(derived_seed));
  return spec.to_string();
}

Json result_to_json(const ExperimentSpec& spec, const ExperimentResult& result) {
  Json doc = Json::object();
  if (!spec.name.empty()) doc.set("name", Json::string(spec.name));
  doc.set("mode", Json::string(std::string(to_string(spec.mode))));
  doc.set("seed", Json::number(static_cast<double>(spec.seed)));
  const auto roster = spec.resolved_schedulers();
  JsonArray roster_items;
  for (const auto& name : roster) roster_items.push_back(Json::string(name));
  doc.set("schedulers", Json::array(std::move(roster_items)));
  switch (spec.mode) {
    case Mode::kBenchmark: {
      JsonArray benchmarks;
      for (const auto& benchmark : result.benchmarks) {
        Json entry = Json::object();
        entry.set("dataset", Json::string(benchmark.dataset));
        JsonArray per_scheduler;
        for (const auto& sb : benchmark.per_scheduler) {
          Json item = Json::object();
          item.set("scheduler", Json::string(sb.scheduler));
          item.set("summary", summary_to_json(sb.summary));
          JsonArray ratios;
          for (const double ratio : sb.ratios) ratios.push_back(encode_double(ratio));
          item.set("ratios", Json::array(std::move(ratios)));
          per_scheduler.push_back(std::move(item));
        }
        entry.set("per_scheduler", Json::array(std::move(per_scheduler)));
        benchmarks.push_back(std::move(entry));
      }
      doc.set("benchmarks", Json::array(std::move(benchmarks)));
      break;
    }
    case Mode::kPisaPairwise: {
      Json section = Json::object();
      JsonArray rows;
      for (std::size_t row = 0; row < result.pairwise.ratio.size(); ++row) {
        JsonArray cols;
        for (std::size_t col = 0; col < result.pairwise.ratio[row].size(); ++col) {
          cols.push_back(row == col ? Json()  // diagonal: null, not NaN
                                    : encode_double(result.pairwise.ratio[row][col]));
        }
        rows.push_back(Json::array(std::move(cols)));
      }
      section.set("ratio", Json::array(std::move(rows)));
      JsonArray worst;
      for (const double w : result.pairwise.worst_per_target()) {
        worst.push_back(encode_double(w));
      }
      section.set("worst", Json::array(std::move(worst)));
      doc.set("pairwise", std::move(section));
      break;
    }
    case Mode::kSchedule: {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& outcome : result.schedules) best = std::min(best, outcome.makespan);
      JsonArray items;
      for (const auto& outcome : result.schedules) {
        Json item = Json::object();
        item.set("scheduler", Json::string(outcome.scheduler));
        item.set("makespan", encode_double(outcome.makespan));
        item.set("ratio", encode_double(best > 0.0 ? outcome.makespan / best : 1.0));
        items.push_back(std::move(item));
      }
      doc.set("schedules", Json::array(std::move(items)));
      break;
    }
    case Mode::kSimulate: {
      JsonArray items;
      for (const auto& outcome : result.sims) {
        Json item = Json::object();
        item.set("scheduler", Json::string(outcome.scheduler));
        item.set("report", sim_report_to_json(outcome.report));
        items.push_back(std::move(item));
      }
      doc.set("simulate", Json::array(std::move(items)));
      break;
    }
  }
  return doc;
}

void emit_result(const ExperimentSpec& spec, const ExperimentResult& result,
                 std::ostream& out) {
  const auto roster = spec.resolved_schedulers();
  switch (spec.mode) {
    case Mode::kBenchmark: {
      const std::string title =
          spec.name.empty() ? "Benchmarking grid (max makespan ratio per dataset)" : spec.name;
      out << "\n" << analysis::benchmarking_table(result.benchmarks, roster, title).render()
          << "\n";
      if (!spec.csv.empty()) {
        std::ofstream csv_out(spec.csv);
        if (!csv_out) throw std::runtime_error("cannot open csv sink " + spec.csv);
        analysis::write_benchmark_csv(csv_out, result.benchmarks);
        out << "wrote " << spec.csv << "\n";
      }
      break;
    }
    case Mode::kPisaPairwise: {
      const std::string title =
          spec.name.empty() ? "PISA pairwise grid (worst-case ratio of column vs row)"
                            : spec.name;
      out << "\n" << analysis::pairwise_table(result.pairwise, title).render() << "\n";
      if (!spec.csv.empty()) {
        std::ofstream csv_out(spec.csv);
        if (!csv_out) throw std::runtime_error("cannot open csv sink " + spec.csv);
        analysis::write_pairwise_csv(csv_out, result.pairwise);
        out << "wrote " << spec.csv << "\n";
      }
      if (!spec.atlas.empty()) {
        // Every finite cell becomes an atlas entry; randomized schedulers'
        // spec strings are annotated with their derived per-cell seed so
        // `saga atlas-verify` replays them exactly.
        analysis::Atlas atlas;
        for (std::size_t row = 0; row < roster.size(); ++row) {
          for (std::size_t col = 0; col < roster.size(); ++col) {
            if (row == col || !std::isfinite(result.pairwise.ratio[row][col])) continue;
            const pisa::CellSeeds seeds = pisa::pairwise_cell_seeds(spec.seed, row, col);
            analysis::AtlasEntry entry;
            entry.target = annotate_scheduler_seed(roster[col], seeds.target);
            entry.baseline = annotate_scheduler_seed(roster[row], seeds.baseline);
            entry.ratio = result.pairwise.ratio[row][col];
            entry.seed = spec.seed;
            entry.instance = result.pairwise.best_instance[row][col];
            atlas.add(std::move(entry));
          }
        }
        const auto written = atlas.save(spec.atlas);
        out << "wrote " << written.size() << " atlas entries to " << spec.atlas << "\n";
      }
      break;
    }
    case Mode::kSchedule: {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& outcome : result.schedules) best = std::min(best, outcome.makespan);
      Table table(spec.name.empty() ? "Makespans side by side" : spec.name,
                  {"makespan", "ratio"});
      for (const auto& outcome : result.schedules) {
        table.add_row(outcome.scheduler,
                      {format_fixed(outcome.makespan, 4),
                       format_fixed(best > 0.0 ? outcome.makespan / best : 1.0, 3)});
      }
      out << "\n" << table.render() << "\n";
      if (!spec.csv.empty()) {
        std::ofstream csv_out(spec.csv);
        if (!csv_out) throw std::runtime_error("cannot open csv sink " + spec.csv);
        std::vector<std::pair<std::string, double>> makespans;
        for (const auto& outcome : result.schedules) {
          makespans.emplace_back(outcome.scheduler, outcome.makespan);
        }
        analysis::write_schedule_csv(csv_out, makespans);
        out << "wrote " << spec.csv << "\n";
      }
      break;
    }
    case Mode::kSimulate: {
      Table table(spec.name.empty() ? "Dynamic simulation (per-scheduler outcome)" : spec.name,
                  {"jobs", "resp mean", "resp max", "degr mean", "util mean", "reexec",
                   "makespan"});
      for (const auto& outcome : result.sims) {
        const sim::SimReport& r = outcome.report;
        double util_mean = 0.0;
        for (const double u : r.utilization) util_mean += u;
        if (!r.utilization.empty()) util_mean /= static_cast<double>(r.utilization.size());
        table.add_row(outcome.scheduler,
                      {std::to_string(r.completed_jobs) + "/" + std::to_string(r.jobs),
                       format_fixed(r.response.mean, 4), format_fixed(r.response.max, 4),
                       format_fixed(r.degradation.mean, 3), format_fixed(util_mean, 3),
                       std::to_string(r.reexecutions), format_fixed(r.makespan, 4)});
      }
      out << "\n" << table.render() << "\n";
      if (!spec.csv.empty()) {
        std::ofstream csv_out(spec.csv);
        if (!csv_out) throw std::runtime_error("cannot open csv sink " + spec.csv);
        std::vector<std::pair<std::string, sim::SimReport>> rows;
        for (const auto& outcome : result.sims) {
          rows.emplace_back(outcome.scheduler, outcome.report);
        }
        analysis::write_sim_csv(csv_out, rows);
        out << "wrote " << spec.csv << "\n";
      }
      break;
    }
  }
  if (!spec.json.empty()) {
    std::ofstream json_out(spec.json);
    if (!json_out) throw std::runtime_error("cannot open json sink " + spec.json);
    json_out << result_to_json(spec, result).dump(2) << "\n";
    out << "wrote " << spec.json << "\n";
  }
}

ExperimentResult run_experiment(const ExperimentSpec& spec, std::ostream& out) {
  return run_experiment(spec, out, RunOptions{});
}

ExperimentResult run_experiment(const ExperimentSpec& spec, std::ostream& out,
                                const RunOptions& options) {
  spec.validate();
  if (options.shard_index == 0 || options.shard_count == 0 ||
      options.shard_index > options.shard_count) {
    throw std::invalid_argument("shard selection must satisfy 1 <= index <= count");
  }
  if (options.shard_count > 1 && options.out_dir.empty()) {
    throw std::invalid_argument(
        "a sharded run needs an --out result store, or its cells are lost");
  }
  if (options.resume && options.out_dir.empty()) {
    throw std::invalid_argument("--resume needs the --out result store to resume from");
  }

  const CellPlan plan = enumerate_cells(spec);
  const std::string hash = plan_hash_hex(spec, plan);
  const Shard shard{options.shard_index, options.shard_count};

  // Worker selection: an explicit pool wins; otherwise parallel == false
  // runs on one worker and threads > 0 on a local pool of that size.
  // Results are bit-identical either way — every cell derives its own RNG
  // streams from its global coordinates.
  std::optional<ThreadPool> local_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr) {
    if (!spec.parallel) {
      local_pool.emplace(1);
    } else if (spec.threads > 0) {
      local_pool.emplace(spec.threads);
    }
    pool = local_pool ? &*local_pool : &global_pool();
  }

  RunStats stats;
  stats.total_cells = plan.cells.size();
  std::optional<ResultStore> store;
  std::vector<Json> payloads(plan.cells.size());  // null = not yet computed
  if (!options.out_dir.empty()) {
    store.emplace(options.out_dir);
    store->initialize(frozen_spec(spec, plan), hash);
    if (options.resume) {
      auto scan = store->scan(plan, hash);
      stats.torn = scan.torn.size();
      stats.reused = scan.records.size();
      for (auto& [index, record] : scan.records) payloads[index] = std::move(record.payload);
    }
  }

  std::vector<std::size_t> work;
  for (const WorkCell& cell : plan.cells) {
    if (shard.owns(cell.index) && payloads[cell.index].is_null()) work.push_back(cell.index);
  }

  // Schedule mode reads its instance exactly once ("-" composes with
  // pipes); the workers share the loaded copy.
  ProblemInstance schedule_instance;
  if (spec.mode == Mode::kSchedule) {
    schedule_instance = load_instance_ref(spec.instance, spec.seed);
  }
  const pisa::PisaOptions pisa_options =
      spec.mode == Mode::kPisaPairwise ? spec.pisa.to_options() : pisa::PisaOptions{};

  const auto start = std::chrono::steady_clock::now();
  pool->parallel_for(work.size(), [&](std::size_t k) {
    // One evaluation arena per worker thread, recycled across its cells.
    thread_local TimelineArena arena;
    const WorkCell& cell = plan.cells[work[k]];
    const auto cell_start = std::chrono::steady_clock::now();
    Json payload = execute_cell(spec, plan, cell, pisa_options, schedule_instance, arena);
    if (store) {
      CellRecord record;
      record.spec_hash = hash;
      record.index = cell.index;
      record.key = cell.key;
      record.seed = spec.seed;
      record.wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - cell_start)
                           .count();
      record.payload = payload;
      store->write_cell(record);
    }
    payloads[cell.index] = std::move(payload);  // distinct slots: no race
  });
  stats.executed = work.size();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  if (store) {
    out << "store " << store->dir().string() << ": ran " << stats.executed << " of "
        << stats.total_cells << " cells";
    if (options.shard_count > 1) {
      out << " (shard " << options.shard_index << "/" << options.shard_count << ")";
    }
    if (stats.reused > 0) out << ", " << stats.reused << " reused";
    if (stats.torn > 0) out << ", " << stats.torn << " torn record(s) discarded";
    out << ", " << format_fixed(seconds, 2) << "s\n";
  }

  bool complete = true;
  for (const Json& payload : payloads) {
    if (payload.is_null()) {
      complete = false;
      break;
    }
  }

  ExperimentResult result;
  if (complete) {
    result = assemble_result(spec, plan, payloads);
    result.instance = std::move(schedule_instance);
    stats.complete = true;
    result.stats = stats;
    if (spec.mode == Mode::kBenchmark) {
      for (std::size_t d = 0; d < plan.dataset_counts.size(); ++d) {
        out << "  " << spec.datasets[d].name << ": " << plan.dataset_counts[d]
            << " instances\n";
      }
    }
    emit_result(spec, result, out);
  } else {
    result.stats = stats;
    std::size_t outstanding = 0;
    for (const Json& payload : payloads) outstanding += payload.is_null() ? 1 : 0;
    out << "partial run: " << outstanding
        << " cells outstanding; combine the shards with `saga merge`\n";
  }
  return result;
}

void apply_override(Json& root, std::string_view assignment) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    throw std::invalid_argument("--set expects key.path=value, got '" +
                                std::string(assignment) + "'");
  }
  const std::string value_text(assignment.substr(eq + 1));
  Json value;
  try {
    value = Json::parse(value_text);
  } catch (const std::exception&) {
    value = Json::string(value_text);  // bare words are strings
  }
  Json* node = &root;
  std::string_view rest = assignment.substr(0, eq);
  while (true) {
    const std::size_t dot = rest.find('.');
    const std::string key(rest.substr(0, dot));
    if (key.empty()) {
      throw std::invalid_argument("--set path has an empty segment: '" +
                                  std::string(assignment) + "'");
    }
    if (dot == std::string_view::npos) {
      node->set(key, std::move(value));
      return;
    }
    Json* child = node->find(key);
    if (child == nullptr || !child->is_object()) {
      node->set(key, Json::object());
      child = node->find(key);
    }
    node = child;
    rest = rest.substr(dot + 1);
  }
}

std::string describe(const ExperimentSpec& spec) {
  std::ostringstream out;
  out << "experiment" << (spec.name.empty() ? "" : " '" + spec.name + "'") << ": mode "
      << to_string(spec.mode) << "\n";
  // One enumeration serves the dataset counts and the cell total, so the
  // dry-run plan is by construction the plan the executor runs and hashes.
  const CellPlan plan = enumerate_cells(spec);
  out << "  schedulers (" << plan.roster.size() << "): " << join(plan.roster, ", ") << "\n";
  if (spec.mode == Mode::kBenchmark) {
    out << "  datasets (" << spec.datasets.size() << "):";
    for (std::size_t d = 0; d < spec.datasets.size(); ++d) {
      out << " " << spec.datasets[d].name << " x" << plan.dataset_counts[d];
    }
    out << "\n";
  }
  if (spec.mode == Mode::kPisaPairwise) {
    out << "  pisa: " << spec.pisa.restarts << " restarts x " << spec.pisa.max_iterations
        << " iterations, T " << spec.pisa.t_max << "->" << spec.pisa.t_min << ", alpha "
        << spec.pisa.alpha << ", " << spec.pisa.acceptance << " acceptance\n";
  }
  if (spec.mode == Mode::kSchedule) {
    out << "  instance: ";
    if (!spec.instance.file.empty()) {
      out << "file " << spec.instance.file;
    } else {
      out << spec.instance.dataset << "[" << spec.instance.index << "]";
    }
    out << "\n";
  }
  if (spec.mode == Mode::kSimulate) {
    out << "  scenario: dataset " << spec.scenario.dataset << ", ";
    if (spec.scenario.arrivals.kind == sim::ArrivalProcess::Kind::kPoisson) {
      out << spec.scenario.arrivals.jobs << " Poisson arrival(s) at rate "
          << spec.scenario.arrivals.rate;
    } else {
      out << spec.scenario.arrivals.times.size() << " trace arrival(s)";
    }
    out << ", " << spec.scenario.faults.size() << " fault event(s), "
        << spec.scenario.jitter.size() << " jitter event(s)";
    if (spec.scenario.noise_cv > 0.0) out << ", noise cv " << spec.scenario.noise_cv;
    out << "\n";
  }
  out << "  cells: " << plan.cells.size() << " (shardable with --shard i/N)\n";
  out << "  seed " << spec.seed << ", "
      << (spec.parallel ? (spec.threads > 0 ? std::to_string(spec.threads) + " threads"
                                            : std::string("global thread pool"))
                        : std::string("serial"))
      << (spec.csv.empty() ? "" : ", csv -> " + spec.csv)
      << (spec.json.empty() ? "" : ", json -> " + spec.json)
      << (spec.atlas.empty() ? "" : ", atlas -> " + spec.atlas) << "\n";
  return out.str();
}

}  // namespace saga::exp
