#include "exp/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/csv.hpp"
#include "analysis/ratio_matrix.hpp"
#include "common/env.hpp"
#include "common/nearest.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "datasets/registry.hpp"
#include "graph/serialization.hpp"
#include "sched/arena.hpp"
#include "sched/registry.hpp"

namespace saga::exp {

namespace {

std::size_t to_size(const Json& json, const std::string& context) {
  const double value = json.as_number();
  if (value < 0.0 || value != std::floor(value) || value > 9.0e15) {
    throw std::invalid_argument(context + " must be a non-negative integer (got " +
                                json.dump() + ")" + json.position_suffix());
  }
  return static_cast<std::size_t>(value);
}

/// Rejects keys outside `allowed`, suggesting the nearest valid one.
void check_keys(const Json& object, const std::vector<std::string>& allowed,
                const std::string& context) {
  for (const auto& [key, value] : object.as_object()) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      throw std::invalid_argument("unknown key '" + key + "' in " + context +
                                  did_you_mean(key, allowed) +
                                  "; valid keys: " + join(allowed, ", "));
    }
  }
}

/// Constructs the selection's streaming source, diagnosing unknown dataset
/// names and bad parameters (with nearest-name suggestions) on the way.
datasets::InstanceSourcePtr make_source(const std::string& spec_string, std::uint64_t seed) {
  return datasets::DatasetRegistry::instance().make(spec_string, seed);
}

/// The source's natural count scaled by SAGA_SCALE when the selection does
/// not pin one (the Fig. 2 convention; floor 8).
std::size_t effective_count(const DatasetSelection& selection,
                            const datasets::InstanceSource& source) {
  if (selection.count > 0) return selection.count;
  return scaled_count(source.size(), 8);
}

std::size_t effective_count(const DatasetSelection& selection, std::uint64_t seed) {
  return effective_count(selection, *make_source(selection.name, seed));
}

ProblemInstance load_instance_ref(const InstanceRef& ref, std::uint64_t seed) {
  if (!ref.file.empty()) {
    if (ref.file == "-") return load_instance(std::cin);
    std::ifstream in(ref.file);
    if (!in) throw std::runtime_error("cannot open instance file " + ref.file);
    return load_instance(in);
  }
  return datasets::generate_instance(ref.dataset, seed, ref.index);
}

}  // namespace

std::string_view to_string(Mode mode) {
  switch (mode) {
    case Mode::kBenchmark: return "benchmark";
    case Mode::kPisaPairwise: return "pisa-pairwise";
    case Mode::kSchedule: return "schedule";
  }
  return "unknown";
}

Mode mode_from_string(std::string_view text) {
  if (text == "benchmark") return Mode::kBenchmark;
  if (text == "pisa-pairwise" || text == "pisa") return Mode::kPisaPairwise;
  if (text == "schedule") return Mode::kSchedule;
  static const std::vector<std::string> valid = {"benchmark", "pisa-pairwise", "schedule"};
  throw std::invalid_argument("unknown experiment mode '" + std::string(text) + "'" +
                              did_you_mean(text, valid) +
                              "; valid modes: " + join(valid, ", "));
}

pisa::PisaOptions PisaSettings::to_options() const {
  pisa::PisaOptions options;
  options.restarts = restarts;
  options.params.max_iterations = max_iterations;
  options.params.t_max = t_max;
  options.params.t_min = t_min;
  options.params.alpha = alpha;
  if (acceptance == "metropolis") {
    options.params.acceptance = pisa::AnnealingParams::AcceptanceRule::kMetropolis;
  } else if (acceptance != "paper") {
    throw std::invalid_argument("pisa acceptance must be 'paper' or 'metropolis', got '" +
                                acceptance + "'");
  }
  return options;
}

ExperimentSpec ExperimentSpec::from_json(const Json& json) {
  ExperimentSpec spec;
  check_keys(json,
             {"name", "mode", "schedulers", "datasets", "instance", "pisa", "seed",
              "parallel", "threads", "csv"},
             "experiment spec");
  if (const Json* v = json.find("name")) spec.name = v->as_string();
  if (const Json* v = json.find("mode")) spec.mode = mode_from_string(v->as_string());
  if (const Json* v = json.find("schedulers")) {
    if (v->is_string()) {
      spec.schedulers.push_back(v->as_string());
    } else {
      for (const auto& item : v->as_array()) spec.schedulers.push_back(item.as_string());
    }
  }
  if (const Json* v = json.find("datasets")) {
    for (const auto& item : v->as_array()) {
      DatasetSelection selection;
      if (item.is_string()) {
        selection.name = item.as_string();
      } else {
        check_keys(item, {"name", "count"}, "dataset selection");
        const Json* name = item.find("name");
        if (name == nullptr) {
          throw std::invalid_argument("dataset selection object needs a 'name'");
        }
        selection.name = name->as_string();
        if (const Json* count = item.find("count")) {
          selection.count = to_size(*count, "dataset 'count'");
        }
      }
      spec.datasets.push_back(std::move(selection));
    }
  }
  if (const Json* v = json.find("instance")) {
    check_keys(*v, {"dataset", "index", "file"}, "instance reference");
    if (const Json* d = v->find("dataset")) spec.instance.dataset = d->as_string();
    if (const Json* i = v->find("index")) spec.instance.index = to_size(*i, "instance 'index'");
    if (const Json* f = v->find("file")) spec.instance.file = f->as_string();
  }
  if (const Json* v = json.find("pisa")) {
    check_keys(*v, {"restarts", "max_iterations", "t_max", "t_min", "alpha", "acceptance"},
               "pisa settings");
    if (const Json* x = v->find("restarts")) spec.pisa.restarts = to_size(*x, "'restarts'");
    if (const Json* x = v->find("max_iterations")) {
      spec.pisa.max_iterations = to_size(*x, "'max_iterations'");
    }
    if (const Json* x = v->find("t_max")) spec.pisa.t_max = x->as_number();
    if (const Json* x = v->find("t_min")) spec.pisa.t_min = x->as_number();
    if (const Json* x = v->find("alpha")) spec.pisa.alpha = x->as_number();
    if (const Json* x = v->find("acceptance")) spec.pisa.acceptance = x->as_string();
  }
  if (const Json* v = json.find("seed")) {
    spec.seed = static_cast<std::uint64_t>(to_size(*v, "'seed'"));
  }
  if (const Json* v = json.find("parallel")) spec.parallel = v->as_bool();
  if (const Json* v = json.find("threads")) spec.threads = to_size(*v, "'threads'");
  if (const Json* v = json.find("csv")) spec.csv = v->as_string();
  return spec;
}

Json ExperimentSpec::to_json() const {
  Json json = Json::object();
  if (!name.empty()) json.set("name", Json::string(name));
  json.set("mode", Json::string(std::string(to_string(mode))));
  JsonArray scheduler_items;
  for (const auto& entry : schedulers) scheduler_items.push_back(Json::string(entry));
  json.set("schedulers", Json::array(std::move(scheduler_items)));
  if (!datasets.empty()) {
    JsonArray dataset_items;
    for (const auto& selection : datasets) {
      if (selection.count == 0) {
        dataset_items.push_back(Json::string(selection.name));
      } else {
        Json item = Json::object();
        item.set("name", Json::string(selection.name));
        item.set("count", Json::number(static_cast<double>(selection.count)));
        dataset_items.push_back(std::move(item));
      }
    }
    json.set("datasets", Json::array(std::move(dataset_items)));
  }
  if (!instance.empty()) {
    Json ref = Json::object();
    if (!instance.file.empty()) {
      ref.set("file", Json::string(instance.file));
    } else {
      ref.set("dataset", Json::string(instance.dataset));
      ref.set("index", Json::number(static_cast<double>(instance.index)));
    }
    json.set("instance", std::move(ref));
  }
  Json pisa_json = Json::object();
  pisa_json.set("restarts", Json::number(static_cast<double>(pisa.restarts)));
  pisa_json.set("max_iterations", Json::number(static_cast<double>(pisa.max_iterations)));
  pisa_json.set("t_max", Json::number(pisa.t_max));
  pisa_json.set("t_min", Json::number(pisa.t_min));
  pisa_json.set("alpha", Json::number(pisa.alpha));
  pisa_json.set("acceptance", Json::string(pisa.acceptance));
  json.set("pisa", std::move(pisa_json));
  json.set("seed", Json::number(static_cast<double>(seed)));
  json.set("parallel", Json::boolean(parallel));
  if (threads > 0) json.set("threads", Json::number(static_cast<double>(threads)));
  if (!csv.empty()) json.set("csv", Json::string(csv));
  return json;
}

Json load_spec_document(const std::string& path) {
  std::ostringstream buffer;
  if (path == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open experiment spec " + path);
    buffer << in.rdbuf();
  }
  return Json::parse(buffer.str());
}

ExperimentSpec ExperimentSpec::load(const std::string& path) {
  return from_json(load_spec_document(path));
}

std::vector<std::string> ExperimentSpec::resolved_schedulers() const {
  std::vector<std::string> out;
  for (const auto& entry : schedulers) {
    if (entry.empty() || entry.front() != '@') {
      out.push_back(entry);
      continue;
    }
    const std::string tag = entry.substr(1);
    // Byte-wise sorted so "@benchmark" reproduces the historical roster
    // order (which seeds the drivers' per-cell RNG streams).
    auto expanded =
        SchedulerRegistry::instance().names(tag, NameOrder::kLexicographic);
    if (expanded.empty()) {
      const auto valid = SchedulerRegistry::instance().tags();
      throw std::invalid_argument("unknown scheduler tag '" + entry + "'" +
                                  did_you_mean(tag, valid) +
                                  "; valid tags: " + join(valid, ", "));
    }
    out.insert(out.end(), std::make_move_iterator(expanded.begin()),
               std::make_move_iterator(expanded.end()));
  }
  return out;
}

void ExperimentSpec::validate() const {
  if (schedulers.empty()) throw std::invalid_argument("experiment spec lists no schedulers");
  const auto roster = resolved_schedulers();
  for (const auto& entry : roster) {
    (void)SchedulerRegistry::instance().make(entry, seed);  // diagnoses name/params
  }
  if (pisa.restarts == 0) throw std::invalid_argument("pisa restarts must be at least 1");
  if (pisa.max_iterations == 0) {
    throw std::invalid_argument("pisa max_iterations must be at least 1");
  }
  if (!(pisa.t_max > 0.0) || !(pisa.t_min > 0.0) || pisa.t_max < pisa.t_min) {
    throw std::invalid_argument("pisa temperatures must satisfy t_max >= t_min > 0");
  }
  if (!(pisa.alpha > 0.0) || pisa.alpha >= 1.0) {
    throw std::invalid_argument("pisa alpha must lie in (0, 1)");
  }
  (void)pisa.to_options();  // diagnoses the acceptance rule
  switch (mode) {
    case Mode::kBenchmark:
      if (datasets.empty()) {
        throw std::invalid_argument("benchmark mode needs at least one dataset");
      }
      for (const auto& selection : datasets) (void)make_source(selection.name, seed);
      break;
    case Mode::kPisaPairwise:
      if (roster.size() < 2) {
        throw std::invalid_argument("pisa-pairwise mode needs at least two schedulers");
      }
      break;
    case Mode::kSchedule:
      if (instance.empty()) {
        throw std::invalid_argument(
            "schedule mode needs an instance (dataset+index or file)");
      }
      if (!instance.dataset.empty() && !instance.file.empty()) {
        throw std::invalid_argument("instance reference has both 'dataset' and 'file'");
      }
      if (!instance.dataset.empty()) (void)make_source(instance.dataset, seed);
      break;
  }
}

ExperimentResult run_experiment(const ExperimentSpec& spec, std::ostream& out) {
  spec.validate();
  const auto roster = spec.resolved_schedulers();

  // parallel == false wins over threads: everything runs on one worker.
  // Otherwise threads > 0 runs on a local pool of that size. Results are
  // bit-identical either way — every work item derives its own RNG stream.
  std::optional<ThreadPool> local_pool;
  if (!spec.parallel) {
    local_pool.emplace(1);
  } else if (spec.threads > 0) {
    local_pool.emplace(spec.threads);
  }
  ThreadPool* pool = local_pool ? &*local_pool : nullptr;

  ExperimentResult result;
  switch (spec.mode) {
    case Mode::kBenchmark: {
      for (const auto& selection : spec.datasets) {
        // Streaming: workers pull instances straight from the source, so the
        // dataset is never materialized (bit-identical to the eager path).
        const auto source = make_source(selection.name, spec.seed);
        const std::size_t count = effective_count(selection, *source);
        const auto start = std::chrono::steady_clock::now();
        result.benchmarks.push_back(
            analysis::benchmark_source(*source, selection.name, count, roster, spec.seed, pool));
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        out << "  " << selection.name << ": " << count << " instances, "
            << format_fixed(seconds, 2) << "s\n";
      }
      const std::string title =
          spec.name.empty() ? "Benchmarking grid (max makespan ratio per dataset)" : spec.name;
      out << "\n" << analysis::benchmarking_table(result.benchmarks, roster, title).render()
          << "\n";
      if (!spec.csv.empty()) {
        std::ofstream csv_out(spec.csv);
        if (!csv_out) throw std::runtime_error("cannot open csv sink " + spec.csv);
        analysis::write_benchmark_csv(csv_out, result.benchmarks);
        out << "wrote " << spec.csv << "\n";
      }
      break;
    }
    case Mode::kPisaPairwise: {
      pisa::PairwiseOptions options;
      options.pisa = spec.pisa.to_options();
      options.parallel = spec.parallel;
      options.pool = pool;
      result.pairwise = pisa::pairwise_compare(roster, options, spec.seed);
      const std::string title =
          spec.name.empty() ? "PISA pairwise grid (worst-case ratio of column vs row)"
                            : spec.name;
      out << "\n" << analysis::pairwise_table(result.pairwise, title).render() << "\n";
      if (!spec.csv.empty()) {
        std::ofstream csv_out(spec.csv);
        if (!csv_out) throw std::runtime_error("cannot open csv sink " + spec.csv);
        analysis::write_pairwise_csv(csv_out, result.pairwise);
        out << "wrote " << spec.csv << "\n";
      }
      break;
    }
    case Mode::kSchedule: {
      result.instance = load_instance_ref(spec.instance, spec.seed);
      TimelineArena arena;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < roster.size(); ++i) {
        const auto scheduler = SchedulerRegistry::instance().make(
            roster[i], derive_seed(spec.seed, {0x5c7ed01eULL, i}));
        ScheduleOutcome outcome;
        outcome.scheduler = roster[i];
        outcome.schedule = scheduler->schedule(result.instance, &arena);
        outcome.makespan = outcome.schedule.makespan();
        best = std::min(best, outcome.makespan);
        result.schedules.push_back(std::move(outcome));
      }
      Table table(spec.name.empty() ? "Makespans side by side" : spec.name,
                  {"makespan", "ratio"});
      for (const auto& outcome : result.schedules) {
        table.add_row(outcome.scheduler,
                      {format_fixed(outcome.makespan, 4),
                       format_fixed(best > 0.0 ? outcome.makespan / best : 1.0, 3)});
      }
      out << "\n" << table.render() << "\n";
      if (!spec.csv.empty()) {
        std::ofstream csv_out(spec.csv);
        if (!csv_out) throw std::runtime_error("cannot open csv sink " + spec.csv);
        csv_out << "scheduler,makespan,ratio\n";
        for (const auto& outcome : result.schedules) {
          csv_out << outcome.scheduler << ',' << outcome.makespan << ','
                  << (best > 0.0 ? outcome.makespan / best : 1.0) << '\n';
        }
        out << "wrote " << spec.csv << "\n";
      }
      break;
    }
  }
  return result;
}

void apply_override(Json& root, std::string_view assignment) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    throw std::invalid_argument("--set expects key.path=value, got '" +
                                std::string(assignment) + "'");
  }
  const std::string value_text(assignment.substr(eq + 1));
  Json value;
  try {
    value = Json::parse(value_text);
  } catch (const std::exception&) {
    value = Json::string(value_text);  // bare words are strings
  }
  Json* node = &root;
  std::string_view rest = assignment.substr(0, eq);
  while (true) {
    const std::size_t dot = rest.find('.');
    const std::string key(rest.substr(0, dot));
    if (key.empty()) {
      throw std::invalid_argument("--set path has an empty segment: '" +
                                  std::string(assignment) + "'");
    }
    if (dot == std::string_view::npos) {
      node->set(key, std::move(value));
      return;
    }
    Json* child = node->find(key);
    if (child == nullptr || !child->is_object()) {
      node->set(key, Json::object());
      child = node->find(key);
    }
    node = child;
    rest = rest.substr(dot + 1);
  }
}

std::string describe(const ExperimentSpec& spec) {
  std::ostringstream out;
  out << "experiment" << (spec.name.empty() ? "" : " '" + spec.name + "'") << ": mode "
      << to_string(spec.mode) << "\n";
  const auto roster = spec.resolved_schedulers();
  out << "  schedulers (" << roster.size() << "): " << join(roster, ", ") << "\n";
  if (spec.mode == Mode::kBenchmark) {
    out << "  datasets (" << spec.datasets.size() << "):";
    for (const auto& selection : spec.datasets) {
      out << " " << selection.name << " x" << effective_count(selection, spec.seed);
    }
    out << "\n";
  }
  if (spec.mode == Mode::kPisaPairwise) {
    out << "  pisa: " << spec.pisa.restarts << " restarts x " << spec.pisa.max_iterations
        << " iterations, T " << spec.pisa.t_max << "->" << spec.pisa.t_min << ", alpha "
        << spec.pisa.alpha << ", " << spec.pisa.acceptance << " acceptance\n";
  }
  if (spec.mode == Mode::kSchedule) {
    out << "  instance: ";
    if (!spec.instance.file.empty()) {
      out << "file " << spec.instance.file;
    } else {
      out << spec.instance.dataset << "[" << spec.instance.index << "]";
    }
    out << "\n";
  }
  out << "  seed " << spec.seed << ", "
      << (spec.parallel ? (spec.threads > 0 ? std::to_string(spec.threads) + " threads"
                                            : std::string("global thread pool"))
                        : std::string("serial"))
      << (spec.csv.empty() ? "" : ", csv -> " + spec.csv) << "\n";
  return out.str();
}

}  // namespace saga::exp
