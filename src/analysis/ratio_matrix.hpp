#pragma once

#include <string>
#include <vector>

#include "analysis/benchmarking.hpp"
#include "common/table.hpp"
#include "core/pairwise.hpp"

/// \file ratio_matrix.hpp
/// Rendering of the paper's heatmap figures as ASCII tables: the pairwise
/// PISA grid (Fig. 4) and the combined benchmarking-plus-PISA grids of the
/// application-specific study (Figs. 10-19).

namespace saga::analysis {

/// Fig. 4-style table: rows are base schedulers (plus a "Worst" row at the
/// top), columns are target schedulers, cells clamp at ">5.0" / ">1000".
[[nodiscard]] saga::Table pairwise_table(const saga::pisa::PairwiseResult& result,
                                         const std::string& title);

/// Fig. 10/11-style table: the top row shows benchmarking results (max
/// makespan ratio of each scheduler over the dataset) and the remaining
/// rows the PISA grid.
[[nodiscard]] saga::Table app_specific_table(const DatasetBenchmark& benchmark,
                                             const saga::pisa::PairwiseResult& pisa,
                                             const std::string& title);

/// Fig. 2-style table: datasets × schedulers, each cell the max makespan
/// ratio of the scheduler over the dataset (with ">5.0" clamping).
[[nodiscard]] saga::Table benchmarking_table(const std::vector<DatasetBenchmark>& benchmarks,
                                             const std::vector<std::string>& scheduler_names,
                                             const std::string& title);

}  // namespace saga::analysis
