#pragma once

#include <cstddef>
#include <string>

#include "graph/problem_instance.hpp"
#include "sched/schedule.hpp"

/// \file gantt.hpp
/// ASCII Gantt-chart rendering of schedules (the paper's Fig. 1c, 3d-3g,
/// 5b/5d, 6b/6d panels). One row per node, time flowing rightward; each
/// task paints its name across its busy interval.

namespace saga::analysis {

struct GanttOptions {
  std::size_t width = 72;  // characters devoted to the time axis
};

[[nodiscard]] std::string render_gantt(const saga::ProblemInstance& inst,
                                       const saga::Schedule& schedule,
                                       const GanttOptions& options = {});

}  // namespace saga::analysis
