#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "analysis/benchmarking.hpp"
#include "core/pairwise.hpp"
#include "sim/simulator.hpp"

/// \file csv.hpp
/// CSV export of experiment results, so figures can be re-plotted with
/// external tooling (the paper's heatmaps were drawn with matplotlib; the
/// bench binaries write CSVs next to their ASCII tables when given an
/// output directory via SAGA_CSV_DIR).

namespace saga::analysis {

/// Header: "baseline,target,ratio"; one row per off-diagonal cell.
void write_pairwise_csv(std::ostream& out, const saga::pisa::PairwiseResult& result);

/// Header: "dataset,scheduler,min,q1,median,q3,max,mean"; one row per
/// (dataset, scheduler).
void write_benchmark_csv(std::ostream& out, const std::vector<DatasetBenchmark>& benchmarks);

/// Header: "scheduler,makespan,ratio"; one row per (scheduler, makespan)
/// pair, the ratio taken against the minimum makespan in the list (1.0 when
/// the minimum is zero) — the schedule-mode convention of `saga run`.
void write_schedule_csv(std::ostream& out,
                        const std::vector<std::pair<std::string, double>>& makespans);

/// Header: "scheduler,jobs,completed_jobs,tasks_completed,reexecutions,
/// makespan,response_mean,response_max,degradation_mean,degradation_max,
/// utilization_mean,trace_events,trace_hash"; one row per scheduler of a
/// simulate-mode run. The trace hash is the 16-hex event-trace fingerprint.
void write_sim_csv(std::ostream& out,
                   const std::vector<std::pair<std::string, sim::SimReport>>& reports);

/// If SAGA_CSV_DIR is set, opens `<dir>/<name>.csv` and passes the stream
/// to `writer`; otherwise does nothing. Returns the path written, if any.
[[nodiscard]] std::string maybe_write_csv(const std::string& name,
                                          const std::function<void(std::ostream&)>& writer);

}  // namespace saga::analysis
