#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "datasets/dataset.hpp"
#include "sched/scheduler.hpp"

/// \file benchmarking.hpp
/// The traditional benchmarking pipeline behind the paper's Fig. 2 (and the
/// "Benchmarking" rows of Figs. 10-19): run every scheduler on every
/// instance of a dataset and report makespan ratios
///   m(S_A) / min over all schedulers B of m(S_B).

namespace saga {
class ThreadPool;
}

namespace saga::datasets {
class InstanceSource;
}

namespace saga::analysis {

/// Makespan ratios of one scheduler across a dataset's instances.
struct SchedulerBenchmark {
  std::string scheduler;
  std::vector<double> ratios;  // one per instance, >= 1 by construction
  saga::Summary summary;       // of `ratios`
};

struct DatasetBenchmark {
  std::string dataset;
  std::vector<SchedulerBenchmark> per_scheduler;

  [[nodiscard]] const SchedulerBenchmark& for_scheduler(const std::string& name) const;
};

/// Runs all `scheduler_names` (names or spec strings) on every instance;
/// the ratio baseline is the minimum makespan across the same roster (the
/// paper's convention). Parallel over instances; deterministic regardless
/// of thread count. `pool` null means the global pool.
[[nodiscard]] DatasetBenchmark benchmark_dataset(const saga::Dataset& dataset,
                                                 const std::vector<std::string>& scheduler_names,
                                                 std::uint64_t seed,
                                                 saga::ThreadPool* pool = nullptr);

/// Assembly tail shared by the eager/streaming drivers and the result-store
/// merge path: turns a makespan matrix `makespans[s][i]` (scheduler s on
/// instance i) into per-scheduler ratios against the per-instance roster
/// minimum, plus summaries. Keeping this a single function is what makes a
/// merged shard decomposition bit-identical to the monolithic run.
[[nodiscard]] DatasetBenchmark assemble_benchmark(
    std::string label, const std::vector<std::vector<double>>& makespans,
    const std::vector<std::string>& scheduler_names);

/// Streaming variant: pulls instances 0..count-1 on demand from `source`
/// inside the workers (InstanceSource::generate is pure and thread-safe),
/// so the dataset is never materialized. Produces results bit-identical to
/// benchmark_dataset over the eagerly generated equivalent; `label` names
/// the dataset in the result (typically the selection's spec string).
[[nodiscard]] DatasetBenchmark benchmark_source(const saga::datasets::InstanceSource& source,
                                                std::string label, std::size_t count,
                                                const std::vector<std::string>& scheduler_names,
                                                std::uint64_t seed,
                                                saga::ThreadPool* pool = nullptr);

}  // namespace saga::analysis
