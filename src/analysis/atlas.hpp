#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "graph/problem_instance.hpp"

/// \file atlas.hpp
/// The adversarial-instance atlas: a directory-based store for problem
/// instances discovered by PISA, with enough metadata to replay and verify
/// each one. Implements the paper's planned "framework for publishing the
/// problem instances identified by PISA so that other researchers can use
/// them to evaluate their own algorithms".
///
/// On-disk layout: one `<target>_vs_<baseline>.saga` file per entry in the
/// saga-instance format, preceded by structured comment headers:
///
///   # atlas-entry v1
///   # target: HEFT
///   # baseline: FastestNode
///   # ratio: 4.335
///   # seed: 42
///   saga-instance v1
///   ...

namespace saga::analysis {

struct AtlasEntry {
  std::string target;
  std::string baseline;
  double ratio = 0.0;
  /// Seed the schedulers were constructed with at discovery time (only
  /// randomized schedulers, i.e. WBA/GA/SimAnneal, consume it). Recorded
  /// so `verify` replays with the exact same scheduler instances.
  std::uint64_t seed = 0x5a6a0001ULL;
  ProblemInstance instance;
};

class Atlas {
 public:
  /// Adds an entry (replacing any previous entry for the same pair).
  void add(AtlasEntry entry);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<AtlasEntry>& entries() const noexcept { return entries_; }

  /// Entry for a pair, if present.
  [[nodiscard]] const AtlasEntry* find(const std::string& target,
                                       const std::string& baseline) const;

  /// Writes every entry into `dir` (created if needed). Returns the file
  /// paths written.
  std::vector<std::filesystem::path> save(const std::filesystem::path& dir) const;

  /// Loads every `*.saga` atlas entry in `dir`. Files that fail to parse
  /// raise std::runtime_error mentioning the path.
  [[nodiscard]] static Atlas load(const std::filesystem::path& dir);

  /// Re-runs each entry's scheduler pair (constructed with the entry's
  /// recorded seed) and compares the measured ratio to the recorded one;
  /// returns descriptions of entries whose measured ratio differs by more
  /// than `tol` (relative). Empty result = fully reproducible atlas.
  [[nodiscard]] std::vector<std::string> verify(double tol) const;

 private:
  std::vector<AtlasEntry> entries_;
};

/// Serialises one entry (headers + instance).
[[nodiscard]] std::string atlas_entry_to_string(const AtlasEntry& entry);

/// Parses one entry; throws std::runtime_error on malformed input.
[[nodiscard]] AtlasEntry atlas_entry_from_string(const std::string& text);

}  // namespace saga::analysis
