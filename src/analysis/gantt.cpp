#include "analysis/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace saga::analysis {

std::string render_gantt(const saga::ProblemInstance& inst, const saga::Schedule& schedule,
                         const GanttOptions& options) {
  const double makespan = schedule.makespan();
  std::ostringstream out;
  out << "makespan = " << makespan << "\n";
  if (makespan <= 0.0) return out.str();

  const double scale = static_cast<double>(options.width) / makespan;
  for (saga::NodeId v = 0; v < inst.network.node_count(); ++v) {
    std::string lane(options.width, '.');
    for (const auto& a : schedule.on_node(v)) {
      auto begin = static_cast<std::size_t>(std::floor(a.start * scale));
      auto end = static_cast<std::size_t>(std::ceil(a.finish * scale));
      begin = std::min(begin, options.width - 1);
      end = std::clamp(end, begin + 1, options.width);
      for (std::size_t i = begin; i < end; ++i) lane[i] = '#';
      // Overlay the task name (clipped to the interval).
      const std::string& name = inst.graph.name(a.task);
      for (std::size_t i = 0; i < name.size() && begin + i < end; ++i) {
        lane[begin + i] = name[i];
      }
    }
    out << "node " << v << " |" << lane << "|\n";
  }
  out << "        0" << std::string(options.width - 1, ' ') << makespan << "\n";
  return out.str();
}

}  // namespace saga::analysis
