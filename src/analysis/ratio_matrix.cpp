#include "analysis/ratio_matrix.hpp"

#include <cmath>

namespace saga::analysis {

saga::Table pairwise_table(const saga::pisa::PairwiseResult& result, const std::string& title) {
  const auto& names = result.scheduler_names;
  saga::Table table(title, names);

  // "Worst" summary row first, as in Fig. 4.
  {
    const auto worst = result.worst_per_target();
    std::vector<std::string> cells;
    for (double w : worst) cells.push_back(saga::format_ratio_cell(w));
    table.add_row("Worst", std::move(cells));
  }
  for (std::size_t row = 0; row < names.size(); ++row) {
    std::vector<std::string> cells;
    for (std::size_t col = 0; col < names.size(); ++col) {
      cells.push_back(saga::format_ratio_cell(result.cell(row, col)));
    }
    table.add_row(names[row], std::move(cells));
  }
  return table;
}

saga::Table app_specific_table(const DatasetBenchmark& benchmark,
                               const saga::pisa::PairwiseResult& pisa,
                               const std::string& title) {
  const auto& names = pisa.scheduler_names;
  saga::Table table(title, names);

  // Top row: traditional benchmarking (max makespan ratio over the dataset),
  // as in the top rows of Figs. 10-19.
  {
    std::vector<std::string> cells;
    for (const auto& name : names) {
      cells.push_back(saga::format_ratio_cell(benchmark.for_scheduler(name).summary.max));
    }
    table.add_row("Benchmarking", std::move(cells));
  }
  for (std::size_t row = 0; row < names.size(); ++row) {
    std::vector<std::string> cells;
    for (std::size_t col = 0; col < names.size(); ++col) {
      cells.push_back(saga::format_ratio_cell(pisa.cell(row, col)));
    }
    table.add_row(names[row] + " (base)", std::move(cells));
  }
  return table;
}

saga::Table benchmarking_table(const std::vector<DatasetBenchmark>& benchmarks,
                               const std::vector<std::string>& scheduler_names,
                               const std::string& title) {
  saga::Table table(title, scheduler_names);
  for (const auto& benchmark : benchmarks) {
    std::vector<std::string> cells;
    for (const auto& name : scheduler_names) {
      cells.push_back(saga::format_ratio_cell(benchmark.for_scheduler(name).summary.max));
    }
    table.add_row(benchmark.dataset, std::move(cells));
  }
  return table;
}

}  // namespace saga::analysis
