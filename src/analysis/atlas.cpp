#include "analysis/atlas.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "core/annealer.hpp"
#include "graph/serialization.hpp"
#include "sched/registry.hpp"

namespace saga::analysis {

void Atlas::add(AtlasEntry entry) {
  const auto it = std::find_if(entries_.begin(), entries_.end(), [&](const AtlasEntry& e) {
    return e.target == entry.target && e.baseline == entry.baseline;
  });
  if (it != entries_.end()) {
    *it = std::move(entry);
  } else {
    entries_.push_back(std::move(entry));
  }
}

const AtlasEntry* Atlas::find(const std::string& target, const std::string& baseline) const {
  for (const auto& e : entries_) {
    if (e.target == target && e.baseline == baseline) return &e;
  }
  return nullptr;
}

std::string atlas_entry_to_string(const AtlasEntry& entry) {
  std::ostringstream out;
  out << "# atlas-entry v1\n";
  out << "# target: " << entry.target << "\n";
  out << "# baseline: " << entry.baseline << "\n";
  out << "# ratio: ";
  out.precision(17);
  out << entry.ratio << "\n";
  out << "# seed: " << entry.seed << "\n";
  save_instance(out, entry.instance);
  return out.str();
}

AtlasEntry atlas_entry_from_string(const std::string& text) {
  AtlasEntry entry;
  std::istringstream in(text);
  std::string line;
  bool saw_magic = false;
  // Headers are comments, so the instance parser would skip them; read
  // them here first, then hand the remainder to load_instance.
  std::ostringstream rest;
  while (std::getline(in, line)) {
    if (line.rfind("# atlas-entry", 0) == 0) {
      saw_magic = true;
    } else if (line.rfind("# target: ", 0) == 0) {
      entry.target = line.substr(10);
    } else if (line.rfind("# baseline: ", 0) == 0) {
      entry.baseline = line.substr(12);
    } else if (line.rfind("# ratio: ", 0) == 0) {
      entry.ratio = std::stod(line.substr(9));
    } else if (line.rfind("# seed: ", 0) == 0) {
      entry.seed = std::stoull(line.substr(8));
    } else {
      rest << line << "\n";
    }
  }
  if (!saw_magic) throw std::runtime_error("not an atlas-entry v1 file");
  if (entry.target.empty() || entry.baseline.empty()) {
    throw std::runtime_error("atlas entry missing target/baseline header");
  }
  entry.instance = instance_from_string(rest.str());
  return entry;
}

std::vector<std::filesystem::path> Atlas::save(const std::filesystem::path& dir) const {
  std::filesystem::create_directories(dir);
  std::vector<std::filesystem::path> written;
  for (const auto& entry : entries_) {
    const auto path = dir / (entry.target + "_vs_" + entry.baseline + ".saga");
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write " + path.string());
    out << atlas_entry_to_string(entry);
    written.push_back(path);
  }
  return written;
}

Atlas Atlas::load(const std::filesystem::path& dir) {
  Atlas atlas;
  std::vector<std::filesystem::path> files;
  for (const auto& item : std::filesystem::directory_iterator(dir)) {
    if (item.is_regular_file() && item.path().extension() == ".saga") {
      files.push_back(item.path());
    }
  }
  std::sort(files.begin(), files.end());  // deterministic load order
  for (const auto& path : files) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    try {
      atlas.add(atlas_entry_from_string(text.str()));
    } catch (const std::exception& e) {
      throw std::runtime_error(path.string() + ": " + e.what());
    }
  }
  return atlas;
}

std::vector<std::string> Atlas::verify(double tol) const {
  std::vector<std::string> mismatches;
  for (const auto& entry : entries_) {
    const auto target = make_scheduler(entry.target, entry.seed);
    const auto baseline = make_scheduler(entry.baseline, entry.seed);
    const double measured = pisa::makespan_ratio(*target, *baseline, entry.instance);
    const double reference = std::max(std::abs(entry.ratio), 1e-12);
    if (std::abs(measured - entry.ratio) > tol * reference) {
      std::ostringstream msg;
      msg << entry.target << " vs " << entry.baseline << ": recorded " << entry.ratio
          << ", measured " << measured;
      mismatches.push_back(msg.str());
    }
  }
  return mismatches;
}

}  // namespace saga::analysis
