#include "analysis/csv.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <ostream>

#include "common/hash.hpp"

namespace saga::analysis {

void write_pairwise_csv(std::ostream& out, const saga::pisa::PairwiseResult& result) {
  out << "baseline,target,ratio\n";
  const auto& names = result.scheduler_names;
  for (std::size_t row = 0; row < names.size(); ++row) {
    for (std::size_t col = 0; col < names.size(); ++col) {
      if (row == col) continue;
      const double r = result.cell(row, col);
      out << names[row] << ',' << names[col] << ',';
      if (std::isnan(r)) {
        out << "nan";
      } else if (std::isinf(r)) {
        out << "inf";
      } else {
        out << r;
      }
      out << '\n';
    }
  }
}

void write_benchmark_csv(std::ostream& out, const std::vector<DatasetBenchmark>& benchmarks) {
  out << "dataset,scheduler,min,q1,median,q3,max,mean\n";
  for (const auto& benchmark : benchmarks) {
    for (const auto& sb : benchmark.per_scheduler) {
      const auto& s = sb.summary;
      out << benchmark.dataset << ',' << sb.scheduler << ',' << s.min << ',' << s.q1 << ','
          << s.median << ',' << s.q3 << ',' << s.max << ',' << s.mean << '\n';
    }
  }
}

void write_schedule_csv(std::ostream& out,
                        const std::vector<std::pair<std::string, double>>& makespans) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [name, makespan] : makespans) {
    (void)name;
    best = std::min(best, makespan);
  }
  out << "scheduler,makespan,ratio\n";
  for (const auto& [name, makespan] : makespans) {
    out << name << ',' << makespan << ',' << (best > 0.0 ? makespan / best : 1.0) << '\n';
  }
}

void write_sim_csv(std::ostream& out,
                   const std::vector<std::pair<std::string, sim::SimReport>>& reports) {
  out << "scheduler,jobs,completed_jobs,tasks_completed,reexecutions,makespan,"
         "response_mean,response_max,degradation_mean,degradation_max,"
         "utilization_mean,trace_events,trace_hash\n";
  for (const auto& [name, report] : reports) {
    double util_mean = 0.0;
    for (const double u : report.utilization) util_mean += u;
    if (!report.utilization.empty()) util_mean /= static_cast<double>(report.utilization.size());
    out << name << ',' << report.jobs << ',' << report.completed_jobs << ','
        << report.tasks_completed << ',' << report.reexecutions << ',' << report.makespan
        << ',' << report.response.mean << ',' << report.response.max << ','
        << report.degradation.mean << ',' << report.degradation.max << ',' << util_mean
        << ',' << report.trace_events << ',' << hash_hex(report.trace_hash) << '\n';
  }
}

std::string maybe_write_csv(const std::string& name,
                            const std::function<void(std::ostream&)>& writer) {
  const char* dir = std::getenv("SAGA_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) return {};
  writer(out);
  return path;
}

}  // namespace saga::analysis
