#include "analysis/benchmarking.hpp"

#include <functional>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "datasets/source.hpp"
#include "sched/arena.hpp"
#include "sched/registry.hpp"

namespace saga::analysis {

const SchedulerBenchmark& DatasetBenchmark::for_scheduler(const std::string& name) const {
  for (const auto& sb : per_scheduler) {
    if (sb.scheduler == name) return sb;
  }
  throw std::out_of_range("scheduler not in benchmark: " + name);
}

namespace {

/// Shared core of the eager and streaming entry points: `instance_at` hands
/// each worker its instance (an in-memory vector element or a streamed
/// generate(i) call); everything downstream is identical, so both paths
/// produce bit-identical ratios.
DatasetBenchmark benchmark_instances(
    std::string label, std::size_t n_instances,
    const std::function<saga::ProblemInstance(std::size_t)>& instance_at,
    const std::vector<std::string>& scheduler_names, std::uint64_t seed,
    saga::ThreadPool* pool) {
  const std::size_t n_schedulers = scheduler_names.size();

  // makespans[s][i]: scheduler s on instance i.
  std::vector<std::vector<double>> makespans(n_schedulers,
                                             std::vector<double>(n_instances, 0.0));

  (pool != nullptr ? *pool : saga::global_pool()).parallel_for(n_instances, [&](std::size_t i) {
    const saga::ProblemInstance inst = instance_at(i);
    thread_local saga::TimelineArena arena;
    for (std::size_t s = 0; s < n_schedulers; ++s) {
      const auto scheduler =
          saga::make_scheduler(scheduler_names[s], saga::derive_seed(seed, {0xbe5cULL, s, i}));
      makespans[s][i] = scheduler->schedule(inst, &arena).makespan();
    }
  });

  return assemble_benchmark(std::move(label), makespans, scheduler_names);
}

}  // namespace

DatasetBenchmark assemble_benchmark(std::string label,
                                    const std::vector<std::vector<double>>& makespans,
                                    const std::vector<std::string>& scheduler_names) {
  const std::size_t n_schedulers = scheduler_names.size();
  const std::size_t n_instances = n_schedulers == 0 ? 0 : makespans.front().size();
  DatasetBenchmark result;
  result.dataset = std::move(label);
  result.per_scheduler.resize(n_schedulers);
  for (std::size_t i = 0; i < n_instances; ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < n_schedulers; ++s) best = std::min(best, makespans[s][i]);
    for (std::size_t s = 0; s < n_schedulers; ++s) {
      const double m = makespans[s][i];
      const double ratio = best == 0.0 ? (m == 0.0 ? 1.0 : std::numeric_limits<double>::infinity())
                                       : m / best;
      result.per_scheduler[s].ratios.push_back(ratio);
    }
  }
  for (std::size_t s = 0; s < n_schedulers; ++s) {
    result.per_scheduler[s].scheduler = scheduler_names[s];
    result.per_scheduler[s].summary = saga::summarize(result.per_scheduler[s].ratios);
  }
  return result;
}

DatasetBenchmark benchmark_dataset(const saga::Dataset& dataset,
                                   const std::vector<std::string>& scheduler_names,
                                   std::uint64_t seed, saga::ThreadPool* pool) {
  return benchmark_instances(
      dataset.name, dataset.instances.size(),
      [&dataset](std::size_t i) { return dataset.instances[i]; }, scheduler_names, seed, pool);
}

DatasetBenchmark benchmark_source(const saga::datasets::InstanceSource& source,
                                  std::string label, std::size_t count,
                                  const std::vector<std::string>& scheduler_names,
                                  std::uint64_t seed, saga::ThreadPool* pool) {
  return benchmark_instances(
      std::move(label), count, [&source](std::size_t i) { return source.generate(i); },
      scheduler_names, seed, pool);
}

}  // namespace saga::analysis
