#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "datasets/registry.hpp"
#include "sched/arena.hpp"
#include "stochastic/stochastic_instance.hpp"

namespace saga::sim {

namespace {

/// %.17g: round-trip exact and byte-stable across platforms for the same
/// double, so traces (and their hashes) are portable.
std::string format_time(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

/// One run of the event loop. Single-threaded by construction: a simulation
/// is one experiment cell, and cells parallelize across the worker pool.
class Simulation {
 public:
  Simulation(const Network& network, const std::vector<SimJob>& jobs,
             const Scheduler& scheduler, const std::vector<FaultEvent>& faults,
             const std::vector<JitterEvent>& jitter, TimelineArena* arena)
      : network_(network), jobs_(jobs), scheduler_(scheduler), faults_(faults),
        jitter_script_(jitter), arena_(arena) {}

  SimReport run() {
    validate_inputs();
    nodes_.assign(network_.node_count(), NodeState{});
    states_.resize(jobs_.size());

    // Environment scripts enter the queue before arrivals, so at equal
    // timestamps a scripted change applies before the work it affects; the
    // queue's (time, seq) order makes every such tie deterministic.
    for (const JitterEvent& event : jitter_script_) {
      Event e;
      e.time = event.at;
      e.type = EventType::kJitterChange;
      e.has_link = event.has_link;
      e.node = static_cast<std::uint32_t>(event.a);
      e.peer = static_cast<std::uint32_t>(event.b);
      e.factor = event.factor;
      queue_.push(e);
    }
    for (const FaultEvent& fault : faults_) {
      Event e;
      e.node = static_cast<std::uint32_t>(fault.node);
      switch (fault.kind) {
        case FaultEvent::Kind::kCrash:
          e.time = fault.at;
          e.type = EventType::kNodeCrash;
          queue_.push(e);
          break;
        case FaultEvent::Kind::kRecover:
          e.time = fault.at;
          e.type = EventType::kNodeRecover;
          queue_.push(e);
          break;
        case FaultEvent::Kind::kSlowdown:
          e.time = fault.at;
          e.type = EventType::kSlowdownBegin;
          e.factor = fault.factor;
          queue_.push(e);
          e.time = fault.until;
          e.type = EventType::kSlowdownEnd;
          e.factor = 1.0;
          queue_.push(e);
          break;
      }
    }
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      Event e;
      e.time = jobs_[j].arrival;
      e.type = EventType::kJobArrival;
      e.job = j;
      queue_.push(e);
    }

    while (!queue_.empty()) {
      const Event e = queue_.pop();
      clock_.advance_to(e.time);
      switch (e.type) {
        case EventType::kJobArrival: handle_arrival(e.job); break;
        case EventType::kTaskReady: handle_ready(e); break;
        case EventType::kTaskFinish: handle_finish(e); break;
        case EventType::kNodeCrash: handle_crash(e.node); break;
        case EventType::kNodeRecover: handle_recover(e.node); break;
        case EventType::kSlowdownBegin:
          handle_slowdown(e.node, e.factor, EventType::kSlowdownBegin);
          break;
        case EventType::kSlowdownEnd:
          handle_slowdown(e.node, 1.0, EventType::kSlowdownEnd);
          break;
        case EventType::kJitterChange: handle_jitter(e); break;
        case EventType::kTaskStart:
        case EventType::kTaskLost:
          break;  // trace-only types are never enqueued
      }
    }
    return finalize();
  }

 private:
  struct RunningTask {
    std::size_t job = 0;
    TaskId task = 0;
    double remaining = 0.0;        // cost units left
    double rate = 1.0;             // cost units per time unit
    double rate_since = 0.0;       // time of the last (re)pricing
    std::uint64_t generation = 0;  // matches the pending finish event
  };

  struct NodeState {
    bool alive = true;
    double slow_factor = 1.0;
    std::optional<RunningTask> running;
    std::deque<std::pair<std::size_t, TaskId>> queue;  // (job, task) dispatch order
    double busy = 0.0;  // wall time occupied by tasks (lost attempts included)
  };

  struct TaskState {
    NodeId node = 0;
    std::size_t pending_inputs = 0;
    double input_arrival = 0.0;    // latest input arrival seen so far
    std::uint64_t generation = 0;  // bumped on every (re)start/invalidaton
    bool ready = false;
    bool done = false;
  };

  struct JobState {
    double planned_makespan = 0.0;
    std::size_t remaining = 0;
    std::vector<TaskState> tasks;
  };

  void validate_inputs() const {
    validate_faults(faults_, network_.node_count());
    validate_jitter(jitter_script_, network_.node_count());
    double previous = 0.0;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const double arrival = jobs_[j].arrival;
      if (!std::isfinite(arrival) || arrival < 0.0 || arrival < previous) {
        throw std::invalid_argument(
            "job arrival times must be finite, non-negative and non-decreasing");
      }
      previous = arrival;
    }
  }

  void record(EventType type, std::size_t job = 0, std::uint32_t task = 0,
              std::uint32_t node = 0) {
    Event e;
    e.time = clock_.now();
    e.type = type;
    e.job = job;
    e.task = task;
    e.node = node;
    trace_.push_back(e);
  }

  [[nodiscard]] double jitter_factor(NodeId a, NodeId b) const {
    if (a == b) return 1.0;
    const std::pair<NodeId, NodeId> key = std::minmax(a, b);
    const auto it = link_jitter_.find(key);
    return it != link_jitter_.end() ? it->second : global_jitter_;
  }

  /// The moment a job arrives, the scheduler plans it on the pristine
  /// shared network (no knowledge of load, faults, or jitter); placements
  /// and per-node dispatch order are then irrevocable.
  void handle_arrival(std::size_t j) {
    record(EventType::kJobArrival, j);
    const TaskGraph& graph = jobs_[j].graph;
    JobState& js = states_[j];
    js.remaining = graph.task_count();
    js.tasks.assign(graph.task_count(), TaskState{});
    if (graph.task_count() == 0) {
      complete_job(j);
      return;
    }

    ProblemInstance inst;
    inst.network = network_;
    inst.graph = graph;
    const Schedule planned = scheduler_.schedule(inst, arena_);
    js.planned_makespan = planned.makespan();

    // Per-node dispatch order: planned start, then planned finish, then
    // task id — the stochastic::reexecute rank — so zero-fault replay of a
    // builder schedule reproduces its start times exactly.
    struct PlannedTask {
      double start;
      double finish;
      TaskId task;
      NodeId node;
    };
    std::vector<PlannedTask> order;
    order.reserve(graph.task_count());
    for (TaskId t = 0; t < graph.task_count(); ++t) {
      const Assignment& a = planned.of_task(t);
      js.tasks[t].node = a.node;
      js.tasks[t].pending_inputs = graph.predecessors(t).size();
      order.push_back({a.start, a.finish, t, a.node});
    }
    std::sort(order.begin(), order.end(), [](const PlannedTask& a, const PlannedTask& b) {
      if (a.start != b.start) return a.start < b.start;
      if (a.finish != b.finish) return a.finish < b.finish;
      return a.task < b.task;
    });
    std::vector<NodeId> touched;
    for (const PlannedTask& p : order) {
      nodes_[p.node].queue.emplace_back(j, p.task);
      if (std::find(touched.begin(), touched.end(), p.node) == touched.end()) {
        touched.push_back(p.node);
      }
    }
    for (TaskId t = 0; t < graph.task_count(); ++t) {
      if (js.tasks[t].pending_inputs == 0) {
        js.tasks[t].input_arrival = clock_.now();
        js.tasks[t].ready = true;
      }
    }
    for (const NodeId v : touched) try_dispatch(v);
  }

  void handle_ready(const Event& e) {
    TaskState& ts = states_[e.job].tasks[e.task];
    ts.ready = true;
    try_dispatch(ts.node);
  }

  /// Starts queued tasks on v while it is alive and idle. Head-of-line:
  /// a not-yet-ready head blocks the node, preserving the planned order.
  void try_dispatch(NodeId v) {
    NodeState& ns = nodes_[v];
    while (ns.alive && !ns.running && !ns.queue.empty()) {
      const auto [j, t] = ns.queue.front();
      TaskState& ts = states_[j].tasks[t];
      if (!ts.ready) break;
      ns.queue.pop_front();
      RunningTask r;
      r.job = j;
      r.task = t;
      r.remaining = jobs_[j].graph.cost(t);
      r.rate = network_.speed(v) / ns.slow_factor;
      r.rate_since = clock_.now();
      r.generation = ++ts.generation;
      ns.running = r;
      record(EventType::kTaskStart, j, t, v);
      Event finish;
      finish.time = clock_.now() + r.remaining / r.rate;
      finish.type = EventType::kTaskFinish;
      finish.job = j;
      finish.task = t;
      finish.node = v;
      finish.generation = r.generation;
      queue_.push(finish);
    }
  }

  void handle_finish(const Event& e) {
    NodeState& ns = nodes_[e.node];
    if (!ns.running || ns.running->job != e.job || ns.running->task != e.task ||
        ns.running->generation != e.generation) {
      return;  // stale: the attempt was lost or repriced since
    }
    ns.busy += clock_.now() - ns.running->rate_since;
    ns.running.reset();
    TaskState& ts = states_[e.job].tasks[e.task];
    ts.done = true;
    ++tasks_completed_;
    makespan_ = clock_.now();  // finishes are processed in time order
    record(EventType::kTaskFinish, e.job, e.task, e.node);

    const TaskGraph& graph = jobs_[e.job].graph;
    for (const TaskId s : graph.successors(static_cast<TaskId>(e.task))) {
      TaskState& succ = states_[e.job].tasks[s];
      const double transfer = network_.comm_time(
          graph.dependency_cost(static_cast<TaskId>(e.task), s), e.node, succ.node);
      const double arrival =
          clock_.now() + transfer * jitter_factor(e.node, succ.node);
      succ.input_arrival = std::max(succ.input_arrival, arrival);
      if (--succ.pending_inputs == 0) {
        Event ready;
        ready.time = succ.input_arrival;
        ready.type = EventType::kTaskReady;
        ready.job = e.job;
        ready.task = s;
        ready.node = succ.node;
        queue_.push(ready);
      }
    }
    if (--states_[e.job].remaining == 0) complete_job(e.job);
    try_dispatch(e.node);
  }

  void complete_job(std::size_t j) {
    ++completed_jobs_;
    const double span = clock_.now() - jobs_[j].arrival;
    responses_.push_back(span);
    const double planned = states_[j].planned_makespan;
    degradations_.push_back(planned > 0.0 ? span / planned : 1.0);
  }

  /// A crash destroys the in-flight task entirely: its full cost re-executes
  /// once the node recovers (the placement holds, and it returns to the
  /// front of the node's queue). Completed outputs survive the crash.
  void handle_crash(NodeId v) {
    record(EventType::kNodeCrash, 0, 0, v);
    NodeState& ns = nodes_[v];
    ns.alive = false;
    if (ns.running) {
      const RunningTask r = *ns.running;
      ns.busy += clock_.now() - r.rate_since;
      record(EventType::kTaskLost, r.job, r.task, v);
      ++reexecutions_;
      ++states_[r.job].tasks[r.task].generation;  // invalidate the finish event
      ns.queue.emplace_front(r.job, r.task);
      ns.running.reset();
    }
  }

  void handle_recover(NodeId v) {
    record(EventType::kNodeRecover, 0, 0, v);
    nodes_[v].alive = true;
    try_dispatch(v);
  }

  /// Remaining-work repricing: work done so far at the old rate is banked,
  /// and the rest finishes at the new rate — so a slowdown window stretches
  /// exactly the work overlapping it.
  void handle_slowdown(NodeId v, double factor, EventType traced_as) {
    NodeState& ns = nodes_[v];
    {
      Event e;
      e.time = clock_.now();
      e.type = traced_as;
      e.node = v;
      e.factor = factor;
      trace_.push_back(e);
    }
    ns.slow_factor = factor;
    if (!ns.running) return;
    RunningTask& r = *ns.running;
    const double elapsed = clock_.now() - r.rate_since;
    ns.busy += elapsed;
    r.remaining = std::max(0.0, r.remaining - elapsed * r.rate);
    r.rate = network_.speed(v) / factor;
    r.rate_since = clock_.now();
    r.generation = ++states_[r.job].tasks[r.task].generation;
    Event finish;
    finish.time = clock_.now() + r.remaining / r.rate;
    finish.type = EventType::kTaskFinish;
    finish.job = r.job;
    finish.task = r.task;
    finish.node = v;
    finish.generation = r.generation;
    queue_.push(finish);
  }

  /// Jitter multiplies communication times of transfers that *start* (i.e.
  /// whose producing task finishes) at or after the change.
  void handle_jitter(const Event& e) {
    Event traced = e;
    traced.time = clock_.now();
    trace_.push_back(traced);
    if (e.has_link) {
      const std::pair<NodeId, NodeId> key = std::minmax(e.node, e.peer);
      link_jitter_[key] = e.factor;
    } else {
      global_jitter_ = e.factor;
    }
  }

  SimReport finalize() const {
    SimReport report;
    report.jobs = jobs_.size();
    report.completed_jobs = completed_jobs_;
    report.tasks_completed = tasks_completed_;
    report.reexecutions = reexecutions_;
    report.makespan = makespan_;
    report.response = summarize(responses_);
    report.degradation = summarize(degradations_);
    report.utilization.reserve(nodes_.size());
    for (const NodeState& ns : nodes_) {
      report.utilization.push_back(makespan_ > 0.0 ? ns.busy / makespan_ : 0.0);
    }
    report.trace_hash = fnv1a64(trace_to_string(trace_));
    report.trace_events = trace_.size();
    return report;
  }

  const Network& network_;
  const std::vector<SimJob>& jobs_;
  const Scheduler& scheduler_;
  const std::vector<FaultEvent>& faults_;
  const std::vector<JitterEvent>& jitter_script_;
  TimelineArena* arena_ = nullptr;

  EventQueue queue_;
  SimClock clock_;
  std::vector<NodeState> nodes_;
  std::vector<JobState> states_;
  std::map<std::pair<NodeId, NodeId>, double> link_jitter_;
  double global_jitter_ = 1.0;
  std::vector<Event> trace_;
  std::vector<double> responses_;
  std::vector<double> degradations_;
  std::size_t completed_jobs_ = 0;
  std::size_t tasks_completed_ = 0;
  std::size_t reexecutions_ = 0;
  double makespan_ = 0.0;

 public:
  [[nodiscard]] const std::vector<Event>& trace() const noexcept { return trace_; }
};

}  // namespace

std::string trace_to_string(const std::vector<Event>& trace) {
  std::string out;
  out.reserve(trace.size() * 48);
  for (const Event& e : trace) {
    out += to_string(e.type);
    out += " t=";
    out += format_time(e.time);
    switch (e.type) {
      case EventType::kJobArrival:
        out += " job=" + std::to_string(e.job);
        break;
      case EventType::kTaskStart:
      case EventType::kTaskFinish:
      case EventType::kTaskLost:
        out += " job=" + std::to_string(e.job) + " task=" + std::to_string(e.task) +
               " node=" + std::to_string(e.node);
        break;
      case EventType::kNodeCrash:
      case EventType::kNodeRecover:
        out += " node=" + std::to_string(e.node);
        break;
      case EventType::kSlowdownBegin:
        out += " node=" + std::to_string(e.node) + " factor=" + format_time(e.factor);
        break;
      case EventType::kSlowdownEnd:
        out += " node=" + std::to_string(e.node);
        break;
      case EventType::kJitterChange:
        if (e.has_link) {
          out += " link=" + std::to_string(std::min(e.node, e.peer)) + "-" +
                 std::to_string(std::max(e.node, e.peer));
        }
        out += " factor=" + format_time(e.factor);
        break;
      case EventType::kTaskReady:
        out += " job=" + std::to_string(e.job) + " task=" + std::to_string(e.task);
        break;
    }
    out += "\n";
  }
  return out;
}

SimReport simulate_jobs(const Network& network, const std::vector<SimJob>& jobs,
                        const Scheduler& scheduler, const std::vector<FaultEvent>& faults,
                        const std::vector<JitterEvent>& jitter, TimelineArena* arena,
                        std::vector<Event>* trace) {
  Simulation simulation(network, jobs, scheduler, faults, jitter, arena);
  SimReport report = simulation.run();
  if (trace != nullptr) {
    trace->insert(trace->end(), simulation.trace().begin(), simulation.trace().end());
  }
  return report;
}

std::vector<double> arrival_times(const Scenario& scenario, std::uint64_t seed) {
  if (scenario.arrivals.kind == ArrivalProcess::Kind::kTrace) return scenario.arrivals.times;
  // Exponential gaps via inverse transform; the stream depends only on the
  // master seed, so every scheduler in a roster faces the same arrivals.
  Rng rng(derive_seed(seed, {0x51a7a221ULL}));
  std::vector<double> times;
  times.reserve(scenario.arrivals.jobs);
  double t = 0.0;
  for (std::size_t j = 0; j < scenario.arrivals.jobs; ++j) {
    t += -std::log(1.0 - rng.uniform()) / scenario.arrivals.rate;
    times.push_back(t);
  }
  return times;
}

SimReport simulate_scenario(const Scenario& scenario, const Scheduler& scheduler,
                            std::uint64_t seed, TimelineArena* arena,
                            std::vector<Event>* trace) {
  scenario.validate();
  const auto source = datasets::DatasetRegistry::instance().make(scenario.dataset, seed);
  // The shared network is instance 0's network; job j streams instance j's
  // task graph onto it.
  const Network network = source->generate(0).network;
  const std::vector<double> times = arrival_times(scenario, seed);
  std::vector<SimJob> jobs;
  jobs.reserve(times.size());
  for (std::size_t j = 0; j < times.size(); ++j) {
    TaskGraph graph = source->generate(j).graph;
    if (scenario.noise_cv > 0.0) {
      // Reuse the stochastic envelope for execution-time draws: lift the
      // job onto the shared network, perturb every weight, and keep the
      // realised graph (the network itself stays fixed — the fault and
      // jitter scripts own its dynamics).
      ProblemInstance base;
      base.network = network;
      base.graph = std::move(graph);
      stochastic::StochasticInstance stochastic(base);
      stochastic.apply_relative_noise(scenario.noise_cv);
      graph = stochastic.realize(derive_seed(seed, {0x105eca11ULL, j})).graph;
    }
    SimJob job;
    job.arrival = times[j];
    job.graph = std::move(graph);
    jobs.push_back(std::move(job));
  }
  return simulate_jobs(network, jobs, scheduler, scenario.faults, scenario.jitter, arena,
                       trace);
}

}  // namespace saga::sim
