#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "graph/problem_instance.hpp"
#include "sched/scheduler.hpp"
#include "sim/events.hpp"
#include "sim/scenario.hpp"

/// \file simulator.hpp
/// The discrete-event scheduling simulator: DAG jobs arrive over time, the
/// scheduler under test plans each one on the pristine shared network the
/// moment it arrives (the plan-then-execute protocol of
/// stochastic::reexecute / Canon et al. 2008), and the event loop replays
/// the plans under churn — node crashes that destroy in-flight work (full
/// re-execution after recovery, placements held), multiplicative slowdown
/// windows repricing the running task's remaining work, and per-link
/// communication jitter sampled when each transfer starts.
///
/// Replay semantics: placements are irrevocable; each node dispatches its
/// tasks in planned order (start, then finish, then task id — jobs
/// interleave in arrival order) as soon as the node is alive, idle, and the
/// task's inputs have all arrived. For a builder-produced plan with no
/// faults this eager replay reproduces the planned start times — and the
/// static TimelineBuilder makespan — exactly (pinned by tests/test_sim_faults).
///
/// Everything is deterministic in (scenario, seed): the event queue breaks
/// timestamp ties in push order, workload streams derive from the
/// experiment seed alone (identical across the roster), and the trace hash
/// fingerprints the full event order.

namespace saga {
class TimelineArena;
}

namespace saga::sim {

/// One dynamically-arriving job: a task graph revealed at `arrival`.
/// Arrival times must be non-decreasing across a job list.
struct SimJob {
  double arrival = 0.0;
  TaskGraph graph;
};

/// Per-scheduler outcome of one simulation run.
struct SimReport {
  std::size_t jobs = 0;             // jobs that arrived
  std::size_t completed_jobs = 0;   // jobs whose every task finished
  std::size_t tasks_completed = 0;  // task completions (re-runs count once)
  std::size_t reexecutions = 0;     // task attempts destroyed by crashes
  double makespan = 0.0;            // time of the last task completion
  Summary response;                 // completed jobs: finish - arrival
  Summary degradation;              // completed jobs: span / planned makespan
  std::vector<double> utilization;  // per node: occupied time / makespan
  std::uint64_t trace_hash = 0;     // fnv1a64 of trace_to_string(trace)
  std::size_t trace_events = 0;
};

/// Renders an event trace deterministically, one line per event (internal
/// kTaskReady events are never traced). The rendering — and therefore the
/// trace hash — is byte-stable across platforms for identical inputs.
[[nodiscard]] std::string trace_to_string(const std::vector<Event>& trace);

/// Core entry point: replays `jobs` on `network` under the given fault and
/// jitter scripts. `scheduler` plans each job at its arrival instant.
/// Throws std::invalid_argument on malformed scripts, out-of-range node
/// indices, or decreasing arrival times. When `trace` is non-null the full
/// event trace is appended to it.
[[nodiscard]] SimReport simulate_jobs(const Network& network, const std::vector<SimJob>& jobs,
                                      const Scheduler& scheduler,
                                      const std::vector<FaultEvent>& faults,
                                      const std::vector<JitterEvent>& jitter,
                                      TimelineArena* arena = nullptr,
                                      std::vector<Event>* trace = nullptr);

/// The arrival times a scenario produces for master seed `seed` — shared by
/// every scheduler in a roster, so all cells of a simulate-mode experiment
/// face the identical workload.
[[nodiscard]] std::vector<double> arrival_times(const Scenario& scenario, std::uint64_t seed);

/// Declarative entry point behind `saga simulate`: validates the scenario,
/// resolves its dataset (the network is instance 0's network; job j's graph
/// is instance j's graph, optionally re-drawn with relative noise from a
/// seed-derived stream), and runs simulate_jobs.
[[nodiscard]] SimReport simulate_scenario(const Scenario& scenario, const Scheduler& scheduler,
                                          std::uint64_t seed, TimelineArena* arena = nullptr,
                                          std::vector<Event>* trace = nullptr);

}  // namespace saga::sim
