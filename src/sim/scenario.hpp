#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exp/json.hpp"

/// \file scenario.hpp
/// The declarative description of a dynamic workload: which dataset streams
/// the arriving DAG jobs, how arrivals are timed (Poisson or an explicit
/// trace), which faults strike which nodes when (crash/recover, slowdown
/// windows), how link jitter evolves, and how much multiplicative noise the
/// realised task weights carry. A Scenario round-trips to/from JSON with the
/// same unknown-key rejection and range validation as dataset parameters, so
/// `simulate`-mode experiment specs stay data rather than code.
///
/// Grammar (see docs/simulator.md):
///
///   {"dataset": "chains?chains=2&length=4&nodes=3",
///    "arrivals": {"process": "poisson", "rate": 0.5, "jobs": 8},
///                // or {"process": "trace", "times": [0, 1.5, 3]}
///    "faults":  [{"type": "crash",    "node": 1, "at": 4.0},
///                {"type": "recover",  "node": 1, "at": 6.0},
///                {"type": "slowdown", "node": 0, "from": 2, "to": 5,
///                 "factor": 2.0}],
///    "jitter":  [{"at": 0.0, "factor": 1.2},
///                {"at": 3.0, "link": [0, 2], "factor": 2.0}],
///    "noise_cv": 0.1}

namespace saga::sim {

/// How jobs enter the system. Poisson draws `jobs` exponential gaps of mean
/// 1/rate from a stream derived from the experiment seed (identical for
/// every scheduler in a roster); trace uses the given times verbatim.
struct ArrivalProcess {
  enum class Kind { kPoisson, kTrace };
  Kind kind = Kind::kPoisson;
  double rate = 1.0;          // poisson: expected arrivals per unit time
  std::size_t jobs = 1;       // poisson: number of arrivals drawn
  std::vector<double> times;  // trace: explicit arrival times (sorted)
};

/// One scripted fault. Crash/recover use `at`; a slowdown divides the
/// node's speed by `factor` over the window [at, until).
struct FaultEvent {
  enum class Kind { kCrash, kRecover, kSlowdown };
  Kind kind = Kind::kCrash;
  std::size_t node = 0;
  double at = 0.0;
  double until = 0.0;   // slowdown only
  double factor = 1.0;  // slowdown only (> 1 stretches work)
};

/// One scripted change of the communication-time multiplier: global when
/// `has_link` is false, otherwise for the (a, b) link only. Transfers whose
/// producing task finishes at or after `at` use the new factor.
struct JitterEvent {
  double at = 0.0;
  bool has_link = false;
  std::size_t a = 0;
  std::size_t b = 0;
  double factor = 1.0;
};

/// Passed as `node_count` when the network is not known yet (parse-time
/// validation); node indices are then range-checked at simulation time.
inline constexpr std::size_t kAnyNodeCount = static_cast<std::size_t>(-1);

/// Structural validation of a fault script: finite non-negative times,
/// positive finite factors, per-node crash/recover alternation in
/// increasing time order (a trailing crash — permanent failure — is
/// allowed), and per-node slowdown windows non-overlapping and listed in
/// increasing order. Throws std::invalid_argument naming the offender.
void validate_faults(const std::vector<FaultEvent>& faults, std::size_t node_count);

/// Structural validation of a jitter script: finite non-negative times,
/// positive finite factors, links with two distinct endpoints.
void validate_jitter(const std::vector<JitterEvent>& jitter, std::size_t node_count);

struct Scenario {
  std::string dataset;  // dataset spec string; instance j is job j's graph
  ArrivalProcess arrivals;
  std::vector<FaultEvent> faults;
  std::vector<JitterEvent> jitter;
  double noise_cv = 0.0;  // relative weight noise per job (0 = exact weights)

  /// JSON round-trip; from_json rejects unknown keys with a nearest-key
  /// suggestion and validates ranges.
  [[nodiscard]] static Scenario from_json(const exp::Json& json);
  [[nodiscard]] exp::Json to_json() const;

  [[nodiscard]] bool empty() const { return dataset.empty(); }

  /// Full structural validation (everything checkable without the network;
  /// node indices are re-checked against the actual node count when the
  /// simulation starts). Throws std::invalid_argument on the first problem.
  void validate() const;
};

}  // namespace saga::sim
