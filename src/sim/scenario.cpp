#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "common/nearest.hpp"

namespace saga::sim {

namespace {

using exp::Json;
using exp::JsonArray;

/// Rejects keys outside `allowed`, suggesting the nearest valid one — the
/// same contract ExperimentSpec::from_json applies at every level.
void check_keys(const Json& object, const std::vector<std::string>& allowed,
                const std::string& context) {
  for (const auto& [key, value] : object.as_object()) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      throw std::invalid_argument("unknown key '" + key + "' in " + context +
                                  did_you_mean(key, allowed) +
                                  "; valid keys: " + join(allowed, ", "));
    }
  }
}

double finite_number(const Json& json, const std::string& context) {
  const double value = json.as_number();
  if (!std::isfinite(value)) {
    throw std::invalid_argument(context + " must be finite" + json.position_suffix());
  }
  return value;
}

std::size_t to_size(const Json& json, const std::string& context) {
  const double value = json.as_number();
  if (value < 0.0 || value != std::floor(value) || value > 9.0e15) {
    throw std::invalid_argument(context + " must be a non-negative integer (got " +
                                json.dump() + ")" + json.position_suffix());
  }
  return static_cast<std::size_t>(value);
}

void require_time(double value, const std::string& context) {
  if (!std::isfinite(value) || value < 0.0) {
    throw std::invalid_argument(context + " must be a finite non-negative time");
  }
}

void require_factor(double value, const std::string& context) {
  if (!std::isfinite(value) || value <= 0.0) {
    throw std::invalid_argument(context + " must be a finite positive factor");
  }
}

void require_node(std::size_t node, std::size_t node_count, const std::string& context) {
  if (node_count != kAnyNodeCount && node >= node_count) {
    throw std::invalid_argument(context + " names node " + std::to_string(node) +
                                " but the network has only " + std::to_string(node_count) +
                                " nodes");
  }
}

ArrivalProcess arrivals_from_json(const Json& json) {
  check_keys(json, {"process", "rate", "jobs", "times"}, "scenario arrivals");
  ArrivalProcess arrivals;
  std::string process = "poisson";
  if (const Json* v = json.find("process")) process = v->as_string();
  if (process == "poisson") {
    arrivals.kind = ArrivalProcess::Kind::kPoisson;
    if (const Json* v = json.find("rate")) arrivals.rate = finite_number(*v, "arrival 'rate'");
    if (const Json* v = json.find("jobs")) arrivals.jobs = to_size(*v, "arrival 'jobs'");
    if (json.find("times") != nullptr) {
      throw std::invalid_argument("poisson arrivals take 'rate' and 'jobs', not 'times'");
    }
  } else if (process == "trace") {
    arrivals.kind = ArrivalProcess::Kind::kTrace;
    if (json.find("rate") != nullptr || json.find("jobs") != nullptr) {
      throw std::invalid_argument("trace arrivals take 'times', not 'rate'/'jobs'");
    }
    const Json* times = json.find("times");
    if (times == nullptr) throw std::invalid_argument("trace arrivals need 'times'");
    for (const auto& item : times->as_array()) {
      arrivals.times.push_back(finite_number(item, "arrival time"));
    }
  } else {
    throw std::invalid_argument("arrival 'process' must be 'poisson' or 'trace', got '" +
                                process + "'");
  }
  return arrivals;
}

FaultEvent fault_from_json(const Json& json) {
  FaultEvent fault;
  const Json* type = json.find("type");
  if (type == nullptr) throw std::invalid_argument("fault entry needs a 'type'");
  const std::string kind = type->as_string();
  if (kind == "crash" || kind == "recover") {
    check_keys(json, {"type", "node", "at"}, "fault entry");
    fault.kind = kind == "crash" ? FaultEvent::Kind::kCrash : FaultEvent::Kind::kRecover;
    const Json* at = json.find("at");
    if (at == nullptr) throw std::invalid_argument("fault '" + kind + "' needs 'at'");
    fault.at = finite_number(*at, "fault 'at'");
  } else if (kind == "slowdown") {
    check_keys(json, {"type", "node", "from", "to", "factor"}, "fault entry");
    fault.kind = FaultEvent::Kind::kSlowdown;
    const Json* from = json.find("from");
    const Json* to = json.find("to");
    const Json* factor = json.find("factor");
    if (from == nullptr || to == nullptr || factor == nullptr) {
      throw std::invalid_argument("fault 'slowdown' needs 'from', 'to' and 'factor'");
    }
    fault.at = finite_number(*from, "slowdown 'from'");
    fault.until = finite_number(*to, "slowdown 'to'");
    fault.factor = finite_number(*factor, "slowdown 'factor'");
  } else {
    throw std::invalid_argument("fault 'type' must be 'crash', 'recover' or 'slowdown', got '" +
                                kind + "'");
  }
  const Json* node = json.find("node");
  if (node == nullptr) throw std::invalid_argument("fault '" + kind + "' needs 'node'");
  fault.node = to_size(*node, "fault 'node'");
  return fault;
}

JitterEvent jitter_from_json(const Json& json) {
  check_keys(json, {"at", "link", "factor"}, "jitter entry");
  JitterEvent jitter;
  const Json* at = json.find("at");
  const Json* factor = json.find("factor");
  if (at == nullptr || factor == nullptr) {
    throw std::invalid_argument("jitter entry needs 'at' and 'factor'");
  }
  jitter.at = finite_number(*at, "jitter 'at'");
  jitter.factor = finite_number(*factor, "jitter 'factor'");
  if (const Json* link = json.find("link")) {
    const JsonArray& pair = link->as_array();
    if (pair.size() != 2) {
      throw std::invalid_argument("jitter 'link' must be a two-node array [a, b]");
    }
    jitter.has_link = true;
    jitter.a = to_size(pair[0], "jitter link endpoint");
    jitter.b = to_size(pair[1], "jitter link endpoint");
  }
  return jitter;
}

}  // namespace

void validate_faults(const std::vector<FaultEvent>& faults, std::size_t node_count) {
  struct NodeScript {
    bool down = false;          // crash seen without a recover yet
    double last_event = -1.0;   // last crash/recover time
    double slowdown_end = 0.0;  // end of the latest slowdown window
  };
  std::map<std::size_t, NodeScript> nodes;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultEvent& fault = faults[i];
    const std::string context = "fault #" + std::to_string(i + 1);
    require_node(fault.node, node_count, context);
    require_time(fault.at, context + " time");
    NodeScript& script = nodes[fault.node];
    switch (fault.kind) {
      case FaultEvent::Kind::kCrash:
        if (script.down) {
          throw std::invalid_argument(context + ": node " + std::to_string(fault.node) +
                                      " crashes while already down (missing recover)");
        }
        if (fault.at <= script.last_event) {
          throw std::invalid_argument(context + ": node " + std::to_string(fault.node) +
                                      " crash/recover times must strictly increase");
        }
        script.down = true;
        script.last_event = fault.at;
        break;
      case FaultEvent::Kind::kRecover:
        if (!script.down) {
          throw std::invalid_argument(context + ": node " + std::to_string(fault.node) +
                                      " recovers without a preceding crash");
        }
        if (fault.at <= script.last_event) {
          throw std::invalid_argument(context + ": node " + std::to_string(fault.node) +
                                      " crash/recover times must strictly increase");
        }
        script.down = false;
        script.last_event = fault.at;
        break;
      case FaultEvent::Kind::kSlowdown:
        require_time(fault.until, context + " 'to'");
        require_factor(fault.factor, context + " 'factor'");
        if (!(fault.until > fault.at)) {
          throw std::invalid_argument(context + ": slowdown window needs from < to");
        }
        if (fault.at < script.slowdown_end) {
          throw std::invalid_argument(context + ": node " + std::to_string(fault.node) +
                                      " slowdown windows must be non-overlapping and listed "
                                      "in increasing order");
        }
        script.slowdown_end = fault.until;
        break;
    }
  }
}

void validate_jitter(const std::vector<JitterEvent>& jitter, std::size_t node_count) {
  for (std::size_t i = 0; i < jitter.size(); ++i) {
    const JitterEvent& event = jitter[i];
    const std::string context = "jitter #" + std::to_string(i + 1);
    require_time(event.at, context + " 'at'");
    require_factor(event.factor, context + " 'factor'");
    if (event.has_link) {
      require_node(event.a, node_count, context);
      require_node(event.b, node_count, context);
      if (event.a == event.b) {
        throw std::invalid_argument(context + ": a jitter link needs two distinct nodes");
      }
    }
  }
}

Scenario Scenario::from_json(const Json& json) {
  check_keys(json, {"dataset", "arrivals", "faults", "jitter", "noise_cv"}, "scenario");
  Scenario scenario;
  if (const Json* v = json.find("dataset")) scenario.dataset = v->as_string();
  if (const Json* v = json.find("arrivals")) scenario.arrivals = arrivals_from_json(*v);
  if (const Json* v = json.find("faults")) {
    for (const auto& item : v->as_array()) scenario.faults.push_back(fault_from_json(item));
  }
  if (const Json* v = json.find("jitter")) {
    for (const auto& item : v->as_array()) scenario.jitter.push_back(jitter_from_json(item));
  }
  if (const Json* v = json.find("noise_cv")) {
    scenario.noise_cv = finite_number(*v, "scenario 'noise_cv'");
  }
  return scenario;
}

Json Scenario::to_json() const {
  Json json = Json::object();
  json.set("dataset", Json::string(dataset));
  Json arrivals_json = Json::object();
  if (arrivals.kind == ArrivalProcess::Kind::kPoisson) {
    arrivals_json.set("process", Json::string("poisson"));
    arrivals_json.set("rate", Json::number(arrivals.rate));
    arrivals_json.set("jobs", Json::number(static_cast<double>(arrivals.jobs)));
  } else {
    arrivals_json.set("process", Json::string("trace"));
    JsonArray times;
    for (const double t : arrivals.times) times.push_back(Json::number(t));
    arrivals_json.set("times", Json::array(std::move(times)));
  }
  json.set("arrivals", std::move(arrivals_json));
  if (!faults.empty()) {
    JsonArray items;
    for (const FaultEvent& fault : faults) {
      Json item = Json::object();
      switch (fault.kind) {
        case FaultEvent::Kind::kCrash:
          item.set("type", Json::string("crash"));
          item.set("node", Json::number(static_cast<double>(fault.node)));
          item.set("at", Json::number(fault.at));
          break;
        case FaultEvent::Kind::kRecover:
          item.set("type", Json::string("recover"));
          item.set("node", Json::number(static_cast<double>(fault.node)));
          item.set("at", Json::number(fault.at));
          break;
        case FaultEvent::Kind::kSlowdown:
          item.set("type", Json::string("slowdown"));
          item.set("node", Json::number(static_cast<double>(fault.node)));
          item.set("from", Json::number(fault.at));
          item.set("to", Json::number(fault.until));
          item.set("factor", Json::number(fault.factor));
          break;
      }
      items.push_back(std::move(item));
    }
    json.set("faults", Json::array(std::move(items)));
  }
  if (!jitter.empty()) {
    JsonArray items;
    for (const JitterEvent& event : jitter) {
      Json item = Json::object();
      item.set("at", Json::number(event.at));
      if (event.has_link) {
        JsonArray link;
        link.push_back(Json::number(static_cast<double>(event.a)));
        link.push_back(Json::number(static_cast<double>(event.b)));
        item.set("link", Json::array(std::move(link)));
      }
      item.set("factor", Json::number(event.factor));
      items.push_back(std::move(item));
    }
    json.set("jitter", Json::array(std::move(items)));
  }
  if (noise_cv > 0.0) json.set("noise_cv", Json::number(noise_cv));
  return json;
}

void Scenario::validate() const {
  if (dataset.empty()) {
    throw std::invalid_argument("scenario needs a 'dataset' spec string to stream jobs from");
  }
  constexpr std::size_t kMaxJobs = 100000;
  switch (arrivals.kind) {
    case ArrivalProcess::Kind::kPoisson:
      if (!std::isfinite(arrivals.rate) || arrivals.rate <= 0.0) {
        throw std::invalid_argument("poisson arrival rate must be a finite positive number");
      }
      if (arrivals.jobs == 0 || arrivals.jobs > kMaxJobs) {
        throw std::invalid_argument("poisson arrivals need 1 <= jobs <= " +
                                    std::to_string(kMaxJobs));
      }
      break;
    case ArrivalProcess::Kind::kTrace: {
      if (arrivals.times.empty() || arrivals.times.size() > kMaxJobs) {
        throw std::invalid_argument("trace arrivals need 1 <= times <= " +
                                    std::to_string(kMaxJobs));
      }
      double previous = 0.0;
      for (std::size_t i = 0; i < arrivals.times.size(); ++i) {
        const double t = arrivals.times[i];
        require_time(t, "arrival time #" + std::to_string(i + 1));
        if (t < previous) {
          throw std::invalid_argument("trace arrival times must be non-decreasing");
        }
        previous = t;
      }
      break;
    }
  }
  validate_faults(faults, kAnyNodeCount);
  validate_jitter(jitter, kAnyNodeCount);
  if (!std::isfinite(noise_cv) || noise_cv < 0.0 || noise_cv > 1.0) {
    throw std::invalid_argument("scenario 'noise_cv' must lie in [0, 1]");
  }
}

}  // namespace saga::sim
