#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

/// \file events.hpp
/// The discrete-event substrate of the simulator: a typed Event, a min-heap
/// EventQueue with *stable* tie-breaking, and a monotonic SimClock.
///
/// Determinism is the design center. Events at the same timestamp pop in
/// push order (each push stamps a process-local sequence number), so a
/// simulation's event order — and therefore its trace, metrics, and stored
/// payload — is a pure function of its inputs, independent of heap layout,
/// standard-library internals, thread count, or shard decomposition.

namespace saga::sim {

enum class EventType {
  kJobArrival,     // a DAG job enters the system and is planned
  kTaskReady,      // internal: the last input of a task arrived on its node
  kTaskStart,      // trace-only: a task began executing
  kTaskFinish,     // a running task completes (generation-checked)
  kTaskLost,       // trace-only: a crash destroyed in-flight work
  kNodeCrash,      // the node fails; its running task is lost
  kNodeRecover,    // the node returns with full capacity
  kSlowdownBegin,  // node speed divided by `factor` until the matching end
  kSlowdownEnd,    // the slowdown window closes (speed restored)
  kJitterChange,   // communication-time multiplier changes (global or link)
};

[[nodiscard]] std::string_view to_string(EventType type);

struct Event {
  double time = 0.0;
  EventType type = EventType::kJobArrival;
  std::size_t job = 0;            // job index (arrival order)
  std::uint32_t task = 0;         // TaskId within the job
  std::uint32_t node = 0;         // NodeId (crash/recover/slowdown/task events)
  std::uint32_t peer = 0;         // jitter: the link's other endpoint
  bool has_link = false;          // jitter: per-link (node, peer) vs global
  double factor = 1.0;            // slowdown / jitter multiplier
  std::uint64_t generation = 0;   // task-finish staleness check
  std::uint64_t seq = 0;          // assigned by EventQueue::push (tie-break)
};

/// Min-heap ordered by (time, seq): earliest time first, ties in push order.
class EventQueue {
 public:
  /// Stamps the event's sequence number and enqueues it.
  void push(Event event);

  /// Removes and returns the earliest event. Requires !empty().
  [[nodiscard]] Event pop();

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

 private:
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Monotonic simulation clock: time only moves forward; a regressing event
/// is a simulator bug and throws std::logic_error.
class SimClock {
 public:
  [[nodiscard]] double now() const noexcept { return now_; }
  void advance_to(double time);

 private:
  double now_ = 0.0;
};

}  // namespace saga::sim
