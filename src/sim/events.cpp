#include "sim/events.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace saga::sim {

namespace {

/// std::push_heap/pop_heap build a max-heap; "later (time, seq) is smaller"
/// turns it into the min-heap the simulator needs.
bool heap_before(const Event& a, const Event& b) noexcept {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

}  // namespace

std::string_view to_string(EventType type) {
  switch (type) {
    case EventType::kJobArrival: return "job-arrival";
    case EventType::kTaskReady: return "task-ready";
    case EventType::kTaskStart: return "task-start";
    case EventType::kTaskFinish: return "task-finish";
    case EventType::kTaskLost: return "task-lost";
    case EventType::kNodeCrash: return "node-crash";
    case EventType::kNodeRecover: return "node-recover";
    case EventType::kSlowdownBegin: return "slowdown-begin";
    case EventType::kSlowdownEnd: return "slowdown-end";
    case EventType::kJitterChange: return "jitter-change";
  }
  return "unknown";
}

void EventQueue::push(Event event) {
  event.seq = next_seq_++;
  heap_.push_back(event);
  std::push_heap(heap_.begin(), heap_.end(), heap_before);
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on an empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), heap_before);
  const Event event = heap_.back();
  heap_.pop_back();
  return event;
}

void SimClock::advance_to(double time) {
  if (time < now_) {
    throw std::logic_error("SimClock regressed from t=" + std::to_string(now_) +
                           " to t=" + std::to_string(time));
  }
  now_ = time;
}

}  // namespace saga::sim
